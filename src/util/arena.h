#ifndef PINSQL_UTIL_ARENA_H_
#define PINSQL_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

namespace pinsql::util {

/// Slab arena in the CryptoMiniSat ClauseAllocator mold: objects live in
/// large fixed-size slabs and are addressed by 32-bit *handles* instead of
/// pointers, so references cost 4 bytes, allocation is a bump, and freeing
/// is bulk (whole slabs) rather than per object.
///
/// Handles address 8-byte units: handle = slab_index * units_per_slab +
/// unit_offset, which spans 32 GiB of slab space. Slabs are recycled
/// through a free list when every allocation inside them has been
/// Release()d — the arena's form of compaction: space comes back in slab
/// quanta without ever moving a live object, so resolved pointers stay
/// valid for the life of the allocation.
///
/// Not thread-safe; owners (LogStore, ChunkPool) serialize externally.
class Arena {
 public:
  using Handle = uint32_t;
  static constexpr Handle kNullHandle = 0xFFFFFFFFu;
  static constexpr size_t kAlign = 8;
  static constexpr size_t kDefaultSlabBytes = size_t{1} << 18;  // 256 KiB

  struct Stats {
    size_t slabs_in_use = 0;    ///< slabs holding at least one live byte
    size_t slabs_free = 0;      ///< recycled slabs awaiting reuse
    size_t slabs_allocated = 0; ///< cumulative slabs obtained from new[]
    size_t slabs_recycled = 0;  ///< cumulative slabs returned to the free list
    size_t bytes_reserved = 0;  ///< slab_bytes * (slabs_in_use + slabs_free)
    size_t live_bytes = 0;      ///< bytes currently reachable via handles
    size_t high_water_bytes = 0;///< max live_bytes ever observed
  };

  explicit Arena(size_t slab_bytes = kDefaultSlabBytes);
  Arena(Arena&&) noexcept;
  Arena& operator=(Arena&&) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` (rounded up to 8) from the open slab, opening a
  /// new or recycled slab when it does not fit. `bytes` must not exceed the
  /// slab size. Never returns kNullHandle.
  Handle Allocate(size_t bytes);

  /// Marks `bytes` at `h` dead. When the owning slab's live count reaches
  /// zero the slab is recycled to the free list (and its handles become
  /// reusable). Callers must pass the same size they allocated.
  void Release(Handle h, size_t bytes);

  void* Resolve(Handle h) {
    return slabs_[h / units_per_slab_].data.get() +
           static_cast<size_t>(h % units_per_slab_) * kAlign;
  }
  const void* Resolve(Handle h) const {
    return slabs_[h / units_per_slab_].data.get() +
           static_cast<size_t>(h % units_per_slab_) * kAlign;
  }

  /// Typed helpers for trivially copyable payloads.
  template <typename T>
  Handle Create(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Handle h = Allocate(sizeof(T));
    std::memcpy(Resolve(h), &value, sizeof(T));
    return h;
  }
  template <typename T>
  T* Get(Handle h) {
    return static_cast<T*>(Resolve(h));
  }
  template <typename T>
  const T* Get(Handle h) const {
    return static_cast<const T*>(Resolve(h));
  }

  /// Bulk free: every handle becomes invalid, every slab moves to the free
  /// list. Capacity is retained for reuse (see ReleaseFreeSlabs).
  void Clear();

  /// Returns free-list slabs to the OS; live slabs are untouched. Returns
  /// the number of slabs released.
  size_t ReleaseFreeSlabs();

  size_t slab_bytes() const { return slab_bytes_; }
  Stats stats() const;

 private:
  struct Slab {
    std::unique_ptr<unsigned char[]> data;
    size_t live_bytes = 0;   // bytes not yet Release()d
    size_t bump_units = 0;   // next free unit inside this slab
    bool open = false;       // the slab currently being bumped into
    bool on_free_list = false;
  };

  void OpenNewSlab();

  size_t slab_bytes_;
  size_t units_per_slab_;
  std::vector<Slab> slabs_;
  std::vector<uint32_t> free_slabs_;
  uint32_t open_slab_ = 0;
  bool has_open_slab_ = false;
  Stats stats_;
};

/// Fixed-capacity staging chunk: the unit of batched producer->pump
/// handoff in the ingest path (BoundedQueue-style: many records move
/// through one lock acquisition). Trivially recyclable.
template <typename T, uint32_t Capacity>
struct Chunk {
  uint32_t size = 0;
  Chunk* next = nullptr;
  T items[Capacity];

  bool full() const { return size == Capacity; }
  void push(const T& v) { items[size++] = v; }
};

/// Thread-safe recycler of Chunks backed by one Arena. A fleet shares one
/// pool across every per-instance ingestor, so staging capacity is pooled
/// instead of multiplied by the instance count. Chunks never move; the
/// arena grows in slab quanta and recycled chunks are handed out again
/// before any new slab is opened.
template <typename T, uint32_t Capacity>
class ChunkPool {
 public:
  using ChunkT = Chunk<T, Capacity>;

  explicit ChunkPool(size_t slab_bytes = kSlabBytesFor())
      : arena_(slab_bytes) {}

  ChunkT* Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_ != nullptr) {
      ChunkT* chunk = free_;
      free_ = chunk->next;
      --free_count_;
      chunk->size = 0;
      chunk->next = nullptr;
      return chunk;
    }
    const Arena::Handle h = arena_.Allocate(sizeof(ChunkT));
    ++chunks_created_;
    ChunkT* chunk = new (arena_.Resolve(h)) ChunkT();
    return chunk;
  }

  void Release(ChunkT* chunk) {
    std::lock_guard<std::mutex> lock(mu_);
    chunk->size = 0;
    chunk->next = free_;
    free_ = chunk;
    ++free_count_;
  }

  /// Releases a whole linked list of chunks in one lock acquisition.
  void ReleaseList(ChunkT* head) {
    if (head == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    while (head != nullptr) {
      ChunkT* next = head->next;
      head->size = 0;
      head->next = free_;
      free_ = head;
      ++free_count_;
      head = next;
    }
  }

  /// O(1) splice of a pre-linked chain [head..tail] of `count` chunks onto
  /// the free list — no walk inside the lock. The caller vouches that tail
  /// is reachable from head and the chain has exactly `count` chunks
  /// (Pump() knows all three from the walk it already did); sizes are
  /// reset on Acquire, so release does not need to touch each chunk.
  void ReleaseChain(ChunkT* head, ChunkT* tail, size_t count) {
    if (head == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    tail->next = free_;
    free_ = head;
    free_count_ += count;
  }

  struct Stats {
    size_t chunks_created = 0;
    size_t chunks_free = 0;
    Arena::Stats arena;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Stats{chunks_created_, free_count_, arena_.stats()};
  }

 private:
  static constexpr size_t kSlabBytesFor() {
    // At least 8 chunks per slab, and never below the default slab size.
    const size_t need = sizeof(ChunkT) * 8;
    return need > Arena::kDefaultSlabBytes ? need : Arena::kDefaultSlabBytes;
  }

  mutable std::mutex mu_;
  Arena arena_;
  ChunkT* free_ = nullptr;
  size_t free_count_ = 0;
  size_t chunks_created_ = 0;
};

}  // namespace pinsql::util

#endif  // PINSQL_UTIL_ARENA_H_
