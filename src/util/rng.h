#ifndef PINSQL_UTIL_RNG_H_
#define PINSQL_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>

namespace pinsql {

/// Deterministic random number generator used throughout the simulator,
/// workload generators and evaluation harness. Every component takes an
/// explicit Rng (or a seed) so that tests and benchmarks are reproducible
/// bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    assert(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return Uniform01() < p;
  }

  /// Exponential inter-arrival sample with the given rate (events/unit).
  double Exponential(double rate) {
    assert(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Poisson sample with the given mean.
  int64_t Poisson(double mean) {
    assert(mean >= 0.0);
    if (mean == 0.0) return 0;
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Normal sample.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal sample parameterized by the *target* mean and a shape
  /// sigma (of the underlying normal). Used for service-time draws.
  double LogNormalWithMean(double mean, double sigma) {
    assert(mean > 0.0);
    const double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Derives an independent child RNG; stream is a caller-chosen label so
  /// different subsystems get decorrelated streams from one master seed.
  Rng Fork(uint64_t stream) {
    // SplitMix64-style mixing of the base engine output with the stream id.
    uint64_t z = engine_() + 0x9E3779B97F4A7C15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pinsql

#endif  // PINSQL_UTIL_RNG_H_
