#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace pinsql::util {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain-on-shutdown: keep executing queued tasks even after stop_.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(
      std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> abort{false};
    size_t n = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;

  // Every participant — helpers and the caller — claims iterations from
  // one shared counter. `done` reaches n exactly once all claimed indices
  // ran (or were skipped after an abort), independent of which helpers
  // ever got scheduled; that is what makes waiting below deadlock-free.
  auto run = [state, fn] {
    while (true) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) return;
      if (!state->abort.load(std::memory_order_relaxed)) {
        try {
          fn(i);
        } catch (...) {
          state->abort.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(state->mu);
          if (!state->error) state->error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  const size_t helpers =
      std::min(static_cast<size_t>(num_threads_), n) - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < helpers; ++h) queue_.emplace_back(run);
  }
  cv_.notify_all();

  run();  // caller participates until the counter is exhausted

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, fn);
}

}  // namespace pinsql::util
