#ifndef PINSQL_UTIL_STRINGS_H_
#define PINSQL_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pinsql {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string AsciiToLower(std::string_view s);
/// ASCII upper-casing.
std::string AsciiToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// FNV-1a 64-bit hash; used for SQL template ids.
uint64_t Fnv1a64(std::string_view s);

/// Renders a 64-bit hash as a fixed-width upper-case hex string, the way
/// SQL ids appear in query logs (e.g. "A84F...").
std::string HashToHex(uint64_t hash);

/// Inverse of HashToHex: parses a 1-16 digit hex string (either case) into
/// `*out`. Returns false on empty input, non-hex characters or overflow.
bool HexToHash(std::string_view hex, uint64_t* out);

}  // namespace pinsql

#endif  // PINSQL_UTIL_STRINGS_H_
