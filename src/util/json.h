#ifndef PINSQL_UTIL_JSON_H_
#define PINSQL_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pinsql {

/// A minimal JSON document model plus parser/writer, implemented from
/// scratch (no third-party dependency). Used by the repair rule engine
/// (paper Fig. 5) and for benchmark/experiment result emission.
///
/// Numbers are stored as double; object keys are kept in sorted order
/// (std::map) so serialization is deterministic.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Constructs null.
  Json() : type_(Type::kNull) {}
  /// Typed constructors; implicit so literals read naturally at call sites.
  Json(bool b) : type_(Type::kBool), bool_(b) {}             // NOLINT
  Json(double num) : type_(Type::kNumber), number_(num) {}   // NOLINT
  Json(int num) : Json(static_cast<double>(num)) {}          // NOLINT
  Json(int64_t num) : Json(static_cast<double>(num)) {}      // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s)                                        // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; assert on type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// Object lookup; returns nullptr if absent or not an object.
  const Json* Find(std::string_view key) const;

  /// Typed lookups with defaults, for config-style consumption.
  double GetNumberOr(std::string_view key, double fallback) const;
  bool GetBoolOr(std::string_view key, bool fallback) const;
  std::string GetStringOr(std::string_view key,
                          std::string_view fallback) const;

  /// Object mutation (asserts this is an object).
  Json& Set(std::string key, Json value);
  /// Array append (asserts this is an array).
  Json& Append(Json value);

  /// Serializes compactly ({"a":1}) or pretty-printed with 2-space indent.
  std::string Dump(bool pretty = false) const;

  /// Parses a complete JSON document; trailing non-space input is an error.
  static StatusOr<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string* out, bool pretty, int indent) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace pinsql

#endif  // PINSQL_UTIL_JSON_H_
