#ifndef PINSQL_UTIL_STATUS_H_
#define PINSQL_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pinsql {

/// Error codes used across the PinSQL API. Modeled after the common
/// database-library practice (RocksDB/Arrow style): functions that can fail
/// return a Status (or StatusOr<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kInternal,
};

/// Returns a human-readable name for a status code ("Ok", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight success/error result. Cheap to copy in the success case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. The value accessors assert
/// that the result is OK; callers must check ok() on fallible paths.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (the common success path).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pinsql

#endif  // PINSQL_UTIL_STATUS_H_
