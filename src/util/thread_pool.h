#ifndef PINSQL_UTIL_THREAD_POOL_H_
#define PINSQL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pinsql::util {

/// Fixed-size worker pool behind every parallel stage of the diagnosis
/// engine. Design constraints (see DESIGN.md "Threading model"):
///
///  - `ParallelFor` is deadlock-free under nesting: the calling thread
///    claims iterations itself, so a pool thread running a task that calls
///    `ParallelFor` again never blocks on a queue slot that only it could
///    free. Helper tasks that are scheduled after the loop drained simply
///    find no remaining iterations and return.
///  - The first exception thrown by an iteration aborts the remaining
///    (unstarted) iterations and is rethrown on the calling thread;
///    `Submit` stores task exceptions in the returned future.
///  - Destruction drains: queued tasks still run before the workers join,
///    so shutdown with pending work loses nothing.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values < 1 are clamped to 1). With one
  /// thread the pool degenerates to serial execution on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues one task; the future carries its completion or exception.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n), blocking until all iterations
  /// finished. Iterations may run on any thread including the caller;
  /// writes must therefore target disjoint, index-addressed slots for the
  /// result to be deterministic. Rethrows the first iteration exception.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Serial fallback shared by every `options.num_threads`-gated call site:
/// a null pool (or a single-thread pool) runs the loop inline, which is
/// the bit-identical num_threads=1 baseline.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace pinsql::util

#endif  // PINSQL_UTIL_THREAD_POOL_H_
