#include "util/arena.h"

#include <cassert>
#include <utility>

namespace pinsql::util {

Arena::Arena(size_t slab_bytes)
    : slab_bytes_((slab_bytes + kAlign - 1) / kAlign * kAlign),
      units_per_slab_(slab_bytes_ / kAlign) {
  assert(slab_bytes_ >= kAlign);
}

Arena::Arena(Arena&& other) noexcept
    : slab_bytes_(other.slab_bytes_),
      units_per_slab_(other.units_per_slab_),
      slabs_(std::move(other.slabs_)),
      free_slabs_(std::move(other.free_slabs_)),
      open_slab_(other.open_slab_),
      has_open_slab_(other.has_open_slab_),
      stats_(other.stats_) {
  // The moved-from arena stays usable: empty, same slab size.
  other.slabs_.clear();
  other.free_slabs_.clear();
  other.open_slab_ = 0;
  other.has_open_slab_ = false;
  other.stats_ = Stats{};
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this == &other) return *this;
  slab_bytes_ = other.slab_bytes_;
  units_per_slab_ = other.units_per_slab_;
  slabs_ = std::move(other.slabs_);
  free_slabs_ = std::move(other.free_slabs_);
  open_slab_ = other.open_slab_;
  has_open_slab_ = other.has_open_slab_;
  stats_ = other.stats_;
  other.slabs_.clear();
  other.free_slabs_.clear();
  other.open_slab_ = 0;
  other.has_open_slab_ = false;
  other.stats_ = Stats{};
  return *this;
}

void Arena::OpenNewSlab() {
  if (!free_slabs_.empty()) {
    open_slab_ = free_slabs_.back();
    free_slabs_.pop_back();
    Slab& slab = slabs_[open_slab_];
    slab.live_bytes = 0;
    slab.bump_units = 0;
    slab.open = true;
    slab.on_free_list = false;
    has_open_slab_ = true;
    return;
  }
  Slab slab;
  slab.data = std::make_unique<unsigned char[]>(slab_bytes_);
  slab.open = true;
  open_slab_ = static_cast<uint32_t>(slabs_.size());
  slabs_.push_back(std::move(slab));
  ++stats_.slabs_allocated;
  has_open_slab_ = true;
  // 32-bit handles cover slab_index * units_per_slab_ + unit; overflowing
  // that space would need >32 GiB of live slab data.
  assert((slabs_.size() * units_per_slab_) <=
         static_cast<size_t>(kNullHandle));
}

Arena::Handle Arena::Allocate(size_t bytes) {
  assert(bytes > 0 && bytes <= slab_bytes_);
  const size_t units = (bytes + kAlign - 1) / kAlign;
  if (!has_open_slab_ ||
      slabs_[open_slab_].bump_units + units > units_per_slab_) {
    if (has_open_slab_) {
      Slab& prev = slabs_[open_slab_];
      prev.open = false;
      if (prev.live_bytes == 0) {
        // Everything bumped into it was already released.
        prev.on_free_list = true;
        free_slabs_.push_back(open_slab_);
        ++stats_.slabs_recycled;
      }
    }
    OpenNewSlab();
  }
  Slab& slab = slabs_[open_slab_];
  const Handle h = open_slab_ * static_cast<Handle>(units_per_slab_) +
                   static_cast<Handle>(slab.bump_units);
  slab.bump_units += units;
  slab.live_bytes += units * kAlign;
  stats_.live_bytes += units * kAlign;
  if (stats_.live_bytes > stats_.high_water_bytes) {
    stats_.high_water_bytes = stats_.live_bytes;
  }
  return h;
}

void Arena::Release(Handle h, size_t bytes) {
  const size_t units = (bytes + kAlign - 1) / kAlign;
  Slab& slab = slabs_[h / units_per_slab_];
  assert(slab.live_bytes >= units * kAlign);
  slab.live_bytes -= units * kAlign;
  stats_.live_bytes -= units * kAlign;
  if (slab.live_bytes == 0 && !slab.open && !slab.on_free_list) {
    slab.on_free_list = true;
    free_slabs_.push_back(
        static_cast<uint32_t>(h / units_per_slab_));
    ++stats_.slabs_recycled;
  }
}

void Arena::Clear() {
  free_slabs_.clear();
  for (uint32_t i = 0; i < slabs_.size(); ++i) {
    Slab& slab = slabs_[i];
    if (slab.data == nullptr) continue;  // already OS-released, stays dead
    if (slab.live_bytes > 0 || slab.bump_units > 0 || slab.open) {
      ++stats_.slabs_recycled;
    }
    slab.live_bytes = 0;
    slab.bump_units = 0;
    slab.open = false;
    slab.on_free_list = true;
    free_slabs_.push_back(i);
  }
  has_open_slab_ = false;
  stats_.live_bytes = 0;
}

size_t Arena::ReleaseFreeSlabs() {
  size_t released = 0;
  for (const uint32_t i : free_slabs_) {
    slabs_[i].data.reset();
    slabs_[i].on_free_list = false;
    ++released;
  }
  // Slab slots with no data are dead: they are never put back on the free
  // list, so handles can no longer map into them. Slot indices are not
  // reused (keeps Resolve() a pure division), which is fine — slabs are
  // only OS-released on explicit shrink calls.
  free_slabs_.clear();
  return released;
}

Arena::Stats Arena::stats() const {
  Stats s = stats_;
  s.slabs_free = free_slabs_.size();
  size_t in_use = 0;
  for (const Slab& slab : slabs_) {
    if (slab.data != nullptr && !slab.on_free_list) ++in_use;
  }
  s.slabs_in_use = in_use;
  s.bytes_reserved = (in_use + s.slabs_free) * slab_bytes_;
  return s;
}

}  // namespace pinsql::util
