#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace pinsql {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r' || s[b] == '\f' || s[b] == '\v')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r' || s[e - 1] == '\f' || s[e - 1] == '\v')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string HashToHex(uint64_t hash) {
  static const char kDigits[] = "0123456789ABCDEF";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

bool HexToHash(std::string_view hex, uint64_t* out) {
  if (hex.empty() || hex.size() > 16 || out == nullptr) return false;
  uint64_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace pinsql
