#include "util/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace pinsql {

bool Json::AsBool() const {
  assert(is_bool());
  return bool_;
}

double Json::AsNumber() const {
  assert(is_number());
  return number_;
}

const std::string& Json::AsString() const {
  assert(is_string());
  return string_;
}

const Json::Array& Json::AsArray() const {
  assert(is_array());
  return array_;
}

Json::Array& Json::AsArray() {
  assert(is_array());
  return array_;
}

const Json::Object& Json::AsObject() const {
  assert(is_object());
  return object_;
}

Json::Object& Json::AsObject() {
  assert(is_object());
  return object_;
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

double Json::GetNumberOr(std::string_view key, double fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

bool Json::GetBoolOr(std::string_view key, bool fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

std::string Json::GetStringOr(std::string_view key,
                              std::string_view fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString()
                                          : std::string(fallback);
}

Json& Json::Set(std::string key, Json value) {
  assert(is_object());
  object_[std::move(key)] = std::move(value);
  return *this;
}

Json& Json::Append(Json value) {
  assert(is_array());
  array_.push_back(std::move(value));
  return *this;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    // JSON has no NaN/Inf; emit null as the conventional fallback.
    out->append("null");
    return;
  }
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    out->append(StrFormat("%lld", static_cast<long long>(v)));
  } else {
    out->append(StrFormat("%.17g", v));
  }
}

void AppendIndent(std::string* out, int indent) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, bool pretty, int indent) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      AppendEscaped(out, string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out->append("[]");
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (pretty) {
          out->push_back('\n');
          AppendIndent(out, indent + 1);
        }
        array_[i].DumpTo(out, pretty, indent + 1);
      }
      if (pretty) {
        out->push_back('\n');
        AppendIndent(out, indent);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out->append("{}");
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        if (pretty) {
          out->push_back('\n');
          AppendIndent(out, indent + 1);
        }
        AppendEscaped(out, key);
        out->push_back(':');
        if (pretty) out->push_back(' ');
        value.DumpTo(out, pretty, indent + 1);
      }
      if (pretty) {
        out->push_back('\n');
        AppendIndent(out, indent);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(bool pretty) const {
  std::string out;
  DumpTo(&out, pretty, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser with position-annotated errors.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    StatusOr<Json> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) {
    return Status::ParseError(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue() {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    struct DepthGuard {
      int* d;
      ~DepthGuard() { --*d; }
    } guard{&depth_};

    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        if (ConsumeLiteral("null")) return Json();
        return Error("invalid literal");
      case 't':
        if (ConsumeLiteral("true")) return Json(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json(false);
        return Error("invalid literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray();
      case '{':
        return ParseObject();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error("unexpected character");
    }
  }

  StatusOr<Json> ParseString() {
    std::string out;
    ++pos_;  // opening quote
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape digit");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as two separate 3-byte sequences, which is sufficient
            // for config files; SQL text is ASCII in this system).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  StatusOr<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      digits = true;
    }
    if (!digits) return Error("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      bool frac = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        frac = true;
      }
      if (!frac) return Error("invalid number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      bool exp = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        exp = true;
      }
      if (!exp) return Error("invalid number exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Json(std::strtod(token.c_str(), nullptr));
  }

  StatusOr<Json> ParseArray() {
    ++pos_;  // '['
    Json out = Json::MakeArray();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      StatusOr<Json> v = ParseValue();
      if (!v.ok()) return v;
      out.Append(std::move(v).value());
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      char c = text_[pos_++];
      if (c == ']') return out;
      if (c != ',') return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<Json> ParseObject() {
    ++pos_;  // '{'
    Json out = Json::MakeObject();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      StatusOr<Json> key = ParseString();
      if (!key.ok()) return key;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      StatusOr<Json> value = ParseValue();
      if (!value.ok()) return value;
      out.Set(key->AsString(), std::move(value).value());
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      char c = text_[pos_++];
      if (c == '}') return out;
      if (c != ',') return Error("expected ',' or '}' in object");
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace pinsql
