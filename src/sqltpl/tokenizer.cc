#include "sqltpl/tokenizer.h"

#include <array>
#include <cctype>

#include "util/strings.h"

namespace pinsql::sqltpl {

namespace {

bool IsWordStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '$' || c == '@';
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '$' || c == '@';
}

bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

bool IsSqlKeyword(std::string_view word) {
  static constexpr std::string_view kKeywords[] = {
      "select",   "from",     "where",    "and",      "or",       "not",
      "insert",   "into",     "values",   "update",   "set",      "delete",
      "replace",  "create",   "alter",    "drop",     "truncate", "table",
      "index",    "view",     "join",     "inner",    "left",     "right",
      "outer",    "cross",    "on",       "using",    "group",    "by",
      "having",   "order",    "asc",      "desc",     "limit",    "offset",
      "union",    "all",      "distinct", "as",       "in",       "between",
      "like",     "is",       "null",     "exists",   "case",     "when",
      "then",     "else",     "end",      "begin",    "commit",   "rollback",
      "for",      "lock",     "share",    "mode",     "show",     "status",
      "explain",  "describe", "database", "column",   "add",      "primary",
      "key",      "unique",   "foreign",  "default",  "if",       "ignore",
      "force",    "straight_join",        "count",    "sum",      "avg",
      "min",      "max"};
  const std::string lower = AsciiToLower(word);
  for (std::string_view k : kKeywords) {
    if (lower == k) return true;
  }
  return false;
}

std::vector<Token> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
        c == '\v') {
      ++i;
      continue;
    }
    // Line comments: "-- " (requires space per MySQL) or "#".
    if (c == '#' || (c == '-' && i + 2 < n && sql[i + 1] == '-' &&
                     (sql[i + 2] == ' ' || sql[i + 2] == '\t'))) {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    // Block comments.
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) ++i;
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // String literals.
    if (c == '\'' || c == '"') {
      const char quote = c;
      size_t start = i;
      ++i;
      while (i < n) {
        if (sql[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (sql[i] == quote) {
          // Doubled quote escape ('' or "").
          if (i + 1 < n && sql[i + 1] == quote) {
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      tokens.push_back({TokenType::kString,
                        std::string(sql.substr(start, i - start))});
      continue;
    }
    // Backtick-quoted identifiers.
    if (c == '`') {
      ++i;
      size_t start = i;
      while (i < n && sql[i] != '`') ++i;
      tokens.push_back({TokenType::kQuotedIdent,
                        std::string(sql.substr(start, i - start))});
      if (i < n) ++i;  // closing backtick
      continue;
    }
    // Numbers (leading sign is handled as punctuation; the fingerprinter
    // folds it into the placeholder).
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(sql[i + 1]))) {
      size_t start = i;
      if (c == '0' && i + 1 < n && (sql[i + 1] == 'x' || sql[i + 1] == 'X')) {
        i += 2;
        while (i < n &&
               std::isxdigit(static_cast<unsigned char>(sql[i])) != 0) {
          ++i;
        }
      } else if (c == '0' && i + 2 < n &&
                 (sql[i + 1] == 'b' || sql[i + 1] == 'B') &&
                 (sql[i + 2] == '0' || sql[i + 2] == '1')) {
        // MySQL binary literals (0b1010). Without this branch the token
        // splits into the number 0 plus the word "b1010", so templates
        // differing only in a binary literal would not share a sql_id.
        i += 2;
        while (i < n && (sql[i] == '0' || sql[i] == '1')) ++i;
      } else {
        while (i < n && (IsDigit(sql[i]) || sql[i] == '.')) ++i;
        if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
          size_t j = i + 1;
          if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
          if (j < n && IsDigit(sql[j])) {
            i = j;
            while (i < n && IsDigit(sql[i])) ++i;
          }
        }
      }
      tokens.push_back({TokenType::kNumber,
                        std::string(sql.substr(start, i - start))});
      continue;
    }
    // Words: keywords and identifiers.
    if (IsWordStart(c)) {
      size_t start = i;
      while (i < n && IsWordChar(sql[i])) ++i;
      tokens.push_back({TokenType::kWord,
                        std::string(sql.substr(start, i - start))});
      continue;
    }
    // Pre-existing placeholders.
    if (c == '?') {
      tokens.push_back({TokenType::kPlaceholder, "?"});
      ++i;
      continue;
    }
    // Everything else is punctuation, one char at a time except for the
    // common two-char comparison operators.
    if (i + 1 < n) {
      const std::string_view two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
          two == ":=" || two == "||" || two == "&&") {
        tokens.push_back({TokenType::kPunctuation, std::string(two)});
        i += 2;
        continue;
      }
    }
    tokens.push_back({TokenType::kPunctuation, std::string(1, c)});
    ++i;
  }
  return tokens;
}

}  // namespace pinsql::sqltpl
