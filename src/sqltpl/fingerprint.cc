#include "sqltpl/fingerprint.h"

#include <algorithm>

#include "sqltpl/tokenizer.h"
#include "util/strings.h"

namespace pinsql::sqltpl {

namespace {

StatementKind ClassifyLeadingWord(const std::vector<Token>& tokens) {
  for (const Token& tok : tokens) {
    if (tok.type != TokenType::kWord) continue;
    const std::string w = AsciiToLower(tok.text);
    if (w == "select") return StatementKind::kSelect;
    if (w == "insert") return StatementKind::kInsert;
    if (w == "update") return StatementKind::kUpdate;
    if (w == "delete") return StatementKind::kDelete;
    if (w == "replace") return StatementKind::kReplace;
    if (w == "create" || w == "alter" || w == "drop" || w == "truncate") {
      return StatementKind::kDdl;
    }
    if (w == "begin" || w == "commit" || w == "rollback" || w == "start") {
      return StatementKind::kTransaction;
    }
    if (w == "set") return StatementKind::kSet;
    if (w == "show") return StatementKind::kShow;
    return StatementKind::kOther;
  }
  return StatementKind::kOther;
}

/// True if the lower-cased word introduces a table reference; the *next*
/// identifier token is then a table name.
bool IntroducesTable(const std::string& lower_word) {
  return lower_word == "from" || lower_word == "join" ||
         lower_word == "update" || lower_word == "into" ||
         lower_word == "table";
}

void AddTable(std::vector<std::string>* tables, const std::string& name) {
  if (name.empty()) return;
  if (std::find(tables->begin(), tables->end(), name) != tables->end()) {
    return;
  }
  tables->push_back(name);
}

}  // namespace

const char* StatementKindName(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect:
      return "SELECT";
    case StatementKind::kInsert:
      return "INSERT";
    case StatementKind::kUpdate:
      return "UPDATE";
    case StatementKind::kDelete:
      return "DELETE";
    case StatementKind::kReplace:
      return "REPLACE";
    case StatementKind::kDdl:
      return "DDL";
    case StatementKind::kTransaction:
      return "TRANSACTION";
    case StatementKind::kSet:
      return "SET";
    case StatementKind::kShow:
      return "SHOW";
    case StatementKind::kOther:
      return "OTHER";
  }
  return "OTHER";
}

TemplateInfo Fingerprint(std::string_view sql) {
  TemplateInfo info;
  const std::vector<Token> tokens = Tokenize(sql);
  info.kind = ClassifyLeadingWord(tokens);

  std::vector<std::string> pieces;
  pieces.reserve(tokens.size());

  bool expecting_table = false;     // previous word was FROM/JOIN/...
  bool table_list_context = false;  // inside "FROM a, b" comma list
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    switch (tok.type) {
      case TokenType::kNumber:
      case TokenType::kString:
      case TokenType::kPlaceholder: {
        // Fold preceding unary +/- signs into the placeholder: "= -5" and
        // "= - -5" both become "= ?". A sign *after* a value (column,
        // placeholder, closing paren) is arithmetic and is kept.
        while (!pieces.empty() &&
               (pieces.back() == "-" || pieces.back() == "+")) {
          const bool after_value =
              pieces.size() >= 2 &&
              (pieces[pieces.size() - 2] == "?" ||
               pieces[pieces.size() - 2] == ")" ||
               (!pieces[pieces.size() - 2].empty() &&
                !IsSqlKeyword(pieces[pieces.size() - 2]) &&
                (std::isalnum(static_cast<unsigned char>(
                     pieces[pieces.size() - 2][0])) != 0 ||
                 pieces[pieces.size() - 2][0] == '_')));
          if (after_value) break;
          pieces.pop_back();
        }
        pieces.emplace_back("?");
        expecting_table = false;
        break;
      }
      case TokenType::kWord: {
        const std::string lower = AsciiToLower(tok.text);
        if (expecting_table) {
          // Possibly schema-qualified: db.tbl.
          std::string name = tok.text;
          if (i + 2 < tokens.size() && tokens[i + 1].text == "." &&
              tokens[i + 2].type == TokenType::kWord) {
            name = tokens[i + 2].text;
          }
          AddTable(&info.tables, AsciiToLower(name));
          expecting_table = false;
          table_list_context = true;
        }
        if (IntroducesTable(lower)) {
          expecting_table = true;
          table_list_context = false;
        } else if (IsSqlKeyword(lower)) {
          table_list_context = false;
        }
        pieces.push_back(IsSqlKeyword(lower) ? AsciiToUpper(lower)
                                             : tok.text);
        break;
      }
      case TokenType::kQuotedIdent: {
        if (expecting_table) {
          AddTable(&info.tables, AsciiToLower(tok.text));
          expecting_table = false;
          table_list_context = true;
        }
        pieces.push_back(tok.text);
        break;
      }
      case TokenType::kPunctuation: {
        if (tok.text == "," && table_list_context) {
          // "FROM a, b": the identifier after the comma is also a table.
          expecting_table = true;
        } else if (tok.text != ".") {
          table_list_context = false;
        }
        pieces.push_back(tok.text);
        break;
      }
    }
  }

  // Collapse IN-lists and VALUES tuples: "( ?, ?, ? )" -> "( ? )" so that
  // queries differing only in list arity share one template.
  std::vector<std::string> collapsed;
  collapsed.reserve(pieces.size());
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (pieces[i] == "(") {
      // Scan ahead for a pure placeholder list.
      size_t j = i + 1;
      bool pure = false;
      while (j + 1 < pieces.size() && pieces[j] == "?" &&
             pieces[j + 1] == ",") {
        j += 2;
        pure = true;
      }
      if (pure && j < pieces.size() && pieces[j] == "?" &&
          j + 1 < pieces.size() && pieces[j + 1] == ")") {
        collapsed.emplace_back("(");
        collapsed.emplace_back("?");
        collapsed.emplace_back(")");
        i = j + 1;
        continue;
      }
    }
    collapsed.push_back(pieces[i]);
  }

  // Render with spaces, but attach punctuation tightly where conventional.
  std::string text;
  for (size_t i = 0; i < collapsed.size(); ++i) {
    const std::string& p = collapsed[i];
    const bool no_space_before =
        p == "," || p == ")" || p == ";" || p == ".";
    const bool prev_no_space_after =
        !text.empty() && (text.back() == '(' || text.back() == '.');
    if (!text.empty() && !no_space_before && !prev_no_space_after) {
      text.push_back(' ');
    }
    text.append(p);
  }

  info.template_text = std::move(text);
  info.sql_id = Fnv1a64(info.template_text);
  info.sql_id_hex = HashToHex(info.sql_id);
  return info;
}

uint64_t SqlId(std::string_view sql) { return Fingerprint(sql).sql_id; }

}  // namespace pinsql::sqltpl
