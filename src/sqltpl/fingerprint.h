#ifndef PINSQL_SQLTPL_FINGERPRINT_H_
#define PINSQL_SQLTPL_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pinsql::sqltpl {

/// Coarse statement classification used by the lock model and the repair
/// rule engine. DDL statements take exclusive metadata locks in the
/// simulator (paper Sec. II, R-SQL category 3-i).
enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kReplace,
  kDdl,          // CREATE / ALTER / DROP / TRUNCATE
  kTransaction,  // BEGIN / COMMIT / ROLLBACK
  kSet,
  kShow,
  kOther,
};

const char* StatementKindName(StatementKind kind);

/// Result of fingerprinting one SQL statement.
struct TemplateInfo {
  /// Normalized template text: literals replaced with '?', IN-lists
  /// collapsed, keywords upper-cased, single-space separated.
  std::string template_text;
  /// FNV-1a hash of template_text: the SQL_ID (paper Fig. 1).
  uint64_t sql_id = 0;
  /// sql_id rendered as 16 upper-case hex chars.
  std::string sql_id_hex;
  StatementKind kind = StatementKind::kOther;
  /// Tables referenced via FROM / JOIN / UPDATE / INTO clauses.
  std::vector<std::string> tables;
};

/// Aggregates structurally-similar queries into a SQL template (paper
/// Definition II.3): replaces hard-coded values with '?' so that e.g.
///   SELECT * FROM user_table WHERE uid = 123456
///   SELECT * FROM user_table WHERE uid = 654321
/// map to the same template and SQL_ID.
TemplateInfo Fingerprint(std::string_view sql);

/// Convenience: just the SQL_ID for a statement.
uint64_t SqlId(std::string_view sql);

}  // namespace pinsql::sqltpl

#endif  // PINSQL_SQLTPL_FINGERPRINT_H_
