#ifndef PINSQL_SQLTPL_TOKENIZER_H_
#define PINSQL_SQLTPL_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace pinsql::sqltpl {

/// Lexical token classes produced by the SQL tokenizer. The tokenizer is
/// deliberately permissive: its job is template fingerprinting (paper
/// Definition II.3), not validation, so unknown characters become
/// kPunctuation instead of errors.
enum class TokenType {
  kWord,         // keywords and identifiers (foo, user_table, SELECT)
  kQuotedIdent,  // `backtick quoted` identifiers
  kNumber,       // 123, -4.5e2, 0xFF
  kString,       // 'abc', "abc"
  kPunctuation,  // ( ) , . = < > + - * / ; etc.
  kPlaceholder,  // ? already present in the input
};

struct Token {
  TokenType type;
  /// Token text. For kQuotedIdent the quotes are stripped; for kString the
  /// raw quoted form is preserved (it is replaced wholesale anyway).
  std::string text;
};

/// Tokenizes a SQL statement. Comments (`-- ...`, `# ...`, `/* ... */`) are
/// skipped. Never fails: unterminated strings/comments extend to the end of
/// the input.
std::vector<Token> Tokenize(std::string_view sql);

/// True if `word` is a SQL keyword (case-insensitive, common MySQL subset).
bool IsSqlKeyword(std::string_view word);

}  // namespace pinsql::sqltpl

#endif  // PINSQL_SQLTPL_TOKENIZER_H_
