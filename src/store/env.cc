#include "store/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace pinsql::store {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnvImpl : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    // O_TRUNC, never O_APPEND: no caller legitimately appends to a
    // pre-existing file, and a leftover with the same name (a torn segment
    // header, an interrupted checkpoint temp) must not survive as a garbage
    // prefix under fresh bytes.
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Status ReadFile(const std::string& path, std::string* out) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path);
    out->clear();
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status status = ErrnoStatus("read", path);
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      out->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) return Status::Internal("listdir " + dir + ": " + ec.message());
    return names;
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return Status::Internal("mkdirs " + dir + ": " + ec.message());
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path);
    }
    return Status::OK();
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync", dir);
    return Status::OK();
  }
};

}  // namespace

Env* PosixEnv() {
  static PosixEnvImpl* env = new PosixEnvImpl();
  return env;
}

}  // namespace pinsql::store
