#ifndef PINSQL_STORE_DURABLE_SERVICE_H_
#define PINSQL_STORE_DURABLE_SERVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "online/replay.h"
#include "online/service.h"
#include "repair/events.h"
#include "store/checkpoint.h"
#include "store/env.h"
#include "store/wal.h"
#include "util/status.h"

namespace pinsql::store {

struct DurableServiceOptions {
  online::ServiceOptions service;
  WalOptions wal;
  /// Take a checkpoint every this many watermark seconds (0 disables
  /// periodic checkpoints; a final one is still written on Stop()).
  int64_t checkpoint_every_sec = 300;
  /// Checkpoint files retained on disk. Two survives one corrupt newest
  /// checkpoint: recovery falls back and replays a longer WAL suffix.
  size_t checkpoints_to_keep = 2;
};

/// Accounting of one Open(): what was recovered and from where.
struct RecoveryStats {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_counter = 0;
  size_t checkpoints_corrupt_skipped = 0;
  WalScanStats wal;
  /// Wall time the whole recovery (load + replay) took.
  double recovery_ms = 0.0;
};

struct DurableStats {
  online::ServiceStats service;
  WalWriterStats wal;
  uint64_t checkpoints_written = 0;
  uint64_t segments_deleted = 0;
  /// Records accepted but not yet journaled (flushed before the next
  /// sample frame / checkpoint / Stop).
  size_t pending_journal_records = 0;
};

/// Crash-recoverable wrapper around OnlineService: every accepted record,
/// sample, template registration and repair audit event is journaled to a
/// CRC-checksummed segment WAL, and the full service state is periodically
/// checkpointed. Open() on a data dir that died mid-stream (kill -9
/// included) reconstructs the exact pre-crash state — checkpoint first,
/// then the WAL suffix replayed through the normal ingest path — so the
/// recovered service's diagnosis fingerprint is byte-identical to an
/// uninterrupted run over the same durable input. See DESIGN.md §11.
///
/// Processing discipline: all entry points serialize on one mutex, and
/// every sample triggers an Advance(). This fixes the fold/process
/// interleaving to exactly what the WAL records — the property the
/// byte-identical recovery contract rests on (background_pump is forced
/// off for the same reason). Durability of an accepted record follows the
/// fsync policy at the *next sample* frame, since records journal as one
/// batch frame per second.
class DurableOnlineService {
 public:
  /// Opens (creating the directory if needed) and recovers `data_dir`,
  /// then starts the service. `env` defaults to the POSIX filesystem;
  /// tests substitute a fault-injecting Env.
  static StatusOr<std::unique_ptr<DurableOnlineService>> Open(
      const DurableServiceOptions& options, const std::string& data_dir,
      Env* env = nullptr, repair::RepairSupervisor* supervisor = nullptr,
      const core::HistoryProvider* history = nullptr);

  ~DurableOnlineService();

  DurableOnlineService(const DurableOnlineService&) = delete;
  DurableOnlineService& operator=(const DurableOnlineService&) = delete;

  /// Registers a template in the archive catalog and journals it. Use this
  /// instead of archive()->RegisterTemplate so registrations survive a
  /// crash before the next checkpoint.
  void RegisterTemplate(uint64_t sql_id, const TemplateCatalogEntry& entry);

  /// Ingests one record: accepted records are buffered for the journal and
  /// written as one batch frame before the next sample frame. Returns
  /// false when the service dropped it (backpressure) — dropped records
  /// are never journaled, so replay sees exactly the accepted stream.
  bool IngestRecord(const QueryLogRecord& record);

  /// Ingests one per-second sample: journals the pending record batch and
  /// the sample, advances the service through the new watermark second(s),
  /// journals any repair events the advance produced, and takes a periodic
  /// checkpoint when one is due. Returns the diagnosis outcomes completed
  /// by this call.
  std::vector<online::DiagnosisOutcome> IngestMetrics(
      const online::PerfSample& sample);

  /// Graceful drain: stops the service (processing every pending second
  /// and queued diagnosis), flushes and fsyncs the journal, writes a final
  /// checkpoint and closes the WAL. Idempotent.
  Status Stop();

  /// Forces a checkpoint now (also prunes old checkpoints and deletes
  /// aged-out, checkpoint-covered WAL segments).
  Status Checkpoint();

  LogStore* archive() { return service_->archive(); }
  const online::OnlineService& service() const { return *service_; }
  const std::vector<online::DiagnosisOutcome>& outcomes() const {
    return service_->outcomes();
  }

  /// Complete repair audit trail: recovered events plus everything
  /// observed since.
  const std::vector<repair::RepairEvent>& audit() const { return audit_; }

  const RecoveryStats& recovery() const { return recovery_; }
  DurableStats stats() const;

  /// Deterministic digest of every diagnosis produced so far (same shape
  /// as ReplayResult::Fingerprint) — the byte-identical recovery contract
  /// is stated over this digest.
  std::string Fingerprint() const;

 private:
  DurableOnlineService(const DurableServiceOptions& options,
                       std::string data_dir, Env* env);

  Status Recover(repair::RepairSupervisor* supervisor,
                 const core::HistoryProvider* history);
  Status FlushPendingLocked();
  Status CheckpointLocked();
  void JournalNewRepairEventsLocked();

  DurableServiceOptions options_;
  std::string data_dir_;
  Env* env_;

  mutable std::mutex mu_;
  std::unique_ptr<online::OnlineService> service_;
  std::unique_ptr<WalWriter> writer_;
  repair::RepairSupervisor* supervisor_ = nullptr;
  bool stopped_ = false;

  /// Accepted records awaiting their batch frame (journaled before the
  /// next sample frame).
  std::vector<QueryLogRecord> pending_;
  std::vector<repair::RepairEvent> audit_;
  /// Supervisor events already journaled (index into supervisor->events()).
  size_t supervisor_events_seen_ = 0;

  uint64_t checkpoint_counter_ = 0;
  /// Periodic-checkpoint cadence anchor (watermark second of the last
  /// checkpoint, or of recovery / the first sample).
  int64_t last_checkpoint_sec_ = 0;
  bool cadence_anchored_ = false;
  /// LSNs of the retained checkpoints, oldest first: segment deletion must
  /// stay covered by the *oldest* one so any fallback can still replay.
  std::deque<WalPosition> checkpoint_lsns_;
  uint64_t checkpoints_written_ = 0;
  uint64_t segments_deleted_ = 0;

  RecoveryStats recovery_;
};

}  // namespace pinsql::store

#endif  // PINSQL_STORE_DURABLE_SERVICE_H_
