#ifndef PINSQL_STORE_WAL_H_
#define PINSQL_STORE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "logstore/log_store.h"
#include "online/stream_ingestor.h"
#include "repair/events.h"
#include "store/env.h"
#include "util/status.h"

namespace pinsql::store {

/// When the writer fsyncs (see DESIGN.md §11 for the durability matrix).
enum class FsyncPolicy {
  /// fsync after every appended frame batch: a true-returning ingest is
  /// durable against kill -9 *and* power loss.
  kEveryBatch,
  /// fsync every fsync_interval_frames frames: bounded loss on power
  /// failure, no loss on plain process death (the page cache survives).
  kInterval,
  /// Never fsync from the writer (close/rotation still flushes the OS
  /// buffer): durable against process death only.
  kNever,
};

const char* FsyncPolicyName(FsyncPolicy policy);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryBatch;
  /// Frames between fsyncs under FsyncPolicy::kInterval.
  size_t fsync_interval_frames = 64;
  /// A segment is sealed and rotated once it reaches this size.
  uint64_t segment_bytes = 8ull << 20;
  /// Sanity ceiling for one frame; larger length prefixes are corruption.
  uint32_t max_frame_bytes = 64u << 20;
  /// Event-time validation on recovery: within one segment, a frame's
  /// second may precede the segment's first event (or the previous frame)
  /// by at most this grace, and may not exceed the first event by more
  /// than max_segment_span_sec. A CRC-valid frame outside the range is
  /// rejected and counted — a bit pattern that happens to checksum is not
  /// enough to be believed.
  int64_t time_grace_sec = 3600;
  int64_t max_segment_span_sec = 4 * 24 * 3600;
};

enum class FrameKind : uint8_t {
  kRecordBatch = 1,  // one atomically-journaled QueryLogRecord batch
  kSample = 2,       // one per-second PerfSample (advances the clock)
  kTemplate = 3,     // one template catalog registration
  kRepairEvent = 4,  // one supervised-repair audit event
};

/// One decoded WAL frame (tagged by `kind`; only the matching member is
/// meaningful).
struct WalFrame {
  FrameKind kind = FrameKind::kRecordBatch;
  std::vector<QueryLogRecord> records;
  online::PerfSample sample;
  uint64_t template_id = 0;
  TemplateCatalogEntry template_entry;
  repair::RepairEvent event;
};

/// A position in the WAL: (segment sequence number, byte offset within the
/// segment). Checkpoints record the writer position as their LSN; recovery
/// replays only frames at or after it.
struct WalPosition {
  uint64_t segment_seq = 0;
  uint64_t offset = 0;

  bool operator==(const WalPosition& other) const {
    return segment_seq == other.segment_seq && offset == other.offset;
  }
  bool operator<(const WalPosition& other) const {
    if (segment_seq != other.segment_seq) {
      return segment_seq < other.segment_seq;
    }
    return offset < other.offset;
  }
};

/// Encodes the payload of one frame (kind byte + body). Exposed so tests
/// can hand-craft frames (e.g. a CRC-valid frame with an out-of-range
/// timestamp) without going through a writer.
std::string EncodeFramePayload(const WalFrame& frame);

/// Wraps an encoded payload with the on-disk frame header
/// [u32 len][u32 crc32c(payload)].
std::string WrapFrame(std::string payload);

/// Decodes one frame payload; ParseError on unknown kind / malformed body.
StatusOr<WalFrame> DecodeFramePayload(std::string_view payload);

struct WalWriterStats {
  uint64_t bytes_written = 0;
  uint64_t frames_appended = 0;
  uint64_t fsyncs = 0;
  uint64_t fsync_failures = 0;
  uint64_t segments_sealed = 0;
  uint64_t append_failures = 0;
};

/// One sealed (rotated, no longer written) segment still on disk.
struct SealedSegment {
  uint64_t seq = 0;
  std::string path;
  /// Largest event time any frame in the segment carries. INT64_MAX when
  /// the segment held only untimestamped frames (templates): such a
  /// segment never ages out — template registrations are tiny and must
  /// survive as long as any record referencing them might replay.
  int64_t max_event_ms = 0;
  /// Byte size, i.e. the end offset of its last frame.
  uint64_t size = 0;
};

/// Append side of the segment WAL. Single-writer: callers serialize
/// externally (the durable service holds its journal mutex across every
/// append). Append errors from the Env seal the wounded segment and retry
/// the frame once on a fresh one, so a torn write degrades into a
/// recoverable torn segment tail instead of poisoning the stream.
class WalWriter {
 public:
  /// Opens a new segment `wal-<first_seq>.log` in `dir` (which must
  /// exist). Never appends to a pre-existing segment: recovery always
  /// starts a fresh one after the highest sequence it scanned, and opening
  /// truncates any leftover file of the same name (e.g. a torn-header
  /// segment from a crashed incarnation) so stale bytes can never precede
  /// this writer's header.
  static StatusOr<std::unique_ptr<WalWriter>> Open(Env* env, std::string dir,
                                                   const WalOptions& options,
                                                   uint64_t first_seq);

  Status AppendRecordBatch(const std::vector<QueryLogRecord>& records);
  Status AppendSample(const online::PerfSample& sample);
  Status AppendTemplate(uint64_t sql_id, const TemplateCatalogEntry& entry);
  Status AppendRepairEvent(const repair::RepairEvent& event);

  /// Forces an fsync regardless of policy (graceful drain / checkpoint
  /// boundaries).
  Status Sync();

  /// End position of the last appended frame — the LSN a checkpoint taken
  /// now records.
  WalPosition position() const {
    return WalPosition{current_seq_, current_offset_};
  }

  /// Deletes sealed segments whose every event is older than `cutoff_ms`
  /// AND whose sequence is strictly below `covered_lsn.segment_seq` (the
  /// oldest retained checkpoint's LSN, so any fallback checkpoint can
  /// still replay, and the LSN's own segment survives even when the
  /// checkpoint landed exactly at its end). Returns the number of segments
  /// deleted.
  size_t DeleteSealedSegments(int64_t cutoff_ms, const WalPosition& covered_lsn,
                              Env* env);

  /// Adopts prior-incarnation segments (from a recovery scan) into the
  /// sealed set, so retention keeps deleting segments written before the
  /// last crash. Segments at or above this writer's first sequence are
  /// ignored.
  void AdoptSealed(const std::vector<SealedSegment>& segments);

  const std::vector<SealedSegment>& sealed() const { return sealed_; }
  const WalWriterStats& stats() const { return stats_; }

  /// Flushes and closes the current segment (no further appends).
  Status Close();

 private:
  WalWriter(Env* env, std::string dir, const WalOptions& options);

  Status OpenSegment(uint64_t seq);
  Status AppendFrame(const WalFrame& frame, int64_t max_event_ms);
  Status AppendWrapped(const std::string& wrapped, int64_t max_event_ms);
  Status MaybeSync();
  void SealCurrent();

  Env* env_;
  std::string dir_;
  WalOptions options_;

  std::unique_ptr<WritableFile> file_;
  uint64_t current_seq_ = 0;
  uint64_t current_offset_ = 0;
  int64_t current_max_event_ms_ = 0;
  bool current_has_event_ = false;
  size_t frames_since_sync_ = 0;

  std::vector<SealedSegment> sealed_;
  WalWriterStats stats_;
};

/// Accounting of one recovery scan. Every byte of every segment ends up in
/// exactly one bucket: replayed, skipped (below the start LSN), truncated
/// torn tail, or discarded after a hard corruption — bounded, counted data
/// loss, never silent.
struct WalScanStats {
  size_t segments_scanned = 0;
  size_t segments_duplicate_seq = 0;
  size_t segments_invalid_header = 0;
  size_t frames_valid = 0;
  /// CRC mismatches / impossible lengths (includes torn tails).
  size_t frames_corrupt = 0;
  /// CRC-valid frames rejected for an out-of-range event time.
  size_t frames_time_rejected = 0;
  /// Frames that decoded but failed payload validation (unknown kind,
  /// malformed body).
  size_t frames_malformed = 0;
  uint64_t torn_tail_bytes_truncated = 0;
  /// Bytes abandoned after a mid-segment corruption or a sequence gap.
  uint64_t bytes_discarded = 0;
  /// The scan stopped before the physical end of the WAL (mid-segment
  /// corruption, time rejection, or a sequence gap).
  bool stopped_early = false;
  bool seq_gap = false;
  size_t records = 0;
  size_t samples = 0;
  size_t templates = 0;
  size_t repair_events = 0;
  /// Highest segment sequence present on disk (valid header), 0 if none.
  uint64_t last_seq = 0;
  /// Position one past the last frame the scan delivered.
  WalPosition end;
  /// Every scanned segment with its retention metadata, so a recovered
  /// writer can adopt prior-incarnation segments into the sealed set and
  /// retention keeps deleting them.
  std::vector<SealedSegment> segments;
};

using WalFrameFn = std::function<void(const WalFrame&)>;

/// Scans every segment in `dir` in sequence order, validating headers,
/// frame CRCs and event-time ranges, and invokes `fn` for every valid
/// frame at or after `start` (a checkpoint LSN; {0,0} replays everything).
/// A partial or corrupt frame at the tail of a segment is truncated off
/// (the kill -9 case and the torn-write case — the writer re-appends a
/// torn frame to the next segment, so the stream stays contiguous); a
/// corruption with valid bytes after it in the same segment aborts the
/// scan with everything later counted as discarded.
Status ScanWal(Env* env, const std::string& dir, const WalOptions& options,
               const WalPosition& start, const WalFrameFn& fn,
               WalScanStats* stats);

/// Segment file name for a sequence number ("wal-00000000000000000042.log").
std::string SegmentFileName(uint64_t seq);

}  // namespace pinsql::store

#endif  // PINSQL_STORE_WAL_H_
