#include "store/wal.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "store/codec.h"
#include "store/crc32c.h"

namespace pinsql::store {

namespace {

constexpr char kSegmentMagic[8] = {'P', 'S', 'Q', 'L', 'W', 'A', 'L', '1'};
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderSize = 24;  // magic(8) + ver(4) + seq(8) + crc(4)
constexpr size_t kFrameHeaderSize = 8;     // len(4) + crc(4)

std::string EncodeSegmentHeader(uint64_t seq) {
  std::string out;
  codec::Writer w(&out);
  out.append(kSegmentMagic, sizeof(kSegmentMagic));
  w.U32(kSegmentVersion);
  w.U64(seq);
  w.U32(Crc32c(out.data(), out.size()));
  return out;
}

/// Returns the segment sequence, or nullopt when the header is invalid.
std::optional<uint64_t> DecodeSegmentHeader(std::string_view data) {
  if (data.size() < kSegmentHeaderSize) return std::nullopt;
  if (std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return std::nullopt;
  }
  codec::Reader r(data.substr(sizeof(kSegmentMagic),
                              kSegmentHeaderSize - sizeof(kSegmentMagic)));
  uint32_t version = 0;
  uint64_t seq = 0;
  uint32_t crc = 0;
  if (!r.U32(&version) || !r.U64(&seq) || !r.U32(&crc)) return std::nullopt;
  if (version != kSegmentVersion) return std::nullopt;
  if (crc != Crc32c(data.data(), kSegmentHeaderSize - 4)) return std::nullopt;
  return seq;
}

/// Event-time span of one frame in milliseconds. Used both for the
/// recovery range check and for the sealed-segment retention metadata.
struct EventSpan {
  int64_t lo_ms;
  int64_t hi_ms;
};

enum class SpanStatus {
  kNone,     // untimestamped kind (templates)
  kOk,       // *span holds the frame's event-time range
  kInvalid,  // timestamp cannot be represented in int64 milliseconds
};

/// Largest |seconds| that survives a *1000 without signed overflow, and a
/// double bound strictly inside int64 range (a CRC-valid but corrupt frame
/// can carry any bit pattern; the arithmetic must reject it before UB).
constexpr int64_t kMaxEventSec = std::numeric_limits<int64_t>::max() / 1000;
constexpr double kMaxEventMsDouble = 9.0e18;

SpanStatus FrameEventSpan(const WalFrame& frame, EventSpan* span) {
  switch (frame.kind) {
    case FrameKind::kRecordBatch: {
      if (frame.records.empty()) return SpanStatus::kNone;
      int64_t lo = frame.records.front().arrival_ms;
      int64_t hi = lo;
      for (const QueryLogRecord& record : frame.records) {
        lo = std::min(lo, record.arrival_ms);
        hi = std::max(hi, record.arrival_ms);
      }
      *span = EventSpan{lo, hi};
      return SpanStatus::kOk;
    }
    case FrameKind::kSample: {
      const int64_t sec = frame.sample.sec;
      if (sec < -kMaxEventSec || sec > kMaxEventSec) {
        return SpanStatus::kInvalid;
      }
      *span = EventSpan{sec * 1000, sec * 1000};
      return SpanStatus::kOk;
    }
    case FrameKind::kRepairEvent: {
      const double time_ms = frame.event.time_ms;
      // The negated comparison also rejects NaN.
      if (!(time_ms >= -kMaxEventMsDouble && time_ms <= kMaxEventMsDouble)) {
        return SpanStatus::kInvalid;
      }
      const int64_t ms = static_cast<int64_t>(time_ms);
      *span = EventSpan{ms, ms};
      return SpanStatus::kOk;
    }
    case FrameKind::kTemplate:
      return SpanStatus::kNone;
  }
  return SpanStatus::kNone;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryBatch:
      return "every_batch";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

std::string SegmentFileName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string EncodeFramePayload(const WalFrame& frame) {
  std::string out;
  codec::Writer w(&out);
  w.U8(static_cast<uint8_t>(frame.kind));
  switch (frame.kind) {
    case FrameKind::kRecordBatch:
      w.U32(static_cast<uint32_t>(frame.records.size()));
      for (const QueryLogRecord& record : frame.records) {
        w.I64(record.arrival_ms);
        w.F64(record.response_ms);
        w.U64(record.sql_id);
        w.I64(record.examined_rows);
      }
      break;
    case FrameKind::kSample:
      w.I64(frame.sample.sec);
      w.F64(frame.sample.active_session);
      w.F64(frame.sample.cpu_usage);
      w.F64(frame.sample.iops_usage);
      w.F64(frame.sample.row_lock_waits);
      w.F64(frame.sample.mdl_waits);
      break;
    case FrameKind::kTemplate:
      w.U64(frame.template_id);
      w.Str(frame.template_entry.template_text);
      w.U8(static_cast<uint8_t>(frame.template_entry.kind));
      w.U32(static_cast<uint32_t>(frame.template_entry.tables.size()));
      for (const std::string& table : frame.template_entry.tables) {
        w.Str(table);
      }
      break;
    case FrameKind::kRepairEvent:
      w.F64(frame.event.time_ms);
      // Kind/action travel as their stable names, so a decode validates
      // against the enum instead of trusting a raw byte.
      w.Str(repair::RepairEventKindName(frame.event.kind));
      w.Str(repair::ActionTypeName(frame.event.action));
      w.U64(frame.event.sql_id);
      w.U64(frame.event.ticket);
      w.I64(frame.event.attempt);
      w.Str(frame.event.detail);
      break;
  }
  return out;
}

std::string WrapFrame(std::string payload) {
  std::string out;
  codec::Writer w(&out);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32c(payload));
  out += payload;
  return out;
}

StatusOr<WalFrame> DecodeFramePayload(std::string_view payload) {
  codec::Reader r(payload);
  uint8_t kind = 0;
  if (!r.U8(&kind)) return Status::ParseError("empty frame payload");
  WalFrame frame;
  switch (static_cast<FrameKind>(kind)) {
    case FrameKind::kRecordBatch: {
      frame.kind = FrameKind::kRecordBatch;
      uint32_t n = 0;
      if (!r.U32(&n)) return Status::ParseError("record batch: no count");
      // 32 bytes per record: reject counts the payload cannot hold before
      // reserving anything.
      if (static_cast<uint64_t>(n) * 32 > r.remaining()) {
        return Status::ParseError("record batch: count exceeds payload");
      }
      frame.records.resize(n);
      for (QueryLogRecord& record : frame.records) {
        if (!r.I64(&record.arrival_ms) || !r.F64(&record.response_ms) ||
            !r.U64(&record.sql_id) || !r.I64(&record.examined_rows)) {
          return Status::ParseError("record batch: truncated record");
        }
      }
      break;
    }
    case FrameKind::kSample:
      frame.kind = FrameKind::kSample;
      if (!r.I64(&frame.sample.sec) || !r.F64(&frame.sample.active_session) ||
          !r.F64(&frame.sample.cpu_usage) ||
          !r.F64(&frame.sample.iops_usage) ||
          !r.F64(&frame.sample.row_lock_waits) ||
          !r.F64(&frame.sample.mdl_waits)) {
        return Status::ParseError("sample: truncated");
      }
      break;
    case FrameKind::kTemplate: {
      frame.kind = FrameKind::kTemplate;
      uint8_t stmt_kind = 0;
      uint32_t num_tables = 0;
      if (!r.U64(&frame.template_id) ||
          !r.Str(&frame.template_entry.template_text) || !r.U8(&stmt_kind) ||
          !r.U32(&num_tables)) {
        return Status::ParseError("template: truncated");
      }
      if (stmt_kind > static_cast<uint8_t>(sqltpl::StatementKind::kOther)) {
        return Status::ParseError("template: unknown statement kind");
      }
      frame.template_entry.kind = static_cast<sqltpl::StatementKind>(stmt_kind);
      if (static_cast<uint64_t>(num_tables) * 8 > r.remaining()) {
        return Status::ParseError("template: table count exceeds payload");
      }
      frame.template_entry.tables.resize(num_tables);
      for (std::string& table : frame.template_entry.tables) {
        if (!r.Str(&table)) return Status::ParseError("template: bad table");
      }
      break;
    }
    case FrameKind::kRepairEvent: {
      frame.kind = FrameKind::kRepairEvent;
      std::string kind_name, action_name;
      int64_t attempt = 0;
      if (!r.F64(&frame.event.time_ms) || !r.Str(&kind_name) ||
          !r.Str(&action_name) || !r.U64(&frame.event.sql_id) ||
          !r.U64(&frame.event.ticket) || !r.I64(&attempt) ||
          !r.Str(&frame.event.detail)) {
        return Status::ParseError("repair event: truncated");
      }
      if (!repair::RepairEventKindFromName(kind_name, &frame.event.kind)) {
        return Status::ParseError("repair event: unknown kind " + kind_name);
      }
      if (!repair::ActionTypeFromName(action_name, &frame.event.action)) {
        return Status::ParseError("repair event: unknown action " +
                                  action_name);
      }
      frame.event.attempt = static_cast<int>(attempt);
      break;
    }
    default:
      return Status::ParseError("unknown frame kind " + std::to_string(kind));
  }
  if (!r.exhausted()) {
    return Status::ParseError("frame payload has trailing bytes");
  }
  return frame;
}

// --------------------------------------------------------------------------
// WalWriter

WalWriter::WalWriter(Env* env, std::string dir, const WalOptions& options)
    : env_(env), dir_(std::move(dir)), options_(options) {}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env, std::string dir,
                                                     const WalOptions& options,
                                                     uint64_t first_seq) {
  std::unique_ptr<WalWriter> writer(
      new WalWriter(env, std::move(dir), options));
  // Sequence 0 is the scanner's "no segment" sentinel; real segments start
  // at 1.
  if (first_seq == 0) first_seq = 1;
  if (Status status = writer->OpenSegment(first_seq); !status.ok()) {
    return status;
  }
  return writer;
}

Status WalWriter::OpenSegment(uint64_t seq) {
  const std::string path = dir_ + "/" + SegmentFileName(seq);
  auto file = env_->NewWritableFile(path);
  if (!file.ok()) return file.status();
  file_ = std::move(file).value();
  current_seq_ = seq;
  current_offset_ = 0;
  current_max_event_ms_ = 0;
  current_has_event_ = false;
  const std::string header = EncodeSegmentHeader(seq);
  if (Status status = file_->Append(header); !status.ok()) return status;
  current_offset_ = header.size();
  stats_.bytes_written += header.size();
  return Status::OK();
}

void WalWriter::SealCurrent() {
  if (file_ == nullptr) return;
  file_->Close();
  SealedSegment sealed;
  sealed.seq = current_seq_;
  sealed.path = dir_ + "/" + SegmentFileName(current_seq_);
  sealed.max_event_ms = current_has_event_
                            ? current_max_event_ms_
                            : std::numeric_limits<int64_t>::max();
  sealed.size = current_offset_;
  sealed_.push_back(std::move(sealed));
  ++stats_.segments_sealed;
  PINSQL_OBS_COUNT("store.wal_segments_sealed", 1);
  file_ = nullptr;
}

Status WalWriter::AppendWrapped(const std::string& wrapped,
                                int64_t max_event_ms) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  if (current_offset_ + wrapped.size() > options_.segment_bytes &&
      current_offset_ > kSegmentHeaderSize) {
    SealCurrent();
    if (Status status = OpenSegment(current_seq_ + 1); !status.ok()) {
      return status;
    }
  }
  Status status = file_->Append(wrapped);
  if (!status.ok()) {
    // The segment tail is now suspect (possibly torn). Seal it at the last
    // known-good offset and retry the whole frame on a fresh segment:
    // recovery truncates the torn bytes and the stream stays contiguous.
    ++stats_.append_failures;
    SealCurrent();
    if (Status reopen = OpenSegment(current_seq_ + 1); !reopen.ok()) {
      return reopen;
    }
    status = file_->Append(wrapped);
    if (!status.ok()) return status;
  }
  current_offset_ += wrapped.size();
  stats_.bytes_written += wrapped.size();
  ++stats_.frames_appended;
  if (max_event_ms != std::numeric_limits<int64_t>::min()) {
    current_max_event_ms_ = current_has_event_
                                ? std::max(current_max_event_ms_, max_event_ms)
                                : max_event_ms;
    current_has_event_ = true;
  }
  PINSQL_OBS_COUNT("store.wal_bytes_written",
                   static_cast<uint64_t>(wrapped.size()));
  return MaybeSync();
}

Status WalWriter::AppendFrame(const WalFrame& frame, int64_t max_event_ms) {
  return AppendWrapped(WrapFrame(EncodeFramePayload(frame)), max_event_ms);
}

Status WalWriter::AppendRecordBatch(
    const std::vector<QueryLogRecord>& records) {
  if (records.empty()) return Status::OK();
  WalFrame frame;
  frame.kind = FrameKind::kRecordBatch;
  frame.records = records;
  EventSpan span{0, 0};
  FrameEventSpan(frame, &span);  // non-empty batch always has a span
  return AppendFrame(frame, span.hi_ms);
}

Status WalWriter::AppendSample(const online::PerfSample& sample) {
  WalFrame frame;
  frame.kind = FrameKind::kSample;
  frame.sample = sample;
  EventSpan span{0, 0};
  const int64_t max_event_ms = FrameEventSpan(frame, &span) == SpanStatus::kOk
                                   ? span.hi_ms
                                   : std::numeric_limits<int64_t>::min();
  return AppendFrame(frame, max_event_ms);
}

Status WalWriter::AppendTemplate(uint64_t sql_id,
                                 const TemplateCatalogEntry& entry) {
  WalFrame frame;
  frame.kind = FrameKind::kTemplate;
  frame.template_id = sql_id;
  frame.template_entry = entry;
  return AppendFrame(frame, std::numeric_limits<int64_t>::min());
}

Status WalWriter::AppendRepairEvent(const repair::RepairEvent& event) {
  WalFrame frame;
  frame.kind = FrameKind::kRepairEvent;
  frame.event = event;
  EventSpan span{0, 0};
  const int64_t max_event_ms = FrameEventSpan(frame, &span) == SpanStatus::kOk
                                   ? span.hi_ms
                                   : std::numeric_limits<int64_t>::min();
  return AppendFrame(frame, max_event_ms);
}

Status WalWriter::MaybeSync() {
  bool want_sync = false;
  switch (options_.fsync) {
    case FsyncPolicy::kEveryBatch:
      want_sync = true;
      break;
    case FsyncPolicy::kInterval:
      want_sync = ++frames_since_sync_ >= options_.fsync_interval_frames;
      break;
    case FsyncPolicy::kNever:
      break;
  }
  if (!want_sync) return Status::OK();
  return Sync();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::OK();
  frames_since_sync_ = 0;
  ++stats_.fsyncs;
  PINSQL_OBS_COUNT("store.wal_fsyncs", 1);
  Status status = file_->Sync();
  if (!status.ok()) {
    // Degraded durability, not a stream error: the bytes are written and
    // survive process death; only power-loss durability weakened. Counted,
    // surfaced in stats, and the caller's data path keeps flowing.
    ++stats_.fsync_failures;
    PINSQL_OBS_COUNT("store.wal_fsync_failures", 1);
  }
  return status;
}

void WalWriter::AdoptSealed(const std::vector<SealedSegment>& segments) {
  for (const SealedSegment& segment : segments) {
    if (segment.seq >= current_seq_) continue;
    sealed_.push_back(segment);
  }
}

size_t WalWriter::DeleteSealedSegments(int64_t cutoff_ms,
                                       const WalPosition& covered_lsn,
                                       Env* env) {
  size_t deleted = 0;
  std::vector<SealedSegment> kept;
  kept.reserve(sealed_.size());
  for (SealedSegment& segment : sealed_) {
    const bool aged_out = segment.max_event_ms < cutoff_ms;
    // Strictly below the covered LSN's segment: the LSN's own segment must
    // survive even when the checkpoint landed exactly at its end, or a
    // recovery from that checkpoint finds its start below the oldest
    // segment on disk and falsely reports a sequence gap.
    const bool covered = segment.seq < covered_lsn.segment_seq;
    if (aged_out && covered && env->DeleteFile(segment.path).ok()) {
      ++deleted;
      PINSQL_OBS_COUNT("store.wal_segments_deleted", 1);
      continue;
    }
    kept.push_back(std::move(segment));
  }
  sealed_ = std::move(kept);
  return deleted;
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status status = Sync();
  SealCurrent();
  return status;
}

// --------------------------------------------------------------------------
// ScanWal

Status ScanWal(Env* env, const std::string& dir, const WalOptions& options,
               const WalPosition& start, const WalFrameFn& fn,
               WalScanStats* stats) {
  *stats = WalScanStats{};
  stats->end = start;

  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();

  // Map sequence -> file name, validating headers. Duplicate sequences keep
  // the lexicographically first name; the rest are counted and ignored.
  std::map<uint64_t, std::string> by_seq;
  std::vector<std::string> candidates;
  for (const std::string& name : *names) {
    if (name.size() == SegmentFileName(0).size() &&
        name.compare(0, 4, "wal-") == 0 &&
        name.compare(name.size() - 4, 4, ".log") == 0) {
      candidates.push_back(name);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  std::map<uint64_t, std::string> contents;  // seq -> file bytes
  for (const std::string& name : candidates) {
    const std::string path = dir + "/" + name;
    std::string data;
    if (Status status = env->ReadFile(path, &data); !status.ok()) {
      ++stats->segments_invalid_header;
      continue;
    }
    const auto seq = DecodeSegmentHeader(data);
    if (!seq.has_value() || *seq == 0) {
      ++stats->segments_invalid_header;
      stats->bytes_discarded += data.size();
      continue;
    }
    if (by_seq.count(*seq) != 0) {
      ++stats->segments_duplicate_seq;
      stats->bytes_discarded += data.size();
      continue;
    }
    by_seq[*seq] = name;
    contents[*seq] = std::move(data);
  }

  if (by_seq.empty()) return Status::OK();
  stats->last_seq = by_seq.rbegin()->first;
  // Frames below the start LSN were already folded into the checkpoint; a
  // start LSN below the oldest surviving segment means an intermediate
  // deletion outran the checkpoint we recovered from (data loss, counted
  // as a gap). Likewise a from-scratch scan ({0,0}: no checkpoint) that
  // finds no segment 1: the stream's base is gone — only retention guarded
  // by a checkpoint may legitimately remove it.
  if (start == WalPosition{}) {
    if (by_seq.begin()->first != 1) stats->seq_gap = true;
  } else if (start.segment_seq < by_seq.begin()->first) {
    stats->seq_gap = true;
  }

  uint64_t prev_seq = 0;
  bool aborted = false;
  for (auto it = by_seq.begin(); it != by_seq.end(); ++it) {
    const uint64_t seq = it->first;
    const std::string& data = contents[seq];
    if (aborted) {
      stats->bytes_discarded += data.size();
      continue;
    }
    if (prev_seq != 0 && seq != prev_seq + 1) {
      // A hole in the sequence: everything after it cannot be trusted to be
      // contiguous with the replayed prefix.
      stats->seq_gap = true;
      stats->stopped_early = true;
      aborted = true;
      stats->bytes_discarded += data.size();
      continue;
    }
    prev_seq = seq;
    ++stats->segments_scanned;
    const bool last_segment = std::next(it) == by_seq.end();
    const std::string path = dir + "/" + it->second;

    uint64_t off = kSegmentHeaderSize;
    if (seq == start.segment_seq && start.offset > off) {
      off = std::min<uint64_t>(start.offset, data.size());
    }
    // Event-time validation state, per segment.
    bool seg_has_t0 = false;
    int64_t seg_t0_sec = 0;
    int64_t prev_hi_sec = 0;
    // Retention metadata for the segment record below.
    bool seg_has_event = false;
    int64_t seg_max_event_ms = 0;
    bool seg_done = false;
    while (!seg_done && off < data.size()) {
      const uint64_t remaining = data.size() - off;
      uint32_t len = 0, crc = 0;
      bool frame_ok = remaining >= kFrameHeaderSize;
      if (frame_ok) {
        codec::Reader r(std::string_view(data).substr(off, kFrameHeaderSize));
        r.U32(&len);
        r.U32(&crc);
        frame_ok = len > 0 && len <= options.max_frame_bytes &&
                   kFrameHeaderSize + len <= remaining;
      }
      std::string_view payload;
      if (frame_ok) {
        payload = std::string_view(data).substr(off + kFrameHeaderSize, len);
        frame_ok = Crc32c(payload) == crc;
      }
      if (!frame_ok) {
        // Torn or corrupt frame. In the newest segment this is the normal
        // kill -9 tail: physically truncate so a later recovery starts
        // clean. Mid-WAL, the writer re-appended any torn frame to the next
        // segment, so skipping the rest of this one keeps the stream
        // contiguous; a genuine mid-segment bit flip costs the rest of the
        // segment, counted.
        ++stats->frames_corrupt;
        if (last_segment) {
          stats->torn_tail_bytes_truncated += remaining;
          env->TruncateFile(path, off);
        } else {
          stats->bytes_discarded += remaining;
        }
        seg_done = true;
        break;
      }

      auto decoded = DecodeFramePayload(payload);
      if (!decoded.ok()) {
        ++stats->frames_malformed;
        stats->bytes_discarded += remaining;
        seg_done = true;
        break;
      }
      const WalFrame& frame = *decoded;

      EventSpan span{0, 0};
      const SpanStatus span_status = FrameEventSpan(frame, &span);
      if (span_status != SpanStatus::kNone) {
        bool in_range = span_status == SpanStatus::kOk;
        if (in_range && seg_has_t0) {
          const int64_t lo_sec = span.lo_ms / 1000;
          const int64_t hi_sec = span.hi_ms / 1000;
          in_range = lo_sec >= seg_t0_sec - options.time_grace_sec &&
                     hi_sec <= seg_t0_sec + options.max_segment_span_sec &&
                     lo_sec >= prev_hi_sec - options.time_grace_sec;
        }
        if (!in_range) {
          // CRC-valid but chronologically impossible — out of the segment's
          // plausible window, or a timestamp that doesn't even fit int64
          // milliseconds: reject the frame and abandon the rest of the
          // segment (counted, never replayed).
          ++stats->frames_time_rejected;
          stats->bytes_discarded += remaining;
          stats->stopped_early = true;
          seg_done = true;
          break;
        }
        if (!seg_has_t0) {
          seg_has_t0 = true;
          seg_t0_sec = span.lo_ms / 1000;
          prev_hi_sec = span.hi_ms / 1000;
        } else {
          prev_hi_sec = std::max(prev_hi_sec, span.hi_ms / 1000);
        }
        seg_max_event_ms =
            seg_has_event ? std::max(seg_max_event_ms, span.hi_ms) : span.hi_ms;
        seg_has_event = true;
      }

      off += kFrameHeaderSize + len;
      ++stats->frames_valid;
      switch (frame.kind) {
        case FrameKind::kRecordBatch:
          stats->records += frame.records.size();
          break;
        case FrameKind::kSample:
          ++stats->samples;
          break;
        case FrameKind::kTemplate:
          ++stats->templates;
          break;
        case FrameKind::kRepairEvent:
          ++stats->repair_events;
          break;
      }
      const WalPosition pos{seq, off};
      if (start < pos) {
        fn(frame);
        stats->end = pos;
      }
    }
    SealedSegment meta;
    meta.seq = seq;
    meta.path = path;
    meta.max_event_ms = seg_has_event ? seg_max_event_ms
                                      : std::numeric_limits<int64_t>::max();
    meta.size = off;
    stats->segments.push_back(std::move(meta));
  }
  return Status::OK();
}

}  // namespace pinsql::store
