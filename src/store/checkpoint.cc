#include "store/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/report.h"
#include "obs/metrics.h"
#include "store/codec.h"
#include "store/crc32c.h"
#include "util/json.h"

namespace pinsql::store {

namespace {

constexpr char kCheckpointMagic[8] = {'P', 'S', 'Q', 'L', 'C', 'K', 'P', '1'};
// v2: ensemble-backed detector state (forecaster snapshots, gap-reset
// counters) and trigger source attribution. v1 checkpoints fail the
// version check and recovery falls back to the WAL, which replays into
// the new format.
constexpr uint32_t kCheckpointVersion = 2;
// magic(8) + version(4) at the front, crc(4) at the back.
constexpr size_t kCheckpointOverhead = 16;

// ---------------------------------------------------------------------------
// Encode

void EncodeRecord(codec::Writer* w, const QueryLogRecord& record) {
  w->I64(record.arrival_ms);
  w->F64(record.response_ms);
  w->U64(record.sql_id);
  w->I64(record.examined_rows);
}

void EncodeSample(codec::Writer* w, const online::PerfSample& sample) {
  w->I64(sample.sec);
  w->F64(sample.active_session);
  w->F64(sample.cpu_usage);
  w->F64(sample.iops_usage);
  w->F64(sample.row_lock_waits);
  w->F64(sample.mdl_waits);
}

void EncodeIngestor(codec::Writer* w, const online::IngestorState& state) {
  w->U64(state.shards.size());
  for (const online::IngestorShardState& shard : state.shards) {
    w->U64(shard.queue.size());
    for (const QueryLogRecord& record : shard.queue) EncodeRecord(w, record);
    w->U64(shard.enqueued);
    w->U64(shard.dropped_backpressure);
    w->U64(shard.folded);
    w->U64(shard.dropped_late);
    w->U64(shard.buckets.size());
    for (const online::IngestorBucketState& bucket : shard.buckets) {
      w->I64(bucket.sec);
      w->U64(bucket.cells.size());
      for (const online::IngestorCellState& cell : bucket.cells) {
        w->U64(cell.sql_id);
        w->F64(cell.count);
        w->F64(cell.total_response_ms);
        w->F64(cell.examined_rows);
      }
    }
  }
  w->U64(state.metric_buckets.size());
  for (const online::IngestorMetricBucketState& bucket : state.metric_buckets) {
    w->I64(bucket.sec);
    EncodeSample(w, bucket.sample);
  }
  w->U64(state.metric_samples);
  w->U64(state.metric_samples_dropped);
  w->I64(state.watermark);
}

void EncodeScreenSnapshot(codec::Writer* w,
                          const anomaly::StreamingDetectorSnapshot& screen) {
  w->U64(screen.clean.size());
  for (double v : screen.clean) w->F64(v);
  w->F64(screen.baseline_median);
  w->F64(screen.baseline_mad);
  w->Bool(screen.baseline_fresh);
  w->Bool(screen.in_run);
  w->Bool(screen.run_up);
  w->U64(screen.run_start);
  w->F64(screen.run_peak);
  w->F64(screen.last_z);
  w->U64(screen.count);
  w->I64(screen.start_time);
  w->I64(screen.interval_sec);
}

void EncodeForecast(codec::Writer* w, const detect::ForecastSnapshot& fc) {
  w->U32(static_cast<uint32_t>(fc.method));
  w->U64(fc.count);
  w->F64(fc.mad);
  w->F64(fc.cusum);
  w->U64(fc.cusum_start);
  w->U64(fc.cusum_anchor);
  w->Bool(fc.cusum_anchor_set);
  w->F64(fc.block_sum);
  w->U64(fc.block_n);
  w->Bool(fc.in_run);
  w->Bool(fc.run_up);
  w->Bool(fc.drift_run);
  w->U64(fc.run_start);
  w->F64(fc.run_peak);
  w->F64(fc.last_z);
  w->I64(fc.start_time);
  w->I64(fc.interval_sec);
  w->U64(fc.model.size());
  for (double v : fc.model) w->F64(v);
}

void EncodeDetector(codec::Writer* w, const online::OnlineDetectorState& state) {
  const detect::EnsembleSnapshot& ensemble = state.ensemble;
  w->Bool(ensemble.initialized);
  w->Bool(ensemble.screen_present);
  EncodeScreenSnapshot(w, ensemble.screen);
  w->U64(ensemble.trailing.size());
  for (double v : ensemble.trailing) w->F64(v);
  w->Bool(ensemble.fired_this_incident);
  w->U64(ensemble.pettitt_rejections);
  w->U64(ensemble.forecasters.size());
  for (const detect::ForecastSnapshot& fc : ensemble.forecasters) {
    EncodeForecast(w, fc);
  }
  w->F64(state.last_finite);
  w->Bool(state.seen_finite);
  w->U64(state.consecutive_gaps);
  w->U64(state.latencies.size());
  for (int64_t v : state.latencies) w->I64(v);
  w->U64(state.stats.samples);
  w->U64(state.stats.gaps_carried);
  w->U64(state.stats.gaps_skipped);
  w->U64(state.stats.triggers);
  w->U64(state.stats.pettitt_rejections);
  w->U64(state.stats.baseline_resets);
}

void EncodeTrigger(codec::Writer* w, const online::AnomalyTrigger& trigger) {
  w->U32(trigger.instance_id);
  w->I64(trigger.onset_sec);
  w->I64(trigger.trigger_sec);
  w->F64(trigger.severity);
  w->F64(trigger.pettitt_p);
  w->Str(trigger.source);
}

void EncodeScheduler(codec::Writer* w, const online::SchedulerState& state) {
  w->U64(state.pending.size());
  for (const online::SchedulerPendingState& pending : state.pending) {
    EncodeTrigger(w, pending.trigger);
    w->I64(pending.due_sec);
  }
  w->U64(state.dedup_activity.size());
  for (const auto& [instance_id, sec] : state.dedup_activity) {
    w->U32(instance_id);
    w->I64(sec);
  }
  w->U64(state.stats.triggers_accepted);
  w->U64(state.stats.triggers_suppressed);
  w->U64(state.stats.diagnoses_ok);
  w->U64(state.stats.diagnoses_failed);
  w->U64(state.stats.repairs_applied);
  w->U64(state.stats.repairs_rejected);
  w->U64(state.outcomes.size());
  for (const online::DiagnosisOutcome& outcome : state.outcomes) {
    EncodeTrigger(w, outcome.trigger);
    w->Bool(outcome.ok);
    w->Str(outcome.error);
    // The report round-trips byte-exactly through its JSON form (see
    // report_test), so the checkpoint reuses it instead of a second binary
    // schema for the deepest struct in the repo.
    w->Str(outcome.report.ToJson().Dump());
    w->U64(outcome.confirmed_rsqls.size());
    for (uint64_t id : outcome.confirmed_rsqls) w->U64(id);
    w->U64(outcome.repairs_applied);
    w->F64(outcome.ttr_sec);
  }
}

void EncodeRepairEvent(codec::Writer* w, const repair::RepairEvent& event) {
  w->F64(event.time_ms);
  w->Str(repair::RepairEventKindName(event.kind));
  w->Str(repair::ActionTypeName(event.action));
  w->U64(event.sql_id);
  w->U64(event.ticket);
  w->I64(event.attempt);
  w->Str(event.detail);
}

// ---------------------------------------------------------------------------
// Decode

/// Guards a decoded element count against the bytes actually left: a count
/// whose minimum encoding cannot fit the remaining payload is corruption,
/// rejected before any allocation.
bool PlausibleCount(const codec::Reader& r, uint64_t count,
                    size_t min_elem_bytes) {
  return count <= r.remaining() / min_elem_bytes;
}

bool DecodeRecord(codec::Reader* r, QueryLogRecord* record) {
  return r->I64(&record->arrival_ms) && r->F64(&record->response_ms) &&
         r->U64(&record->sql_id) && r->I64(&record->examined_rows);
}

bool DecodeSample(codec::Reader* r, online::PerfSample* sample) {
  return r->I64(&sample->sec) && r->F64(&sample->active_session) &&
         r->F64(&sample->cpu_usage) && r->F64(&sample->iops_usage) &&
         r->F64(&sample->row_lock_waits) && r->F64(&sample->mdl_waits);
}

bool DecodeIngestor(codec::Reader* r, online::IngestorState* state) {
  uint64_t num_shards = 0;
  if (!r->U64(&num_shards) || !PlausibleCount(*r, num_shards, 48)) {
    return false;
  }
  state->shards.resize(num_shards);
  for (online::IngestorShardState& shard : state->shards) {
    uint64_t queue_size = 0;
    if (!r->U64(&queue_size) || !PlausibleCount(*r, queue_size, 32)) {
      return false;
    }
    shard.queue.resize(queue_size);
    for (QueryLogRecord& record : shard.queue) {
      if (!DecodeRecord(r, &record)) return false;
    }
    if (!r->U64(&shard.enqueued) || !r->U64(&shard.dropped_backpressure) ||
        !r->U64(&shard.folded) || !r->U64(&shard.dropped_late)) {
      return false;
    }
    uint64_t num_buckets = 0;
    if (!r->U64(&num_buckets) || !PlausibleCount(*r, num_buckets, 16)) {
      return false;
    }
    shard.buckets.resize(num_buckets);
    for (online::IngestorBucketState& bucket : shard.buckets) {
      uint64_t num_cells = 0;
      if (!r->I64(&bucket.sec) || !r->U64(&num_cells) ||
          !PlausibleCount(*r, num_cells, 32)) {
        return false;
      }
      bucket.cells.resize(num_cells);
      for (online::IngestorCellState& cell : bucket.cells) {
        if (!r->U64(&cell.sql_id) || !r->F64(&cell.count) ||
            !r->F64(&cell.total_response_ms) || !r->F64(&cell.examined_rows)) {
          return false;
        }
      }
    }
  }
  uint64_t num_metric_buckets = 0;
  if (!r->U64(&num_metric_buckets) ||
      !PlausibleCount(*r, num_metric_buckets, 56)) {
    return false;
  }
  state->metric_buckets.resize(num_metric_buckets);
  for (online::IngestorMetricBucketState& bucket : state->metric_buckets) {
    if (!r->I64(&bucket.sec) || !DecodeSample(r, &bucket.sample)) return false;
  }
  return r->U64(&state->metric_samples) &&
         r->U64(&state->metric_samples_dropped) && r->I64(&state->watermark);
}

bool DecodeU64Counter(codec::Reader* r, size_t* out) {
  uint64_t v = 0;
  if (!r->U64(&v)) return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool DecodeScreenSnapshot(codec::Reader* r,
                          anomaly::StreamingDetectorSnapshot* screen) {
  uint64_t clean_size = 0;
  if (!r->U64(&clean_size) || !PlausibleCount(*r, clean_size, 8)) return false;
  screen->clean.resize(clean_size);
  for (double& v : screen->clean) {
    if (!r->F64(&v)) return false;
  }
  return r->F64(&screen->baseline_median) && r->F64(&screen->baseline_mad) &&
         r->Bool(&screen->baseline_fresh) && r->Bool(&screen->in_run) &&
         r->Bool(&screen->run_up) && r->U64(&screen->run_start) &&
         r->F64(&screen->run_peak) && r->F64(&screen->last_z) &&
         r->U64(&screen->count) && r->I64(&screen->start_time) &&
         r->I64(&screen->interval_sec);
}

bool DecodeForecast(codec::Reader* r, detect::ForecastSnapshot* fc) {
  uint32_t method = 0;
  if (!r->U32(&method) || method > 3) return false;
  fc->method = static_cast<detect::ForecastMethod>(method);
  if (!r->U64(&fc->count) || !r->F64(&fc->mad) || !r->F64(&fc->cusum) ||
      !r->U64(&fc->cusum_start) || !r->U64(&fc->cusum_anchor) ||
      !r->Bool(&fc->cusum_anchor_set) || !r->F64(&fc->block_sum) ||
      !r->U64(&fc->block_n) || !r->Bool(&fc->in_run) ||
      !r->Bool(&fc->run_up) || !r->Bool(&fc->drift_run) ||
      !r->U64(&fc->run_start) || !r->F64(&fc->run_peak) ||
      !r->F64(&fc->last_z) || !r->I64(&fc->start_time) ||
      !r->I64(&fc->interval_sec)) {
    return false;
  }
  uint64_t model_size = 0;
  if (!r->U64(&model_size) || !PlausibleCount(*r, model_size, 8)) {
    return false;
  }
  fc->model.resize(model_size);
  for (double& v : fc->model) {
    if (!r->F64(&v)) return false;
  }
  return true;
}

bool DecodeDetector(codec::Reader* r, online::OnlineDetectorState* state) {
  detect::EnsembleSnapshot& ensemble = state->ensemble;
  if (!r->Bool(&ensemble.initialized) || !r->Bool(&ensemble.screen_present) ||
      !DecodeScreenSnapshot(r, &ensemble.screen)) {
    return false;
  }
  uint64_t trailing_size = 0;
  if (!r->U64(&trailing_size) || !PlausibleCount(*r, trailing_size, 8)) {
    return false;
  }
  ensemble.trailing.resize(trailing_size);
  for (double& v : ensemble.trailing) {
    if (!r->F64(&v)) return false;
  }
  if (!r->Bool(&ensemble.fired_this_incident) ||
      !r->U64(&ensemble.pettitt_rejections)) {
    return false;
  }
  uint64_t num_forecasters = 0;
  if (!r->U64(&num_forecasters) || !PlausibleCount(*r, num_forecasters, 80)) {
    return false;
  }
  ensemble.forecasters.resize(num_forecasters);
  for (detect::ForecastSnapshot& fc : ensemble.forecasters) {
    if (!DecodeForecast(r, &fc)) return false;
  }
  if (!r->F64(&state->last_finite) || !r->Bool(&state->seen_finite) ||
      !r->U64(&state->consecutive_gaps)) {
    return false;
  }
  uint64_t latencies_size = 0;
  if (!r->U64(&latencies_size) || !PlausibleCount(*r, latencies_size, 8)) {
    return false;
  }
  state->latencies.resize(latencies_size);
  for (int64_t& v : state->latencies) {
    if (!r->I64(&v)) return false;
  }
  return DecodeU64Counter(r, &state->stats.samples) &&
         DecodeU64Counter(r, &state->stats.gaps_carried) &&
         DecodeU64Counter(r, &state->stats.gaps_skipped) &&
         DecodeU64Counter(r, &state->stats.triggers) &&
         DecodeU64Counter(r, &state->stats.pettitt_rejections) &&
         DecodeU64Counter(r, &state->stats.baseline_resets);
}

bool DecodeTrigger(codec::Reader* r, online::AnomalyTrigger* trigger) {
  return r->U32(&trigger->instance_id) && r->I64(&trigger->onset_sec) &&
         r->I64(&trigger->trigger_sec) && r->F64(&trigger->severity) &&
         r->F64(&trigger->pettitt_p) && r->Str(&trigger->source);
}

bool DecodeScheduler(codec::Reader* r, online::SchedulerState* state) {
  uint64_t num_pending = 0;
  if (!r->U64(&num_pending) || !PlausibleCount(*r, num_pending, 44)) {
    return false;
  }
  state->pending.resize(num_pending);
  for (online::SchedulerPendingState& pending : state->pending) {
    if (!DecodeTrigger(r, &pending.trigger) || !r->I64(&pending.due_sec)) {
      return false;
    }
  }
  uint64_t num_dedup = 0;
  if (!r->U64(&num_dedup) || !PlausibleCount(*r, num_dedup, 12)) return false;
  state->dedup_activity.resize(num_dedup);
  for (auto& [instance_id, sec] : state->dedup_activity) {
    if (!r->U32(&instance_id) || !r->I64(&sec)) return false;
  }
  if (!DecodeU64Counter(r, &state->stats.triggers_accepted) ||
      !DecodeU64Counter(r, &state->stats.triggers_suppressed) ||
      !DecodeU64Counter(r, &state->stats.diagnoses_ok) ||
      !DecodeU64Counter(r, &state->stats.diagnoses_failed) ||
      !DecodeU64Counter(r, &state->stats.repairs_applied) ||
      !DecodeU64Counter(r, &state->stats.repairs_rejected)) {
    return false;
  }
  uint64_t num_outcomes = 0;
  if (!r->U64(&num_outcomes) || !PlausibleCount(*r, num_outcomes, 64)) {
    return false;
  }
  state->outcomes.resize(num_outcomes);
  for (online::DiagnosisOutcome& outcome : state->outcomes) {
    std::string report_json;
    if (!DecodeTrigger(r, &outcome.trigger) || !r->Bool(&outcome.ok) ||
        !r->Str(&outcome.error) || !r->Str(&report_json)) {
      return false;
    }
    auto json = Json::Parse(report_json);
    if (!json.ok()) return false;
    auto report = core::DiagnosisReport::FromJson(*json);
    if (!report.ok()) return false;
    outcome.report = std::move(report).value();
    uint64_t num_confirmed = 0;
    if (!r->U64(&num_confirmed) || !PlausibleCount(*r, num_confirmed, 8)) {
      return false;
    }
    outcome.confirmed_rsqls.resize(num_confirmed);
    for (uint64_t& id : outcome.confirmed_rsqls) {
      if (!r->U64(&id)) return false;
    }
    if (!DecodeU64Counter(r, &outcome.repairs_applied) ||
        !r->F64(&outcome.ttr_sec)) {
      return false;
    }
  }
  return true;
}

bool DecodeRepairEvent(codec::Reader* r, repair::RepairEvent* event) {
  std::string kind_name, action_name;
  int64_t attempt = 0;
  if (!r->F64(&event->time_ms) || !r->Str(&kind_name) ||
      !r->Str(&action_name) || !r->U64(&event->sql_id) ||
      !r->U64(&event->ticket) || !r->I64(&attempt) || !r->Str(&event->detail)) {
    return false;
  }
  if (!repair::RepairEventKindFromName(kind_name, &event->kind)) return false;
  if (!repair::ActionTypeFromName(action_name, &event->action)) return false;
  event->attempt = static_cast<int>(attempt);
  return true;
}

/// Parses the counter out of a checkpoint file name, or nullopt when the
/// name is not of the ckpt-<digits>.ckpt form.
std::optional<uint64_t> ParseCheckpointCounter(const std::string& name) {
  constexpr std::string_view kPrefix = "ckpt-";
  constexpr std::string_view kSuffix = ".ckpt";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return std::nullopt;
  }
  uint64_t counter = 0;
  for (size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    counter = counter * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return counter;
}

}  // namespace

std::string CheckpointFileName(uint64_t counter) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "ckpt-%06llu.ckpt",
                static_cast<unsigned long long>(counter));
  return buf;
}

std::string EncodeCheckpointBody(const CheckpointData& data) {
  std::string out;
  codec::Writer w(&out);
  w.U64(data.lsn.segment_seq);
  w.U64(data.lsn.offset);

  const online::ServiceState& service = data.service;
  EncodeIngestor(&w, service.ingestor);
  EncodeDetector(&w, service.detector);
  EncodeScheduler(&w, service.scheduler);
  w.Bool(service.processed_any);
  w.I64(service.last_processed_sec);
  w.I64(service.retention_sweeps);
  w.U64(service.records_retired);
  w.I64(service.seconds_processed);
  w.U64(service.archive_records.size());
  for (const QueryLogRecord& record : service.archive_records) {
    EncodeRecord(&w, record);
  }
  w.U64(service.catalog.size());
  for (const auto& [sql_id, entry] : service.catalog) {
    w.U64(sql_id);
    w.Str(entry.template_text);
    w.U8(static_cast<uint8_t>(entry.kind));
    w.U64(entry.tables.size());
    for (const std::string& table : entry.tables) w.Str(table);
  }

  w.U64(data.audit.size());
  for (const repair::RepairEvent& event : data.audit) {
    EncodeRepairEvent(&w, event);
  }
  return out;
}

StatusOr<CheckpointData> DecodeCheckpointBody(std::string_view body) {
  CheckpointData data;
  codec::Reader r(body);
  if (!r.U64(&data.lsn.segment_seq) || !r.U64(&data.lsn.offset)) {
    return Status::ParseError("checkpoint: truncated LSN");
  }
  online::ServiceState& service = data.service;
  if (!DecodeIngestor(&r, &service.ingestor)) {
    return Status::ParseError("checkpoint: malformed ingestor state");
  }
  if (!DecodeDetector(&r, &service.detector)) {
    return Status::ParseError("checkpoint: malformed detector state");
  }
  if (!DecodeScheduler(&r, &service.scheduler)) {
    return Status::ParseError("checkpoint: malformed scheduler state");
  }
  int64_t retention_sweeps = 0;
  if (!r.Bool(&service.processed_any) ||
      !r.I64(&service.last_processed_sec) || !r.I64(&retention_sweeps) ||
      !r.U64(&service.records_retired) || !r.I64(&service.seconds_processed)) {
    return Status::ParseError("checkpoint: truncated service counters");
  }
  service.retention_sweeps = retention_sweeps;
  uint64_t num_records = 0;
  if (!r.U64(&num_records) || !PlausibleCount(r, num_records, 32)) {
    return Status::ParseError("checkpoint: implausible archive size");
  }
  service.archive_records.resize(num_records);
  for (QueryLogRecord& record : service.archive_records) {
    if (!DecodeRecord(&r, &record)) {
      return Status::ParseError("checkpoint: truncated archive record");
    }
  }
  uint64_t num_templates = 0;
  if (!r.U64(&num_templates) || !PlausibleCount(r, num_templates, 25)) {
    return Status::ParseError("checkpoint: implausible catalog size");
  }
  service.catalog.resize(num_templates);
  for (auto& [sql_id, entry] : service.catalog) {
    uint8_t kind = 0;
    uint64_t num_tables = 0;
    if (!r.U64(&sql_id) || !r.Str(&entry.template_text) || !r.U8(&kind) ||
        !r.U64(&num_tables) || !PlausibleCount(r, num_tables, 8)) {
      return Status::ParseError("checkpoint: malformed catalog entry");
    }
    if (kind > static_cast<uint8_t>(sqltpl::StatementKind::kOther)) {
      return Status::ParseError("checkpoint: unknown statement kind");
    }
    entry.kind = static_cast<sqltpl::StatementKind>(kind);
    entry.tables.resize(num_tables);
    for (std::string& table : entry.tables) {
      if (!r.Str(&table)) {
        return Status::ParseError("checkpoint: malformed catalog table");
      }
    }
  }
  uint64_t num_events = 0;
  if (!r.U64(&num_events) || !PlausibleCount(r, num_events, 52)) {
    return Status::ParseError("checkpoint: implausible audit size");
  }
  data.audit.resize(num_events);
  for (repair::RepairEvent& event : data.audit) {
    if (!DecodeRepairEvent(&r, &event)) {
      return Status::ParseError("checkpoint: malformed audit event");
    }
  }
  if (!r.exhausted()) {
    return Status::ParseError("checkpoint: trailing bytes");
  }
  return data;
}

Status WriteCheckpoint(Env* env, const std::string& dir, uint64_t counter,
                       const CheckpointData& data) {
  std::string file;
  codec::Writer w(&file);
  file.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  w.U32(kCheckpointVersion);
  file += EncodeCheckpointBody(data);
  w.U32(Crc32c(file));

  const std::string final_path = dir + "/" + CheckpointFileName(counter);
  const std::string tmp_path = final_path + ".tmp";
  auto out = env->NewWritableFile(tmp_path);
  if (!out.ok()) return out.status();
  if (Status status = (*out)->Append(file); !status.ok()) return status;
  if (Status status = (*out)->Sync(); !status.ok()) {
    // Unlike the WAL's advisory fsync, a checkpoint that is not on stable
    // storage must never be renamed into place: a power loss could leave a
    // torn file under the authoritative name.
    (*out)->Close();
    env->DeleteFile(tmp_path);
    return status;
  }
  if (Status status = (*out)->Close(); !status.ok()) return status;
  if (Status status = env->RenameFile(tmp_path, final_path); !status.ok()) {
    return status;
  }
  Status status = env->SyncDir(dir);
  PINSQL_OBS_COUNT("store.checkpoints_written", 1);
  PINSQL_OBS_COUNT("store.checkpoint_bytes",
                   static_cast<uint64_t>(file.size()));
  return status;
}

StatusOr<LoadedCheckpoint> LoadLatestCheckpoint(Env* env,
                                                const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<std::pair<uint64_t, std::string>> checkpoints;
  for (const std::string& name : *names) {
    if (auto counter = ParseCheckpointCounter(name); counter.has_value()) {
      checkpoints.emplace_back(*counter, name);
    }
  }
  std::sort(checkpoints.rbegin(), checkpoints.rend());

  LoadedCheckpoint loaded;
  for (const auto& [counter, name] : checkpoints) {
    std::string file;
    if (Status status = env->ReadFile(dir + "/" + name, &file);
        !status.ok()) {
      ++loaded.corrupt_skipped;
      continue;
    }
    bool valid = file.size() >= kCheckpointOverhead &&
                 std::memcmp(file.data(), kCheckpointMagic,
                             sizeof(kCheckpointMagic)) == 0;
    if (valid) {
      codec::Reader header(
          std::string_view(file).substr(sizeof(kCheckpointMagic), 4));
      uint32_t version = 0;
      header.U32(&version);
      valid = version == kCheckpointVersion;
    }
    if (valid) {
      codec::Reader footer(std::string_view(file).substr(file.size() - 4));
      uint32_t crc = 0;
      footer.U32(&crc);
      valid = crc == Crc32c(file.data(), file.size() - 4);
    }
    if (valid) {
      auto data = DecodeCheckpointBody(
          std::string_view(file).substr(12, file.size() - kCheckpointOverhead));
      if (data.ok()) {
        loaded.counter = counter;
        loaded.data = std::move(data).value();
        return loaded;
      }
    }
    // Corrupt or unreadable: fall back to the next-older checkpoint. Its
    // older LSN just means a longer WAL replay — never data loss, because
    // segments are only deleted once covered by the *oldest* retained
    // checkpoint (see WalWriter::DeleteSealedSegments).
    ++loaded.corrupt_skipped;
    PINSQL_OBS_COUNT("store.checkpoints_corrupt_skipped", 1);
  }
  return Status::NotFound("no valid checkpoint in " + dir);
}

size_t PruneCheckpoints(Env* env, const std::string& dir, size_t keep) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return 0;
  std::vector<std::pair<uint64_t, std::string>> checkpoints;
  size_t deleted = 0;
  for (const std::string& name : *names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0 &&
        ParseCheckpointCounter(name.substr(0, name.size() - 4)).has_value()) {
      // Leftover from an interrupted write; never authoritative.
      if (env->DeleteFile(dir + "/" + name).ok()) ++deleted;
      continue;
    }
    if (auto counter = ParseCheckpointCounter(name); counter.has_value()) {
      checkpoints.emplace_back(*counter, name);
    }
  }
  std::sort(checkpoints.rbegin(), checkpoints.rend());
  for (size_t i = keep; i < checkpoints.size(); ++i) {
    if (env->DeleteFile(dir + "/" + checkpoints[i].second).ok()) ++deleted;
  }
  return deleted;
}

size_t DeleteOtherCheckpoints(Env* env, const std::string& dir,
                              uint64_t keep_counter) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return 0;
  size_t deleted = 0;
  for (const std::string& name : *names) {
    std::string stem = name;
    if (stem.size() > 4 && stem.compare(stem.size() - 4, 4, ".tmp") == 0) {
      stem = stem.substr(0, stem.size() - 4);
    }
    const auto counter = ParseCheckpointCounter(stem);
    if (!counter.has_value()) continue;
    if (stem == name && *counter == keep_counter) continue;
    if (env->DeleteFile(dir + "/" + name).ok()) ++deleted;
  }
  return deleted;
}

}  // namespace pinsql::store
