#include "store/crc32c.h"

#include <array>

namespace pinsql::store {

namespace {

// Slicing-by-4 tables for the reflected Castagnoli polynomial, built once
// at first use. Byte-at-a-time would also be correct; four tables keep the
// per-batch checksum cost well below the write syscall it guards.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;
  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

uint32_t Update(uint32_t crc, const uint8_t* p, size_t n) {
  const auto& t = tables().t;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return crc;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n) {
  return Update(0xFFFFFFFFu, static_cast<const uint8_t*>(data), n) ^
         0xFFFFFFFFu;
}

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  return Update(crc ^ 0xFFFFFFFFu, static_cast<const uint8_t*>(data), n) ^
         0xFFFFFFFFu;
}

}  // namespace pinsql::store
