#ifndef PINSQL_STORE_ENV_H_
#define PINSQL_STORE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace pinsql::store {

/// Append-only file handle. Writes go through the OS page cache; Sync()
/// is the durability barrier (fsync). Destruction closes without syncing.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Filesystem abstraction the storage engine writes and recovers through
/// (RocksDB-style). Production uses PosixEnv; faults::StorageFaultInjector
/// wraps any Env to inject torn writes, bit flips, short reads and fsync
/// failures underneath an unmodified engine.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates `path`, truncating any pre-existing bytes: writers own their
  /// file names outright, so a leftover from a crashed incarnation (e.g. a
  /// torn segment header) is replaced, never extended.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads the whole file into `out`. A short read (fewer bytes than the
  /// file claims) is an error from PosixEnv but injectable for tests.
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// mkdir -p.
  virtual Status CreateDirs(const std::string& dir) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// fsyncs the directory entry itself, making renames/creates durable.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// The process-wide POSIX filesystem.
Env* PosixEnv();

}  // namespace pinsql::store

#endif  // PINSQL_STORE_ENV_H_
