#include "store/durable_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace pinsql::store {

DurableOnlineService::DurableOnlineService(const DurableServiceOptions& options,
                                           std::string data_dir, Env* env)
    : options_(options), data_dir_(std::move(data_dir)), env_(env) {
  // The byte-identical recovery contract fixes the fold/process
  // interleaving to what the WAL records; a background pump thread would
  // fold records at wall-clock-dependent instants.
  options_.service.background_pump = false;
}

DurableOnlineService::~DurableOnlineService() { Stop(); }

StatusOr<std::unique_ptr<DurableOnlineService>> DurableOnlineService::Open(
    const DurableServiceOptions& options, const std::string& data_dir,
    Env* env, repair::RepairSupervisor* supervisor,
    const core::HistoryProvider* history) {
  if (env == nullptr) env = PosixEnv();
  std::unique_ptr<DurableOnlineService> service(
      new DurableOnlineService(options, data_dir, env));
  if (Status status = env->CreateDirs(data_dir); !status.ok()) return status;
  if (Status status = service->Recover(supervisor, history); !status.ok()) {
    return status;
  }
  return service;
}

Status DurableOnlineService::Recover(repair::RepairSupervisor* supervisor,
                                     const core::HistoryProvider* history) {
  const auto t0 = std::chrono::steady_clock::now();
  supervisor_ = supervisor;
  service_ = std::make_unique<online::OnlineService>(options_.service,
                                                     supervisor, history);

  WalPosition start;
  auto loaded = LoadLatestCheckpoint(env_, data_dir_);
  if (loaded.ok()) {
    if (Status status = service_->ImportState(loaded->data.service);
        !status.ok()) {
      return status;
    }
    audit_ = std::move(loaded->data.audit);
    start = loaded->data.lsn;
    checkpoint_counter_ = loaded->counter;
    checkpoint_lsns_.push_back(start);
    recovery_.checkpoint_loaded = true;
    recovery_.checkpoint_counter = loaded->counter;
    recovery_.checkpoints_corrupt_skipped = loaded->corrupt_skipped;
    // A corrupt newer sibling must not win a future recovery over the
    // checkpoint that actually validated.
    DeleteOtherCheckpoints(env_, data_dir_, loaded->counter);
  } else if (loaded.status().code() == StatusCode::kNotFound) {
    // No usable checkpoint (fresh dir, or every file corrupt): full WAL
    // replay. Whatever unusable files exist are swept.
    recovery_.checkpoints_corrupt_skipped =
        PruneCheckpoints(env_, data_dir_, 0);
  } else {
    return loaded.status();
  }

  service_->Start();

  // Replay the WAL suffix through the normal ingest path, one Advance per
  // sample frame — exactly the live processing discipline.
  Status replay_status = ScanWal(
      env_, data_dir_, options_.wal, start,
      [this](const WalFrame& frame) {
        switch (frame.kind) {
          case FrameKind::kRecordBatch:
            for (const QueryLogRecord& record : frame.records) {
              service_->IngestRecord(record);
            }
            break;
          case FrameKind::kSample:
            service_->IngestMetrics(frame.sample);
            service_->Advance();
            break;
          case FrameKind::kTemplate:
            service_->archive()->RegisterTemplate(frame.template_id,
                                                  frame.template_entry);
            break;
          case FrameKind::kRepairEvent:
            audit_.push_back(frame.event);
            break;
        }
      },
      &recovery_.wal);
  if (!replay_status.ok()) return replay_status;

  const uint64_t first_seq =
      std::max(recovery_.wal.last_seq, start.segment_seq) + 1;
  auto writer = WalWriter::Open(env_, data_dir_, options_.wal, first_seq);
  if (!writer.ok()) return writer.status();
  writer_ = std::move(writer).value();
  writer_->AdoptSealed(recovery_.wal.segments);

  if (auto mark = service_->ingestor().watermark_sec(); mark.has_value()) {
    last_checkpoint_sec_ = *mark;
    cadence_anchored_ = true;
  }
  // Events the replayed diagnoses pushed into a fresh supervisor are
  // already in the audit trail via their WAL frames; don't journal them
  // twice.
  supervisor_events_seen_ =
      supervisor_ != nullptr ? supervisor_->events().size() : 0;

  recovery_.recovery_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  PINSQL_OBS_GAUGE_SET("store.recovery_ms", recovery_.recovery_ms);
  PINSQL_OBS_COUNT("store.frames_corrupt_detected",
                   static_cast<uint64_t>(recovery_.wal.frames_corrupt +
                                         recovery_.wal.frames_malformed +
                                         recovery_.wal.frames_time_rejected));
  return Status::OK();
}

void DurableOnlineService::RegisterTemplate(uint64_t sql_id,
                                            const TemplateCatalogEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  service_->archive()->RegisterTemplate(sql_id, entry);
  if (!stopped_) writer_->AppendTemplate(sql_id, entry);
}

bool DurableOnlineService::IngestRecord(const QueryLogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return false;
  // Inner ingest first: only *accepted* records reach the journal, so a
  // replay never re-litigates a backpressure drop.
  if (!service_->IngestRecord(record)) return false;
  pending_.push_back(record);
  return true;
}

std::vector<online::DiagnosisOutcome> DurableOnlineService::IngestMetrics(
    const online::PerfSample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return {};
  if (!service_->IngestMetrics(sample)) return {};
  FlushPendingLocked();
  writer_->AppendSample(sample);
  std::vector<online::DiagnosisOutcome> completed = service_->Advance();
  JournalNewRepairEventsLocked();
  if (!cadence_anchored_) {
    last_checkpoint_sec_ = sample.sec;
    cadence_anchored_ = true;
  } else if (options_.checkpoint_every_sec > 0 &&
             sample.sec - last_checkpoint_sec_ >=
                 options_.checkpoint_every_sec) {
    CheckpointLocked();
  }
  return completed;
}

Status DurableOnlineService::FlushPendingLocked() {
  if (pending_.empty()) return Status::OK();
  Status status = writer_->AppendRecordBatch(pending_);
  // The batch is cleared even on a degraded append (fsync failure or a
  // retried torn write): re-journaling would duplicate records on replay.
  // Hard losses are counted in the writer stats, never silent.
  pending_.clear();
  return status;
}

void DurableOnlineService::JournalNewRepairEventsLocked() {
  if (supervisor_ == nullptr) return;
  const auto& events = supervisor_->events();
  for (size_t i = supervisor_events_seen_; i < events.size(); ++i) {
    writer_->AppendRepairEvent(events[i]);
    audit_.push_back(events[i]);
  }
  supervisor_events_seen_ = events.size();
}

Status DurableOnlineService::CheckpointLocked() {
  if (Status status = FlushPendingLocked(); !status.ok()) return status;

  CheckpointData data;
  data.lsn = writer_->position();
  data.service = service_->ExportState();
  data.audit = audit_;
  ++checkpoint_counter_;
  if (Status status =
          WriteCheckpoint(env_, data_dir_, checkpoint_counter_, data);
      !status.ok()) {
    return status;
  }
  ++checkpoints_written_;
  checkpoint_lsns_.push_back(data.lsn);
  while (checkpoint_lsns_.size() > options_.checkpoints_to_keep) {
    checkpoint_lsns_.pop_front();
  }
  PruneCheckpoints(env_, data_dir_, options_.checkpoints_to_keep);

  // Retire WAL segments that retention no longer needs *and* the oldest
  // retained checkpoint already covers — a fallback recovery must always
  // find its full replay suffix on disk.
  if (auto mark = service_->ingestor().watermark_sec(); mark.has_value()) {
    int64_t cutoff_ms = *mark * 1000 - options_.service.retention_ms;
    if (auto floor = service_->ingestor().window_floor_sec();
        floor.has_value()) {
      cutoff_ms = std::min(cutoff_ms, *floor * 1000);
    }
    if (auto floor = service_->scheduler().open_window_floor_ms();
        floor.has_value()) {
      cutoff_ms = std::min(cutoff_ms, *floor);
    }
    segments_deleted_ += writer_->DeleteSealedSegments(
        cutoff_ms, checkpoint_lsns_.front(), env_);
    last_checkpoint_sec_ = *mark;
    cadence_anchored_ = true;
  }
  return Status::OK();
}

Status DurableOnlineService::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    return Status::FailedPrecondition("service is stopped");
  }
  return CheckpointLocked();
}

Status DurableOnlineService::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return Status::OK();
  service_->Stop();
  JournalNewRepairEventsLocked();
  Status checkpoint_status = CheckpointLocked();
  Status close_status = writer_->Close();
  stopped_ = true;
  if (!checkpoint_status.ok()) return checkpoint_status;
  return close_status;
}

DurableStats DurableOnlineService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DurableStats stats;
  stats.service = service_->stats();
  stats.wal = writer_->stats();
  stats.checkpoints_written = checkpoints_written_;
  stats.segments_deleted = segments_deleted_;
  stats.pending_journal_records = pending_.size();
  return stats;
}

std::string DurableOnlineService::Fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "latencies:";
  for (int64_t latency : service_->detector().latencies_sec()) {
    out += std::to_string(latency);
    out += ',';
  }
  out += '\n';
  for (const online::DiagnosisOutcome& outcome : service_->outcomes()) {
    online::AppendOutcomeFingerprint(outcome, &out);
  }
  return out;
}

}  // namespace pinsql::store
