#ifndef PINSQL_STORE_CRC32C_H_
#define PINSQL_STORE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pinsql::store {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78), the checksum the
/// WAL and checkpoint files use for every frame and header. Standard
/// init/final-xor convention: Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(const void* data, size_t n);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

/// Extends a running CRC with more bytes: Extend(Crc32c(a), b) ==
/// Crc32c(a+b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace pinsql::store

#endif  // PINSQL_STORE_CRC32C_H_
