#ifndef PINSQL_STORE_CODEC_H_
#define PINSQL_STORE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace pinsql::store::codec {

/// Explicit little-endian binary encoding, independent of host byte order,
/// so a WAL written on one box replays on another. Fixed-width fields only:
/// the on-disk formats are versioned, not self-describing.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    char buf[4];
    buf[0] = static_cast<char>(v & 0xFFu);
    buf[1] = static_cast<char>((v >> 8) & 0xFFu);
    buf[2] = static_cast<char>((v >> 16) & 0xFFu);
    buf[3] = static_cast<char>((v >> 24) & 0xFFu);
    out_->append(buf, 4);
  }

  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v & 0xFFFFFFFFu));
    U32(static_cast<uint32_t>(v >> 32));
  }

  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void Bool(bool v) { U8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void Str(std::string_view s) {
    U64(s.size());
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// Bounds-checked reader over one payload. Every accessor returns false
/// (and sticks failed) on underflow; a decode is valid only when every read
/// succeeded AND the caller consumed what it expected.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool U32(uint32_t* v) {
    if (!Need(4)) return false;
    const auto* p = reinterpret_cast<const uint8_t*>(data_.data() + pos_);
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    pos_ += 4;
    return true;
  }

  bool U64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!U32(&lo) || !U32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool I64(int64_t* v) {
    uint64_t u = 0;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool F64(double* v) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool Bool(bool* v) {
    uint8_t b = 0;
    if (!U8(&b)) return false;
    *v = b != 0;
    return true;
  }

  bool Str(std::string* s) {
    uint64_t n = 0;
    if (!U64(&n)) return false;
    if (n > remaining()) {
      failed_ = true;
      return false;
    }
    s->assign(data_.data() + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool failed() const { return failed_; }
  /// Fully consumed and never underflowed — the check every frame decoder
  /// ends with (trailing garbage inside a CRC-valid payload is a bug, not
  /// forward compatibility).
  bool exhausted() const { return !failed_ && pos_ == data_.size(); }

 private:
  bool Need(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace pinsql::store::codec

#endif  // PINSQL_STORE_CODEC_H_
