#ifndef PINSQL_STORE_CHECKPOINT_H_
#define PINSQL_STORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "online/service_state.h"
#include "repair/events.h"
#include "store/env.h"
#include "store/wal.h"
#include "util/status.h"

namespace pinsql::store {

/// Everything one checkpoint captures: the WAL position it is consistent
/// with (recovery replays only frames after it), the complete online
/// service state, and the supervised-repair audit trail. The invariant the
/// durable service maintains is that every record/sample/event folded into
/// `service` was journaled at or before `lsn` — so checkpoint + WAL suffix
/// always reconstructs the exact pre-crash state, and an older (fallback)
/// checkpoint merely replays a longer suffix.
struct CheckpointData {
  WalPosition lsn;
  online::ServiceState service;
  std::vector<repair::RepairEvent> audit;
};

/// A successfully loaded checkpoint.
struct LoadedCheckpoint {
  uint64_t counter = 0;
  CheckpointData data;
  /// Newer checkpoint files that failed validation and were skipped on the
  /// way to this one (each counted, never silently trusted).
  size_t corrupt_skipped = 0;
};

/// Checkpoint file name for a counter ("ckpt-000042.ckpt"). Counters are
/// monotonic per data dir; the newest valid file wins on recovery.
std::string CheckpointFileName(uint64_t counter);

/// Serializes `data` (exposed for tests; the file adds magic/version/CRC
/// around this body).
std::string EncodeCheckpointBody(const CheckpointData& data);
StatusOr<CheckpointData> DecodeCheckpointBody(std::string_view body);

/// Atomically publishes a checkpoint: encode, write to a temp file, fsync,
/// rename into place, fsync the directory. A crash at any point leaves
/// either the complete new file or no trace of it — never a torn
/// checkpoint under its final name.
Status WriteCheckpoint(Env* env, const std::string& dir, uint64_t counter,
                       const CheckpointData& data);

/// Loads the newest checkpoint that validates (magic, version, whole-file
/// CRC, full decode), skipping and counting corrupt newer ones. NotFound
/// when the directory holds no valid checkpoint.
StatusOr<LoadedCheckpoint> LoadLatestCheckpoint(Env* env,
                                                const std::string& dir);

/// Deletes checkpoint files other than the `keep` newest (by counter).
/// Returns the number deleted. Stray temp files from interrupted writes
/// are removed too.
size_t PruneCheckpoints(Env* env, const std::string& dir, size_t keep);

/// Deletes every checkpoint file except the one named by `keep_counter`
/// (recovery housekeeping: once a checkpoint validated and loaded, corrupt
/// newer siblings must not outlive it — counter-based pruning would keep
/// them). Returns the number deleted.
size_t DeleteOtherCheckpoints(Env* env, const std::string& dir,
                              uint64_t keep_counter);

}  // namespace pinsql::store

#endif  // PINSQL_STORE_CHECKPOINT_H_
