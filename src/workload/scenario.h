#ifndef PINSQL_WORKLOAD_SCENARIO_H_
#define PINSQL_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/arrivals.h"
#include "workload/workload.h"

namespace pinsql::workload {

/// The paper's three R-SQL categories (Sec. II, lock category split into
/// its two sub-cases) plus the SynADAC v2 adversarial extensions: the
/// incident shapes production fleets see that the paper's taxonomy —
/// and a pure robust-z + change-point screen — does not cover.
enum class AnomalyType {
  kBusinessSpike,  // category 1: business scenario change / QPS surge
  kPoorSql,        // category 2: poor SQL statement, resource bottleneck
  kMdlLock,        // category 3-i: DDL metadata-lock pile-up
  kRowLock,        // category 3-ii: row-lock convoy
  // --- SynADAC v2 extensions ---
  kFlashSaleFlood,   // several load-bearing endpoints flood at once
  kSlowDrift,        // plan-flip regression creeping in over hours
  kCacheStampede,    // cache expiry: point-read flood + recompute query
  kReplicationLag,   // backup / replication scan interference
  kMigrationStorm,   // schema migration: DDL chunks + backfill updates
  kCompound,         // two independent root causes overlapping in time
};

const char* AnomalyTypeName(AnomalyType type);

/// Every anomaly category, in enum order — the canonical iteration set
/// for taxonomy-wide evaluation and tests.
const std::vector<AnomalyType>& AllAnomalyTypes();

/// True for the paper's original three categories (four enum values);
/// false for the SynADAC v2 extensions. The benches report legacy and
/// extended categories separately so the false-trigger baseline on the
/// paper's cases stays comparable across detector stacks.
bool IsLegacyAnomalyType(AnomalyType type);

/// Knobs for the synthetic instance workload.
struct ScenarioParams {
  int num_clusters = 5;
  int min_templates_per_cluster = 8;
  int max_templates_per_cluster = 24;
  int num_tables = 10;
  double min_cluster_qps = 20.0;
  double max_cluster_qps = 70.0;
};

/// Builds a randomized multi-business workload: `num_clusters` businesses,
/// each owning a mix of point selects, range selects, updates, inserts and
/// join queries over a shared pool of tables. Some selects are locking
/// reads (shared row locks), which is what lets UPDATE convoys block them.
Workload MakeStandardWorkload(const ScenarioParams& params, Rng* rng);

/// An injected anomaly: traffic overrides (and possibly new templates,
/// already appended to the workload) plus the labeled root causes.
struct Injection {
  AnomalyType type = AnomalyType::kBusinessSpike;
  int64_t anomaly_start_sec = 0;  // a_s
  int64_t anomaly_end_sec = 0;    // a_e
  std::vector<RateOverride> overrides;
  std::vector<uint64_t> root_cause_ids;  // ground-truth R-SQLs
};

/// Creates an anomaly of the given type over [as_sec, ae_sec), mutating
/// `workload` (new templates are appended for poor-SQL / DDL / row-lock
/// bursts) and returning the overrides + ground truth.
Injection MakeInjection(AnomalyType type, Workload* workload, int64_t as_sec,
                        int64_t ae_sec, Rng* rng);

}  // namespace pinsql::workload

#endif  // PINSQL_WORKLOAD_SCENARIO_H_
