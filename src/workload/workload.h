#ifndef PINSQL_WORKLOAD_WORKLOAD_H_
#define PINSQL_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dbsim/types.h"
#include "logstore/log_store.h"
#include "sqltpl/fingerprint.h"

namespace pinsql::workload {

/// A table of the simulated instance. Row locks are taken at row-group
/// granularity; `hot_row_groups` is the size of the contended key range.
struct TableDef {
  std::string name;
  uint32_t id = 0;
  uint32_t hot_row_groups = 8;
};

/// A SQL template issued by the workload: its statement text, traffic
/// share, resource demand and lock footprint.
struct TemplateDef {
  std::string sql_pattern;  // representative statement with literals
  uint64_t sql_id = 0;      // fingerprint of sql_pattern
  sqltpl::StatementKind kind = sqltpl::StatementKind::kSelect;

  /// Traffic: which business cluster drives this template and its share of
  /// the cluster rate (weights are normalized per cluster).
  size_t cluster_idx = 0;
  double weight = 1.0;

  /// Resource demand per query (log-normal CPU jitter).
  double cpu_ms_mean = 2.0;
  double cpu_sigma = 0.4;
  double io_ms_mean = 0.0;
  double examined_rows_mean = 100.0;

  /// Lock footprint.
  uint32_t table_id = 0;
  int row_groups_touched = 0;  // 0 = no row locks
  dbsim::LockMode row_lock_mode = dbsim::LockMode::kShared;
  bool mdl_exclusive = false;  // DDL: exclusive metadata lock
  /// When > 0, row groups are sampled from [0, min(this, table range)):
  /// a hot-spot template that concentrates its locks.
  uint32_t hot_group_limit = 0;
};

/// One business (microservice call-graph, paper Fig. 4): its templates
/// share one arrival-rate process, which is what makes their #execution
/// trends cluster.
struct BusinessCluster {
  std::string name;
  double base_qps = 50.0;        // total cluster arrival rate
  double diurnal_amplitude = 0.2;  // daily sinusoidal modulation
  double noise_sigma = 0.03;     // AR(1) log-rate innovation stddev
  double noise_rho = 0.98;       // AR(1) persistence
  /// Business-specific mid-scale oscillation (user-traffic waves). This is
  /// the distinctive per-business trend PinSQL's clustering keys on.
  double osc_amplitude = 0.3;
  double osc_period_sec = 600.0;
  double osc_phase = 0.0;
};

/// The full workload of one simulated database instance.
struct Workload {
  std::vector<TableDef> tables;
  std::vector<TemplateDef> templates;
  std::vector<BusinessCluster> clusters;

  /// Index into `templates`, or -1.
  int FindTemplateIndex(uint64_t sql_id) const;
  const TemplateDef* FindTemplate(uint64_t sql_id) const;

  /// Registers all templates' text/kind/tables in a log-store catalog.
  void RegisterTemplates(LogStore* store) const;
};

/// Builds a TemplateDef whose sql_id/kind are derived by fingerprinting
/// `sql_pattern`; the remaining fields start from the given prototype.
TemplateDef MakeTemplate(std::string sql_pattern, const TemplateDef& proto);

/// Statement-text helpers: produce distinct, realistic SQL for the
/// synthetic catalog. `variant` differentiates templates on one table.
std::string MakeSelectSql(const std::string& table, int variant);
std::string MakePointUpdateSql(const std::string& table, int variant);
std::string MakeInsertSql(const std::string& table, int variant);
std::string MakeJoinSelectSql(const std::string& left,
                              const std::string& right, int variant);
std::string MakeAlterSql(const std::string& table, int variant);

}  // namespace pinsql::workload

#endif  // PINSQL_WORKLOAD_WORKLOAD_H_
