#include "workload/workload.h"

#include "util/strings.h"

namespace pinsql::workload {

int Workload::FindTemplateIndex(uint64_t sql_id) const {
  for (size_t i = 0; i < templates.size(); ++i) {
    if (templates[i].sql_id == sql_id) return static_cast<int>(i);
  }
  return -1;
}

const TemplateDef* Workload::FindTemplate(uint64_t sql_id) const {
  const int idx = FindTemplateIndex(sql_id);
  return idx < 0 ? nullptr : &templates[static_cast<size_t>(idx)];
}

void Workload::RegisterTemplates(LogStore* store) const {
  for (const TemplateDef& tpl : templates) {
    const sqltpl::TemplateInfo info = sqltpl::Fingerprint(tpl.sql_pattern);
    TemplateCatalogEntry entry;
    entry.template_text = info.template_text;
    entry.kind = info.kind;
    entry.tables = info.tables;
    store->RegisterTemplate(tpl.sql_id, std::move(entry));
  }
}

TemplateDef MakeTemplate(std::string sql_pattern, const TemplateDef& proto) {
  TemplateDef def = proto;
  const sqltpl::TemplateInfo info = sqltpl::Fingerprint(sql_pattern);
  def.sql_pattern = std::move(sql_pattern);
  def.sql_id = info.sql_id;
  def.kind = info.kind;
  return def;
}

std::string MakeSelectSql(const std::string& table, int variant) {
  return StrFormat(
      "SELECT c0, c1, c%d FROM %s WHERE k%d = 42 AND status = 'active' "
      "ORDER BY c0 LIMIT 20",
      variant, table.c_str(), variant);
}

std::string MakePointUpdateSql(const std::string& table, int variant) {
  return StrFormat(
      "UPDATE %s SET v%d = v%d + 1, mtime = 1650000000 WHERE k%d = 42",
      table.c_str(), variant, variant, variant);
}

std::string MakeInsertSql(const std::string& table, int variant) {
  return StrFormat(
      "INSERT INTO %s (k%d, v%d, status) VALUES (42, 7, 'new')",
      table.c_str(), variant, variant);
}

std::string MakeJoinSelectSql(const std::string& left,
                              const std::string& right, int variant) {
  return StrFormat(
      "SELECT a.c0, b.c%d FROM %s a JOIN %s b ON a.k0 = b.k0 "
      "WHERE a.k%d = 42 LIMIT 50",
      variant, left.c_str(), right.c_str(), variant);
}

std::string MakeAlterSql(const std::string& table, int variant) {
  return StrFormat("ALTER TABLE %s ADD COLUMN extra%d BIGINT DEFAULT 0",
                   table.c_str(), variant);
}

}  // namespace pinsql::workload
