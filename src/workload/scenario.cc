#include "workload/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace pinsql::workload {

const char* AnomalyTypeName(AnomalyType type) {
  switch (type) {
    case AnomalyType::kBusinessSpike:
      return "business_spike";
    case AnomalyType::kPoorSql:
      return "poor_sql";
    case AnomalyType::kMdlLock:
      return "mdl_lock";
    case AnomalyType::kRowLock:
      return "row_lock";
  }
  return "unknown";
}

namespace {

/// Baseline QPS of templates[idx]: cluster rate times normalized weight.
double BaselineQps(const Workload& workload, size_t idx) {
  const TemplateDef& tpl = workload.templates[idx];
  double cluster_weight = 0.0;
  for (const TemplateDef& other : workload.templates) {
    if (other.cluster_idx == tpl.cluster_idx) cluster_weight += other.weight;
  }
  if (cluster_weight <= 0.0) return 0.0;
  return workload.clusters[tpl.cluster_idx].base_qps * tpl.weight /
         cluster_weight;
}

}  // namespace

Workload MakeStandardWorkload(const ScenarioParams& params, Rng* rng) {
  Workload w;
  w.tables.reserve(static_cast<size_t>(params.num_tables));
  for (int t = 0; t < params.num_tables; ++t) {
    TableDef table;
    table.name = StrFormat("tbl_%02d", t);
    table.id = static_cast<uint32_t>(t);
    table.hot_row_groups =
        static_cast<uint32_t>(rng->UniformInt(6, 16));
    w.tables.push_back(std::move(table));
  }

  for (int c = 0; c < params.num_clusters; ++c) {
    BusinessCluster cluster;
    cluster.name = StrFormat("business_%02d", c);
    cluster.base_qps =
        rng->Uniform(params.min_cluster_qps, params.max_cluster_qps);
    cluster.diurnal_amplitude = rng->Uniform(0.1, 0.3);
    cluster.noise_sigma = rng->Uniform(0.04, 0.09);
    cluster.noise_rho = 0.97;
    cluster.osc_amplitude = rng->Uniform(0.2, 0.45);
    cluster.osc_period_sec = rng->Uniform(240.0, 900.0);
    cluster.osc_phase = rng->Uniform(0.0, 6.28318);
    w.clusters.push_back(std::move(cluster));

    // Each business works against a small set of home tables (tables are
    // shared across businesses, which is what makes lock anomalies span
    // clusters).
    const int num_home = static_cast<int>(rng->UniformInt(2, 4));
    std::vector<uint32_t> home;
    for (int h = 0; h < num_home; ++h) {
      home.push_back(static_cast<uint32_t>(
          rng->UniformInt(0, params.num_tables - 1)));
    }

    const int n_templates = static_cast<int>(
        rng->UniformInt(params.min_templates_per_cluster,
                        params.max_templates_per_cluster));
    for (int i = 0; i < n_templates; ++i) {
      const uint32_t table_id =
          home[static_cast<size_t>(rng->UniformInt(0, num_home - 1))];
      const std::string& table_name = w.tables[table_id].name;
      const int variant = c * 100 + i;

      TemplateDef proto;
      proto.cluster_idx = static_cast<size_t>(c);
      proto.weight = std::exp(rng->Normal(0.0, 1.0));  // heavy-tailed share
      proto.table_id = table_id;

      const double mix = rng->Uniform01();
      TemplateDef def;
      if (mix < 0.50) {
        // Point select; some are locking reads (FOR SHARE semantics).
        proto.cpu_ms_mean = rng->Uniform(1.0, 4.0);
        proto.cpu_sigma = 0.35;
        proto.examined_rows_mean = rng->Uniform(10.0, 200.0);
        if (rng->Bernoulli(0.4)) {
          proto.row_groups_touched = static_cast<int>(rng->UniformInt(1, 2));
          proto.row_lock_mode = dbsim::LockMode::kShared;
        }
        def = MakeTemplate(MakeSelectSql(table_name, variant), proto);
      } else if (mix < 0.65) {
        // Range scan with IO.
        proto.cpu_ms_mean = rng->Uniform(4.0, 15.0);
        proto.cpu_sigma = 0.45;
        proto.io_ms_mean = rng->Uniform(1.0, 5.0);
        proto.examined_rows_mean = rng->Uniform(1000.0, 20000.0);
        def = MakeTemplate(MakeSelectSql(table_name, variant + 1000), proto);
      } else if (mix < 0.72) {
        // Two-table join.
        const uint32_t other =
            home[static_cast<size_t>(rng->UniformInt(0, num_home - 1))];
        proto.cpu_ms_mean = rng->Uniform(6.0, 20.0);
        proto.cpu_sigma = 0.45;
        proto.io_ms_mean = rng->Uniform(0.5, 3.0);
        proto.examined_rows_mean = rng->Uniform(2000.0, 30000.0);
        def = MakeTemplate(
            MakeJoinSelectSql(table_name, w.tables[other].name, variant),
            proto);
      } else if (mix < 0.79) {
        // Heavy reporting/batch scan: large *stable* response-time volume.
        // These are the templates that sit on top of Top-RT pages while a
        // smaller root cause hides below (paper challenge II).
        proto.cpu_ms_mean = rng->Uniform(10.0, 30.0);
        proto.cpu_sigma = 0.5;
        proto.io_ms_mean = rng->Uniform(80.0, 250.0);
        proto.examined_rows_mean = rng->Uniform(3e4, 2e5);
        def = MakeTemplate(MakeSelectSql(table_name, variant + 2000), proto);
      } else if (mix < 0.9) {
        // Point update: exclusive row locks.
        proto.cpu_ms_mean = rng->Uniform(2.0, 6.0);
        proto.cpu_sigma = 0.4;
        proto.examined_rows_mean = rng->Uniform(1.0, 50.0);
        proto.row_groups_touched = static_cast<int>(rng->UniformInt(1, 2));
        proto.row_lock_mode = dbsim::LockMode::kExclusive;
        def = MakeTemplate(MakePointUpdateSql(table_name, variant), proto);
      } else {
        // Insert (distinct keys; no row-group contention modeled).
        proto.cpu_ms_mean = rng->Uniform(1.0, 3.0);
        proto.cpu_sigma = 0.3;
        proto.examined_rows_mean = 1.0;
        def = MakeTemplate(MakeInsertSql(table_name, variant), proto);
      }
      w.templates.push_back(std::move(def));
    }
  }
  return w;
}

namespace {

Injection MakeBusinessSpike(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kBusinessSpike;
  // Rank templates by how much load they carry (qps x service demand,
  // IO included) and spike one of the top carriers: a business surge hits
  // a load-bearing endpoint, and a bounded multiplier then suffices to
  // move the active session.
  std::vector<std::pair<double, size_t>> carriers;
  for (size_t i = 0; i < w->templates.size(); ++i) {
    const TemplateDef& tpl = w->templates[i];
    // Category-1 anomalies are resource anomalies from workload change;
    // exclusive-locking templates would turn the surge into a lock convoy
    // (that is category 3, injected separately).
    if (tpl.mdl_exclusive ||
        (tpl.row_groups_touched > 0 &&
         tpl.row_lock_mode == dbsim::LockMode::kExclusive)) {
      continue;
    }
    const double qps = BaselineQps(*w, i);
    if (qps < 0.5) continue;
    carriers.emplace_back(qps * (tpl.cpu_ms_mean + tpl.io_ms_mean), i);
  }
  assert(!carriers.empty());
  std::sort(carriers.begin(), carriers.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const size_t pick = static_cast<size_t>(rng->UniformInt(
      0, std::min<int64_t>(2, static_cast<int64_t>(carriers.size()) - 1)));
  const size_t idx = carriers[pick].second;
  const TemplateDef& tpl = w->templates[idx];
  const double qps = BaselineQps(*w, idx);
  // Large enough that the surge is visible in the active session (the
  // paper's anomaly cases are all session anomalies).
  const double target_concurrency = rng->Uniform(10.0, 22.0);
  double mult = 1.0 + target_concurrency * 1000.0 /
                          (qps * (tpl.cpu_ms_mean + tpl.io_ms_mean));
  mult = std::clamp(mult, 4.0, 60.0);
  RateOverride ov;
  ov.sql_id = tpl.sql_id;
  ov.start_sec = as;
  ov.end_sec = ae;
  ov.multiplier = mult;
  inj.overrides.push_back(ov);
  inj.root_cause_ids.push_back(tpl.sql_id);
  return inj;
}

Injection MakePoorSql(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kPoorSql;
  const uint32_t table_id = static_cast<uint32_t>(
      rng->UniformInt(0, static_cast<int64_t>(w->tables.size()) - 1));
  const uint32_t other_id = static_cast<uint32_t>(
      rng->UniformInt(0, static_cast<int64_t>(w->tables.size()) - 1));
  TemplateDef proto;
  proto.cluster_idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(w->clusters.size()) - 1));
  proto.weight = 0.0;  // traffic comes purely from the override
  proto.table_id = table_id;
  proto.cpu_ms_mean = rng->Uniform(150.0, 500.0);
  proto.cpu_sigma = 0.3;
  proto.io_ms_mean = rng->Uniform(5.0, 20.0);
  proto.examined_rows_mean = rng->Uniform(1e5, 6e5);
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));
  TemplateDef def = MakeTemplate(
      MakeJoinSelectSql(w->tables[table_id].name, w->tables[other_id].name,
                        variant),
      proto);
  RateOverride ov;
  ov.sql_id = def.sql_id;
  ov.start_sec = as;
  ov.end_sec = ae;
  ov.add_qps = rng->Uniform(12.0, 22.0);
  inj.overrides.push_back(ov);
  inj.root_cause_ids.push_back(def.sql_id);
  w->templates.push_back(std::move(def));
  return inj;
}

/// Traffic (QPS) of templates on each table, weighted by whether they take
/// row locks — used to pick a well-contended table.
uint32_t PickHotTable(const Workload& w, bool require_locking_reads,
                      Rng* rng) {
  std::vector<double> score(w.tables.size(), 0.0);
  for (size_t i = 0; i < w.templates.size(); ++i) {
    const TemplateDef& tpl = w.templates[i];
    const double qps = BaselineQps(w, i);
    double weight = qps;
    if (require_locking_reads) {
      weight = (tpl.row_groups_touched > 0 &&
                tpl.row_lock_mode == dbsim::LockMode::kShared)
                   ? qps
                   : 0.1 * qps;
    }
    score[tpl.table_id] += weight;
  }
  size_t best = 0;
  for (size_t t = 1; t < score.size(); ++t) {
    if (score[t] > score[best]) best = t;
  }
  (void)rng;
  return static_cast<uint32_t>(best);
}

Injection MakeMdlLock(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kMdlLock;
  const uint32_t table_id = PickHotTable(*w, /*require_locking_reads=*/false,
                                         rng);
  TemplateDef proto;
  proto.cluster_idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(w->clusters.size()) - 1));
  proto.weight = 0.0;
  proto.table_id = table_id;
  // A batched online-DDL job: each ALTER chunk holds the exclusive MDL for
  // several seconds, and chunks keep coming for the whole anomaly.
  proto.cpu_ms_mean = rng->Uniform(4000.0, 12000.0);
  proto.cpu_sigma = 0.15;
  proto.examined_rows_mean = 1.0;
  proto.mdl_exclusive = true;
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));
  TemplateDef def =
      MakeTemplate(MakeAlterSql(w->tables[table_id].name, variant), proto);
  RateOverride ov;
  ov.sql_id = def.sql_id;
  ov.start_sec = as;
  ov.end_sec = ae;
  // ~one DDL chunk every 15-40 s.
  ov.add_qps = 1.0 / rng->Uniform(15.0, 40.0);
  inj.overrides.push_back(ov);
  inj.root_cause_ids.push_back(def.sql_id);
  w->templates.push_back(std::move(def));
  return inj;
}

Injection MakeRowLock(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kRowLock;
  const uint32_t table_id = PickHotTable(*w, /*require_locking_reads=*/true,
                                         rng);
  TemplateDef proto;
  proto.cluster_idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(w->clusters.size()) - 1));
  proto.weight = 0.0;
  proto.table_id = table_id;
  // A hot-row batch UPDATE: low rate but long-held exclusive locks on a
  // concentrated key range. The *victims* (locking reads queueing behind
  // the X locks) dominate the response-time ranking, which is exactly why
  // Top-RT misses this root cause (paper Sec. I, challenge III).
  proto.cpu_ms_mean = rng->Uniform(300.0, 600.0);
  proto.cpu_sigma = 0.3;
  proto.examined_rows_mean = rng->Uniform(2000.0, 20000.0);
  proto.row_groups_touched = static_cast<int>(rng->UniformInt(3, 4));
  proto.row_lock_mode = dbsim::LockMode::kExclusive;
  proto.hot_group_limit = 5;  // concentrate the convoy on a hot key range
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));
  TemplateDef def = MakeTemplate(
      MakePointUpdateSql(w->tables[table_id].name, variant), proto);
  RateOverride ov;
  ov.sql_id = def.sql_id;
  ov.start_sec = as;
  ov.end_sec = ae;
  ov.add_qps = rng->Uniform(0.8, 3.5);
  inj.overrides.push_back(ov);
  inj.root_cause_ids.push_back(def.sql_id);
  w->templates.push_back(std::move(def));
  return inj;
}

}  // namespace

Injection MakeInjection(AnomalyType type, Workload* workload, int64_t as_sec,
                        int64_t ae_sec, Rng* rng) {
  Injection inj;
  switch (type) {
    case AnomalyType::kBusinessSpike:
      inj = MakeBusinessSpike(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kPoorSql:
      inj = MakePoorSql(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kMdlLock:
      inj = MakeMdlLock(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kRowLock:
      inj = MakeRowLock(workload, as_sec, ae_sec, rng);
      break;
  }
  inj.anomaly_start_sec = as_sec;
  inj.anomaly_end_sec = ae_sec;
  return inj;
}

}  // namespace pinsql::workload
