#include "workload/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace pinsql::workload {

const char* AnomalyTypeName(AnomalyType type) {
  switch (type) {
    case AnomalyType::kBusinessSpike:
      return "business_spike";
    case AnomalyType::kPoorSql:
      return "poor_sql";
    case AnomalyType::kMdlLock:
      return "mdl_lock";
    case AnomalyType::kRowLock:
      return "row_lock";
    case AnomalyType::kFlashSaleFlood:
      return "flash_sale_flood";
    case AnomalyType::kSlowDrift:
      return "slow_drift";
    case AnomalyType::kCacheStampede:
      return "cache_stampede";
    case AnomalyType::kReplicationLag:
      return "replication_lag";
    case AnomalyType::kMigrationStorm:
      return "migration_storm";
    case AnomalyType::kCompound:
      return "compound";
  }
  return "unknown";
}

const std::vector<AnomalyType>& AllAnomalyTypes() {
  static const std::vector<AnomalyType> kAll = {
      AnomalyType::kBusinessSpike,  AnomalyType::kPoorSql,
      AnomalyType::kMdlLock,        AnomalyType::kRowLock,
      AnomalyType::kFlashSaleFlood, AnomalyType::kSlowDrift,
      AnomalyType::kCacheStampede,  AnomalyType::kReplicationLag,
      AnomalyType::kMigrationStorm, AnomalyType::kCompound,
  };
  return kAll;
}

bool IsLegacyAnomalyType(AnomalyType type) {
  switch (type) {
    case AnomalyType::kBusinessSpike:
    case AnomalyType::kPoorSql:
    case AnomalyType::kMdlLock:
    case AnomalyType::kRowLock:
      return true;
    case AnomalyType::kFlashSaleFlood:
    case AnomalyType::kSlowDrift:
    case AnomalyType::kCacheStampede:
    case AnomalyType::kReplicationLag:
    case AnomalyType::kMigrationStorm:
    case AnomalyType::kCompound:
      return false;
  }
  return false;
}

namespace {

/// Baseline QPS of templates[idx]: cluster rate times normalized weight.
double BaselineQps(const Workload& workload, size_t idx) {
  const TemplateDef& tpl = workload.templates[idx];
  double cluster_weight = 0.0;
  for (const TemplateDef& other : workload.templates) {
    if (other.cluster_idx == tpl.cluster_idx) cluster_weight += other.weight;
  }
  if (cluster_weight <= 0.0) return 0.0;
  return workload.clusters[tpl.cluster_idx].base_qps * tpl.weight /
         cluster_weight;
}

}  // namespace

Workload MakeStandardWorkload(const ScenarioParams& params, Rng* rng) {
  Workload w;
  w.tables.reserve(static_cast<size_t>(params.num_tables));
  for (int t = 0; t < params.num_tables; ++t) {
    TableDef table;
    table.name = StrFormat("tbl_%02d", t);
    table.id = static_cast<uint32_t>(t);
    table.hot_row_groups =
        static_cast<uint32_t>(rng->UniformInt(6, 16));
    w.tables.push_back(std::move(table));
  }

  for (int c = 0; c < params.num_clusters; ++c) {
    BusinessCluster cluster;
    cluster.name = StrFormat("business_%02d", c);
    cluster.base_qps =
        rng->Uniform(params.min_cluster_qps, params.max_cluster_qps);
    cluster.diurnal_amplitude = rng->Uniform(0.1, 0.3);
    cluster.noise_sigma = rng->Uniform(0.04, 0.09);
    cluster.noise_rho = 0.97;
    cluster.osc_amplitude = rng->Uniform(0.2, 0.45);
    cluster.osc_period_sec = rng->Uniform(240.0, 900.0);
    cluster.osc_phase = rng->Uniform(0.0, 6.28318);
    w.clusters.push_back(std::move(cluster));

    // Each business works against a small set of home tables (tables are
    // shared across businesses, which is what makes lock anomalies span
    // clusters).
    const int num_home = static_cast<int>(rng->UniformInt(2, 4));
    std::vector<uint32_t> home;
    for (int h = 0; h < num_home; ++h) {
      home.push_back(static_cast<uint32_t>(
          rng->UniformInt(0, params.num_tables - 1)));
    }

    const int n_templates = static_cast<int>(
        rng->UniformInt(params.min_templates_per_cluster,
                        params.max_templates_per_cluster));
    for (int i = 0; i < n_templates; ++i) {
      const uint32_t table_id =
          home[static_cast<size_t>(rng->UniformInt(0, num_home - 1))];
      const std::string& table_name = w.tables[table_id].name;
      const int variant = c * 100 + i;

      TemplateDef proto;
      proto.cluster_idx = static_cast<size_t>(c);
      proto.weight = std::exp(rng->Normal(0.0, 1.0));  // heavy-tailed share
      proto.table_id = table_id;

      const double mix = rng->Uniform01();
      TemplateDef def;
      if (mix < 0.50) {
        // Point select; some are locking reads (FOR SHARE semantics).
        proto.cpu_ms_mean = rng->Uniform(1.0, 4.0);
        proto.cpu_sigma = 0.35;
        proto.examined_rows_mean = rng->Uniform(10.0, 200.0);
        if (rng->Bernoulli(0.4)) {
          proto.row_groups_touched = static_cast<int>(rng->UniformInt(1, 2));
          proto.row_lock_mode = dbsim::LockMode::kShared;
        }
        def = MakeTemplate(MakeSelectSql(table_name, variant), proto);
      } else if (mix < 0.65) {
        // Range scan with IO.
        proto.cpu_ms_mean = rng->Uniform(4.0, 15.0);
        proto.cpu_sigma = 0.45;
        proto.io_ms_mean = rng->Uniform(1.0, 5.0);
        proto.examined_rows_mean = rng->Uniform(1000.0, 20000.0);
        def = MakeTemplate(MakeSelectSql(table_name, variant + 1000), proto);
      } else if (mix < 0.72) {
        // Two-table join.
        const uint32_t other =
            home[static_cast<size_t>(rng->UniformInt(0, num_home - 1))];
        proto.cpu_ms_mean = rng->Uniform(6.0, 20.0);
        proto.cpu_sigma = 0.45;
        proto.io_ms_mean = rng->Uniform(0.5, 3.0);
        proto.examined_rows_mean = rng->Uniform(2000.0, 30000.0);
        def = MakeTemplate(
            MakeJoinSelectSql(table_name, w.tables[other].name, variant),
            proto);
      } else if (mix < 0.79) {
        // Heavy reporting/batch scan: large *stable* response-time volume.
        // These are the templates that sit on top of Top-RT pages while a
        // smaller root cause hides below (paper challenge II).
        proto.cpu_ms_mean = rng->Uniform(10.0, 30.0);
        proto.cpu_sigma = 0.5;
        proto.io_ms_mean = rng->Uniform(80.0, 250.0);
        proto.examined_rows_mean = rng->Uniform(3e4, 2e5);
        def = MakeTemplate(MakeSelectSql(table_name, variant + 2000), proto);
      } else if (mix < 0.9) {
        // Point update: exclusive row locks.
        proto.cpu_ms_mean = rng->Uniform(2.0, 6.0);
        proto.cpu_sigma = 0.4;
        proto.examined_rows_mean = rng->Uniform(1.0, 50.0);
        proto.row_groups_touched = static_cast<int>(rng->UniformInt(1, 2));
        proto.row_lock_mode = dbsim::LockMode::kExclusive;
        def = MakeTemplate(MakePointUpdateSql(table_name, variant), proto);
      } else {
        // Insert (distinct keys; no row-group contention modeled).
        proto.cpu_ms_mean = rng->Uniform(1.0, 3.0);
        proto.cpu_sigma = 0.3;
        proto.examined_rows_mean = 1.0;
        def = MakeTemplate(MakeInsertSql(table_name, variant), proto);
      }
      w.templates.push_back(std::move(def));
    }
  }
  return w;
}

namespace {

Injection MakeBusinessSpike(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kBusinessSpike;
  // Rank templates by how much load they carry (qps x service demand,
  // IO included) and spike one of the top carriers: a business surge hits
  // a load-bearing endpoint, and a bounded multiplier then suffices to
  // move the active session.
  std::vector<std::pair<double, size_t>> carriers;
  for (size_t i = 0; i < w->templates.size(); ++i) {
    const TemplateDef& tpl = w->templates[i];
    // Category-1 anomalies are resource anomalies from workload change;
    // exclusive-locking templates would turn the surge into a lock convoy
    // (that is category 3, injected separately).
    if (tpl.mdl_exclusive ||
        (tpl.row_groups_touched > 0 &&
         tpl.row_lock_mode == dbsim::LockMode::kExclusive)) {
      continue;
    }
    const double qps = BaselineQps(*w, i);
    if (qps < 0.5) continue;
    carriers.emplace_back(qps * (tpl.cpu_ms_mean + tpl.io_ms_mean), i);
  }
  assert(!carriers.empty());
  std::sort(carriers.begin(), carriers.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const size_t pick = static_cast<size_t>(rng->UniformInt(
      0, std::min<int64_t>(2, static_cast<int64_t>(carriers.size()) - 1)));
  const size_t idx = carriers[pick].second;
  const TemplateDef& tpl = w->templates[idx];
  const double qps = BaselineQps(*w, idx);
  // Large enough that the surge is visible in the active session (the
  // paper's anomaly cases are all session anomalies).
  const double target_concurrency = rng->Uniform(10.0, 22.0);
  double mult = 1.0 + target_concurrency * 1000.0 /
                          (qps * (tpl.cpu_ms_mean + tpl.io_ms_mean));
  mult = std::clamp(mult, 4.0, 60.0);
  RateOverride ov;
  ov.sql_id = tpl.sql_id;
  ov.start_sec = as;
  ov.end_sec = ae;
  ov.multiplier = mult;
  inj.overrides.push_back(ov);
  inj.root_cause_ids.push_back(tpl.sql_id);
  return inj;
}

Injection MakePoorSql(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kPoorSql;
  const uint32_t table_id = static_cast<uint32_t>(
      rng->UniformInt(0, static_cast<int64_t>(w->tables.size()) - 1));
  const uint32_t other_id = static_cast<uint32_t>(
      rng->UniformInt(0, static_cast<int64_t>(w->tables.size()) - 1));
  TemplateDef proto;
  proto.cluster_idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(w->clusters.size()) - 1));
  proto.weight = 0.0;  // traffic comes purely from the override
  proto.table_id = table_id;
  proto.cpu_ms_mean = rng->Uniform(150.0, 500.0);
  proto.cpu_sigma = 0.3;
  proto.io_ms_mean = rng->Uniform(5.0, 20.0);
  proto.examined_rows_mean = rng->Uniform(1e5, 6e5);
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));
  TemplateDef def = MakeTemplate(
      MakeJoinSelectSql(w->tables[table_id].name, w->tables[other_id].name,
                        variant),
      proto);
  RateOverride ov;
  ov.sql_id = def.sql_id;
  ov.start_sec = as;
  ov.end_sec = ae;
  ov.add_qps = rng->Uniform(12.0, 22.0);
  inj.overrides.push_back(ov);
  inj.root_cause_ids.push_back(def.sql_id);
  w->templates.push_back(std::move(def));
  return inj;
}

/// Traffic (QPS) of templates on each table, weighted by whether they take
/// row locks — used to pick a well-contended table.
uint32_t PickHotTable(const Workload& w, bool require_locking_reads,
                      Rng* rng) {
  std::vector<double> score(w.tables.size(), 0.0);
  for (size_t i = 0; i < w.templates.size(); ++i) {
    const TemplateDef& tpl = w.templates[i];
    const double qps = BaselineQps(w, i);
    double weight = qps;
    if (require_locking_reads) {
      weight = (tpl.row_groups_touched > 0 &&
                tpl.row_lock_mode == dbsim::LockMode::kShared)
                   ? qps
                   : 0.1 * qps;
    }
    score[tpl.table_id] += weight;
  }
  size_t best = 0;
  for (size_t t = 1; t < score.size(); ++t) {
    if (score[t] > score[best]) best = t;
  }
  (void)rng;
  return static_cast<uint32_t>(best);
}

Injection MakeMdlLock(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kMdlLock;
  const uint32_t table_id = PickHotTable(*w, /*require_locking_reads=*/false,
                                         rng);
  TemplateDef proto;
  proto.cluster_idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(w->clusters.size()) - 1));
  proto.weight = 0.0;
  proto.table_id = table_id;
  // A batched online-DDL job: each ALTER chunk holds the exclusive MDL for
  // several seconds, and chunks keep coming for the whole anomaly.
  proto.cpu_ms_mean = rng->Uniform(4000.0, 12000.0);
  proto.cpu_sigma = 0.15;
  proto.examined_rows_mean = 1.0;
  proto.mdl_exclusive = true;
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));
  TemplateDef def =
      MakeTemplate(MakeAlterSql(w->tables[table_id].name, variant), proto);
  RateOverride ov;
  ov.sql_id = def.sql_id;
  ov.start_sec = as;
  ov.end_sec = ae;
  // ~one DDL chunk every 15-40 s.
  ov.add_qps = 1.0 / rng->Uniform(15.0, 40.0);
  inj.overrides.push_back(ov);
  inj.root_cause_ids.push_back(def.sql_id);
  w->templates.push_back(std::move(def));
  return inj;
}

Injection MakeRowLock(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kRowLock;
  const uint32_t table_id = PickHotTable(*w, /*require_locking_reads=*/true,
                                         rng);
  TemplateDef proto;
  proto.cluster_idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(w->clusters.size()) - 1));
  proto.weight = 0.0;
  proto.table_id = table_id;
  // A hot-row batch UPDATE: low rate but long-held exclusive locks on a
  // concentrated key range. The *victims* (locking reads queueing behind
  // the X locks) dominate the response-time ranking, which is exactly why
  // Top-RT misses this root cause (paper Sec. I, challenge III).
  proto.cpu_ms_mean = rng->Uniform(300.0, 600.0);
  proto.cpu_sigma = 0.3;
  proto.examined_rows_mean = rng->Uniform(2000.0, 20000.0);
  proto.row_groups_touched = static_cast<int>(rng->UniformInt(3, 4));
  proto.row_lock_mode = dbsim::LockMode::kExclusive;
  proto.hot_group_limit = 5;  // concentrate the convoy on a hot key range
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));
  TemplateDef def = MakeTemplate(
      MakePointUpdateSql(w->tables[table_id].name, variant), proto);
  RateOverride ov;
  ov.sql_id = def.sql_id;
  ov.start_sec = as;
  ov.end_sec = ae;
  ov.add_qps = rng->Uniform(0.8, 3.5);
  inj.overrides.push_back(ov);
  inj.root_cause_ids.push_back(def.sql_id);
  w->templates.push_back(std::move(def));
  return inj;
}

/// Load-carrying templates (qps x service demand, descending), excluding
/// exclusive lockers — the shared carrier ranking behind the spike-shaped
/// categories.
std::vector<std::pair<double, size_t>> RankCarriers(const Workload& w) {
  std::vector<std::pair<double, size_t>> carriers;
  for (size_t i = 0; i < w.templates.size(); ++i) {
    const TemplateDef& tpl = w.templates[i];
    if (tpl.mdl_exclusive ||
        (tpl.row_groups_touched > 0 &&
         tpl.row_lock_mode == dbsim::LockMode::kExclusive)) {
      continue;
    }
    const double qps = BaselineQps(w, i);
    if (qps < 0.5) continue;
    carriers.emplace_back(qps * (tpl.cpu_ms_mean + tpl.io_ms_mean), i);
  }
  std::sort(carriers.begin(), carriers.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return carriers;
}

Injection MakeFlashSaleFlood(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kFlashSaleFlood;
  // A flash sale floods several load-bearing endpoints of the same
  // business at once (landing page, inventory check, checkout): every
  // flooded template is a root cause, so the case is multi-root by
  // construction even without a second failure mechanism.
  const auto carriers = RankCarriers(*w);
  assert(carriers.size() >= 2);
  const size_t num_flooded = static_cast<size_t>(rng->UniformInt(
      2, std::min<int64_t>(3, static_cast<int64_t>(carriers.size()))));
  for (size_t pick = 0; pick < num_flooded; ++pick) {
    const size_t idx = carriers[pick].second;
    const TemplateDef& tpl = w->templates[idx];
    const double qps = BaselineQps(*w, idx);
    const double target_concurrency = rng->Uniform(6.0, 14.0);
    double mult = 1.0 + target_concurrency * 1000.0 /
                            (qps * (tpl.cpu_ms_mean + tpl.io_ms_mean));
    mult = std::clamp(mult, 5.0, 50.0);
    RateOverride ov;
    ov.sql_id = tpl.sql_id;
    ov.start_sec = as;
    ov.end_sec = ae;
    ov.multiplier = mult;
    inj.overrides.push_back(ov);
    inj.root_cause_ids.push_back(tpl.sql_id);
  }
  return inj;
}

Injection MakeSlowDrift(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kSlowDrift;
  // A plan flip that degrades gradually: the optimizer starts picking a
  // bad join order for a rising share of executions (statistics decaying
  // as the table grows), so a slow variant of an existing query ramps in
  // over the whole window instead of arriving as a step. The per-sample
  // robust-z screen absorbs each tiny increment into its clean baseline;
  // only a forecaster's accumulated residual (CUSUM) sees the creep.
  const uint32_t table_id = static_cast<uint32_t>(
      rng->UniformInt(0, static_cast<int64_t>(w->tables.size()) - 1));
  const uint32_t other_id = static_cast<uint32_t>(
      rng->UniformInt(0, static_cast<int64_t>(w->tables.size()) - 1));
  TemplateDef proto;
  proto.cluster_idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(w->clusters.size()) - 1));
  proto.weight = 0.0;
  proto.table_id = table_id;
  proto.cpu_ms_mean = rng->Uniform(90.0, 180.0);
  proto.cpu_sigma = 0.25;
  proto.io_ms_mean = rng->Uniform(2.0, 10.0);
  proto.examined_rows_mean = rng->Uniform(5e4, 3e5);
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));
  TemplateDef def = MakeTemplate(
      MakeJoinSelectSql(w->tables[table_id].name, w->tables[other_id].name,
                        variant),
      proto);
  // Target full-ramp concurrency deliberately *modest*, reached via a
  // piecewise-linear staircase: RatePlan applies each override inside its
  // own interval, so consecutive segments compose into a ramp whose
  // per-step increment sits far below any per-sample z threshold — the
  // rolling clean baseline absorbs each step, which is what makes this
  // the category a robust-z screen structurally misses.
  const double target_concurrency = rng->Uniform(2.2, 3.2);
  const double peak_qps =
      target_concurrency * 1000.0 / (proto.cpu_ms_mean + proto.io_ms_mean);
  constexpr int kSegments = 30;
  const int64_t span = ae - as;
  for (int seg = 0; seg < kSegments; ++seg) {
    RateOverride ov;
    ov.sql_id = def.sql_id;
    ov.start_sec = as + span * seg / kSegments;
    ov.end_sec = as + span * (seg + 1) / kSegments;
    ov.add_qps = peak_qps * static_cast<double>(seg + 1) /
                 static_cast<double>(kSegments);
    inj.overrides.push_back(ov);
  }
  inj.root_cause_ids.push_back(def.sql_id);
  w->templates.push_back(std::move(def));
  return inj;
}

Injection MakeCacheStampede(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kCacheStampede;
  // A cache expiry sends every miss to the database at once: the hottest
  // point read floods (the misses) while a new heavy recompute query
  // rebuilds the cached aggregate. Both are root causes — killing either
  // one alone leaves half the incident running.
  const auto carriers = RankCarriers(*w);
  assert(!carriers.empty());
  size_t flood_idx = carriers.front().second;
  for (const auto& [load, idx] : carriers) {
    const TemplateDef& tpl = w->templates[idx];
    if (tpl.cpu_ms_mean <= 5.0 && tpl.io_ms_mean <= 1.0) {
      flood_idx = idx;  // prefer a cache-shaped read: cheap and hot
      break;
    }
  }
  const TemplateDef& flood = w->templates[flood_idx];
  const double flood_qps = BaselineQps(*w, flood_idx);
  // Size the miss flood to a target concurrency (a bare rate multiplier
  // on a cheap point read barely moves the session).
  const double flood_target = rng->Uniform(5.0, 9.0);
  double flood_mult =
      1.0 + flood_target * 1000.0 /
                (flood_qps * (flood.cpu_ms_mean + flood.io_ms_mean));
  flood_mult = std::clamp(flood_mult, 10.0, 80.0);
  RateOverride flood_ov;
  flood_ov.sql_id = flood.sql_id;
  flood_ov.start_sec = as;
  flood_ov.end_sec = ae;
  flood_ov.multiplier = flood_mult;
  inj.overrides.push_back(flood_ov);
  inj.root_cause_ids.push_back(flood.sql_id);

  TemplateDef proto;
  proto.cluster_idx = flood.cluster_idx;
  proto.weight = 0.0;
  proto.table_id = flood.table_id;
  proto.cpu_ms_mean = rng->Uniform(100.0, 250.0);
  proto.cpu_sigma = 0.3;
  proto.io_ms_mean = rng->Uniform(5.0, 15.0);
  proto.examined_rows_mean = rng->Uniform(5e4, 4e5);
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));
  TemplateDef def = MakeTemplate(
      MakeSelectSql(w->tables[proto.table_id].name, variant + 3000), proto);
  RateOverride recompute_ov;
  recompute_ov.sql_id = def.sql_id;
  recompute_ov.start_sec = as;
  recompute_ov.end_sec = ae;
  recompute_ov.add_qps = rng->Uniform(5.0, 10.0);
  inj.overrides.push_back(recompute_ov);
  inj.root_cause_ids.push_back(def.sql_id);
  w->templates.push_back(std::move(def));
  return inj;
}

Injection MakeReplicationLag(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kReplicationLag;
  // A backup / replication catch-up job: a low-rate full scan with huge
  // IO demand. Little CPU, little lock footprint — it surfaces through
  // IOPS saturation and queueing delay on everything else, so Top-EN
  // never sees it and Top-RT sees mostly its victims.
  const uint32_t table_id = PickHotTable(*w, /*require_locking_reads=*/false,
                                         rng);
  TemplateDef proto;
  proto.cluster_idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(w->clusters.size()) - 1));
  proto.weight = 0.0;
  proto.table_id = table_id;
  proto.cpu_ms_mean = rng->Uniform(20.0, 60.0);
  proto.cpu_sigma = 0.2;
  proto.io_ms_mean = rng->Uniform(500.0, 900.0);
  proto.examined_rows_mean = rng->Uniform(5e5, 2e6);
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));
  TemplateDef def = MakeTemplate(
      MakeSelectSql(w->tables[table_id].name, variant + 4000), proto);
  RateOverride ov;
  ov.sql_id = def.sql_id;
  ov.start_sec = as;
  ov.end_sec = ae;
  ov.add_qps = rng->Uniform(3.0, 6.0);
  inj.overrides.push_back(ov);
  inj.root_cause_ids.push_back(def.sql_id);
  w->templates.push_back(std::move(def));
  return inj;
}

Injection MakeMigrationStorm(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kMigrationStorm;
  // An online schema migration is two root causes working in concert:
  // the ALTER chunks that take the exclusive MDL, and the backfill
  // UPDATE batches holding row locks on the ranges being rewritten.
  const uint32_t table_id = PickHotTable(*w, /*require_locking_reads=*/false,
                                         rng);
  const int variant = 900 + static_cast<int>(rng->UniformInt(0, 49));

  TemplateDef alter_proto;
  alter_proto.cluster_idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(w->clusters.size()) - 1));
  alter_proto.weight = 0.0;
  alter_proto.table_id = table_id;
  alter_proto.cpu_ms_mean = rng->Uniform(2000.0, 6000.0);
  alter_proto.cpu_sigma = 0.15;
  alter_proto.examined_rows_mean = 1.0;
  alter_proto.mdl_exclusive = true;
  TemplateDef alter_def = MakeTemplate(
      MakeAlterSql(w->tables[table_id].name, variant), alter_proto);
  RateOverride alter_ov;
  alter_ov.sql_id = alter_def.sql_id;
  alter_ov.start_sec = as;
  alter_ov.end_sec = ae;
  alter_ov.add_qps = 1.0 / rng->Uniform(20.0, 45.0);
  inj.overrides.push_back(alter_ov);
  inj.root_cause_ids.push_back(alter_def.sql_id);
  w->templates.push_back(std::move(alter_def));

  TemplateDef backfill_proto;
  backfill_proto.cluster_idx = alter_proto.cluster_idx;
  backfill_proto.weight = 0.0;
  backfill_proto.table_id = table_id;
  backfill_proto.cpu_ms_mean = rng->Uniform(200.0, 450.0);
  backfill_proto.cpu_sigma = 0.3;
  backfill_proto.examined_rows_mean = rng->Uniform(2000.0, 15000.0);
  backfill_proto.row_groups_touched =
      static_cast<int>(rng->UniformInt(2, 4));
  backfill_proto.row_lock_mode = dbsim::LockMode::kExclusive;
  backfill_proto.hot_group_limit = 5;
  TemplateDef backfill_def = MakeTemplate(
      MakePointUpdateSql(w->tables[table_id].name, variant + 5000),
      backfill_proto);
  RateOverride backfill_ov;
  backfill_ov.sql_id = backfill_def.sql_id;
  backfill_ov.start_sec = as;
  backfill_ov.end_sec = ae;
  backfill_ov.add_qps = rng->Uniform(1.0, 3.0);
  inj.overrides.push_back(backfill_ov);
  inj.root_cause_ids.push_back(backfill_def.sql_id);
  w->templates.push_back(std::move(backfill_def));
  return inj;
}

Injection MakeCompound(Workload* w, int64_t as, int64_t ae, Rng* rng) {
  Injection inj;
  inj.type = AnomalyType::kCompound;
  // Two independent mechanisms overlap in time (the second lands a third
  // of the way in): the diagnosis must surface both roots, and a
  // detector sees a compound session signature rather than one clean
  // step. Sub-builders draw from the same rng stream, so the compound
  // case is as deterministic as its parts.
  Injection first;
  Injection second;
  const int64_t mid = as + (ae - as) / 3;
  switch (rng->UniformInt(0, 2)) {
    case 0:
      first = MakeBusinessSpike(w, as, ae, rng);
      second = MakePoorSql(w, mid, ae, rng);
      break;
    case 1:
      first = MakePoorSql(w, as, ae, rng);
      second = MakeRowLock(w, mid, ae, rng);
      break;
    default:
      first = MakeBusinessSpike(w, as, ae, rng);
      second = MakeMdlLock(w, mid, ae, rng);
      break;
  }
  for (const Injection* part : {&first, &second}) {
    inj.overrides.insert(inj.overrides.end(), part->overrides.begin(),
                         part->overrides.end());
    inj.root_cause_ids.insert(inj.root_cause_ids.end(),
                              part->root_cause_ids.begin(),
                              part->root_cause_ids.end());
  }
  return inj;
}

}  // namespace

Injection MakeInjection(AnomalyType type, Workload* workload, int64_t as_sec,
                        int64_t ae_sec, Rng* rng) {
  Injection inj;
  switch (type) {
    case AnomalyType::kBusinessSpike:
      inj = MakeBusinessSpike(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kPoorSql:
      inj = MakePoorSql(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kMdlLock:
      inj = MakeMdlLock(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kRowLock:
      inj = MakeRowLock(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kFlashSaleFlood:
      inj = MakeFlashSaleFlood(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kSlowDrift:
      inj = MakeSlowDrift(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kCacheStampede:
      inj = MakeCacheStampede(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kReplicationLag:
      inj = MakeReplicationLag(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kMigrationStorm:
      inj = MakeMigrationStorm(workload, as_sec, ae_sec, rng);
      break;
    case AnomalyType::kCompound:
      inj = MakeCompound(workload, as_sec, ae_sec, rng);
      break;
  }
  inj.anomaly_start_sec = as_sec;
  inj.anomaly_end_sec = ae_sec;
  return inj;
}

}  // namespace pinsql::workload
