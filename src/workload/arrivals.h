#ifndef PINSQL_WORKLOAD_ARRIVALS_H_
#define PINSQL_WORKLOAD_ARRIVALS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dbsim/types.h"
#include "ts/time_series.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace pinsql::workload {

/// Temporary traffic change applied to one template during [start_sec,
/// end_sec): rate' = rate * multiplier + add_qps. Anomaly injections are
/// expressed as overrides (QPS spikes multiply; new/poor templates add).
struct RateOverride {
  uint64_t sql_id = 0;
  int64_t start_sec = 0;
  int64_t end_sec = 0;
  double multiplier = 1.0;
  double add_qps = 0.0;
};

/// Precomputed per-template arrival-rate curves over a window: cluster
/// base rate x diurnal modulation x shared AR(1) cluster noise x template
/// weight, plus overrides. The shared cluster noise is what gives
/// same-business templates correlated #execution trends (paper Sec. VI).
class RatePlan {
 public:
  /// `seed` drives the cluster-noise realization; use a different seed per
  /// simulated window (today vs N-days-ago history).
  RatePlan(const Workload& workload, const std::vector<RateOverride>& overrides,
           int64_t start_sec, int64_t end_sec, uint64_t seed);

  /// Arrival rate (QPS) of templates[template_idx] at second `sec`.
  double Rate(size_t template_idx, int64_t sec) const;

  int64_t start_sec() const { return start_sec_; }
  int64_t end_sec() const { return end_sec_; }

 private:
  const Workload& workload_;
  int64_t start_sec_;
  int64_t end_sec_;
  /// cluster_noise_[c][t - start_sec]: multiplicative noise path.
  std::vector<std::vector<double>> cluster_noise_;
  /// Normalized weight per template within its cluster.
  std::vector<double> weight_share_;
  /// Per-template overrides, indexed like workload.templates.
  std::vector<std::vector<RateOverride>> overrides_;
};

/// Samples Poisson arrivals for every template over the window and
/// instantiates full query specs (resource jitter, row-group lock sets).
/// Results are sorted by arrival time.
std::vector<dbsim::QueryArrival> GenerateArrivals(
    const Workload& workload, const std::vector<RateOverride>& overrides,
    int64_t start_sec, int64_t end_sec, uint64_t seed);

/// Cheap path for history windows: only the per-second #execution counts
/// (no specs, no simulation) — the history-trend verifier needs nothing
/// else.
std::unordered_map<uint64_t, TimeSeries> GenerateExecutionCounts(
    const Workload& workload, const std::vector<RateOverride>& overrides,
    int64_t start_sec, int64_t end_sec, uint64_t seed);

/// Instantiates one query spec for the template (resource jitter + sampled
/// lock set). Exposed for closed-loop drivers and tests.
dbsim::QuerySpec InstantiateSpec(const Workload& workload,
                                 const TemplateDef& tpl, Rng* rng);

}  // namespace pinsql::workload

#endif  // PINSQL_WORKLOAD_ARRIVALS_H_
