#include "workload/arrivals.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pinsql::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;
constexpr double kSecondsPerDay = 86400.0;

double Diurnal(const BusinessCluster& cluster, int64_t sec) {
  double mult = 1.0;
  if (cluster.diurnal_amplitude != 0.0) {
    const double phase = kTwoPi * static_cast<double>(sec) / kSecondsPerDay;
    mult *= 1.0 + cluster.diurnal_amplitude * std::sin(phase);
  }
  if (cluster.osc_amplitude != 0.0 && cluster.osc_period_sec > 0.0) {
    mult *= 1.0 + cluster.osc_amplitude *
                      std::sin(kTwoPi * static_cast<double>(sec) /
                                   cluster.osc_period_sec +
                               cluster.osc_phase);
  }
  return std::max(mult, 0.0);
}

}  // namespace

RatePlan::RatePlan(const Workload& workload,
                   const std::vector<RateOverride>& overrides,
                   int64_t start_sec, int64_t end_sec, uint64_t seed)
    : workload_(workload), start_sec_(start_sec), end_sec_(end_sec) {
  assert(end_sec >= start_sec);
  const size_t n = static_cast<size_t>(end_sec - start_sec);

  // Shared AR(1) multiplicative noise per cluster. Each cluster gets its
  // own deterministic stream derived from (seed, cluster index).
  Rng base(seed);
  cluster_noise_.resize(workload.clusters.size());
  for (size_t c = 0; c < workload.clusters.size(); ++c) {
    Rng rng = base.Fork(c + 1);
    const BusinessCluster& cluster = workload.clusters[c];
    std::vector<double>& path = cluster_noise_[c];
    path.resize(n);
    double log_noise = 0.0;
    for (size_t i = 0; i < n; ++i) {
      log_noise = cluster.noise_rho * log_noise +
                  rng.Normal(0.0, cluster.noise_sigma);
      path[i] = std::exp(log_noise);
    }
  }

  // Normalized per-cluster weight shares.
  std::vector<double> cluster_weight(workload.clusters.size(), 0.0);
  for (const TemplateDef& tpl : workload.templates) {
    cluster_weight[tpl.cluster_idx] += tpl.weight;
  }
  weight_share_.resize(workload.templates.size());
  for (size_t i = 0; i < workload.templates.size(); ++i) {
    const TemplateDef& tpl = workload.templates[i];
    weight_share_[i] = cluster_weight[tpl.cluster_idx] > 0.0
                           ? tpl.weight / cluster_weight[tpl.cluster_idx]
                           : 0.0;
  }

  overrides_.resize(workload.templates.size());
  for (const RateOverride& ov : overrides) {
    const int idx = workload.FindTemplateIndex(ov.sql_id);
    if (idx >= 0) overrides_[static_cast<size_t>(idx)].push_back(ov);
  }
}

double RatePlan::Rate(size_t template_idx, int64_t sec) const {
  assert(template_idx < workload_.templates.size());
  const TemplateDef& tpl = workload_.templates[template_idx];
  const BusinessCluster& cluster = workload_.clusters[tpl.cluster_idx];
  const size_t offset = static_cast<size_t>(sec - start_sec_);
  double rate = cluster.base_qps * weight_share_[template_idx] *
                Diurnal(cluster, sec) * cluster_noise_[tpl.cluster_idx][offset];
  for (const RateOverride& ov : overrides_[template_idx]) {
    if (sec >= ov.start_sec && sec < ov.end_sec) {
      rate = rate * ov.multiplier + ov.add_qps;
    }
  }
  return std::max(rate, 0.0);
}

dbsim::QuerySpec InstantiateSpec(const Workload& workload,
                                 const TemplateDef& tpl, Rng* rng) {
  dbsim::QuerySpec spec;
  spec.sql_id = tpl.sql_id;
  spec.cpu_ms = rng->LogNormalWithMean(tpl.cpu_ms_mean, tpl.cpu_sigma);
  spec.io_ms =
      tpl.io_ms_mean > 0.0 ? rng->LogNormalWithMean(tpl.io_ms_mean, 0.5)
                           : 0.0;
  spec.examined_rows = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::llround(rng->LogNormalWithMean(
                 std::max(tpl.examined_rows_mean, 1.0), 0.3))));

  // Every query holds a metadata lock on its table for its whole duration;
  // DDL takes it exclusive (this is the MySQL behaviour that produces the
  // "Waiting for table metadata lock" pile-ups of paper Sec. II).
  dbsim::LockRequest mdl;
  mdl.key = dbsim::MakeMdlKey(tpl.table_id);
  mdl.mode = tpl.mdl_exclusive ? dbsim::LockMode::kExclusive
                               : dbsim::LockMode::kShared;
  spec.locks.push_back(mdl);

  if (tpl.row_groups_touched > 0) {
    uint32_t hot = 8;
    for (const TableDef& table : workload.tables) {
      if (table.id == tpl.table_id) {
        hot = table.hot_row_groups;
        break;
      }
    }
    if (tpl.hot_group_limit > 0) hot = std::min(hot, tpl.hot_group_limit);
    for (int g = 0; g < tpl.row_groups_touched; ++g) {
      dbsim::LockRequest row;
      row.key = dbsim::MakeRowKey(
          tpl.table_id,
          static_cast<uint32_t>(rng->UniformInt(0, hot - 1)));
      row.mode = tpl.row_lock_mode;
      spec.locks.push_back(row);
    }
  }
  return spec;
}

std::vector<dbsim::QueryArrival> GenerateArrivals(
    const Workload& workload, const std::vector<RateOverride>& overrides,
    int64_t start_sec, int64_t end_sec, uint64_t seed) {
  RatePlan plan(workload, overrides, start_sec, end_sec, seed);
  Rng base(seed ^ 0xA5A5A5A5ULL);
  std::vector<dbsim::QueryArrival> arrivals;
  for (size_t i = 0; i < workload.templates.size(); ++i) {
    Rng rng = base.Fork(i + 1);
    const TemplateDef& tpl = workload.templates[i];
    for (int64_t sec = start_sec; sec < end_sec; ++sec) {
      const double rate = plan.Rate(i, sec);
      if (rate <= 0.0) continue;
      const int64_t count = rng.Poisson(rate);
      for (int64_t k = 0; k < count; ++k) {
        dbsim::QueryArrival arrival;
        arrival.arrival_ms = sec * 1000 + rng.UniformInt(0, 999);
        arrival.spec = InstantiateSpec(workload, tpl, &rng);
        arrivals.push_back(std::move(arrival));
      }
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const dbsim::QueryArrival& a, const dbsim::QueryArrival& b) {
              return a.arrival_ms < b.arrival_ms;
            });
  return arrivals;
}

std::unordered_map<uint64_t, TimeSeries> GenerateExecutionCounts(
    const Workload& workload, const std::vector<RateOverride>& overrides,
    int64_t start_sec, int64_t end_sec, uint64_t seed) {
  RatePlan plan(workload, overrides, start_sec, end_sec, seed);
  Rng base(seed ^ 0xA5A5A5A5ULL);
  std::unordered_map<uint64_t, TimeSeries> out;
  const size_t n = static_cast<size_t>(end_sec - start_sec);
  for (size_t i = 0; i < workload.templates.size(); ++i) {
    Rng rng = base.Fork(i + 1);
    const TemplateDef& tpl = workload.templates[i];
    TimeSeries series(start_sec, 1, n);
    for (int64_t sec = start_sec; sec < end_sec; ++sec) {
      const double rate = plan.Rate(i, sec);
      if (rate > 0.0) {
        series.AtTime(sec) = static_cast<double>(rng.Poisson(rate));
      }
    }
    out.emplace(tpl.sql_id, std::move(series));
  }
  return out;
}

}  // namespace pinsql::workload
