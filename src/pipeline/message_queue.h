#ifndef PINSQL_PIPELINE_MESSAGE_QUEUE_H_
#define PINSQL_PIPELINE_MESSAGE_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace pinsql::pipeline {

/// In-process stand-in for the Kafka layer of the paper's collection
/// pipeline (Sec. IV-A): a topic is a set of partitions, producers publish
/// records partitioned by key, and consumers poll per-partition with
/// explicit offsets. Single-process and lock-free by design — the
/// substitution keeps the data flow and ordering semantics (per-partition
/// FIFO, at-least-once re-reads by rewinding offsets) without the cluster.
template <typename T>
class Topic {
 public:
  explicit Topic(std::string name, size_t num_partitions = 4)
      : name_(std::move(name)), partitions_(num_partitions) {
    assert(num_partitions > 0);
  }

  const std::string& name() const { return name_; }
  size_t num_partitions() const { return partitions_.size(); }

  /// Publishes a record to the partition selected by `key` (stable hash).
  void Publish(uint64_t key, T record) {
    partitions_[key % partitions_.size()].push_back(std::move(record));
  }

  /// Total records across partitions.
  size_t TotalSize() const {
    size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  const std::vector<T>& Partition(size_t i) const { return partitions_[i]; }

 private:
  std::string name_;
  std::vector<std::vector<T>> partitions_;
};

/// Polling consumer with per-partition offsets (consumer-group semantics
/// for a group of one). Poll drains up to `max_records` in round-robin
/// partition order.
template <typename T>
class Consumer {
 public:
  explicit Consumer(const Topic<T>* topic)
      : topic_(topic), offsets_(topic->num_partitions(), 0) {}

  /// Returns up to max_records unread records and advances the offsets.
  std::vector<T> Poll(size_t max_records) {
    std::vector<T> out;
    out.reserve(max_records);
    bool progress = true;
    while (out.size() < max_records && progress) {
      progress = false;
      for (size_t p = 0; p < topic_->num_partitions(); ++p) {
        const auto& part = topic_->Partition(p);
        if (offsets_[p] < part.size() && out.size() < max_records) {
          out.push_back(part[offsets_[p]++]);
          progress = true;
        }
      }
    }
    return out;
  }

  /// Unread records remaining.
  size_t Lag() const {
    size_t lag = 0;
    for (size_t p = 0; p < topic_->num_partitions(); ++p) {
      lag += topic_->Partition(p).size() - offsets_[p];
    }
    return lag;
  }

  /// Rewinds all offsets to the beginning (re-consume).
  void SeekToBeginning() {
    for (auto& off : offsets_) off = 0;
  }

 private:
  const Topic<T>* topic_;
  std::vector<size_t> offsets_;
};

}  // namespace pinsql::pipeline

#endif  // PINSQL_PIPELINE_MESSAGE_QUEUE_H_
