#ifndef PINSQL_PIPELINE_MESSAGE_QUEUE_H_
#define PINSQL_PIPELINE_MESSAGE_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace pinsql::pipeline {

/// In-process stand-in for the Kafka layer of the paper's collection
/// pipeline (Sec. IV-A): a topic is a set of partitions, producers publish
/// records partitioned by key, and consumers poll per-partition with
/// explicit offsets.
///
/// Thread-safety: every partition is guarded by its own mutex, so any
/// number of producers may Publish concurrently (multi-producer) and any
/// number of readers may snapshot/poll concurrently. Per-partition FIFO
/// order is the publish order under that partition's lock — records of one
/// key never reorder. Offsets live in consumers, so concurrent consumers
/// over *disjoint* partitions never contend on shared offset state.
template <typename T>
class Topic {
 public:
  explicit Topic(std::string name, size_t num_partitions = 4)
      : name_(std::move(name)), partitions_(num_partitions) {
    assert(num_partitions > 0);
  }

  Topic(const Topic&) = delete;
  Topic& operator=(const Topic&) = delete;

  const std::string& name() const { return name_; }
  size_t num_partitions() const { return partitions_.size(); }

  /// Publishes a record to the partition selected by `key` (stable hash).
  /// Safe to call from any number of threads.
  void Publish(uint64_t key, T record) {
    Shard& shard = partitions_[key % partitions_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.records.push_back(std::move(record));
  }

  /// Records currently in partition `i`.
  size_t PartitionSize(size_t i) const {
    const Shard& shard = partitions_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.records.size();
  }

  /// Total records across partitions. A moving target while producers are
  /// active (partitions are summed one lock at a time).
  size_t TotalSize() const {
    size_t n = 0;
    for (size_t i = 0; i < partitions_.size(); ++i) n += PartitionSize(i);
    return n;
  }

  /// Snapshot copy of partition `i` (the records published so far, FIFO).
  std::vector<T> Partition(size_t i) const {
    const Shard& shard = partitions_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.records;
  }

  /// Copies up to `max_records` records of partition `p` starting at
  /// `offset` into `out` (appended). Returns the number copied. This is
  /// the consumer primitive: it never blocks producers for longer than the
  /// copy and never observes a half-written record.
  size_t ReadPartition(size_t p, size_t offset, size_t max_records,
                       std::vector<T>* out) const {
    const Shard& shard = partitions_[p];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (offset >= shard.records.size()) return 0;
    const size_t n =
        std::min(max_records, shard.records.size() - offset);
    out->insert(out->end(), shard.records.begin() + offset,
                shard.records.begin() + offset + n);
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<T> records;
  };

  std::string name_;
  std::vector<Shard> partitions_;
};

/// Polling consumer with per-partition offsets (consumer-group semantics
/// for a group of one). Poll drains up to `max_records` in round-robin
/// partition order.
///
/// A Consumer instance is owned by one thread at a time; for parallel
/// consumption give each thread its own Consumer over disjoint partitions
/// (PollPartition) — the topic side is fully thread-safe.
template <typename T>
class Consumer {
 public:
  explicit Consumer(const Topic<T>* topic)
      : topic_(topic), offsets_(topic->num_partitions(), 0) {}

  /// Returns up to max_records unread records and advances the offsets,
  /// visiting partitions round-robin one record at a time (preserves the
  /// seed's interleaving so serial consumers see identical batches).
  std::vector<T> Poll(size_t max_records) {
    std::vector<T> out;
    out.reserve(max_records);
    bool progress = true;
    while (out.size() < max_records && progress) {
      progress = false;
      for (size_t p = 0; p < topic_->num_partitions(); ++p) {
        if (out.size() >= max_records) break;
        if (topic_->ReadPartition(p, offsets_[p], 1, &out) > 0) {
          ++offsets_[p];
          progress = true;
        }
      }
    }
    return out;
  }

  /// Drains up to max_records from one partition only (the per-partition
  /// consumer-thread primitive). Appends nothing on an empty partition.
  std::vector<T> PollPartition(size_t p, size_t max_records) {
    std::vector<T> out;
    const size_t n =
        topic_->ReadPartition(p, offsets_[p], max_records, &out);
    offsets_[p] += n;
    return out;
  }

  /// Unread records remaining (approximate while producers are active).
  size_t Lag() const {
    size_t lag = 0;
    for (size_t p = 0; p < topic_->num_partitions(); ++p) {
      lag += topic_->PartitionSize(p) - offsets_[p];
    }
    return lag;
  }

  /// Rewinds all offsets to the beginning (re-consume).
  void SeekToBeginning() {
    for (auto& off : offsets_) off = 0;
  }

 private:
  const Topic<T>* topic_;
  std::vector<size_t> offsets_;
};

}  // namespace pinsql::pipeline

#endif  // PINSQL_PIPELINE_MESSAGE_QUEUE_H_
