#ifndef PINSQL_PIPELINE_TEMPLATE_METRICS_H_
#define PINSQL_PIPELINE_TEMPLATE_METRICS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logstore/log_store.h"
#include "ts/time_series.h"

namespace pinsql {

/// Per-template aggregated metric series over a window (paper Sec. IV-A):
/// metric_{Q,t} = Aggregate({metric(q) : q in Q, t(q) in [t, t+dt)}).
/// All three series share the window's start time and interval.
struct TemplateSeries {
  uint64_t sql_id = 0;
  TimeSeries execution_count;    // count aggregate  (#execution)
  TimeSeries total_response_ms;  // sum aggregate of tres
  TimeSeries examined_rows;      // sum aggregate of #examined_rows
};

/// Aggregated template metrics for one instance and one time window.
/// Produced by the StreamAggregator at 1 s granularity; 1 min granularity
/// is derived via Resample.
///
/// Memory layout (DESIGN.md §13): the series live in one contiguous
/// vector in first-touch order — scans over every template (AllSorted,
/// TotalResponseAcrossTemplates, the diagnoser's template loops) stream
/// sequentially instead of chasing hash-map nodes; a side table maps
/// sql_id to its slot. A window whose length is not a multiple of the
/// interval gets a trailing *partial* bucket (ceil sizing), matching
/// TimeSeries::Resample, so resampled shards merge into directly
/// aggregated stores without losing the tail.
///
/// Pointer stability: TemplateSeries pointers returned by Find / AllSorted
/// are invalidated by any subsequent mutation (Accumulate*, MergeFrom) —
/// the usage pattern everywhere is build-then-read.
class TemplateMetricsStore {
 public:
  TemplateMetricsStore() = default;
  /// Window [start_sec, end_sec) at `interval_sec` granularity.
  TemplateMetricsStore(int64_t start_sec, int64_t end_sec,
                       int64_t interval_sec = 1);

  int64_t start_sec() const { return start_sec_; }
  int64_t end_sec() const { return end_sec_; }
  int64_t interval_sec() const { return interval_sec_; }
  size_t num_templates() const { return series_.size(); }

  /// Folds one query-log record into the aggregates. Records outside the
  /// window are ignored (late/early data).
  void Accumulate(const QueryLogRecord& record);

  /// Folds an already-aggregated cell — the count / response-time / rows
  /// totals of one (sql_id, bucket) pair — into the store. The online
  /// ingestor's ring-buffer snapshot uses this: each ring cell is a
  /// sequential fold over that template's records, so cell insertion order
  /// cannot change any sum and the snapshot is bit-deterministic. Cells
  /// outside the window are ignored, matching Accumulate.
  void AccumulateCell(uint64_t sql_id, int64_t t_sec, double count,
                      double total_response_ms, double examined_rows);

  /// Lookup; nullptr when the template never executed in the window.
  /// Invalidated by mutation (see pointer-stability note above).
  const TemplateSeries* Find(uint64_t sql_id) const;

  /// Contiguous series in first-touch (accumulation) order — the scan
  /// order for callers that do not need sorted ids.
  const std::vector<TemplateSeries>& series() const { return series_; }

  /// Stable iteration order (sorted by sql_id) for deterministic results.
  std::vector<const TemplateSeries*> AllSorted() const;
  std::vector<uint64_t> SqlIdsSorted() const;

  /// Sum of total_response_ms across all templates, per interval. This is
  /// the "Estimate by RT" proxy for the active session (Table III).
  TimeSeries TotalResponseAcrossTemplates() const;

  /// Re-aggregated copy at a coarser granularity (e.g. 60 s). A window
  /// length that is not a multiple of the new interval yields a trailing
  /// partial bucket aggregated from the seconds available (exactly
  /// TimeSeries::Resample semantics).
  TemplateMetricsStore Resample(int64_t new_interval_sec) const;

  /// Folds a shard produced over the same window/interval into this store:
  /// templates unknown here are moved in, overlapping templates have their
  /// series summed element-wise. Shards merged in a fixed order yield a
  /// deterministic result; shards with *disjoint* template sets (the
  /// sql_id-sharded parallel aggregation paths) merge with no floating-
  /// point additions at all, so the merged store is bit-identical to the
  /// serial aggregation.
  void MergeFrom(TemplateMetricsStore&& shard);

 private:
  TemplateSeries* FindOrCreate(uint64_t sql_id);
  /// Buckets the window spans at interval_sec_ granularity — ceil, so a
  /// trailing partial interval gets a bucket (the Resample round-trip
  /// invariant; see class comment).
  size_t num_buckets() const;

  int64_t start_sec_ = 0;
  int64_t end_sec_ = 0;
  int64_t interval_sec_ = 1;
  /// Parallel pair: series_ holds the payloads contiguously in
  /// first-touch order; slot_ maps sql_id -> index into series_.
  std::vector<TemplateSeries> series_;
  std::unordered_map<uint64_t, uint32_t> slot_;
};

}  // namespace pinsql

#endif  // PINSQL_PIPELINE_TEMPLATE_METRICS_H_
