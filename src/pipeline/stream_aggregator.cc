#include "pipeline/stream_aggregator.h"

namespace pinsql {

StreamAggregator::StreamAggregator(pipeline::Topic<QueryLogRecord>* topic,
                                   int64_t start_sec, int64_t end_sec)
    : consumer_(topic), metrics_(start_sec, end_sec, /*interval_sec=*/1) {}

size_t StreamAggregator::PumpOnce(size_t max_records) {
  const std::vector<QueryLogRecord> batch = consumer_.Poll(max_records);
  for (const QueryLogRecord& record : batch) {
    metrics_.Accumulate(record);
    if (log_store_ != nullptr) log_store_->Append(record);
  }
  return batch.size();
}

size_t StreamAggregator::PumpAll() {
  size_t total = 0;
  while (true) {
    const size_t n = PumpOnce();
    if (n == 0) break;
    total += n;
  }
  return total;
}

TemplateMetricsStore AggregateWindow(const LogStore& store, int64_t start_sec,
                                     int64_t end_sec, int64_t interval_sec) {
  TemplateMetricsStore metrics(start_sec, end_sec, interval_sec);
  store.ScanRange(start_sec * 1000, end_sec * 1000,
                  [&metrics](const QueryLogRecord& record) {
                    metrics.Accumulate(record);
                  });
  return metrics;
}

}  // namespace pinsql
