#include "pipeline/stream_aggregator.h"

#include <mutex>
#include <thread>
#include <utility>

namespace pinsql {

StreamAggregator::StreamAggregator(pipeline::Topic<QueryLogRecord>* topic,
                                   int64_t start_sec, int64_t end_sec)
    : consumer_(topic), metrics_(start_sec, end_sec, /*interval_sec=*/1) {}

size_t StreamAggregator::PumpOnce(size_t max_records) {
  const std::vector<QueryLogRecord> batch = consumer_.Poll(max_records);
  for (const QueryLogRecord& record : batch) {
    metrics_.Accumulate(record);
    if (log_store_ != nullptr) log_store_->Append(record);
  }
  return batch.size();
}

size_t StreamAggregator::PumpAll() {
  size_t total = 0;
  while (true) {
    const size_t n = PumpOnce();
    if (n == 0) break;
    total += n;
  }
  return total;
}

ParallelStreamAggregator::ParallelStreamAggregator(
    pipeline::Topic<QueryLogRecord>* topic, int64_t start_sec,
    int64_t end_sec)
    : topic_(topic),
      start_sec_(start_sec),
      end_sec_(end_sec),
      offsets_(topic->num_partitions(), 0),
      merged_(start_sec, end_sec, /*interval_sec=*/1) {
  shards_.reserve(topic->num_partitions());
  for (size_t p = 0; p < topic->num_partitions(); ++p) {
    shards_.emplace_back(start_sec, end_sec, /*interval_sec=*/1);
  }
}

size_t ParallelStreamAggregator::PumpAll() {
  const size_t num_partitions = topic_->num_partitions();
  std::vector<size_t> consumed(num_partitions, 0);
  std::mutex archive_mu;

  auto drain_partition = [&](size_t p) {
    std::vector<QueryLogRecord> batch;
    while (true) {
      batch.clear();
      const size_t n =
          topic_->ReadPartition(p, offsets_[p], /*max_records=*/4096,
                                &batch);
      if (n == 0) break;
      offsets_[p] += n;
      consumed[p] += n;
      for (const QueryLogRecord& record : batch) {
        shards_[p].Accumulate(record);
      }
      if (log_store_ != nullptr) {
        std::lock_guard<std::mutex> lock(archive_mu);
        for (const QueryLogRecord& record : batch) {
          log_store_->Append(record);
        }
      }
    }
  };

  // One consumer thread per partition (the Kafka consumer-group shape).
  std::vector<std::thread> threads;
  threads.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    threads.emplace_back(drain_partition, p);
  }
  for (std::thread& t : threads) t.join();

  // Deterministic merge: the view is rebuilt from scratch out of shard
  // copies (partition order, each shard's templates in sql_id order). The
  // shards themselves persist, so the next incremental pump continues each
  // template's sequential sum instead of adding a partial to a partial.
  size_t total = 0;
  merged_ = TemplateMetricsStore(start_sec_, end_sec_, /*interval_sec=*/1);
  for (size_t p = 0; p < num_partitions; ++p) {
    total += consumed[p];
    TemplateMetricsStore copy = shards_[p];
    merged_.MergeFrom(std::move(copy));
  }
  return total;
}

TemplateMetricsStore AggregateWindow(const LogStore& store, int64_t start_sec,
                                     int64_t end_sec, int64_t interval_sec) {
  TemplateMetricsStore metrics(start_sec, end_sec, interval_sec);
  store.ScanRange(start_sec * 1000, end_sec * 1000,
                  [&metrics](const QueryLogRecord& record) {
                    metrics.Accumulate(record);
                  });
  return metrics;
}

TemplateMetricsStore AggregateWindow(const LogStore& store, int64_t start_sec,
                                     int64_t end_sec, int64_t interval_sec,
                                     util::ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    return AggregateWindow(store, start_sec, end_sec, interval_sec);
  }
  const size_t num_shards = static_cast<size_t>(pool->num_threads());
  // Force the lazy sort once, outside the parallel region, so the shard
  // scans below are pure concurrent reads.
  (void)store.SortedRecords();

  std::vector<TemplateMetricsStore> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards.emplace_back(start_sec, end_sec, interval_sec);
  }
  pool->ParallelFor(num_shards, [&](size_t s) {
    store.ScanRange(start_sec * 1000, end_sec * 1000,
                    [&, s](const QueryLogRecord& record) {
                      if (record.sql_id % num_shards == s) {
                        shards[s].Accumulate(record);
                      }
                    });
  });

  TemplateMetricsStore metrics(start_sec, end_sec, interval_sec);
  for (size_t s = 0; s < num_shards; ++s) {
    metrics.MergeFrom(std::move(shards[s]));
  }
  return metrics;
}

}  // namespace pinsql
