#ifndef PINSQL_PIPELINE_STREAM_AGGREGATOR_H_
#define PINSQL_PIPELINE_STREAM_AGGREGATOR_H_

#include <cstdint>
#include <vector>

#include "logstore/log_store.h"
#include "pipeline/message_queue.h"
#include "pipeline/template_metrics.h"
#include "util/thread_pool.h"

namespace pinsql {

/// The Flink stand-in (paper Sec. IV-A): consumes raw query-log records
/// from a Topic<QueryLogRecord> and folds them into per-template
/// time-bucketed aggregates. Also persists the raw records into a LogStore
/// (the "asynchronously stored into LogStore" path) when one is attached.
class StreamAggregator {
 public:
  /// Aggregates into the window [start_sec, end_sec) at 1 s granularity.
  StreamAggregator(pipeline::Topic<QueryLogRecord>* topic, int64_t start_sec,
                   int64_t end_sec);

  /// Optional: also archive consumed records into `store`.
  void AttachLogStore(LogStore* store) { log_store_ = store; }

  /// Consumes up to `max_records` from the topic. Returns records consumed.
  size_t PumpOnce(size_t max_records = 4096);
  /// Consumes until the topic is drained. Returns records consumed.
  size_t PumpAll();

  const TemplateMetricsStore& metrics() const { return metrics_; }
  TemplateMetricsStore& metrics() { return metrics_; }

 private:
  pipeline::Consumer<QueryLogRecord> consumer_;
  TemplateMetricsStore metrics_;
  LogStore* log_store_ = nullptr;
};

/// Multi-threaded Flink stand-in: one consumer thread per topic partition,
/// each folding its partition into a private TemplateMetricsStore shard;
/// PumpAll() joins the threads and merges the shards in partition order.
///
/// When producers key Publish() by sql_id (the pipeline's natural keying —
/// it is what gives Kafka per-template ordering), every template lives in
/// exactly one partition, so the shard merge moves disjoint series and the
/// merged store is bit-identical to a serial StreamAggregator over the
/// same topic. With any other keying the shards are summed element-wise
/// deterministically (partition order), which may differ from the serial
/// fold by floating-point rounding only.
class ParallelStreamAggregator {
 public:
  ParallelStreamAggregator(pipeline::Topic<QueryLogRecord>* topic,
                           int64_t start_sec, int64_t end_sec);

  /// Optional: archive consumed records (appends are serialized across
  /// consumer threads; the archive's arrival-time scan order is restored
  /// by the LogStore's lazy sort).
  void AttachLogStore(LogStore* store) { log_store_ = store; }

  /// Drains every partition concurrently (one thread per partition) and
  /// rebuilds the merged view. Returns records consumed. May be called
  /// again after more records were published; already-consumed offsets and
  /// the per-partition shards persist, so a template's cell is always one
  /// sequential sum over its full record stream — incremental pumps stay
  /// bit-identical to the serial aggregator, never `(partial) + (rest)`.
  size_t PumpAll();

  const TemplateMetricsStore& metrics() const { return merged_; }
  TemplateMetricsStore& metrics() { return merged_; }

 private:
  pipeline::Topic<QueryLogRecord>* topic_;
  int64_t start_sec_;
  int64_t end_sec_;
  std::vector<size_t> offsets_;  // per-partition consumed offsets
  std::vector<TemplateMetricsStore> shards_;  // one per partition
  TemplateMetricsStore merged_;
  LogStore* log_store_ = nullptr;
};

/// Batch convenience used by the diagnosis path: aggregates the records of
/// an existing LogStore over [start_sec, end_sec) without a queue.
TemplateMetricsStore AggregateWindow(const LogStore& store, int64_t start_sec,
                                     int64_t end_sec,
                                     int64_t interval_sec = 1);

/// Parallel variant: shards templates across the pool (shard = sql_id
/// modulo pool size), each shard scanning the window and accumulating only
/// its own templates, then merges the disjoint shards in shard order. The
/// per-template series see their records in the same arrival order as the
/// serial scan, so the result is bit-identical to AggregateWindow. Falls
/// back to the serial path when `pool` is null or single-threaded.
TemplateMetricsStore AggregateWindow(const LogStore& store, int64_t start_sec,
                                     int64_t end_sec, int64_t interval_sec,
                                     util::ThreadPool* pool);

}  // namespace pinsql

#endif  // PINSQL_PIPELINE_STREAM_AGGREGATOR_H_
