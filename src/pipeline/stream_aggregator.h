#ifndef PINSQL_PIPELINE_STREAM_AGGREGATOR_H_
#define PINSQL_PIPELINE_STREAM_AGGREGATOR_H_

#include <cstdint>

#include "logstore/log_store.h"
#include "pipeline/message_queue.h"
#include "pipeline/template_metrics.h"

namespace pinsql {

/// The Flink stand-in (paper Sec. IV-A): consumes raw query-log records
/// from a Topic<QueryLogRecord> and folds them into per-template
/// time-bucketed aggregates. Also persists the raw records into a LogStore
/// (the "asynchronously stored into LogStore" path) when one is attached.
class StreamAggregator {
 public:
  /// Aggregates into the window [start_sec, end_sec) at 1 s granularity.
  StreamAggregator(pipeline::Topic<QueryLogRecord>* topic, int64_t start_sec,
                   int64_t end_sec);

  /// Optional: also archive consumed records into `store`.
  void AttachLogStore(LogStore* store) { log_store_ = store; }

  /// Consumes up to `max_records` from the topic. Returns records consumed.
  size_t PumpOnce(size_t max_records = 4096);
  /// Consumes until the topic is drained. Returns records consumed.
  size_t PumpAll();

  const TemplateMetricsStore& metrics() const { return metrics_; }
  TemplateMetricsStore& metrics() { return metrics_; }

 private:
  pipeline::Consumer<QueryLogRecord> consumer_;
  TemplateMetricsStore metrics_;
  LogStore* log_store_ = nullptr;
};

/// Batch convenience used by the diagnosis path: aggregates the records of
/// an existing LogStore over [start_sec, end_sec) without a queue.
TemplateMetricsStore AggregateWindow(const LogStore& store, int64_t start_sec,
                                     int64_t end_sec,
                                     int64_t interval_sec = 1);

}  // namespace pinsql

#endif  // PINSQL_PIPELINE_STREAM_AGGREGATOR_H_
