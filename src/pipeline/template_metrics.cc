#include "pipeline/template_metrics.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pinsql {

TemplateMetricsStore::TemplateMetricsStore(int64_t start_sec, int64_t end_sec,
                                           int64_t interval_sec)
    : start_sec_(start_sec), end_sec_(end_sec), interval_sec_(interval_sec) {
  assert(end_sec >= start_sec);
  assert(interval_sec > 0);
}

size_t TemplateMetricsStore::num_buckets() const {
  // Ceil, not floor: a window whose length is not a multiple of the
  // interval keeps its trailing partial bucket, exactly as
  // TimeSeries::Resample shapes its output — so a Resample()d shard and a
  // store accumulated directly at the coarse interval have identical
  // series shapes and MergeFrom round-trips the tail.
  if (interval_sec_ <= 0) return 0;
  return static_cast<size_t>((end_sec_ - start_sec_ + interval_sec_ - 1) /
                             interval_sec_);
}

TemplateSeries* TemplateMetricsStore::FindOrCreate(uint64_t sql_id) {
  auto it = slot_.find(sql_id);
  if (it != slot_.end()) return &series_[it->second];
  const size_t n = num_buckets();
  TemplateSeries series;
  series.sql_id = sql_id;
  series.execution_count = TimeSeries(start_sec_, interval_sec_, n);
  series.total_response_ms = TimeSeries(start_sec_, interval_sec_, n);
  series.examined_rows = TimeSeries(start_sec_, interval_sec_, n);
  slot_.emplace(sql_id, static_cast<uint32_t>(series_.size()));
  series_.push_back(std::move(series));
  return &series_.back();
}

void TemplateMetricsStore::Accumulate(const QueryLogRecord& record) {
  const int64_t t_sec = record.arrival_ms / 1000;
  if (t_sec < start_sec_ || t_sec >= end_sec_) return;
  TemplateSeries* series = FindOrCreate(record.sql_id);
  series->execution_count.AccumulateAt(t_sec, 1.0);
  series->total_response_ms.AccumulateAt(t_sec, record.response_ms);
  series->examined_rows.AccumulateAt(
      t_sec, static_cast<double>(record.examined_rows));
}

void TemplateMetricsStore::AccumulateCell(uint64_t sql_id, int64_t t_sec,
                                          double count,
                                          double total_response_ms,
                                          double examined_rows) {
  if (t_sec < start_sec_ || t_sec >= end_sec_) return;
  TemplateSeries* series = FindOrCreate(sql_id);
  series->execution_count.AccumulateAt(t_sec, count);
  series->total_response_ms.AccumulateAt(t_sec, total_response_ms);
  series->examined_rows.AccumulateAt(t_sec, examined_rows);
}

const TemplateSeries* TemplateMetricsStore::Find(uint64_t sql_id) const {
  auto it = slot_.find(sql_id);
  return it == slot_.end() ? nullptr : &series_[it->second];
}

std::vector<const TemplateSeries*> TemplateMetricsStore::AllSorted() const {
  std::vector<const TemplateSeries*> out;
  out.reserve(series_.size());
  for (const TemplateSeries& series : series_) out.push_back(&series);
  std::sort(out.begin(), out.end(),
            [](const TemplateSeries* a, const TemplateSeries* b) {
              return a->sql_id < b->sql_id;
            });
  return out;
}

std::vector<uint64_t> TemplateMetricsStore::SqlIdsSorted() const {
  std::vector<uint64_t> out;
  out.reserve(series_.size());
  for (const TemplateSeries& series : series_) out.push_back(series.sql_id);
  std::sort(out.begin(), out.end());
  return out;
}

TimeSeries TemplateMetricsStore::TotalResponseAcrossTemplates() const {
  TimeSeries total(start_sec_, interval_sec_, num_buckets());
  // Summed in sql_id order, not insertion order: the result must not
  // depend on how the store was assembled (serial scan vs merged parallel
  // shards first-touch templates in different orders for identical
  // contents).
  for (const TemplateSeries* series : AllSorted()) {
    total.AddInPlace(series->total_response_ms);
  }
  return total;
}

void TemplateMetricsStore::MergeFrom(TemplateMetricsStore&& shard) {
  assert(shard.start_sec_ == start_sec_);
  assert(shard.end_sec_ == end_sec_);
  assert(shard.interval_sec_ == interval_sec_);
  // Insert in sql_id order so the merged store's layout is a function of
  // the contents only, never of shard-internal first-touch ordering.
  for (uint64_t id : shard.SqlIdsSorted()) {
    TemplateSeries& incoming = shard.series_[shard.slot_.at(id)];
    auto it = slot_.find(id);
    if (it == slot_.end()) {
      slot_.emplace(id, static_cast<uint32_t>(series_.size()));
      series_.push_back(std::move(incoming));
    } else {
      TemplateSeries& mine = series_[it->second];
      mine.execution_count.AddInPlace(incoming.execution_count);
      mine.total_response_ms.AddInPlace(incoming.total_response_ms);
      mine.examined_rows.AddInPlace(incoming.examined_rows);
    }
  }
  shard.series_.clear();
  shard.slot_.clear();
}

TemplateMetricsStore TemplateMetricsStore::Resample(
    int64_t new_interval_sec) const {
  TemplateMetricsStore out(start_sec_, end_sec_, new_interval_sec);
  out.series_.reserve(series_.size());
  for (const TemplateSeries& series : series_) {
    TemplateSeries resampled;
    resampled.sql_id = series.sql_id;
    resampled.execution_count =
        series.execution_count.Resample(new_interval_sec,
                                        TimeSeries::Agg::kSum);
    resampled.total_response_ms =
        series.total_response_ms.Resample(new_interval_sec,
                                          TimeSeries::Agg::kSum);
    resampled.examined_rows = series.examined_rows.Resample(
        new_interval_sec, TimeSeries::Agg::kSum);
    out.slot_.emplace(resampled.sql_id,
                      static_cast<uint32_t>(out.series_.size()));
    out.series_.push_back(std::move(resampled));
  }
  return out;
}

}  // namespace pinsql
