#include "pipeline/template_metrics.h"

#include <algorithm>
#include <cassert>

namespace pinsql {

TemplateMetricsStore::TemplateMetricsStore(int64_t start_sec, int64_t end_sec,
                                           int64_t interval_sec)
    : start_sec_(start_sec), end_sec_(end_sec), interval_sec_(interval_sec) {
  assert(end_sec >= start_sec);
  assert(interval_sec > 0);
}

TemplateSeries* TemplateMetricsStore::FindOrCreate(uint64_t sql_id) {
  auto it = by_id_.find(sql_id);
  if (it != by_id_.end()) return &it->second;
  const size_t n =
      static_cast<size_t>((end_sec_ - start_sec_) / interval_sec_);
  TemplateSeries series;
  series.sql_id = sql_id;
  series.execution_count = TimeSeries(start_sec_, interval_sec_, n);
  series.total_response_ms = TimeSeries(start_sec_, interval_sec_, n);
  series.examined_rows = TimeSeries(start_sec_, interval_sec_, n);
  return &by_id_.emplace(sql_id, std::move(series)).first->second;
}

void TemplateMetricsStore::Accumulate(const QueryLogRecord& record) {
  const int64_t t_sec = record.arrival_ms / 1000;
  if (t_sec < start_sec_ || t_sec >= end_sec_) return;
  TemplateSeries* series = FindOrCreate(record.sql_id);
  series->execution_count.AccumulateAt(t_sec, 1.0);
  series->total_response_ms.AccumulateAt(t_sec, record.response_ms);
  series->examined_rows.AccumulateAt(
      t_sec, static_cast<double>(record.examined_rows));
}

void TemplateMetricsStore::AccumulateCell(uint64_t sql_id, int64_t t_sec,
                                          double count,
                                          double total_response_ms,
                                          double examined_rows) {
  if (t_sec < start_sec_ || t_sec >= end_sec_) return;
  TemplateSeries* series = FindOrCreate(sql_id);
  series->execution_count.AccumulateAt(t_sec, count);
  series->total_response_ms.AccumulateAt(t_sec, total_response_ms);
  series->examined_rows.AccumulateAt(t_sec, examined_rows);
}

const TemplateSeries* TemplateMetricsStore::Find(uint64_t sql_id) const {
  auto it = by_id_.find(sql_id);
  return it == by_id_.end() ? nullptr : &it->second;
}

std::vector<const TemplateSeries*> TemplateMetricsStore::AllSorted() const {
  std::vector<const TemplateSeries*> out;
  out.reserve(by_id_.size());
  for (const auto& [id, series] : by_id_) out.push_back(&series);
  std::sort(out.begin(), out.end(),
            [](const TemplateSeries* a, const TemplateSeries* b) {
              return a->sql_id < b->sql_id;
            });
  return out;
}

std::vector<uint64_t> TemplateMetricsStore::SqlIdsSorted() const {
  std::vector<uint64_t> out;
  out.reserve(by_id_.size());
  for (const auto& [id, series] : by_id_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

TimeSeries TemplateMetricsStore::TotalResponseAcrossTemplates() const {
  const size_t n =
      static_cast<size_t>((end_sec_ - start_sec_) / interval_sec_);
  TimeSeries total(start_sec_, interval_sec_, n);
  // Summed in sql_id order, not hash-map order: the result must not depend
  // on how the store was assembled (serial scan vs merged parallel shards
  // produce different map layouts for identical contents).
  for (const TemplateSeries* series : AllSorted()) {
    total.AddInPlace(series->total_response_ms);
  }
  return total;
}

void TemplateMetricsStore::MergeFrom(TemplateMetricsStore&& shard) {
  assert(shard.start_sec_ == start_sec_);
  assert(shard.end_sec_ == end_sec_);
  assert(shard.interval_sec_ == interval_sec_);
  // Insert in sql_id order so the merged map layout is a function of the
  // contents only, never of shard-internal hash-map ordering.
  for (uint64_t id : shard.SqlIdsSorted()) {
    auto shard_it = shard.by_id_.find(id);
    auto it = by_id_.find(id);
    if (it == by_id_.end()) {
      by_id_.emplace(id, std::move(shard_it->second));
    } else {
      it->second.execution_count.AddInPlace(
          shard_it->second.execution_count);
      it->second.total_response_ms.AddInPlace(
          shard_it->second.total_response_ms);
      it->second.examined_rows.AddInPlace(shard_it->second.examined_rows);
    }
  }
  shard.by_id_.clear();
}

TemplateMetricsStore TemplateMetricsStore::Resample(
    int64_t new_interval_sec) const {
  TemplateMetricsStore out(start_sec_, end_sec_, new_interval_sec);
  for (const auto& [id, series] : by_id_) {
    TemplateSeries resampled;
    resampled.sql_id = id;
    resampled.execution_count =
        series.execution_count.Resample(new_interval_sec,
                                        TimeSeries::Agg::kSum);
    resampled.total_response_ms =
        series.total_response_ms.Resample(new_interval_sec,
                                          TimeSeries::Agg::kSum);
    resampled.examined_rows = series.examined_rows.Resample(
        new_interval_sec, TimeSeries::Agg::kSum);
    out.by_id_.emplace(id, std::move(resampled));
  }
  return out;
}

}  // namespace pinsql
