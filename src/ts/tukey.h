#ifndef PINSQL_TS_TUKEY_H_
#define PINSQL_TS_TUKEY_H_

#include <cstddef>
#include <vector>

#include "ts/time_series.h"

namespace pinsql {

/// Tukey's rule (boxplot / fence) outlier detection, used by PinSQL's
/// history-trend verification (paper Sec. VI): a point is anomalous when it
/// lies outside [Q1 - k * IQR, Q3 + k * IQR], with the classic k = 1.5 for
/// "outliers" and k = 3 for "far out" points.
struct TukeyFences {
  double lower = 0.0;
  double upper = 0.0;
  /// False when the input was too degenerate to support fences (fewer than
  /// 4 finite points): quartiles of 0-3 samples are noise, and the old
  /// behaviour — fences like [0, 0] from an all-gap series — spuriously
  /// flagged every positive value. Invalid fences are open (lower = -inf,
  /// upper = +inf), so every "is this an outlier" comparison cleanly says
  /// no without callers having to special-case.
  bool valid = false;
  /// Finite points the fences were computed from.
  size_t finite_points = 0;
};

/// Computes the fences from the data. `k` is the IQR multiplier. Non-finite
/// points (telemetry gaps) are ignored; fewer than 4 finite points yield
/// open, invalid fences (see TukeyFences::valid).
TukeyFences ComputeTukeyFences(const std::vector<double>& x, double k = 1.5);

/// Linear-interpolated sample quantile, q in [0, 1].
double Quantile(std::vector<double> x, double q);

/// Indices of points violating the fences.
std::vector<size_t> TukeyOutlierIndices(const std::vector<double>& x,
                                        double k = 1.5);

/// True if any point in `x` exceeds the *upper* fence. History verification
/// only cares about sudden increases of #execution, so only upward
/// excursions count.
bool HasUpwardTukeyAnomaly(const std::vector<double>& x, double k = 1.5);
bool HasUpwardTukeyAnomaly(const TimeSeries& x, double k = 1.5);

/// History verification helper: true iff the fences are computed from the
/// `reference` series but the violation is sought in `window` (i.e., the
/// window contains values that would be upward outliers relative to the
/// reference distribution).
bool WindowExceedsReferenceFences(const std::vector<double>& reference,
                                  const std::vector<double>& window,
                                  double k = 1.5);

/// True iff a value inside [rel_begin, rel_end) exceeds the upper Tukey
/// fence computed from the *baseline* points outside that period. Using
/// baseline-only fences matters when the suspect period spans a large
/// share of the window: full-window fences would absorb the anomaly into
/// Q3 and mask it.
///
/// `min_ratio_over_q3` > 0 adds a materiality guard: the violating value
/// must also exceed that multiple of the baseline Q3 (plus a small
/// absolute floor). This filters chance exceedances of near-fence traffic
/// waves while letting genuine surges (several times baseline) through.
bool UpwardAnomalyInPeriod(const std::vector<double>& values,
                           size_t rel_begin, size_t rel_end, double k,
                           double min_ratio_over_q3 = 0.0);

}  // namespace pinsql

#endif  // PINSQL_TS_TUKEY_H_
