#ifndef PINSQL_TS_TIME_SERIES_H_
#define PINSQL_TS_TIME_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pinsql {

/// Fixed-interval time series (paper Definition II.1): observations
/// x_1..x_N at timestamps start_time, start_time + interval, ... The paper
/// uses 1 s or 1 min intervals; timestamps are UNIX-like seconds.
///
/// Both timestamp addressing (AtTime) and index addressing (operator[]) are
/// provided, mirroring the paper's convention that X_{t1} == X_1.
class TimeSeries {
 public:
  TimeSeries() = default;
  /// Creates a zero-filled series of `n` points.
  TimeSeries(int64_t start_time, int64_t interval_sec, size_t n);
  /// Wraps existing values.
  TimeSeries(int64_t start_time, int64_t interval_sec,
             std::vector<double> values);

  int64_t start_time() const { return start_time_; }
  int64_t interval_sec() const { return interval_sec_; }
  /// One past the last covered timestamp: start + n * interval.
  int64_t end_time() const {
    return start_time_ + static_cast<int64_t>(values_.size()) * interval_sec_;
  }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Telemetry gaps are represented as non-finite values (NaN for a lost
  /// sample, +/-Inf for corrupt ones). Counts the gapped points.
  size_t CountNonFinite() const;
  /// True iff at least one point is a gap.
  bool HasGaps() const { return CountNonFinite() > 0; }
  /// Copy with every non-finite point replaced by `fill`.
  TimeSeries FillGaps(double fill) const;

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  /// Index of the bucket containing timestamp `t`; callers must ensure `t`
  /// is within [start_time, end_time).
  size_t IndexForTime(int64_t t) const;
  /// Timestamp of bucket `i`.
  int64_t TimeForIndex(size_t i) const;
  /// True iff `t` falls inside the covered range.
  bool Covers(int64_t t) const;

  /// Value at timestamp `t` (asserts Covers(t)).
  double AtTime(int64_t t) const;
  /// Mutable access at timestamp `t` (asserts Covers(t)).
  double& AtTime(int64_t t);
  /// Adds `v` into the bucket containing `t`; ignores out-of-range times.
  void AccumulateAt(int64_t t, double v);

  /// Sub-series covering [t0, t1); clamped to the available range.
  TimeSeries Slice(int64_t t0, int64_t t1) const;

  /// How values merge when re-bucketing to a coarser interval.
  enum class Agg { kSum, kMean, kMax };
  /// Re-buckets to `new_interval_sec` (must be a multiple of the current
  /// interval). A trailing partial bucket is aggregated from the points
  /// available. Gap-aware: non-finite points are skipped within a bucket;
  /// a bucket with no finite point at all stays a gap (NaN).
  TimeSeries Resample(int64_t new_interval_sec, Agg agg) const;

  /// Element-wise helpers (require identical shape).
  TimeSeries& AddInPlace(const TimeSeries& other);
  /// Element-wise ratio this/other; zero denominators yield 0 (used for the
  /// scale-trend score sessionQ_t / session_t).
  TimeSeries DivideBy(const TimeSeries& other) const;

  /// Reductions skip non-finite points so that metric gaps degrade a
  /// statistic instead of poisoning it; an all-gap series reduces to 0.
  double Sum() const;
  double Max() const;
  double Mean() const;

 private:
  int64_t start_time_ = 0;
  int64_t interval_sec_ = 1;
  std::vector<double> values_;
};

}  // namespace pinsql

#endif  // PINSQL_TS_TIME_SERIES_H_
