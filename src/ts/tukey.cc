#include "ts/tukey.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pinsql {

double Quantile(std::vector<double> x, double q) {
  assert(q >= 0.0 && q <= 1.0);
  // Drop telemetry gaps (non-finite points): sorting NaN violates strict
  // weak ordering, and a gap carries no distributional information.
  x.erase(std::remove_if(x.begin(), x.end(),
                         [](double v) { return !std::isfinite(v); }),
          x.end());
  if (x.empty()) return 0.0;
  std::sort(x.begin(), x.end());
  const double pos = q * static_cast<double>(x.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  if (lo == hi) return x[lo];
  const double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

TukeyFences ComputeTukeyFences(const std::vector<double>& x, double k) {
  TukeyFences fences;
  for (double v : x) {
    if (std::isfinite(v)) ++fences.finite_points;
  }
  if (fences.finite_points < 4) {
    // Not enough signal for quartiles: return open fences so nothing is
    // flagged, instead of the old [0, 0]-style fences an all-gap or tiny
    // baseline produced (which marked any positive value an outlier).
    fences.lower = -std::numeric_limits<double>::infinity();
    fences.upper = std::numeric_limits<double>::infinity();
    return fences;
  }
  const double q1 = Quantile(x, 0.25);
  const double q3 = Quantile(x, 0.75);
  const double iqr = q3 - q1;
  fences.lower = q1 - k * iqr;
  fences.upper = q3 + k * iqr;
  fences.valid = true;
  return fences;
}

std::vector<size_t> TukeyOutlierIndices(const std::vector<double>& x,
                                        double k) {
  std::vector<size_t> out;
  if (x.empty()) return out;
  const TukeyFences fences = ComputeTukeyFences(x, k);
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] < fences.lower || x[i] > fences.upper) out.push_back(i);
  }
  return out;
}

bool HasUpwardTukeyAnomaly(const std::vector<double>& x, double k) {
  if (x.empty()) return false;
  const TukeyFences fences = ComputeTukeyFences(x, k);
  for (double v : x) {
    if (v > fences.upper) return true;
  }
  return false;
}

bool HasUpwardTukeyAnomaly(const TimeSeries& x, double k) {
  return HasUpwardTukeyAnomaly(x.values(), k);
}

bool UpwardAnomalyInPeriod(const std::vector<double>& values,
                           size_t rel_begin, size_t rel_end, double k,
                           double min_ratio_over_q3) {
  rel_end = std::min(rel_end, values.size());
  if (rel_begin >= rel_end) return false;
  std::vector<double> baseline;
  baseline.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (i < rel_begin || i >= rel_end) baseline.push_back(values[i]);
  }
  if (baseline.empty()) return false;
  const TukeyFences fences = ComputeTukeyFences(baseline, k);
  double threshold = fences.upper;
  if (min_ratio_over_q3 > 0.0) {
    const double q3 = Quantile(baseline, 0.75);
    // No guard when the baseline is flat zero (e.g. a template that never
    // ran before): any activity is material then.
    if (q3 > 0.0) {
      threshold = std::max(threshold, min_ratio_over_q3 * q3 + 1.0);
    }
  }
  for (size_t i = rel_begin; i < rel_end; ++i) {
    if (values[i] > threshold) return true;
  }
  return false;
}

bool WindowExceedsReferenceFences(const std::vector<double>& reference,
                                  const std::vector<double>& window,
                                  double k) {
  if (reference.empty() || window.empty()) return false;
  const TukeyFences fences = ComputeTukeyFences(reference, k);
  for (double v : window) {
    if (v > fences.upper) return true;
  }
  return false;
}

}  // namespace pinsql
