#ifndef PINSQL_TS_STATS_H_
#define PINSQL_TS_STATS_H_

#include <cstdint>
#include <vector>

#include "ts/time_series.h"

namespace pinsql {

/// Statistical primitives used by the PinSQL scoring pipeline (paper Sec. V
/// and VI). All correlation functions return 0 when either input is
/// constant (zero variance), which is the neutral value for PinSQL's
/// [-1, 1]-ranged scores.
///
/// Gap-awareness: production telemetry loses samples (Kafka lag, SHOW
/// STATUS blackouts), represented here as non-finite values. Every
/// function below skips non-finite points — pairwise-complete for the
/// correlations — so a gap degrades a statistic instead of poisoning the
/// whole score. On gap-free inputs the results are bit-identical to the
/// plain formulas.

double Mean(const std::vector<double>& x);
double Variance(const std::vector<double>& x);
double Stddev(const std::vector<double>& x);

/// Pearson correlation coefficient corr(X, Y) = cov(X, Y) / (sigma_X
/// sigma_Y). Inputs must have equal length. Pairs where either value is
/// non-finite are skipped; fewer than `min_valid_pairs` surviving pairs
/// return the neutral 0 (minimum-overlap guard: a correlation computed
/// from a handful of points that survived a blackout is noise).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y,
                          size_t min_valid_pairs = 2);
double PearsonCorrelation(const TimeSeries& x, const TimeSeries& y);

/// Weighted Pearson correlation with weights W (paper Sec. V, trend-level
/// score): cov(X,Y;W) = sum_i w_i (x_i - m(X;W)) (y_i - m(Y;W)) / sum_i w_i.
/// Pairs with a non-finite x, y or w are skipped (same guard as above).
double WeightedPearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  const std::vector<double>& w,
                                  size_t min_valid_pairs = 2);

/// Sigmoid-based anomaly-window weight (paper Sec. V):
///   W_t = sigmoid((t - a_s)/k_s) + sigmoid((a_e - t)/k_s) - 1
/// for t in [t_s, t_e) stepping by interval_sec. As k_s -> 0 the weights
/// become the indicator of [a_s, a_e); as k_s -> inf they become all-ones.
std::vector<double> SigmoidAnomalyWeights(int64_t ts, int64_t te,
                                          int64_t interval_sec,
                                          int64_t anomaly_start,
                                          int64_t anomaly_end,
                                          double smooth_factor);

/// Maps x linearly so that [lo, hi] -> [0, 1]; constant input maps to 0.5.
std::vector<double> MinMaxNormalize(const std::vector<double>& x);

/// Mean squared error between two equal-length vectors.
double MeanSquaredError(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Numerically-stable logistic sigmoid.
double Sigmoid(double x);

}  // namespace pinsql

#endif  // PINSQL_TS_STATS_H_
