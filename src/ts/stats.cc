#include "ts/stats.h"

#include <cassert>
#include <cmath>

namespace pinsql {

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double Variance(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  const double m = Mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size());
}

double Stddev(const std::vector<double>& x) { return std::sqrt(Variance(x)); }

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  if (n == 0) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double PearsonCorrelation(const TimeSeries& x, const TimeSeries& y) {
  return PearsonCorrelation(x.values(), y.values());
}

double WeightedPearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  const std::vector<double>& w) {
  assert(x.size() == y.size());
  assert(x.size() == w.size());
  const size_t n = x.size();
  if (n == 0) return 0.0;
  double wsum = 0.0;
  for (double wi : w) wsum += wi;
  if (wsum <= 0.0) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += w[i] * x[i];
    my += w[i] * y[i];
  }
  mx /= wsum;
  my /= wsum;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += w[i] * dx * dy;
    sxx += w[i] * dx * dx;
    syy += w[i] * dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

std::vector<double> SigmoidAnomalyWeights(int64_t ts, int64_t te,
                                          int64_t interval_sec,
                                          int64_t anomaly_start,
                                          int64_t anomaly_end,
                                          double smooth_factor) {
  assert(interval_sec > 0);
  assert(smooth_factor > 0.0);
  std::vector<double> w;
  w.reserve(static_cast<size_t>((te - ts) / interval_sec));
  for (int64_t t = ts; t < te; t += interval_sec) {
    const double a = Sigmoid(static_cast<double>(t - anomaly_start) /
                             smooth_factor);
    const double b =
        Sigmoid(static_cast<double>(anomaly_end - t) / smooth_factor);
    w.push_back(a + b - 1.0);
  }
  return w;
}

std::vector<double> MinMaxNormalize(const std::vector<double>& x) {
  std::vector<double> out(x.size(), 0.5);
  if (x.empty()) return out;
  double lo = x[0];
  double hi = x[0];
  for (double v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return out;  // constant input -> all 0.5
  for (size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - lo) / (hi - lo);
  return out;
}

double MeanSquaredError(const std::vector<double>& x,
                        const std::vector<double>& y) {
  assert(x.size() == y.size());
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc / static_cast<double>(x.size());
}

}  // namespace pinsql
