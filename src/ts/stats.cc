#include "ts/stats.h"

#include <cassert>
#include <cmath>

namespace pinsql {

double Mean(const std::vector<double>& x) {
  double acc = 0.0;
  size_t finite = 0;
  for (double v : x) {
    if (!std::isfinite(v)) continue;
    acc += v;
    ++finite;
  }
  return finite == 0 ? 0.0 : acc / static_cast<double>(finite);
}

double Variance(const std::vector<double>& x) {
  const double m = Mean(x);
  double acc = 0.0;
  size_t finite = 0;
  for (double v : x) {
    if (!std::isfinite(v)) continue;
    acc += (v - m) * (v - m);
    ++finite;
  }
  return finite < 2 ? 0.0 : acc / static_cast<double>(finite);
}

double Stddev(const std::vector<double>& x) { return std::sqrt(Variance(x)); }

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y,
                          size_t min_valid_pairs) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  // Pass 1: pairwise-complete means. A pair is valid only when both sides
  // carry a real sample.
  double mx = 0.0;
  double my = 0.0;
  size_t valid = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) continue;
    mx += x[i];
    my += y[i];
    ++valid;
  }
  if (valid < std::max<size_t>(min_valid_pairs, 2)) return 0.0;
  mx /= static_cast<double>(valid);
  my /= static_cast<double>(valid);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) continue;
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double PearsonCorrelation(const TimeSeries& x, const TimeSeries& y) {
  return PearsonCorrelation(x.values(), y.values());
}

double WeightedPearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  const std::vector<double>& w,
                                  size_t min_valid_pairs) {
  assert(x.size() == y.size());
  assert(x.size() == w.size());
  const size_t n = x.size();
  auto valid_at = [&](size_t i) {
    return std::isfinite(x[i]) && std::isfinite(y[i]) && std::isfinite(w[i]);
  };
  double wsum = 0.0;
  size_t valid = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!valid_at(i)) continue;
    wsum += w[i];
    ++valid;
  }
  if (valid < std::max<size_t>(min_valid_pairs, 2)) return 0.0;
  if (wsum <= 0.0) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!valid_at(i)) continue;
    mx += w[i] * x[i];
    my += w[i] * y[i];
  }
  mx /= wsum;
  my /= wsum;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!valid_at(i)) continue;
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += w[i] * dx * dy;
    sxx += w[i] * dx * dx;
    syy += w[i] * dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

std::vector<double> SigmoidAnomalyWeights(int64_t ts, int64_t te,
                                          int64_t interval_sec,
                                          int64_t anomaly_start,
                                          int64_t anomaly_end,
                                          double smooth_factor) {
  assert(interval_sec > 0);
  assert(smooth_factor > 0.0);
  std::vector<double> w;
  w.reserve(static_cast<size_t>((te - ts) / interval_sec));
  for (int64_t t = ts; t < te; t += interval_sec) {
    const double a = Sigmoid(static_cast<double>(t - anomaly_start) /
                             smooth_factor);
    const double b =
        Sigmoid(static_cast<double>(anomaly_end - t) / smooth_factor);
    w.push_back(a + b - 1.0);
  }
  return w;
}

std::vector<double> MinMaxNormalize(const std::vector<double>& x) {
  std::vector<double> out(x.size(), 0.5);
  if (x.empty()) return out;
  double lo = 0.0;
  double hi = 0.0;
  size_t finite = 0;
  for (double v : x) {
    if (!std::isfinite(v)) continue;
    lo = finite == 0 ? v : std::min(lo, v);
    hi = finite == 0 ? v : std::max(hi, v);
    ++finite;
  }
  if (finite == 0 || hi <= lo) return out;  // constant/gap input -> all 0.5
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::isfinite(x[i])) out[i] = (x[i] - lo) / (hi - lo);
  }
  return out;
}

double MeanSquaredError(const std::vector<double>& x,
                        const std::vector<double>& y) {
  assert(x.size() == y.size());
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc / static_cast<double>(x.size());
}

}  // namespace pinsql
