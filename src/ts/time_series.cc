#include "ts/time_series.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pinsql {

TimeSeries::TimeSeries(int64_t start_time, int64_t interval_sec, size_t n)
    : start_time_(start_time), interval_sec_(interval_sec), values_(n, 0.0) {
  assert(interval_sec > 0);
}

TimeSeries::TimeSeries(int64_t start_time, int64_t interval_sec,
                       std::vector<double> values)
    : start_time_(start_time),
      interval_sec_(interval_sec),
      values_(std::move(values)) {
  assert(interval_sec > 0);
}

size_t TimeSeries::IndexForTime(int64_t t) const {
  assert(Covers(t));
  return static_cast<size_t>((t - start_time_) / interval_sec_);
}

int64_t TimeSeries::TimeForIndex(size_t i) const {
  return start_time_ + static_cast<int64_t>(i) * interval_sec_;
}

bool TimeSeries::Covers(int64_t t) const {
  return t >= start_time_ && t < end_time();
}

double TimeSeries::AtTime(int64_t t) const { return values_[IndexForTime(t)]; }

double& TimeSeries::AtTime(int64_t t) { return values_[IndexForTime(t)]; }

void TimeSeries::AccumulateAt(int64_t t, double v) {
  if (!Covers(t)) return;
  values_[IndexForTime(t)] += v;
}

TimeSeries TimeSeries::Slice(int64_t t0, int64_t t1) const {
  t0 = std::max(t0, start_time_);
  t1 = std::min(t1, end_time());
  if (t0 >= t1) return TimeSeries(t0, interval_sec_, 0);
  const size_t i0 = IndexForTime(t0);
  // t1 may equal end_time(); compute the exclusive end index directly.
  const size_t i1 =
      static_cast<size_t>((t1 - start_time_ + interval_sec_ - 1) /
                          interval_sec_);
  std::vector<double> vals(values_.begin() + static_cast<ptrdiff_t>(i0),
                           values_.begin() + static_cast<ptrdiff_t>(i1));
  return TimeSeries(TimeForIndex(i0), interval_sec_, std::move(vals));
}

TimeSeries TimeSeries::Resample(int64_t new_interval_sec, Agg agg) const {
  assert(new_interval_sec >= interval_sec_);
  assert(new_interval_sec % interval_sec_ == 0);
  const size_t factor =
      static_cast<size_t>(new_interval_sec / interval_sec_);
  if (factor == 1) return *this;
  const size_t n_out = (values_.size() + factor - 1) / factor;
  std::vector<double> out(n_out, 0.0);
  for (size_t i = 0; i < n_out; ++i) {
    const size_t begin = i * factor;
    const size_t end = std::min(begin + factor, values_.size());
    double acc = 0.0;
    double mx = 0.0;
    size_t finite = 0;
    for (size_t j = begin; j < end; ++j) {
      const double v = values_[j];
      if (!std::isfinite(v)) continue;  // gap: contributes nothing
      acc += v;
      mx = finite == 0 ? v : std::max(mx, v);
      ++finite;
    }
    if (finite == 0) {
      // Whole bucket lost: the gap survives resampling.
      out[i] = std::numeric_limits<double>::quiet_NaN();
      continue;
    }
    switch (agg) {
      case Agg::kSum:
        out[i] = acc;
        break;
      case Agg::kMean:
        out[i] = acc / static_cast<double>(finite);
        break;
      case Agg::kMax:
        out[i] = mx;
        break;
    }
  }
  return TimeSeries(start_time_, new_interval_sec, std::move(out));
}

TimeSeries& TimeSeries::AddInPlace(const TimeSeries& other) {
  assert(other.start_time_ == start_time_);
  assert(other.interval_sec_ == interval_sec_);
  assert(other.values_.size() == values_.size());
  for (size_t i = 0; i < values_.size(); ++i) values_[i] += other.values_[i];
  return *this;
}

TimeSeries TimeSeries::DivideBy(const TimeSeries& other) const {
  assert(other.values_.size() == values_.size());
  TimeSeries out(start_time_, interval_sec_, values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    out.values_[i] =
        other.values_[i] == 0.0 ? 0.0 : values_[i] / other.values_[i];
  }
  return out;
}

size_t TimeSeries::CountNonFinite() const {
  size_t count = 0;
  for (double v : values_) {
    if (!std::isfinite(v)) ++count;
  }
  return count;
}

TimeSeries TimeSeries::FillGaps(double fill) const {
  TimeSeries out = *this;
  for (double& v : out.values_) {
    if (!std::isfinite(v)) v = fill;
  }
  return out;
}

double TimeSeries::Sum() const {
  double acc = 0.0;
  for (double v : values_) {
    if (std::isfinite(v)) acc += v;
  }
  return acc;
}

double TimeSeries::Max() const {
  double mx = 0.0;
  size_t finite = 0;
  for (double v : values_) {
    if (!std::isfinite(v)) continue;
    mx = finite == 0 ? v : std::max(mx, v);
    ++finite;
  }
  return mx;
}

double TimeSeries::Mean() const {
  double acc = 0.0;
  size_t finite = 0;
  for (double v : values_) {
    if (!std::isfinite(v)) continue;
    acc += v;
    ++finite;
  }
  return finite == 0 ? 0.0 : acc / static_cast<double>(finite);
}

}  // namespace pinsql
