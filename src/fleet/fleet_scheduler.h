#ifndef PINSQL_FLEET_FLEET_SCHEDULER_H_
#define PINSQL_FLEET_FLEET_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "online/scheduler.h"
#include "util/thread_pool.h"

namespace pinsql::fleet {

struct FleetSchedulerOptions {
  /// Hard bound on concurrently running diagnoses across the whole fleet.
  /// The pool is pool_size - 1 workers plus the dispatching thread, so the
  /// bound is exact; 1 degenerates to serial inline execution.
  size_t pool_size = 4;
  /// Priority gained per second an entry waits in the queue. Aging is the
  /// anti-starvation mechanism: any entry's effective priority eventually
  /// exceeds every freshly arriving entry's base, so a sustained stream of
  /// high-severity triggers can delay a low-severity one only by a bounded
  /// number of waves. 0 disables aging (strict severity order).
  double age_weight = 0.05;
};

/// One confirmed trigger waiting for a diagnoser slot.
struct QueuedTrigger {
  online::AnomalyTrigger trigger;
  /// Second the entry entered the queue (aging reference).
  int64_t enqueue_sec = 0;
  /// Earliest second the diagnosis may run (trigger + diagnose delay, or
  /// the storm-close second for triaged storm members). Scheduling only:
  /// the diagnosis window stays fixed at trigger time regardless.
  int64_t due_sec = 0;
  /// Severity-derived rank before aging.
  double base_priority = 0.0;
  /// Queue-global sequence number; the FIFO tie-break within equal
  /// effective priority.
  uint64_t seq = 0;
  /// Storm batch the entry was triaged out of (0 = direct trigger).
  uint64_t storm_batch = 0;
};

/// One dispatch decision, recorded for invariant checks (property tests
/// assert priority-aging order and the concurrency bound from this log).
struct DispatchRecord {
  QueuedTrigger entry;
  int64_t dispatch_sec = 0;
  /// Position within the dispatch wave (0 = highest effective priority).
  size_t wave_index = 0;
};

struct FleetSchedulerStats {
  size_t enqueued = 0;
  size_t completed = 0;
  /// Entries removed by Extract (storm collapse).
  size_t extracted = 0;
  size_t max_queue_depth = 0;
  /// High-water mark of concurrently running diagnoses; never exceeds
  /// pool_size.
  size_t max_observed_concurrency = 0;
  /// Longest queue wait (dispatch_sec - enqueue_sec) seen so far.
  int64_t max_wait_sec = 0;
};

/// Fleet-level diagnosis scheduler: a single priority-aged queue of
/// confirmed triggers from every instance, drained by a bounded diagnoser
/// pool. One dispatch wave runs per Tick: due entries are ranked by
/// effective priority (base + age_weight * wait), at most pool_size run
/// concurrently, and at most one entry per instance per wave — so
/// per-instance mutable state is only ever touched by one worker, and a
/// single noisy instance cannot monopolize the pool.
///
/// Determinism: the runner must be a pure function of the entry (the
/// fleet's windowed diagnosis is — its window is fixed at trigger time),
/// so pool size and wave packing change only *when* entries run, never
/// what they produce. Completions are returned in wave rank order.
///
/// Not internally synchronized: Enqueue / Extract / Tick / Drain belong to
/// one coordinating thread (the runner itself fans out onto the pool).
class FleetScheduler {
 public:
  using Runner = std::function<online::DiagnosisOutcome(const QueuedTrigger&)>;
  /// A finished entry paired with what its diagnosis produced.
  using Completion = std::pair<QueuedTrigger, online::DiagnosisOutcome>;

  FleetScheduler(const FleetSchedulerOptions& options, Runner runner);

  /// Queues a trigger; returns its sequence number.
  uint64_t Enqueue(const online::AnomalyTrigger& trigger, int64_t enqueue_sec,
                   int64_t due_sec, double base_priority,
                   uint64_t storm_batch = 0);

  /// Removes and returns every queued entry matching `pred`, preserving
  /// queue order. Storm collapse uses this to pull the lookback window's
  /// pending triggers into a batch before they reach the pool.
  std::vector<QueuedTrigger> Extract(
      const std::function<bool(const QueuedTrigger&)>& pred);

  /// Runs one dispatch wave over the entries due at `now_sec`. Entries
  /// that don't fit the wave (pool full, or their instance already has a
  /// slot) stay queued and age.
  std::vector<Completion> Tick(int64_t now_sec);

  /// Graceful drain: repeats waves with every entry treated as due until
  /// the queue is empty. Each diagnosis keeps its planned window.
  std::vector<Completion> Drain(int64_t now_sec);

  size_t pending() const { return queue_.size(); }
  const FleetSchedulerStats& stats() const { return stats_; }
  const std::vector<DispatchRecord>& dispatch_log() const {
    return dispatch_log_;
  }

 private:
  std::vector<Completion> RunWave(int64_t now_sec, bool force_due);

  FleetSchedulerOptions options_;
  Runner runner_;
  /// pool_size - 1 workers; null when pool_size == 1 (serial inline).
  std::unique_ptr<util::ThreadPool> pool_;

  std::deque<QueuedTrigger> queue_;  // enqueue (seq) order
  uint64_t next_seq_ = 1;
  std::vector<DispatchRecord> dispatch_log_;
  FleetSchedulerStats stats_;
};

}  // namespace pinsql::fleet

#endif  // PINSQL_FLEET_FLEET_SCHEDULER_H_
