#include "fleet/correlator.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"

namespace pinsql::fleet {

CrossInstanceCorrelator::CrossInstanceCorrelator(
    const CorrelatorOptions& options,
    const std::vector<FleetInstanceSpec>& specs)
    : options_(options) {
  if (options_.storm_window_sec < 1) options_.storm_window_sec = 1;
  if (options_.neighbor_window_sec < 1) options_.neighbor_window_sec = 1;
  for (const FleetInstanceSpec& spec : specs) {
    host_by_instance_[spec.instance_id] = spec.host_id;
  }
}

bool CrossInstanceCorrelator::OnAcceptedTrigger(
    const online::AnomalyTrigger& trigger, int64_t due_sec,
    double base_priority) {
  recent_.emplace_back(trigger.trigger_sec, trigger.instance_id);

  if (options_.neighbor_min_cotenants > 0) {
    auto it = host_by_instance_.find(trigger.instance_id);
    if (it != host_by_instance_.end()) {
      hosts_[it->second].events.push_back({trigger.trigger_sec,
                                           trigger.instance_id,
                                           trigger.onset_sec,
                                           trigger.severity});
    }
  }

  if (open_batch_.has_value()) {
    open_batch_->members.push_back({trigger, due_sec, base_priority});
    return true;
  }
  return false;
}

size_t CrossInstanceCorrelator::DistinctRecentInstances() const {
  std::set<uint32_t> distinct;
  for (const auto& [sec, instance] : recent_) distinct.insert(instance);
  return distinct.size();
}

CrossInstanceCorrelator::TickEvents CrossInstanceCorrelator::Tick(
    int64_t sec) {
  TickEvents events;

  // Storms: the window holds triggers in (sec - window, sec].
  while (!recent_.empty() &&
         recent_.front().first <= sec - options_.storm_window_sec) {
    recent_.pop_front();
  }
  if (options_.storm_min_instances > 0) {
    const size_t distinct = DistinctRecentInstances();
    if (!open_batch_.has_value()) {
      if (distinct >= options_.storm_min_instances) {
        StormBatch batch;
        batch.id = next_batch_id_++;
        batch.opened_sec = sec;
        open_batch_ = std::move(batch);
        ++storms_detected_;
        events.storm_opened = true;
        events.lookback_from_sec = sec - options_.storm_window_sec + 1;
        PINSQL_OBS_COUNT("fleet.storms_detected", 1);
      }
    } else if (distinct < options_.storm_min_instances) {
      open_batch_->closed_sec = sec;
      events.closed.push_back(std::move(*open_batch_));
      open_batch_.reset();
    }
  }

  // Noisy neighbors: per-host sliding window of co-tenant triggers.
  for (auto& [host_id, state] : hosts_) {
    auto& window = state.events;
    while (!window.empty() &&
           window.front().trigger_sec <= sec - options_.neighbor_window_sec) {
      window.pop_front();
    }
    if (window.empty()) {
      state.flagged = false;  // episode over; the host can be flagged again
      continue;
    }
    if (state.flagged) continue;
    std::set<uint32_t> cotenants;
    for (const HostEvent& event : window) cotenants.insert(event.instance_id);
    if (cotenants.size() < options_.neighbor_min_cotenants) continue;

    const HostEvent* dominant = &window.front();
    for (const HostEvent& event : window) {
      if (event.onset_sec != dominant->onset_sec) {
        if (event.onset_sec < dominant->onset_sec) dominant = &event;
      } else if (event.severity != dominant->severity) {
        if (event.severity > dominant->severity) dominant = &event;
      } else if (event.instance_id < dominant->instance_id) {
        dominant = &event;
      }
    }

    NoisyNeighborVerdict verdict;
    verdict.host_id = host_id;
    verdict.flagged_sec = sec;
    verdict.cotenants.assign(cotenants.begin(), cotenants.end());
    verdict.dominant_instance = dominant->instance_id;
    verdict.dominant_onset_sec = dominant->onset_sec;
    verdict.dominant_severity = dominant->severity;
    events.verdicts.push_back(std::move(verdict));
    state.flagged = true;
    PINSQL_OBS_COUNT("fleet.neighbor_verdicts", 1);
  }

  return events;
}

void CrossInstanceCorrelator::AdoptIntoOpenStorm(
    const std::vector<StormMember>& members) {
  if (!open_batch_.has_value()) return;
  // Lookback members precede the live captures that arrive from this
  // second on.
  open_batch_->members.insert(open_batch_->members.begin(), members.begin(),
                              members.end());
}

std::optional<StormBatch> CrossInstanceCorrelator::CloseOpenStorm(
    int64_t sec) {
  if (!open_batch_.has_value()) return std::nullopt;
  open_batch_->closed_sec = sec;
  StormBatch batch = std::move(*open_batch_);
  open_batch_.reset();
  return batch;
}

}  // namespace pinsql::fleet
