#ifndef PINSQL_FLEET_CORRELATOR_H_
#define PINSQL_FLEET_CORRELATOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "online/online_detector.h"

namespace pinsql::fleet {

/// One simulated instance: its fleet-unique id and the physical host it is
/// placed on (co-tenancy is what the noisy-neighbor correlation keys on).
struct FleetInstanceSpec {
  uint32_t instance_id = 0;
  uint32_t host_id = 0;
};

struct CorrelatorOptions {
  /// A storm opens when this many *distinct* instances fired accepted
  /// triggers within storm_window_sec. 0 disables storm detection.
  size_t storm_min_instances = 8;
  /// Sliding window for storm detection. The fleet service clamps it to
  /// the scheduler's diagnose_delay_sec: lookback triggers are then
  /// guaranteed not yet due, so storm membership is decided purely by
  /// trigger times — never by how far the diagnoser pool has drained —
  /// which is what keeps fleet fingerprints invariant under pool size.
  int64_t storm_window_sec = 30;
  /// Diagnoses actually run per collapsed storm batch; the rest of the
  /// batch is deferred (reported, never silently dropped).
  size_t storm_triage_k = 4;
  /// A noisy-neighbor verdict fires when this many distinct co-tenant
  /// instances of one host triggered within neighbor_window_sec. 0
  /// disables.
  size_t neighbor_min_cotenants = 3;
  int64_t neighbor_window_sec = 120;
};

/// One trigger captured into a storm batch, with the scheduling it would
/// have had as a direct trigger.
struct StormMember {
  online::AnomalyTrigger trigger;
  int64_t due_sec = 0;
  double base_priority = 0.0;
};

/// A fleet-wide anomaly storm collapsed into one triage batch.
struct StormBatch {
  uint64_t id = 0;  // 1-based, in open order
  int64_t opened_sec = 0;
  int64_t closed_sec = -1;  // -1 while open
  std::vector<StormMember> members;
  /// Instance ids of the members selected for diagnosis, in triage rank
  /// order (severity desc, then onset, then instance id).
  std::vector<uint32_t> triaged;
};

/// Co-tenant correlation: this host's anomaly pattern looks like one noisy
/// tenant degrading its neighbors.
struct NoisyNeighborVerdict {
  uint32_t host_id = 0;
  int64_t flagged_sec = 0;
  /// Distinct co-tenant instances that triggered within the window,
  /// ascending.
  std::vector<uint32_t> cotenants;
  /// The suspected noisy tenant: earliest onset among the window's
  /// triggers, ties broken by higher severity, then lower instance id.
  uint32_t dominant_instance = 0;
  int64_t dominant_onset_sec = 0;
  double dominant_severity = 0.0;
};

/// Cross-instance correlation over the stream of *accepted* triggers:
/// detects fleet-wide storms (and owns the open batch while one is
/// active) and flags noisy-neighbor hosts. Everything is keyed on trigger
/// times and static placement, so its decisions are deterministic given
/// the trigger stream.
///
/// Not internally synchronized: belongs to the fleet's coordinating
/// thread.
class CrossInstanceCorrelator {
 public:
  CrossInstanceCorrelator(const CorrelatorOptions& options,
                          const std::vector<FleetInstanceSpec>& specs);

  /// Records an accepted trigger. Returns true when an open storm captured
  /// it (the caller must then NOT enqueue it — it rides the batch).
  bool OnAcceptedTrigger(const online::AnomalyTrigger& trigger,
                         int64_t due_sec, double base_priority);

  struct TickEvents {
    /// A storm opened this second; the caller must Extract every pending
    /// trigger with trigger_sec >= lookback_from_sec and adopt it into the
    /// open batch.
    bool storm_opened = false;
    int64_t lookback_from_sec = 0;
    /// Storms that closed this second, ready for triage.
    std::vector<StormBatch> closed;
    std::vector<NoisyNeighborVerdict> verdicts;
  };

  /// Advances the correlation clock; call once per fleet second, after the
  /// second's triggers were recorded.
  TickEvents Tick(int64_t sec);

  /// Adds lookback members pulled out of the scheduler to the open batch.
  void AdoptIntoOpenStorm(const std::vector<StormMember>& members);

  /// Force-closes the open storm (drain path). Returns it for triage.
  std::optional<StormBatch> CloseOpenStorm(int64_t sec);

  bool storm_active() const { return open_batch_.has_value(); }
  size_t storms_detected() const { return storms_detected_; }

 private:
  size_t DistinctRecentInstances() const;

  CorrelatorOptions options_;
  std::map<uint32_t, uint32_t> host_by_instance_;

  /// Accepted triggers inside the storm window: (trigger_sec, instance).
  std::deque<std::pair<int64_t, uint32_t>> recent_;
  std::optional<StormBatch> open_batch_;
  uint64_t next_batch_id_ = 1;
  size_t storms_detected_ = 0;

  struct HostEvent {
    int64_t trigger_sec = 0;
    uint32_t instance_id = 0;
    int64_t onset_sec = 0;
    double severity = 0.0;
  };
  struct HostState {
    std::deque<HostEvent> events;
    /// An episode already produced a verdict; re-arms when the window
    /// empties.
    bool flagged = false;
  };
  std::map<uint32_t, HostState> hosts_;
};

}  // namespace pinsql::fleet

#endif  // PINSQL_FLEET_CORRELATOR_H_
