#include "fleet/fleet_scheduler.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "obs/metrics.h"

namespace pinsql::fleet {

FleetScheduler::FleetScheduler(const FleetSchedulerOptions& options,
                               Runner runner)
    : options_(options), runner_(std::move(runner)) {
  if (options_.pool_size < 1) options_.pool_size = 1;
  if (options_.age_weight < 0.0) options_.age_weight = 0.0;
  if (options_.pool_size > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<int>(options_.pool_size) - 1);
  }
}

uint64_t FleetScheduler::Enqueue(const online::AnomalyTrigger& trigger,
                                 int64_t enqueue_sec, int64_t due_sec,
                                 double base_priority, uint64_t storm_batch) {
  QueuedTrigger entry;
  entry.trigger = trigger;
  entry.enqueue_sec = enqueue_sec;
  entry.due_sec = due_sec;
  entry.base_priority = base_priority;
  entry.seq = next_seq_++;
  entry.storm_batch = storm_batch;
  queue_.push_back(entry);
  ++stats_.enqueued;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  return entry.seq;
}

std::vector<QueuedTrigger> FleetScheduler::Extract(
    const std::function<bool(const QueuedTrigger&)>& pred) {
  std::vector<QueuedTrigger> extracted;
  std::deque<QueuedTrigger> kept;
  for (QueuedTrigger& entry : queue_) {
    if (pred(entry)) {
      extracted.push_back(entry);
    } else {
      kept.push_back(entry);
    }
  }
  queue_.swap(kept);
  stats_.extracted += extracted.size();
  return extracted;
}

std::vector<FleetScheduler::Completion> FleetScheduler::Tick(int64_t now_sec) {
  return RunWave(now_sec, /*force_due=*/false);
}

std::vector<FleetScheduler::Completion> FleetScheduler::Drain(
    int64_t now_sec) {
  std::vector<Completion> completed;
  while (!queue_.empty()) {
    auto wave = RunWave(now_sec, /*force_due=*/true);
    completed.insert(completed.end(), std::make_move_iterator(wave.begin()),
                     std::make_move_iterator(wave.end()));
  }
  return completed;
}

std::vector<FleetScheduler::Completion> FleetScheduler::RunWave(
    int64_t now_sec, bool force_due) {
  // Rank the due entries by effective priority; seq breaks ties, so equal
  // priorities dispatch FIFO. Aging uses the wave's `now`, which adds the
  // same offset within one enqueue second — older entries always rank at
  // least as high as newer ones of the same base.
  struct Candidate {
    size_t pos;
    double effective;
    uint64_t seq;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(queue_.size());
  for (size_t pos = 0; pos < queue_.size(); ++pos) {
    const QueuedTrigger& entry = queue_[pos];
    if (!force_due && entry.due_sec > now_sec) continue;
    const double age = static_cast<double>(now_sec - entry.enqueue_sec);
    candidates.push_back(
        {pos, entry.base_priority + options_.age_weight * age, entry.seq});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.effective != b.effective) return a.effective > b.effective;
              return a.seq < b.seq;
            });

  // Pack the wave: at most pool_size entries, at most one per instance.
  std::vector<size_t> picked;
  std::vector<uint32_t> wave_instances;
  for (const Candidate& candidate : candidates) {
    if (picked.size() >= options_.pool_size) break;
    const uint32_t instance = queue_[candidate.pos].trigger.instance_id;
    if (std::find(wave_instances.begin(), wave_instances.end(), instance) !=
        wave_instances.end()) {
      continue;  // stays queued; ages into the next wave
    }
    picked.push_back(candidate.pos);
    wave_instances.push_back(instance);
  }
  if (picked.empty()) return {};

  std::vector<QueuedTrigger> wave;
  wave.reserve(picked.size());
  for (size_t pos : picked) wave.push_back(queue_[pos]);
  {
    std::vector<bool> remove(queue_.size(), false);
    for (size_t pos : picked) remove[pos] = true;
    std::deque<QueuedTrigger> kept;
    for (size_t pos = 0; pos < queue_.size(); ++pos) {
      if (!remove[pos]) kept.push_back(queue_[pos]);
    }
    queue_.swap(kept);
  }

  for (size_t i = 0; i < wave.size(); ++i) {
    dispatch_log_.push_back({wave[i], now_sec, i});
    stats_.max_wait_sec =
        std::max(stats_.max_wait_sec, now_sec - wave[i].enqueue_sec);
  }

  // Run the wave: pool_size - 1 workers plus this thread, each entry into
  // its own slot, so completions come back in wave rank order no matter
  // which thread ran what.
  std::vector<online::DiagnosisOutcome> results(wave.size());
  std::atomic<size_t> running{0};
  std::atomic<size_t> high_water{0};
  util::ParallelFor(pool_.get(), wave.size(), [&](size_t i) {
    const size_t now_running =
        running.fetch_add(1, std::memory_order_relaxed) + 1;
    size_t seen = high_water.load(std::memory_order_relaxed);
    while (now_running > seen &&
           !high_water.compare_exchange_weak(seen, now_running,
                                             std::memory_order_relaxed)) {
    }
    results[i] = runner_(wave[i]);
    running.fetch_sub(1, std::memory_order_relaxed);
  });

  stats_.max_observed_concurrency =
      std::max(stats_.max_observed_concurrency,
               high_water.load(std::memory_order_relaxed));
  stats_.completed += wave.size();
  PINSQL_OBS_COUNT("fleet.diagnoses_dispatched", wave.size());

  std::vector<Completion> completed;
  completed.reserve(wave.size());
  for (size_t i = 0; i < wave.size(); ++i) {
    completed.emplace_back(std::move(wave[i]), std::move(results[i]));
  }
  return completed;
}

}  // namespace pinsql::fleet
