#include "fleet/fleet_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <set>
#include <utility>

#include "obs/metrics.h"

namespace pinsql::fleet {

FleetService::FleetService(const std::vector<FleetInstanceSpec>& specs,
                           const FleetOptions& options)
    : options_(options),
      deduper_(options.scheduler.cooldown_sec),
      correlator_(
          [&options]() {
            // Storm membership must be decided by trigger times alone: a
            // lookback trigger is guaranteed still pending only while its
            // diagnosis is not yet due, so the storm window may not exceed
            // the diagnose delay (see CorrelatorOptions).
            CorrelatorOptions clamped = options.correlator;
            clamped.storm_window_sec = std::min(
                clamped.storm_window_sec, options.scheduler.diagnose_delay_sec);
            return clamped;
          }(),
          specs) {
  chunk_pool_ = std::make_shared<online::IngestChunkPool>();
  instances_.reserve(specs.size());
  for (const FleetInstanceSpec& spec : specs) {
    if (index_by_id_.count(spec.instance_id) != 0) continue;  // first wins
    index_by_id_[spec.instance_id] = instances_.size();
    Instance instance;
    instance.spec = spec;
    instance.archive = std::make_unique<LogStore>();
    instance.ingestor =
        std::make_unique<online::StreamIngestor>(options_.ingestor, chunk_pool_);
    instance.ingestor->AttachArchive(instance.archive.get());
    instance.detector =
        std::make_unique<online::OnlineAnomalyDetector>(options_.detector);
    instances_.push_back(std::move(instance));
  }
  scheduler_ = std::make_unique<FleetScheduler>(
      options_.pool, [this](const QueuedTrigger& entry) {
        return RunOne(entry);
      });
  if (options_.advance_workers > 1) {
    advance_pool_ =
        std::make_unique<util::ThreadPool>(options_.advance_workers);
  }
  env_ = options_.env != nullptr ? options_.env : store::PosixEnv();
  if (durable()) {
    for (Instance& instance : instances_) {
      instance.journal_mu = std::make_unique<std::mutex>();
    }
  }
}

FleetService::~FleetService() { Stop(); }

LogStore* FleetService::archive(uint32_t instance_id) {
  auto it = index_by_id_.find(instance_id);
  if (it == index_by_id_.end()) return nullptr;
  return instances_[it->second].archive.get();
}

void FleetService::RegisterTemplateFleetWide(uint64_t sql_id,
                                             const TemplateCatalogEntry& entry) {
  for (Instance& instance : instances_) {
    instance.archive->RegisterTemplate(sql_id, entry);
    if (durable()) {
      std::lock_guard<std::mutex> journal_lock(*instance.journal_mu);
      if (instance.writer != nullptr) {
        instance.writer->AppendTemplate(sql_id, entry);
      }
    }
  }
}

void FleetService::Start() {
  std::lock_guard<std::mutex> lock(advance_mu_);
  if (running_) return;
  if (durable()) {
    if (!journals_recovered_) RecoverJournalsLocked();
    OpenJournalsLocked();
  }
  running_ = true;
}

void FleetService::Stop() {
  std::lock_guard<std::mutex> lock(advance_mu_);
  if (!running_) return;
  // Drain: process every instance up to its own watermark, then close the
  // open storm (if any) and run every queued diagnosis.
  int64_t drain_to = last_fleet_sec_;
  for (Instance& instance : instances_) {
    if (auto mark = instance.ingestor->watermark_sec(); mark.has_value()) {
      drain_to = std::max(drain_to, *mark);
    }
  }
  AdvanceToLocked(drain_to);
  if (auto batch = correlator_.CloseOpenStorm(last_fleet_sec_);
      batch.has_value()) {
    TriageClosedStorm(std::move(*batch), last_fleet_sec_);
  }
  std::vector<FleetOutcome> completed;
  AppendCompletions(scheduler_->Drain(last_fleet_sec_), &completed);
  if (durable()) {
    for (Instance& instance : instances_) {
      std::lock_guard<std::mutex> journal_lock(*instance.journal_mu);
      if (instance.writer == nullptr) continue;
      if (!instance.pending.empty()) {
        instance.writer->AppendRecordBatch(instance.pending);
        instance.pending.clear();
      }
      instance.next_seq = instance.writer->position().segment_seq + 1;
      instance.writer->Close();
      instance.writer.reset();
    }
  }
  running_ = false;
}

bool FleetService::IngestRecord(uint32_t instance_id,
                                const QueryLogRecord& record) {
  auto it = index_by_id_.find(instance_id);
  if (it == index_by_id_.end()) return false;
  Instance& instance = instances_[it->second];
  if (!durable()) return instance.ingestor->IngestRecord(record);
  // The inner ingest and the journal buffer form one atomic step, so the
  // journal replays in exactly the order the rings accepted.
  std::lock_guard<std::mutex> journal_lock(*instance.journal_mu);
  const bool accepted = instance.ingestor->IngestRecord(record);
  // Buffer for the journal only while a writer exists to drain it: an
  // instance whose writer failed to open runs in-memory, and buffering
  // without a flusher would grow `pending` without bound.
  if (accepted && instance.writer != nullptr) {
    instance.pending.push_back(record);
  }
  return accepted;
}

bool FleetService::IngestMetrics(uint32_t instance_id,
                                 const online::PerfSample& sample) {
  auto it = index_by_id_.find(instance_id);
  if (it == index_by_id_.end()) return false;
  Instance& instance = instances_[it->second];
  if (!durable()) return instance.ingestor->IngestMetrics(sample);
  std::lock_guard<std::mutex> journal_lock(*instance.journal_mu);
  const bool accepted = instance.ingestor->IngestMetrics(sample);
  if (accepted && instance.writer != nullptr) {
    if (!instance.pending.empty()) {
      // Degraded on append failure: the records already sit in the rings,
      // and re-journaling them would duplicate them on replay.
      instance.writer->AppendRecordBatch(instance.pending);
      instance.pending.clear();
    }
    instance.writer->AppendSample(sample);
  }
  return accepted;
}

std::string FleetService::InstanceDir(uint32_t instance_id) const {
  return options_.data_dir + "/inst-" + std::to_string(instance_id);
}

void FleetService::RecoverJournalsLocked() {
  journals_recovered_ = true;
  recovery_.attempted = true;
  const auto started = std::chrono::steady_clock::now();

  // A journal groups records with the sample that closed their second:
  // every record-batch frame belongs to the next sample frame after it.
  struct Batch {
    std::vector<QueryLogRecord> records;
    std::optional<online::PerfSample> sample;
  };
  std::vector<std::deque<Batch>> batches(instances_.size());
  std::set<int64_t> sample_secs;

  for (size_t i = 0; i < instances_.size(); ++i) {
    Instance& instance = instances_[i];
    const std::string dir = InstanceDir(instance.spec.instance_id);
    env_->CreateDirs(dir);
    store::WalScanStats scan;
    Batch open;
    store::ScanWal(
        env_, dir, options_.wal, store::WalPosition{0, 0},
        [&](const store::WalFrame& frame) {
          switch (frame.kind) {
            case store::FrameKind::kRecordBatch:
              open.records.insert(open.records.end(), frame.records.begin(),
                                  frame.records.end());
              break;
            case store::FrameKind::kSample:
              open.sample = frame.sample;
              sample_secs.insert(frame.sample.sec);
              batches[i].push_back(std::move(open));
              open = Batch{};
              break;
            case store::FrameKind::kTemplate:
              instance.archive->RegisterTemplate(frame.template_id,
                                                 frame.template_entry);
              ++recovery_.templates;
              break;
            case store::FrameKind::kRepairEvent:
              break;  // the fleet service is diagnose-only
          }
        },
        &scan);
    if (!open.records.empty()) batches[i].push_back(std::move(open));
    if (scan.last_seq > 0) ++recovery_.instances_with_wal;
    instance.next_seq = scan.last_seq + 1;
    recovery_.frames_valid += scan.frames_valid;
    recovery_.frames_corrupt += scan.frames_corrupt;
    recovery_.frames_malformed += scan.frames_malformed;
    recovery_.frames_time_rejected += scan.frames_time_rejected;
    recovery_.records += scan.records;
    recovery_.samples += scan.samples;
    recovery_.torn_tail_bytes_truncated += scan.torn_tail_bytes_truncated;
  }

  // Replay with the canonical per-second discipline: for every second that
  // closed a sample anywhere in the fleet, re-ingest each instance's
  // batches due by then, then advance the fleet clock — the same total
  // order a live producers-then-AdvanceTo loop establishes, so the
  // recovered outcomes fingerprint byte-identically.
  for (int64_t sec : sample_secs) {
    for (size_t i = 0; i < instances_.size(); ++i) {
      Instance& instance = instances_[i];
      while (!batches[i].empty() && batches[i].front().sample.has_value() &&
             batches[i].front().sample->sec <= sec) {
        Batch batch = std::move(batches[i].front());
        batches[i].pop_front();
        for (const QueryLogRecord& record : batch.records) {
          instance.ingestor->IngestRecord(record);
        }
        instance.ingestor->IngestMetrics(*batch.sample);
      }
    }
    AdvanceToLocked(sec);
  }
  // Tail batches (records journaled after the last sample) stay staged,
  // exactly as they were before the crash.
  for (size_t i = 0; i < instances_.size(); ++i) {
    for (const Batch& batch : batches[i]) {
      for (const QueryLogRecord& record : batch.records) {
        instances_[i].ingestor->IngestRecord(record);
      }
    }
  }

  recovery_.recovery_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - started)
                              .count();
  PINSQL_OBS_GAUGE_SET("store.recovery_ms",
                       static_cast<int64_t>(recovery_.recovery_ms));
}

void FleetService::OpenJournalsLocked() {
  for (Instance& instance : instances_) {
    std::lock_guard<std::mutex> journal_lock(*instance.journal_mu);
    if (instance.writer != nullptr) continue;
    const std::string dir = InstanceDir(instance.spec.instance_id);
    env_->CreateDirs(dir);
    auto writer =
        store::WalWriter::Open(env_, dir, options_.wal,
                               std::max<uint64_t>(instance.next_seq, 1));
    if (!writer.ok()) continue;  // degraded: this instance runs in-memory
    instance.writer = std::move(writer).value();
    // Re-journal the catalog so registrations made before Start() (or
    // recovered from a prior incarnation) live in a segment this
    // incarnation wrote. Registration is idempotent on replay.
    std::vector<std::pair<uint64_t, TemplateCatalogEntry>> catalog(
        instance.archive->catalog().begin(),
        instance.archive->catalog().end());
    std::sort(catalog.begin(), catalog.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [sql_id, entry] : catalog) {
      instance.writer->AppendTemplate(sql_id, entry);
    }
  }
}

std::vector<FleetOutcome> FleetService::AdvanceTo(int64_t fleet_sec) {
  std::lock_guard<std::mutex> lock(advance_mu_);
  if (!running_) return {};
  return AdvanceToLocked(fleet_sec);
}

void FleetService::ProcessInstance(Instance* instance, int64_t fleet_sec,
                                   std::vector<SecondEvent>* events) {
  instance->ingestor->Pump();
  const auto mark = instance->ingestor->watermark_sec();
  if (!mark.has_value()) return;
  const int64_t to = std::min(*mark, fleet_sec);
  const int64_t from =
      instance->processed_any ? instance->last_processed_sec + 1 : *mark;
  for (int64_t sec = from; sec <= to; ++sec) {
    double value = std::numeric_limits<double>::quiet_NaN();
    if (auto sample = instance->ingestor->SampleAt(sec); sample.has_value()) {
      value = sample->active_session;
    }
    SecondEvent event;
    event.sec = sec;
    event.trigger = instance->detector->Observe(sec, value);
    if (event.trigger.has_value()) {
      event.trigger->instance_id = instance->spec.instance_id;
    }
    event.in_run = instance->detector->in_run();
    events->push_back(event);
    instance->last_processed_sec = sec;
    instance->processed_any = true;
  }
}

void FleetService::RouteAcceptedTrigger(const online::AnomalyTrigger& trigger) {
  const int64_t due_sec =
      trigger.trigger_sec + options_.scheduler.diagnose_delay_sec;
  const double base_priority = trigger.severity;
  PINSQL_OBS_COUNT("fleet.triggers_accepted", 1);
  PINSQL_OBS_OBSERVE(
      "fleet.detection_latency_sec",
      static_cast<uint64_t>(
          std::max<int64_t>(trigger.trigger_sec - trigger.onset_sec, 0)));
  if (correlator_.OnAcceptedTrigger(trigger, due_sec, base_priority)) {
    return;  // captured by the open storm batch
  }
  scheduler_->Enqueue(trigger, trigger.trigger_sec, due_sec, base_priority);
}

void FleetService::TriageClosedStorm(StormBatch batch, int64_t now_sec) {
  // Triage rank: highest severity first, ties broken by earlier onset,
  // then lower instance id — fully deterministic.
  std::vector<size_t> order(batch.members.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const StormMember& ma = batch.members[a];
    const StormMember& mb = batch.members[b];
    if (ma.trigger.severity != mb.trigger.severity) {
      return ma.trigger.severity > mb.trigger.severity;
    }
    if (ma.trigger.onset_sec != mb.trigger.onset_sec) {
      return ma.trigger.onset_sec < mb.trigger.onset_sec;
    }
    return ma.trigger.instance_id < mb.trigger.instance_id;
  });

  for (size_t rank = 0; rank < order.size(); ++rank) {
    const StormMember& member = batch.members[order[rank]];
    if (rank < options_.correlator.storm_triage_k) {
      batch.triaged.push_back(member.trigger.instance_id);
      scheduler_->Enqueue(member.trigger, now_sec,
                          std::max(member.due_sec, now_sec),
                          member.base_priority, batch.id);
    } else {
      FleetOutcome deferred;
      deferred.disposition = FleetOutcome::Disposition::kStormDeferred;
      deferred.storm_batch = batch.id;
      deferred.outcome.trigger = member.trigger;
      deferred.outcome.ok = false;
      deferred.outcome.error =
          "storm_deferred:batch=" + std::to_string(batch.id);
      outcomes_.push_back(std::move(deferred));
      ++storm_deferred_;
      PINSQL_OBS_COUNT("fleet.storm_deferred", 1);
    }
  }
  storms_.push_back(std::move(batch));
}

void FleetService::AppendCompletions(
    std::vector<FleetScheduler::Completion> completions,
    std::vector<FleetOutcome>* out) {
  for (auto& [entry, outcome] : completions) {
    FleetOutcome fleet_outcome;
    fleet_outcome.disposition = FleetOutcome::Disposition::kDiagnosed;
    fleet_outcome.storm_batch = entry.storm_batch;
    fleet_outcome.outcome = std::move(outcome);
    if (fleet_outcome.outcome.ok) {
      ++diagnoses_ok_;
    } else {
      ++diagnoses_failed_;
    }
    outcomes_.push_back(fleet_outcome);
    if (out != nullptr) out->push_back(std::move(fleet_outcome));
    PINSQL_OBS_COUNT("fleet.diagnoses", 1);
  }
}

online::DiagnosisOutcome FleetService::RunOne(const QueuedTrigger& entry) {
  Instance& instance = instances_[index_by_id_.at(entry.trigger.instance_id)];
  online::WindowedDiagnosisContext ctx;
  ctx.ingestor = instance.ingestor.get();
  ctx.archive = instance.archive.get();
  ctx.options = &options_.scheduler;
  ctx.supervisor = nullptr;  // fleet service is diagnose-only
  ctx.history = &empty_history_;
  ctx.rules = &rules_;
  // The window end is the trigger's planned end — fixed at trigger time,
  // independent of when the pool actually ran this entry (storm triage may
  // delay its due second past it).
  const int64_t window_end_sec =
      entry.trigger.trigger_sec + options_.scheduler.diagnose_delay_sec;
  return online::RunWindowedDiagnosis(ctx, entry.trigger, window_end_sec,
                                      nullptr);
}

std::vector<FleetOutcome> FleetService::AdvanceToLocked(int64_t fleet_sec) {
  std::vector<FleetOutcome> completed;

  // Parallel per-instance step: pump, sample, detect — into disjoint
  // per-instance slots, so the merge below sees identical events at any
  // advance_workers.
  std::vector<std::vector<SecondEvent>> events(instances_.size());
  util::ParallelFor(advance_pool_.get(), instances_.size(), [&](size_t i) {
    ProcessInstance(&instances_[i], fleet_sec, &events[i]);
  });

  int64_t tick_from =
      processed_fleet_any_ ? last_fleet_sec_ + 1 : fleet_sec;
  if (!processed_fleet_any_) {
    // First advance: start the fleet clock at the earliest instance event
    // so a lagging instance's seconds are not skipped.
    for (const auto& instance_events : events) {
      if (!instance_events.empty()) {
        tick_from = std::min(tick_from, instance_events.front().sec);
      }
    }
  }
  if (tick_from > fleet_sec) return completed;

  // Sequential merge in (second, instance) order: dedup, correlate, route,
  // then the fleet-level ticks.
  std::vector<size_t> cursors(instances_.size(), 0);
  for (int64_t sec = tick_from; sec <= fleet_sec; ++sec) {
    for (size_t i = 0; i < instances_.size(); ++i) {
      auto& instance_events = events[i];
      auto& cursor = cursors[i];
      // `<=`: an instance second that predates the fleet clock (a late
      // joiner) is merged at the first tick that sees it.
      while (cursor < instance_events.size() &&
             instance_events[cursor].sec <= sec) {
        const SecondEvent& event = instance_events[cursor];
        if (event.trigger.has_value()) {
          ++triggers_confirmed_;
          if (deduper_.Accept(*event.trigger)) {
            ++triggers_accepted_;
            RouteAcceptedTrigger(*event.trigger);
          } else {
            ++triggers_suppressed_;
            PINSQL_OBS_COUNT("fleet.triggers_suppressed", 1);
          }
        }
        if (event.in_run) {
          deduper_.NoteActivity(instances_[i].spec.instance_id, event.sec);
        }
        ++cursor;
      }
    }

    auto tick_events = correlator_.Tick(sec);
    if (tick_events.storm_opened) {
      // Pull the lookback window's pending triggers into the batch. They
      // are all still queued at any pool size: their due seconds lie
      // beyond `sec` because storm_window_sec <= diagnose_delay_sec.
      auto pulled = scheduler_->Extract([&](const QueuedTrigger& entry) {
        return entry.storm_batch == 0 &&
               entry.trigger.trigger_sec >= tick_events.lookback_from_sec;
      });
      std::vector<StormMember> members;
      members.reserve(pulled.size());
      for (const QueuedTrigger& entry : pulled) {
        members.push_back(
            {entry.trigger, entry.due_sec, entry.base_priority});
      }
      correlator_.AdoptIntoOpenStorm(members);
    }
    for (StormBatch& batch : tick_events.closed) {
      TriageClosedStorm(std::move(batch), sec);
    }
    for (NoisyNeighborVerdict& verdict : tick_events.verdicts) {
      verdicts_.push_back(std::move(verdict));
    }

    AppendCompletions(scheduler_->Tick(sec), &completed);
    PINSQL_OBS_GAUGE_SET("fleet.pool_queue_depth",
                         static_cast<int64_t>(scheduler_->pending()));

    last_fleet_sec_ = sec;
    processed_fleet_any_ = true;
    ++seconds_processed_;
  }
  PINSQL_OBS_COUNT("fleet.seconds_processed",
                   static_cast<uint64_t>(fleet_sec - tick_from + 1));
  return completed;
}

std::vector<int64_t> FleetService::detection_latencies(
    uint32_t instance_id) const {
  std::lock_guard<std::mutex> lock(advance_mu_);
  auto it = index_by_id_.find(instance_id);
  if (it == index_by_id_.end()) return {};
  return instances_[it->second].detector->latencies_sec();
}

FleetStats FleetService::stats() const {
  std::lock_guard<std::mutex> lock(advance_mu_);
  FleetStats stats;
  stats.instances = instances_.size();
  for (const Instance& instance : instances_) {
    const online::IngestStats cut = instance.ingestor->stats();
    stats.ingest.records_enqueued += cut.records_enqueued;
    stats.ingest.records_folded += cut.records_folded;
    stats.ingest.records_dropped_backpressure +=
        cut.records_dropped_backpressure;
    stats.ingest.records_dropped_late += cut.records_dropped_late;
    stats.ingest.records_staged += cut.records_staged;
    stats.ingest.metric_samples += cut.metric_samples;
    stats.ingest.metric_samples_dropped += cut.metric_samples_dropped;
    stats.samples_observed += instance.detector->stats().samples;
    if (instance.journal_mu != nullptr) {
      std::lock_guard<std::mutex> journal_lock(*instance.journal_mu);
      stats.pending_journal_records += instance.pending.size();
    }
  }
  stats.triggers_confirmed = triggers_confirmed_;
  stats.triggers_accepted = triggers_accepted_;
  stats.triggers_suppressed = triggers_suppressed_;
  stats.diagnoses_ok = diagnoses_ok_;
  stats.diagnoses_failed = diagnoses_failed_;
  stats.storms_detected = correlator_.storms_detected();
  stats.storm_deferred = storm_deferred_;
  stats.neighbor_verdicts = verdicts_.size();
  stats.seconds_processed = seconds_processed_;
  stats.pool = scheduler_->stats();
  return stats;
}

}  // namespace pinsql::fleet
