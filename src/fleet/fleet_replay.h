#ifndef PINSQL_FLEET_FLEET_REPLAY_H_
#define PINSQL_FLEET_FLEET_REPLAY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fleet/fleet_service.h"
#include "logstore/log_store.h"
#include "online/replay.h"

namespace pinsql::fleet {

struct FleetReplayOptions {
  FleetOptions fleet;
  /// Concurrent ingest workers feeding the fleet. Worker w owns the
  /// instances with index ≡ w (mod num_ingest_workers) and pushes each
  /// owned instance's records and samples in recorded order, so every
  /// per-instance ingest order — and therefore the fingerprint — is
  /// identical at any worker count.
  int num_ingest_workers = 2;
  /// Force wall-clock timing fields to zero so replays are
  /// byte-comparable. On by default; turn off to measure.
  bool zero_timings = true;
};

struct FleetResult {
  /// Completion order (schedule-dependent; the fingerprint sorts).
  std::vector<FleetOutcome> outcomes;
  std::vector<StormBatch> storms;
  std::vector<NoisyNeighborVerdict> neighbors;
  /// Per-instance detection latencies, in firing order.
  std::map<uint32_t, std::vector<int64_t>> latencies;
  FleetStats stats;

  /// Deterministic digest of everything the fleet replay promises
  /// bit-reproducible: every outcome (sorted by instance, onset, trigger —
  /// schedule-invariant), every storm batch and every noisy-neighbor
  /// verdict. Two replays of one fleet log are correct iff their
  /// fingerprints are byte-identical — at any ingest shard count, any
  /// diagnoser pool size, any ingest worker count and any
  /// advance_workers. Stats are excluded (queue depths legitimately vary
  /// with pool size).
  std::string Fingerprint() const;

  /// Digest of one instance's slice, with the instance id normalized to 0
  /// — byte-comparable to ReplayResult::Fingerprint() of a solo replay of
  /// the same stream, which is how the chaos suite proves per-instance
  /// isolation (an unfaulted co-tenant is bit-identical to its solo run).
  std::string InstanceFingerprint(uint32_t instance_id) const;
};

/// Replays one recorded stream per instance through a fresh FleetService,
/// bit-deterministically: the fleet clock sweeps the union of the
/// instances' sample spans, each simulated second is fully ingested for
/// every instance before the fleet processes it, and `catalog` seeds every
/// instance's archive. `logs` is parallel to `specs`; an instance with no
/// samples never starts its virtual clock (its records are not
/// processed).
FleetResult RunFleetReplay(const std::vector<FleetInstanceSpec>& specs,
                           const std::vector<online::ReplayLog>& logs,
                           const LogStore& catalog,
                           const FleetReplayOptions& options);

}  // namespace pinsql::fleet

#endif  // PINSQL_FLEET_FLEET_REPLAY_H_
