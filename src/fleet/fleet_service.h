#ifndef PINSQL_FLEET_FLEET_SERVICE_H_
#define PINSQL_FLEET_FLEET_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fleet/correlator.h"
#include "fleet/fleet_scheduler.h"
#include "logstore/log_store.h"
#include "online/online_detector.h"
#include "online/scheduler.h"
#include "online/stream_ingestor.h"
#include "repair/rule_engine.h"
#include "store/env.h"
#include "store/wal.h"
#include "util/thread_pool.h"

namespace pinsql::fleet {

struct FleetOptions {
  /// Per-instance ingestion (shard count, window, backpressure).
  online::IngestorOptions ingestor;
  /// Per-instance streaming detector.
  online::OnlineDetectorOptions detector;
  /// Diagnosis configuration shared by every instance (delta_s, delay,
  /// cooldown, zero_timings). auto_repair is ignored — the fleet service
  /// is diagnose-only; closed-loop repair stays per-instance
  /// (OnlineService + RepairSupervisor).
  online::SchedulerOptions scheduler;
  /// Bounded fleet-wide diagnoser pool with priority aging.
  FleetSchedulerOptions pool;
  /// Storm and noisy-neighbor correlation. storm_window_sec is clamped to
  /// scheduler.diagnose_delay_sec (see CorrelatorOptions).
  CorrelatorOptions correlator;
  /// Worker threads for the per-instance advance step (pump + detect).
  /// Purely a throughput knob: instances are processed into disjoint
  /// slots, so results are identical at any count.
  int advance_workers = 4;
  /// Durable journaling root (empty = in-memory only). Every accepted
  /// record, sample and template registration is journaled into a
  /// per-instance segment WAL under <data_dir>/inst-<id>/, and Start()
  /// recovers whatever the directories hold before accepting new work.
  /// The fleet keeps no checkpoints: recovery is a full WAL replay, and
  /// segments are retained until the operator removes the directory.
  std::string data_dir;
  store::WalOptions wal;
  /// Filesystem the journals go through (nullptr = POSIX); tests
  /// substitute a fault-injecting Env.
  store::Env* env = nullptr;
};

/// Accounting of one fleet journal recovery (summed over instances).
struct FleetRecoveryStats {
  bool attempted = false;
  size_t instances_with_wal = 0;
  size_t frames_valid = 0;
  size_t frames_corrupt = 0;
  size_t frames_malformed = 0;
  size_t frames_time_rejected = 0;
  size_t records = 0;
  size_t samples = 0;
  size_t templates = 0;
  uint64_t torn_tail_bytes_truncated = 0;
  double recovery_ms = 0.0;
};

/// What happened to one accepted trigger at fleet level.
struct FleetOutcome {
  enum class Disposition {
    /// Ran a full windowed diagnosis (outcome.report is populated).
    kDiagnosed,
    /// Collapsed into a storm batch and not individually diagnosed;
    /// outcome carries the trigger and an explanatory error. Never
    /// silently dropped.
    kStormDeferred,
  };
  Disposition disposition = Disposition::kDiagnosed;
  /// Storm batch id the trigger belonged to (0 = direct trigger).
  uint64_t storm_batch = 0;
  online::DiagnosisOutcome outcome;
};

struct FleetStats {
  size_t instances = 0;
  /// Sum of per-instance consistent ingest cuts.
  online::IngestStats ingest;
  size_t samples_observed = 0;
  /// Detector-confirmed triggers before dedup.
  size_t triggers_confirmed = 0;
  size_t triggers_accepted = 0;
  size_t triggers_suppressed = 0;
  size_t diagnoses_ok = 0;
  size_t diagnoses_failed = 0;
  size_t storms_detected = 0;
  size_t storm_deferred = 0;
  size_t neighbor_verdicts = 0;
  int64_t seconds_processed = 0;
  /// Accepted records buffered for the journal but not yet flushed by a
  /// sample, summed over instances. Always 0 in-memory and for degraded
  /// instances (writer failed to open): nothing buffers without a flusher.
  size_t pending_journal_records = 0;
  FleetSchedulerStats pool;
};

/// Hundreds-to-thousands of simulated instances behind one sharded
/// service: per-instance StreamIngestor + streaming detector multiplexed
/// over a fixed advance-worker set, confirmed triggers deduped per
/// instance and fed through the cross-instance correlator into the
/// bounded diagnoser pool.
///
/// Clock model: every instance keeps its own virtual clock (its metric
/// watermark); AdvanceTo(fleet_sec) is the fleet watermark — it processes
/// each instance up to min(instance watermark, fleet_sec), then runs the
/// fleet-level ticks (dedup, correlation, one dispatch wave per second).
///
/// Threading: IngestRecord / IngestMetrics are safe from any number of
/// producers. AdvanceTo / Stop / stats serialize on an internal mutex.
/// During a dispatch wave each in-flight diagnosis touches only its own
/// instance's ingestor and archive (the wave packs at most one entry per
/// instance), plus shared read-only state — the whole service is
/// TSan-clean by construction.
///
/// Determinism: with a fixed ingest order per instance, results are
/// byte-identical (see FleetResult::Fingerprint) at any ingest shard
/// count, any diagnoser pool size and any advance_workers — diagnosis
/// windows are fixed at trigger time and storm membership is decided by
/// trigger times alone.
class FleetService {
 public:
  FleetService(const std::vector<FleetInstanceSpec>& specs,
               const FleetOptions& options);
  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  size_t num_instances() const { return instances_.size(); }

  /// The per-instance archive (nullptr for an unknown id). Register
  /// templates before streaming starts.
  LogStore* archive(uint32_t instance_id);

  /// Registers one template into every instance's archive (the fleet
  /// shares one logical catalog).
  void RegisterTemplateFleetWide(uint64_t sql_id,
                                 const TemplateCatalogEntry& entry);

  void Start();

  /// Graceful drain: folds everything staged, processes every instance up
  /// to its watermark, closes an open storm, and runs every queued
  /// diagnosis — in-flight and not-yet-due alike, each keeping its planned
  /// window. Idempotent.
  void Stop();

  bool running() const { return running_; }

  /// Thread-safe producer entry points. Return false when the record /
  /// sample was dropped (and counted). Unknown instance ids are rejected.
  bool IngestRecord(uint32_t instance_id, const QueryLogRecord& record);
  bool IngestMetrics(uint32_t instance_id, const online::PerfSample& sample);

  /// Advances the fleet watermark to `fleet_sec` and processes everything
  /// up to it. Returns the fleet outcomes completed by this call.
  std::vector<FleetOutcome> AdvanceTo(int64_t fleet_sec);

  /// Every fleet outcome so far, in completion order.
  const std::vector<FleetOutcome>& outcomes() const { return outcomes_; }
  const std::vector<StormBatch>& storms() const { return storms_; }
  const std::vector<NoisyNeighborVerdict>& neighbor_verdicts() const {
    return verdicts_;
  }

  /// Detection latencies of one instance's detector, in firing order.
  std::vector<int64_t> detection_latencies(uint32_t instance_id) const;

  FleetStats stats() const;

  /// What Start()'s journal recovery replayed (zero-valued when the fleet
  /// runs without a data_dir).
  const FleetRecoveryStats& recovery() const { return recovery_; }

 private:
  struct Instance {
    FleetInstanceSpec spec;
    std::unique_ptr<LogStore> archive;
    std::unique_ptr<online::StreamIngestor> ingestor;
    std::unique_ptr<online::OnlineAnomalyDetector> detector;
    bool processed_any = false;
    int64_t last_processed_sec = 0;
    /// Durable journal (null when the fleet runs in-memory, or between
    /// Stop() and the next Start()). journal_mu orders the inner ingest
    /// and the journal append as one atomic step, so the journal replays
    /// in exactly the ingest order the rings saw.
    std::unique_ptr<std::mutex> journal_mu;
    std::vector<QueryLogRecord> pending;
    std::unique_ptr<store::WalWriter> writer;
    uint64_t next_seq = 1;
  };
  /// What one instance-second produced, recorded by the parallel advance
  /// step and merged sequentially in instance order.
  struct SecondEvent {
    int64_t sec = 0;
    std::optional<online::AnomalyTrigger> trigger;
    bool in_run = false;
  };

  std::vector<FleetOutcome> AdvanceToLocked(int64_t fleet_sec);
  bool durable() const { return !options_.data_dir.empty(); }
  std::string InstanceDir(uint32_t instance_id) const;
  /// First Start() only: replays every instance's WAL through the normal
  /// ingest path with the canonical per-second discipline.
  void RecoverJournalsLocked();
  /// Opens (or reopens after Stop) each instance's writer and re-journals
  /// the current catalog so template registrations made before Start()
  /// survive a crash.
  void OpenJournalsLocked();
  void ProcessInstance(Instance* instance, int64_t fleet_sec,
                       std::vector<SecondEvent>* events);
  void RouteAcceptedTrigger(const online::AnomalyTrigger& trigger);
  void TriageClosedStorm(StormBatch batch, int64_t now_sec);
  void AppendCompletions(std::vector<FleetScheduler::Completion> completions,
                         std::vector<FleetOutcome>* out);
  online::DiagnosisOutcome RunOne(const QueuedTrigger& entry);

  FleetOptions options_;
  /// One chunk pool behind every instance's ingestor: staging capacity is
  /// pooled fleet-wide (slabs recycle across instances) instead of
  /// multiplied by the instance count.
  std::shared_ptr<online::IngestChunkPool> chunk_pool_;
  std::vector<Instance> instances_;
  std::map<uint32_t, size_t> index_by_id_;

  online::TriggerDeduper deduper_;
  CrossInstanceCorrelator correlator_;
  std::unique_ptr<FleetScheduler> scheduler_;
  std::unique_ptr<util::ThreadPool> advance_pool_;

  core::MapHistoryProvider empty_history_;
  repair::RepairRuleEngine rules_ = repair::RepairRuleEngine::Default();

  mutable std::mutex advance_mu_;
  bool running_ = false;
  bool processed_fleet_any_ = false;
  int64_t last_fleet_sec_ = 0;
  int64_t seconds_processed_ = 0;
  size_t triggers_confirmed_ = 0;
  size_t triggers_accepted_ = 0;
  size_t triggers_suppressed_ = 0;
  size_t diagnoses_ok_ = 0;
  size_t diagnoses_failed_ = 0;
  size_t storm_deferred_ = 0;

  std::vector<FleetOutcome> outcomes_;
  std::vector<StormBatch> storms_;
  std::vector<NoisyNeighborVerdict> verdicts_;

  store::Env* env_ = nullptr;
  bool journals_recovered_ = false;
  FleetRecoveryStats recovery_;
};

}  // namespace pinsql::fleet

#endif  // PINSQL_FLEET_FLEET_SERVICE_H_
