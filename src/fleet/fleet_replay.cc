#include "fleet/fleet_replay.h"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>
#include <utility>

namespace pinsql::fleet {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// One instance's recorded stream expanded for replay: a per-second sample
/// timeline (gap-filled) and arrival-ordered records bucketed per second.
struct InstancePlan {
  std::vector<online::PerfSample> timeline;
  int64_t first_sec = 0;
  std::vector<QueryLogRecord> records;
  std::vector<std::pair<size_t, size_t>> ranges;
};

InstancePlan BuildPlan(const online::ReplayLog& log) {
  InstancePlan plan;
  if (log.samples.empty()) return plan;

  plan.first_sec = log.samples.front().sec;
  const int64_t last_sec = log.samples.back().sec;
  plan.timeline.reserve(static_cast<size_t>(last_sec - plan.first_sec + 1));
  const double gap = std::numeric_limits<double>::quiet_NaN();
  size_t k = 0;
  for (int64_t sec = plan.first_sec; sec <= last_sec; ++sec) {
    while (k < log.samples.size() && log.samples[k].sec < sec) ++k;
    if (k < log.samples.size() && log.samples[k].sec == sec) {
      plan.timeline.push_back(log.samples[k]);
    } else {
      plan.timeline.push_back(
          online::PerfSample{.sec = sec, .active_session = gap,
                             .cpu_usage = gap, .iops_usage = gap,
                             .row_lock_waits = gap, .mdl_waits = gap});
    }
  }

  plan.records = log.records;
  std::stable_sort(plan.records.begin(), plan.records.end(),
                   [](const QueryLogRecord& a, const QueryLogRecord& b) {
                     return a.arrival_ms < b.arrival_ms;
                   });
  plan.ranges.resize(plan.timeline.size());
  size_t cursor = 0;
  for (size_t i = 0; i < plan.timeline.size(); ++i) {
    const size_t begin = cursor;
    const int64_t end_ms = (plan.timeline[i].sec + 1) * 1000;
    while (cursor < plan.records.size() &&
           plan.records[cursor].arrival_ms < end_ms) {
      ++cursor;
    }
    if (i + 1 == plan.timeline.size()) cursor = plan.records.size();
    plan.ranges[i] = {begin, cursor};
  }
  return plan;
}

}  // namespace

std::string FleetResult::Fingerprint() const {
  std::string out;
  for (const auto& [instance_id, instance_latencies] : latencies) {
    out += "latencies[";
    out += std::to_string(instance_id);
    out += "]:";
    for (int64_t latency : instance_latencies) {
      out += std::to_string(latency);
      out += ',';
    }
    out += '\n';
  }

  std::vector<size_t> order(outcomes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    const online::AnomalyTrigger& ta = outcomes[a].outcome.trigger;
    const online::AnomalyTrigger& tb = outcomes[b].outcome.trigger;
    if (ta.instance_id != tb.instance_id) {
      return ta.instance_id < tb.instance_id;
    }
    if (ta.onset_sec != tb.onset_sec) return ta.onset_sec < tb.onset_sec;
    return ta.trigger_sec < tb.trigger_sec;
  });
  for (size_t idx : order) {
    const FleetOutcome& fleet_outcome = outcomes[idx];
    out += "outcome:";
    out += fleet_outcome.disposition == FleetOutcome::Disposition::kDiagnosed
               ? "diagnosed"
               : "storm_deferred";
    out += ",storm=";
    out += std::to_string(fleet_outcome.storm_batch);
    out += '\n';
    online::AppendOutcomeFingerprint(fleet_outcome.outcome, &out);
  }

  for (const StormBatch& storm : storms) {
    out += "storm:";
    out += std::to_string(storm.id);
    out += ",opened=";
    out += std::to_string(storm.opened_sec);
    out += ",closed=";
    out += std::to_string(storm.closed_sec);
    out += ",triaged=";
    for (uint32_t instance_id : storm.triaged) {
      out += std::to_string(instance_id);
      out += ',';
    }
    out += "members=";
    std::vector<size_t> member_order(storm.members.size());
    for (size_t i = 0; i < member_order.size(); ++i) member_order[i] = i;
    std::sort(member_order.begin(), member_order.end(),
              [&storm](size_t a, size_t b) {
                const online::AnomalyTrigger& ta = storm.members[a].trigger;
                const online::AnomalyTrigger& tb = storm.members[b].trigger;
                if (ta.instance_id != tb.instance_id) {
                  return ta.instance_id < tb.instance_id;
                }
                if (ta.onset_sec != tb.onset_sec) {
                  return ta.onset_sec < tb.onset_sec;
                }
                return ta.trigger_sec < tb.trigger_sec;
              });
    for (size_t idx : member_order) {
      const StormMember& member = storm.members[idx];
      out += '(';
      out += std::to_string(member.trigger.instance_id);
      out += ',';
      out += std::to_string(member.trigger.onset_sec);
      out += ',';
      out += std::to_string(member.trigger.trigger_sec);
      out += ',';
      out += FormatDouble(member.trigger.severity);
      out += ')';
    }
    out += '\n';
  }

  for (const NoisyNeighborVerdict& verdict : neighbors) {
    out += "neighbor:host=";
    out += std::to_string(verdict.host_id);
    out += ",sec=";
    out += std::to_string(verdict.flagged_sec);
    out += ",dominant=";
    out += std::to_string(verdict.dominant_instance);
    out += ",onset=";
    out += std::to_string(verdict.dominant_onset_sec);
    out += ",severity=";
    out += FormatDouble(verdict.dominant_severity);
    out += ",cotenants=";
    for (uint32_t instance_id : verdict.cotenants) {
      out += std::to_string(instance_id);
      out += ',';
    }
    out += '\n';
  }
  return out;
}

std::string FleetResult::InstanceFingerprint(uint32_t instance_id) const {
  std::string out;
  out += "latencies:";
  if (auto it = latencies.find(instance_id); it != latencies.end()) {
    for (int64_t latency : it->second) {
      out += std::to_string(latency);
      out += ',';
    }
  }
  out += '\n';

  std::vector<size_t> order;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].outcome.trigger.instance_id == instance_id) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    const online::AnomalyTrigger& ta = outcomes[a].outcome.trigger;
    const online::AnomalyTrigger& tb = outcomes[b].outcome.trigger;
    if (ta.onset_sec != tb.onset_sec) return ta.onset_sec < tb.onset_sec;
    return ta.trigger_sec < tb.trigger_sec;
  });
  for (size_t idx : order) {
    // Normalize the id so the digest is byte-comparable to a solo
    // ReplayResult::Fingerprint (whose triggers carry instance 0).
    online::DiagnosisOutcome normalized = outcomes[idx].outcome;
    normalized.trigger.instance_id = 0;
    online::AppendOutcomeFingerprint(normalized, &out);
  }
  return out;
}

FleetResult RunFleetReplay(const std::vector<FleetInstanceSpec>& specs,
                           const std::vector<online::ReplayLog>& logs,
                           const LogStore& catalog,
                           const FleetReplayOptions& options) {
  FleetResult result;
  const size_t n = std::min(specs.size(), logs.size());
  if (n == 0) return result;

  FleetOptions fleet_options = options.fleet;
  if (options.zero_timings) fleet_options.scheduler.zero_timings = true;
  std::vector<FleetInstanceSpec> fleet_specs(specs.begin(),
                                             specs.begin() + n);
  FleetService service(fleet_specs, fleet_options);
  for (const auto& [sql_id, entry] : catalog.catalog()) {
    service.RegisterTemplateFleetWide(sql_id, entry);
  }

  std::vector<InstancePlan> plans;
  plans.reserve(n);
  int64_t first_sec = std::numeric_limits<int64_t>::max();
  int64_t last_sec = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < n; ++i) {
    plans.push_back(BuildPlan(logs[i]));
    if (!plans.back().timeline.empty()) {
      first_sec = std::min(first_sec, plans.back().first_sec);
      last_sec = std::max(last_sec,
                          plans.back().first_sec +
                              static_cast<int64_t>(plans.back().timeline.size()) -
                              1);
    }
  }
  if (first_sec > last_sec) return result;

  const int num_workers = std::max(options.num_ingest_workers, 1);
  service.Start();
  // Two barriers per simulated second: workers finish every owned
  // instance's pushes for the second, the main loop advances the fleet
  // watermark, then everyone moves on. Worker w owns instances ≡ w
  // (mod W) and pushes in recorded order, so per-instance ingest order is
  // invariant under W.
  std::barrier sync(num_workers + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_workers));
  for (int wid = 0; wid < num_workers; ++wid) {
    workers.emplace_back([&, wid]() {
      for (int64_t sec = first_sec; sec <= last_sec; ++sec) {
        for (size_t i = static_cast<size_t>(wid); i < n;
             i += static_cast<size_t>(num_workers)) {
          const InstancePlan& plan = plans[i];
          if (plan.timeline.empty()) continue;
          const int64_t idx = sec - plan.first_sec;
          if (idx < 0 || idx >= static_cast<int64_t>(plan.timeline.size())) {
            continue;
          }
          const auto [begin, end] = plan.ranges[static_cast<size_t>(idx)];
          for (size_t k = begin; k < end; ++k) {
            service.IngestRecord(specs[i].instance_id, plan.records[k]);
          }
          service.IngestMetrics(specs[i].instance_id,
                                plan.timeline[static_cast<size_t>(idx)]);
        }
        sync.arrive_and_wait();
        sync.arrive_and_wait();
      }
    });
  }
  for (int64_t sec = first_sec; sec <= last_sec; ++sec) {
    sync.arrive_and_wait();
    service.AdvanceTo(sec);
    sync.arrive_and_wait();
  }
  for (std::thread& worker : workers) worker.join();
  service.Stop();

  result.outcomes = service.outcomes();
  result.storms = service.storms();
  result.neighbors = service.neighbor_verdicts();
  for (size_t i = 0; i < n; ++i) {
    result.latencies[specs[i].instance_id] =
        service.detection_latencies(specs[i].instance_id);
  }
  result.stats = service.stats();
  return result;
}

}  // namespace pinsql::fleet
