#ifndef PINSQL_DETECT_FORECAST_H_
#define PINSQL_DETECT_FORECAST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "anomaly/detectors.h"
#include "ts/time_series.h"

namespace pinsql::detect {

/// Forecasting model families (the Akumuli-style anomaly-detector menu:
/// smoothing forecasters plus a sketch-backed variant for keyed streams).
enum class ForecastMethod {
  kEwma,         // exponentially weighted moving average (level only)
  kHolt,         // double exponential smoothing (level + trend)
  kHoltWinters,  // triple exponential smoothing (level + trend + season)
  kEwmaSketch,   // EWMA cells behind a count-min style sketch
};

const char* ForecastMethodName(ForecastMethod method);

/// Tuning for one forecasting detector. The residual screen is two-layer:
/// a per-sample |z| threshold catches sharp deviations (spikes, shifts),
/// and a one-sided CUSUM over the same residual z accumulates the small
/// persistent positives a slow ramp produces — the case a rolling robust
/// baseline absorbs (DESIGN.md §14).
struct ForecastOptions {
  ForecastMethod method = ForecastMethod::kEwma;
  /// Level smoothing factor. Small alpha = long memory: the forecast lags
  /// a ramp, which is exactly what makes the drift residual visible.
  double alpha = 0.05;
  /// Trend smoothing (Holt / Holt-Winters).
  double beta = 0.05;
  /// Seasonal smoothing (Holt-Winters).
  double gamma = 0.1;
  /// Seasonal period in samples (Holt-Winters).
  size_t seasonal_period = 60;
  /// Residual z threshold for the spike-run screen.
  double threshold = 6.0;
  /// A threshold run must persist this many samples before an ensemble
  /// treats it as confirmed. Deliberately longer than the robust-z
  /// screen's Pettitt path, so on sharp anomalies the screen confirms
  /// first and the false-trigger behavior of the legacy pipeline is
  /// preserved; the forecaster wins only where the screen stays silent.
  size_t confirm_run_len = 8;
  /// CUSUM slack per step, in residual-z units: z below this never
  /// accumulates drift evidence.
  double cusum_k = 0.5;
  /// CUSUM decision threshold; an excursion past it opens a drift run.
  double cusum_h = 18.0;
  /// Samples per CUSUM step. The statistic accumulates the z of the
  /// *block-mean* residual (mean over `cusum_block` samples, scale shrunk
  /// by sqrt(block)): per-second Poisson noise averages out while a
  /// sustained drift residual survives intact, which is what lets the
  /// CUSUM see a creep far below the per-sample noise floor. 1 = classic
  /// per-sample CUSUM.
  size_t cusum_block = 1;
  /// Samples consumed before scoring starts (model + scale burn-in).
  size_t warmup = 60;
  /// EWMA factor for the residual scale (mean absolute deviation).
  double scale_alpha = 0.05;
  /// Absolute floor on the residual scale: quiet series cannot produce
  /// huge z from numeric noise.
  double scale_floor = 0.5;
  /// Threshold runs at least this long (seconds) are level shifts.
  int64_t level_shift_min_sec = 300;
  /// Sketch geometry (kEwmaSketch only).
  size_t sketch_width = 256;
  size_t sketch_depth = 3;
};

/// Complete serializable state of any ForecastDetector. Model-specific
/// state packs into the `model` vector (each method documents its layout),
/// so one codec serves every family; a detector restored from a snapshot
/// continues the stream bit-identically.
struct ForecastSnapshot {
  ForecastMethod method = ForecastMethod::kEwma;
  uint64_t count = 0;
  /// EWMA of |residual| (the adaptive scale).
  double mad = 0.0;
  double cusum = 0.0;
  /// Sample index where the current CUSUM excursion left zero.
  uint64_t cusum_start = 0;
  /// Sample index where the statistic last climbed through cusum_h / 2
  /// (the start of the decisive climb — the drift-run onset estimate).
  uint64_t cusum_anchor = 0;
  bool cusum_anchor_set = false;
  /// Partial residual sum / count of the in-progress CUSUM block.
  double block_sum = 0.0;
  uint64_t block_n = 0;
  bool in_run = false;
  bool run_up = true;
  /// True when the open run was opened by the CUSUM drift screen rather
  /// than the per-sample threshold.
  bool drift_run = false;
  uint64_t run_start = 0;
  double run_peak = 0.0;
  double last_z = 0.0;
  int64_t start_time = 0;
  int64_t interval_sec = 1;
  std::vector<double> model;
};

/// One streaming forecasting detector: push one sample per interval, get
/// back residual-based FeatureEvents with the same spike / level-shift
/// semantics as the robust-z StreamingFeatureDetector, so downstream
/// consumers cannot tell which screen produced an event. Subclasses
/// provide only the forecast model; the residual scoring, the two-layer
/// run tracking and the snapshot plumbing live here.
class ForecastDetector {
 public:
  /// Samples pushed are at start_time, start_time + interval, ...
  ForecastDetector(const ForecastOptions& options, int64_t start_time,
                   int64_t interval_sec);
  virtual ~ForecastDetector() = default;

  /// Pushes the next sample; returns the completed event when this sample
  /// closes a flagged run.
  std::optional<anomaly::FeatureEvent> Push(double value);
  /// Closes the series: an open run that never recovered is a level shift.
  std::optional<anomaly::FeatureEvent> Finish();

  const ForecastOptions& options() const { return options_; }
  const char* name() const { return ForecastMethodName(options_.method); }
  bool in_run() const { return in_run_; }
  bool run_up() const { return run_up_; }
  /// True while the open run came from the CUSUM drift screen. A drift
  /// crossing is already an accumulation of evidence, so it needs no
  /// further run-length confirmation from the caller.
  bool drift_run() const { return drift_run_; }
  int64_t run_start_time() const;
  size_t run_length() const { return in_run_ ? count_ - run_start_ : 0; }
  /// Peak |z| of a threshold run; peak CUSUM statistic of a drift run.
  double run_peak() const { return run_peak_; }
  double last_z() const { return last_z_; }
  size_t count() const { return count_; }

  ForecastSnapshot ExportSnapshot() const;
  /// Rebuilds mid-stream state; subsequent pushes are bit-identical to
  /// the detector the snapshot was taken from.
  void Restore(const ForecastSnapshot& snap);

 protected:
  /// Model interface. ModelReady gates scoring (e.g. Holt-Winters needs a
  /// full season); ForecastValue(idx) is the one-step-ahead prediction for
  /// sample `idx` *before* UpdateModel folds that observation in. `idx` is
  /// the wall-aligned sample index (seasonal phase stays aligned even when
  /// the base freezes updates during an open run).
  virtual bool ModelReady() const = 0;
  virtual double ForecastValue(size_t idx) const = 0;
  virtual void UpdateModel(size_t idx, double value) = 0;
  /// Pack / unpack model state into the snapshot's flat vector.
  virtual void ExportModel(std::vector<double>* out) const = 0;
  virtual void RestoreModel(const std::vector<double>& in) = 0;

  const ForecastOptions options_;

 private:
  std::optional<anomaly::FeatureEvent> CloseRun(size_t end_index,
                                                bool recovered);

  int64_t start_time_;
  int64_t interval_sec_;
  size_t count_ = 0;
  double mad_ = 0.0;
  double cusum_ = 0.0;
  size_t cusum_start_ = 0;
  size_t cusum_anchor_ = 0;
  bool cusum_anchor_set_ = false;
  double block_sum_ = 0.0;
  size_t block_n_ = 0;
  bool in_run_ = false;
  bool run_up_ = true;
  bool drift_run_ = false;
  size_t run_start_ = 0;
  double run_peak_ = 0.0;
  double last_z_ = 0.0;
};

/// Builds a detector of the configured method. Every ForecastMethod is
/// constructible here (kEwmaSketch included, as a single-key stream over
/// the sketch engine).
std::unique_ptr<ForecastDetector> MakeForecastDetector(
    const ForecastOptions& options, int64_t start_time, int64_t interval_sec);

/// Batch form: a loop over Push + Finish, so streaming and batch are
/// equivalent by construction (mirrors anomaly::DetectFeatures).
std::vector<anomaly::FeatureEvent> DetectForecastFeatures(
    const TimeSeries& series, const ForecastOptions& options);

/// The default ensemble companion set: a long-memory EWMA drift screen
/// plus a Holt level+trend forecaster. Chosen so legacy spike categories
/// trigger through the robust-z screen first (unchanged false-trigger
/// behavior) while hours-scale creep accumulates in the CUSUM.
std::vector<ForecastOptions> DefaultEnsembleForecasters();

}  // namespace pinsql::detect

#endif  // PINSQL_DETECT_FORECAST_H_
