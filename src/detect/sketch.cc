#include "detect/sketch.h"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace pinsql::detect {

namespace {

/// splitmix64: deterministic, well-mixed, and cheap — the same generator
/// the util Rng builds on, reused here as a keyed hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr uint64_t kRowSeeds[] = {
    0xA24BAED4963EE407ULL, 0x9FB21C651E98DF25ULL, 0xE7037ED1A0B428DBULL,
    0x8C2F1D7A9B3E5C61ULL, 0xD6E8FEB86659FD93ULL, 0x589965CC75374CC3ULL,
};

/// The single-stream adapter's key (arbitrary fixed constant).
constexpr uint64_t kScalarKey = 0x5CA1AB1E0DDBA11ULL;

}  // namespace

SketchEwmaEngine::SketchEwmaEngine(size_t width, size_t depth, double alpha,
                                   double scale_alpha)
    : width_(std::max<size_t>(width, 8)),
      depth_(std::clamp<size_t>(depth, 1, std::size(kRowSeeds))),
      alpha_(alpha),
      scale_alpha_(scale_alpha),
      cells_(width_ * depth_) {}

size_t SketchEwmaEngine::CellIndex(size_t row, uint64_t key) const {
  return row * width_ +
         static_cast<size_t>(Mix64(key ^ kRowSeeds[row]) % width_);
}

bool SketchEwmaEngine::Ready(uint64_t key) const {
  return UpdateFloor(key) > 0;
}

uint64_t SketchEwmaEngine::UpdateFloor(uint64_t key) const {
  uint64_t floor = ~0ULL;
  for (size_t row = 0; row < depth_; ++row) {
    floor = std::min(floor, cells_[CellIndex(row, key)].count);
  }
  return floor;
}

double SketchEwmaEngine::MedianAcrossRows(uint64_t key,
                                          double Cell::* field) const {
  double vals[std::size(kRowSeeds)];
  for (size_t row = 0; row < depth_; ++row) {
    vals[row] = cells_[CellIndex(row, key)].*field;
  }
  std::sort(vals, vals + depth_);
  const size_t mid = depth_ / 2;
  return depth_ % 2 == 1 ? vals[mid] : 0.5 * (vals[mid - 1] + vals[mid]);
}

double SketchEwmaEngine::Forecast(uint64_t key) const {
  return MedianAcrossRows(key, &Cell::level);
}

double SketchEwmaEngine::Scale(uint64_t key) const {
  return MedianAcrossRows(key, &Cell::mad);
}

void SketchEwmaEngine::Update(uint64_t key, double value) {
  for (size_t row = 0; row < depth_; ++row) {
    Cell& cell = cells_[CellIndex(row, key)];
    if (cell.count == 0) {
      cell.level = value;
      cell.mad = 0.0;
    } else {
      const double residual = std::fabs(value - cell.level);
      cell.mad += scale_alpha_ * (residual - cell.mad);
      cell.level += alpha_ * (value - cell.level);
    }
    ++cell.count;
  }
}

void SketchEwmaEngine::Export(std::vector<double>* out) const {
  out->clear();
  out->reserve(cells_.size() * 3);
  for (const Cell& cell : cells_) {
    out->push_back(cell.level);
    out->push_back(cell.mad);
    out->push_back(static_cast<double>(cell.count));
  }
}

void SketchEwmaEngine::Restore(const std::vector<double>& in) {
  for (size_t i = 0; i < cells_.size(); ++i) {
    Cell& cell = cells_[i];
    cell.level = in.size() > 3 * i ? in[3 * i] : 0.0;
    cell.mad = in.size() > 3 * i + 1 ? in[3 * i + 1] : 0.0;
    cell.count = in.size() > 3 * i + 2
                     ? static_cast<uint64_t>(in[3 * i + 2])
                     : 0;
  }
}

SketchForecastDetector::SketchForecastDetector(const ForecastOptions& options,
                                               int64_t start_time,
                                               int64_t interval_sec)
    : ForecastDetector(options, start_time, interval_sec),
      engine_(options.sketch_width, options.sketch_depth, options.alpha,
              options.scale_alpha) {}

bool SketchForecastDetector::ModelReady() const {
  return engine_.Ready(kScalarKey);
}

double SketchForecastDetector::ForecastValue(size_t) const {
  return engine_.Forecast(kScalarKey);
}

void SketchForecastDetector::UpdateModel(size_t, double value) {
  engine_.Update(kScalarKey, value);
}

void SketchForecastDetector::ExportModel(std::vector<double>* out) const {
  engine_.Export(out);
}

void SketchForecastDetector::RestoreModel(const std::vector<double>& in) {
  engine_.Restore(in);
}

KeyedSketchDetector::KeyedSketchDetector(const ForecastOptions& options)
    : options_(options),
      engine_(options.sketch_width, options.sketch_depth, options.alpha,
              options.scale_alpha) {}

std::optional<KeyedAnomaly> KeyedSketchDetector::Observe(uint64_t key,
                                                         int64_t sec,
                                                         double value) {
  std::optional<KeyedAnomaly> out;
  const bool ready = engine_.UpdateFloor(key) >= kKeyWarmup;
  if (ready) {
    const double scale =
        std::max(options_.scale_floor, 1.2533 * engine_.Scale(key));
    const double z = (value - engine_.Forecast(key)) / scale;
    if (z >= options_.threshold) {
      const bool newly_hot =
          hot_.find(key) == hot_.end() && hot_.size() < kHotKeyCap;
      if (newly_hot) {
        hot_.insert(key);
        out = KeyedAnomaly{key, z, sec};
      }
      // Flagged samples do not update the model (mirrors the scalar
      // detectors' frozen baseline during a run).
      return out;
    }
    hot_.erase(key);
  }
  engine_.Update(key, value);
  return out;
}

}  // namespace pinsql::detect
