#ifndef PINSQL_DETECT_SKETCH_H_
#define PINSQL_DETECT_SKETCH_H_

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "detect/forecast.h"

namespace pinsql::detect {

/// Count-min style sketch whose cells hold EWMA forecasting state instead
/// of counters: `depth` hash rows of `width` cells, each cell an
/// exponentially weighted level plus a residual-scale estimate. Memory is
/// fixed regardless of how many keys stream through; a query takes the
/// median across its `depth` cells, so a collision with one hot key
/// perturbs at most one row's estimate. Deterministic: hashing is
/// splitmix64 with fixed per-row seeds, no allocation order dependence.
class SketchEwmaEngine {
 public:
  SketchEwmaEngine(size_t width, size_t depth, double alpha,
                   double scale_alpha);

  /// True once every row cell for `key` has absorbed at least one sample.
  bool Ready(uint64_t key) const;
  /// Median level across the key's cells (the one-step forecast).
  double Forecast(uint64_t key) const;
  /// Median residual-scale (EWMA of |residual|) across the key's cells.
  double Scale(uint64_t key) const;
  /// Minimum update count across the key's cells (collision-safe lower
  /// bound on how much history backs the estimate).
  uint64_t UpdateFloor(uint64_t key) const;
  /// Folds one observation of `key` into all rows.
  void Update(uint64_t key, double value);

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

  /// Flat state [level, mad, count] per cell, row-major — the snapshot
  /// payload for sketch-backed detectors.
  void Export(std::vector<double>* out) const;
  void Restore(const std::vector<double>& in);

 private:
  struct Cell {
    double level = 0.0;
    double mad = 0.0;
    uint64_t count = 0;
  };

  size_t CellIndex(size_t row, uint64_t key) const;
  double MedianAcrossRows(uint64_t key, double Cell::* field) const;

  size_t width_;
  size_t depth_;
  double alpha_;
  double scale_alpha_;
  std::vector<Cell> cells_;  // depth_ rows of width_ cells
};

/// ForecastDetector over a single stream, backed by the sketch engine —
/// the scalar adapter that lets kEwmaSketch participate in ensembles and
/// share the residual / run-tracking logic of the family. Model vector:
/// the engine's flat cell state.
class SketchForecastDetector final : public ForecastDetector {
 public:
  SketchForecastDetector(const ForecastOptions& options, int64_t start_time,
                         int64_t interval_sec);

 protected:
  bool ModelReady() const override;
  double ForecastValue(size_t idx) const override;
  void UpdateModel(size_t idx, double value) override;
  void ExportModel(std::vector<double>* out) const override;
  void RestoreModel(const std::vector<double>& in) override;

 private:
  SketchEwmaEngine engine_;
};

/// One keyed anomaly: `key`'s current value sits `z` residual scales above
/// its forecast.
struct KeyedAnomaly {
  uint64_t key = 0;
  double z = 0.0;
  int64_t sec = 0;
};

/// High-cardinality per-template screen: feed (sql_id, per-second value)
/// pairs for every template of a fleet instance; memory stays at the
/// sketch's fixed geometry no matter how many templates exist. Emits one
/// KeyedAnomaly when a key first crosses the residual threshold (the key
/// re-arms after it observes a clean sample), so a sustained per-template
/// anomaly yields one event, not one per second.
class KeyedSketchDetector {
 public:
  explicit KeyedSketchDetector(const ForecastOptions& options);

  std::optional<KeyedAnomaly> Observe(uint64_t key, int64_t sec,
                                      double value);

  /// Keys currently flagged (bounded: the hot set is capped, so a storm
  /// of anomalous keys cannot grow memory without bound).
  size_t hot_keys() const { return hot_.size(); }

  static constexpr size_t kHotKeyCap = 1024;
  /// Per-key samples required before scoring starts.
  static constexpr uint64_t kKeyWarmup = 16;

 private:
  ForecastOptions options_;
  SketchEwmaEngine engine_;
  std::unordered_set<uint64_t> hot_;
};

}  // namespace pinsql::detect

#endif  // PINSQL_DETECT_SKETCH_H_
