#include "detect/forecast.h"

#include <algorithm>
#include <cmath>

#include "detect/sketch.h"

namespace pinsql::detect {

const char* ForecastMethodName(ForecastMethod method) {
  switch (method) {
    case ForecastMethod::kEwma:
      return "ewma";
    case ForecastMethod::kHolt:
      return "holt";
    case ForecastMethod::kHoltWinters:
      return "holt_winters";
    case ForecastMethod::kEwmaSketch:
      return "ewma_sketch";
  }
  return "unknown";
}

ForecastDetector::ForecastDetector(const ForecastOptions& options,
                                   int64_t start_time, int64_t interval_sec)
    : options_(options),
      start_time_(start_time),
      interval_sec_(interval_sec) {}

int64_t ForecastDetector::run_start_time() const {
  return start_time_ + static_cast<int64_t>(run_start_) * interval_sec_;
}

std::optional<anomaly::FeatureEvent> ForecastDetector::CloseRun(
    size_t end_index, bool recovered) {
  const int64_t start_sec =
      start_time_ + static_cast<int64_t>(run_start_) * interval_sec_;
  const int64_t end_sec =
      start_time_ + static_cast<int64_t>(end_index) * interval_sec_;
  const bool long_run =
      (end_sec - start_sec) >= options_.level_shift_min_sec * interval_sec_;
  anomaly::FeatureEvent ev;
  // A drift run is by construction a sustained departure, never a blip:
  // classify it like a run that outlived the spike budget.
  if (!recovered || long_run || drift_run_) {
    ev.type = run_up_ ? anomaly::FeatureType::kLevelShiftUp
                      : anomaly::FeatureType::kLevelShiftDown;
  } else {
    ev.type = run_up_ ? anomaly::FeatureType::kSpikeUp
                      : anomaly::FeatureType::kSpikeDown;
  }
  ev.start_sec = start_sec;
  ev.end_sec = end_sec;
  ev.severity = run_peak_;
  in_run_ = false;
  drift_run_ = false;
  return ev;
}

std::optional<anomaly::FeatureEvent> ForecastDetector::Push(double value) {
  std::optional<anomaly::FeatureEvent> closed;
  const size_t idx = count_;
  const bool have_residual = ModelReady();
  const bool scoring = have_residual && count_ >= options_.warmup;
  const double scale =
      std::max(options_.scale_floor, 1.2533 * mad_);
  double residual = 0.0;
  if (have_residual) residual = value - ForecastValue(idx);

  double z = 0.0;
  bool flagged = false;
  bool up = true;
  if (scoring) {
    z = residual / scale;
    if (z > options_.threshold) {
      flagged = true;
      up = true;
    } else if (z < -options_.threshold) {
      flagged = true;
      up = false;
    }
  }
  last_z_ = z;

  // One CUSUM step consumes a full block of residuals: the statistic sees
  // the z of the block-mean (scale shrinks by sqrt(n)), so per-sample
  // noise averages out while a sustained drift residual survives. Returns
  // the block z when this sample completes a block.
  const auto block_step = [&](double r) -> std::optional<double> {
    block_sum_ += r;
    ++block_n_;
    if (block_n_ < std::max<size_t>(options_.cusum_block, 1)) {
      return std::nullopt;
    }
    const double bz =
        block_sum_ / (scale * std::sqrt(static_cast<double>(block_n_)));
    block_sum_ = 0.0;
    block_n_ = 0;
    return bz;
  };

  if (in_run_ && drift_run_) {
    // Open drift run: the CUSUM keeps accumulating and the run closes
    // with hysteresis once the model has caught up with the new level
    // (z ~ 0 drains the statistic by cusum_k per step).
    if (const auto bz = block_step(residual)) {
      cusum_ = std::max(0.0, cusum_ + *bz - options_.cusum_k);
      run_peak_ = std::max(run_peak_, cusum_);
      if (cusum_ < 0.5 * options_.cusum_h) {
        closed = CloseRun(idx, /*recovered=*/true);
        cusum_ = 0.0;
        cusum_anchor_set_ = false;
      }
    }
  } else if (in_run_) {
    // Open threshold run: mirrors StreamingFeatureDetector semantics.
    if (flagged && up == run_up_) {
      run_peak_ = std::max(run_peak_, std::fabs(z));
    } else {
      closed = CloseRun(idx, /*recovered=*/true);
      cusum_ = 0.0;  // the excursion was reported; don't double-count it
      cusum_anchor_set_ = false;
      block_sum_ = 0.0;
      block_n_ = 0;
      if (flagged) {
        in_run_ = true;
        drift_run_ = false;
        run_up_ = up;
        run_start_ = idx;
        run_peak_ = std::fabs(z);
      }
    }
  } else if (flagged) {
    in_run_ = true;
    drift_run_ = false;
    run_up_ = up;
    run_start_ = idx;
    run_peak_ = std::fabs(z);
    cusum_ = 0.0;
    cusum_anchor_set_ = false;
    block_sum_ = 0.0;
    block_n_ = 0;
  } else if (scoring) {
    // Clean sample: accumulate one-sided drift evidence (sessions pile
    // up, so only upward creep pages anyone).
    const size_t block = std::max<size_t>(options_.cusum_block, 1);
    if (const auto bz = block_step(residual)) {
      const double prev = cusum_;
      cusum_ = std::max(0.0, cusum_ + *bz - options_.cusum_k);
      if (prev <= 0.0 && cusum_ > 0.0) cusum_start_ = idx + 1 - block;
      // Onset estimate: where the statistic last climbed through h/2.
      // The excursion start (cusum_start_) backdates into whatever noise
      // accumulation preceded the real change; the decisive climb does
      // not.
      if (cusum_ < 0.5 * options_.cusum_h) {
        cusum_anchor_set_ = false;
      } else if (!cusum_anchor_set_) {
        cusum_anchor_set_ = true;
        cusum_anchor_ = idx + 1 - block;
      }
      if (cusum_ > options_.cusum_h) {
        in_run_ = true;
        drift_run_ = true;
        run_up_ = true;
        run_start_ = cusum_anchor_set_ ? cusum_anchor_ : cusum_start_;
        run_peak_ = cusum_;
      }
    }
  }

  // Model updates freeze during a threshold run (an absorbed anomaly
  // would end its own event); a drift run keeps updating — the model
  // catching up with the new normal is what closes the run.
  const bool freeze = in_run_ && !drift_run_;
  if (!freeze) {
    if (have_residual) {
      // Winsorized scale update: a single wild residual cannot blow up
      // the scale and mute the screen for minutes.
      const double clipped = std::min(std::fabs(residual), 3.0 * scale);
      mad_ += options_.scale_alpha * (clipped - mad_);
    }
    UpdateModel(idx, value);
  }
  ++count_;
  return closed;
}

std::optional<anomaly::FeatureEvent> ForecastDetector::Finish() {
  if (!in_run_) return std::nullopt;
  return CloseRun(count_, /*recovered=*/false);
}

ForecastSnapshot ForecastDetector::ExportSnapshot() const {
  ForecastSnapshot snap;
  snap.method = options_.method;
  snap.count = count_;
  snap.mad = mad_;
  snap.cusum = cusum_;
  snap.cusum_start = cusum_start_;
  snap.cusum_anchor = cusum_anchor_;
  snap.cusum_anchor_set = cusum_anchor_set_;
  snap.block_sum = block_sum_;
  snap.block_n = block_n_;
  snap.in_run = in_run_;
  snap.run_up = run_up_;
  snap.drift_run = drift_run_;
  snap.run_start = run_start_;
  snap.run_peak = run_peak_;
  snap.last_z = last_z_;
  snap.start_time = start_time_;
  snap.interval_sec = interval_sec_;
  ExportModel(&snap.model);
  return snap;
}

void ForecastDetector::Restore(const ForecastSnapshot& snap) {
  count_ = snap.count;
  mad_ = snap.mad;
  cusum_ = snap.cusum;
  cusum_start_ = snap.cusum_start;
  cusum_anchor_ = snap.cusum_anchor;
  cusum_anchor_set_ = snap.cusum_anchor_set;
  block_sum_ = snap.block_sum;
  block_n_ = snap.block_n;
  in_run_ = snap.in_run;
  run_up_ = snap.run_up;
  drift_run_ = snap.drift_run;
  run_start_ = snap.run_start;
  run_peak_ = snap.run_peak;
  last_z_ = snap.last_z;
  start_time_ = snap.start_time;
  interval_sec_ = snap.interval_sec;
  RestoreModel(snap.model);
}

namespace {

/// Level-only smoothing. Model vector: [level, initialized].
class EwmaForecaster final : public ForecastDetector {
 public:
  using ForecastDetector::ForecastDetector;

 protected:
  bool ModelReady() const override { return initialized_; }
  double ForecastValue(size_t) const override { return level_; }
  void UpdateModel(size_t idx, double value) override {
    if (!initialized_) {
      level_ = value;
      initialized_ = true;
      return;
    }
    // Warm start: run as a cumulative mean until 1/t decays below alpha.
    // A long-memory alpha otherwise pins the level near the very first
    // sample for ~1/alpha seconds, and that initialization bias reads as
    // a sustained residual — i.e. a fake drift.
    const double a = std::max(
        options_.alpha, 1.0 / static_cast<double>(idx + 1));
    level_ += a * (value - level_);
  }
  void ExportModel(std::vector<double>* out) const override {
    *out = {level_, initialized_ ? 1.0 : 0.0};
  }
  void RestoreModel(const std::vector<double>& in) override {
    level_ = in.size() > 0 ? in[0] : 0.0;
    initialized_ = in.size() > 1 && in[1] != 0.0;
  }

 private:
  double level_ = 0.0;
  bool initialized_ = false;
};

/// Double exponential smoothing (level + trend). Model vector:
/// [level, trend, updates].
class HoltForecaster final : public ForecastDetector {
 public:
  using ForecastDetector::ForecastDetector;

 protected:
  bool ModelReady() const override { return updates_ >= 2; }
  double ForecastValue(size_t) const override { return level_ + trend_; }
  void UpdateModel(size_t, double value) override {
    if (updates_ == 0) {
      level_ = value;
    } else if (updates_ == 1) {
      trend_ = value - level_;
      level_ = value;
    } else {
      const double prev = level_;
      level_ = options_.alpha * value +
               (1.0 - options_.alpha) * (level_ + trend_);
      trend_ = options_.beta * (level_ - prev) +
               (1.0 - options_.beta) * trend_;
    }
    ++updates_;
  }
  void ExportModel(std::vector<double>* out) const override {
    *out = {level_, trend_, static_cast<double>(updates_)};
  }
  void RestoreModel(const std::vector<double>& in) override {
    level_ = in.size() > 0 ? in[0] : 0.0;
    trend_ = in.size() > 1 ? in[1] : 0.0;
    updates_ = in.size() > 2 ? static_cast<uint64_t>(in[2]) : 0;
  }

 private:
  double level_ = 0.0;
  double trend_ = 0.0;
  uint64_t updates_ = 0;
};

/// Additive Holt-Winters. The first full season initializes the seasonal
/// profile; the seasonal phase is keyed off the wall-aligned sample index
/// so frozen stretches cannot desynchronize it. Model vector:
/// [level, trend, seeded, seasonal[0..m)].
class HoltWintersForecaster final : public ForecastDetector {
 public:
  HoltWintersForecaster(const ForecastOptions& options, int64_t start_time,
                        int64_t interval_sec)
      : ForecastDetector(options, start_time, interval_sec),
        seasonal_(std::max<size_t>(options.seasonal_period, 2), 0.0) {}

 protected:
  bool ModelReady() const override { return seeded_; }
  double ForecastValue(size_t idx) const override {
    return level_ + trend_ + seasonal_[idx % seasonal_.size()];
  }
  void UpdateModel(size_t idx, double value) override {
    const size_t m = seasonal_.size();
    const size_t phase = idx % m;
    if (!seeded_) {
      seasonal_[phase] = value;  // raw first-season buffer
      if (idx + 1 >= m) {
        double mean = 0.0;
        for (double v : seasonal_) mean += v;
        mean /= static_cast<double>(m);
        level_ = mean;
        trend_ = 0.0;
        for (double& v : seasonal_) v -= mean;
        seeded_ = true;
      }
      return;
    }
    const double season = seasonal_[phase];
    const double prev = level_;
    level_ = options_.alpha * (value - season) +
             (1.0 - options_.alpha) * (level_ + trend_);
    trend_ = options_.beta * (level_ - prev) +
             (1.0 - options_.beta) * trend_;
    seasonal_[phase] =
        options_.gamma * (value - level_) + (1.0 - options_.gamma) * season;
  }
  void ExportModel(std::vector<double>* out) const override {
    out->clear();
    out->reserve(3 + seasonal_.size());
    out->push_back(level_);
    out->push_back(trend_);
    out->push_back(seeded_ ? 1.0 : 0.0);
    out->insert(out->end(), seasonal_.begin(), seasonal_.end());
  }
  void RestoreModel(const std::vector<double>& in) override {
    level_ = in.size() > 0 ? in[0] : 0.0;
    trend_ = in.size() > 1 ? in[1] : 0.0;
    seeded_ = in.size() > 2 && in[2] != 0.0;
    for (size_t i = 0; i < seasonal_.size(); ++i) {
      seasonal_[i] = in.size() > 3 + i ? in[3 + i] : 0.0;
    }
  }

 private:
  double level_ = 0.0;
  double trend_ = 0.0;
  bool seeded_ = false;
  std::vector<double> seasonal_;
};

}  // namespace

std::unique_ptr<ForecastDetector> MakeForecastDetector(
    const ForecastOptions& options, int64_t start_time,
    int64_t interval_sec) {
  switch (options.method) {
    case ForecastMethod::kEwma:
      return std::make_unique<EwmaForecaster>(options, start_time,
                                              interval_sec);
    case ForecastMethod::kHolt:
      return std::make_unique<HoltForecaster>(options, start_time,
                                              interval_sec);
    case ForecastMethod::kHoltWinters:
      return std::make_unique<HoltWintersForecaster>(options, start_time,
                                                     interval_sec);
    case ForecastMethod::kEwmaSketch:
      return std::make_unique<SketchForecastDetector>(options, start_time,
                                                      interval_sec);
  }
  return nullptr;
}

std::vector<anomaly::FeatureEvent> DetectForecastFeatures(
    const TimeSeries& series, const ForecastOptions& options) {
  std::vector<anomaly::FeatureEvent> events;
  if (series.size() == 0) return events;
  const auto detector = MakeForecastDetector(options, series.start_time(),
                                             series.interval_sec());
  for (size_t i = 0; i < series.size(); ++i) {
    if (auto ev = detector->Push(series[i])) events.push_back(*ev);
  }
  if (auto ev = detector->Finish()) events.push_back(*ev);
  return events;
}

std::vector<ForecastOptions> DefaultEnsembleForecasters() {
  ForecastOptions ewma;
  ewma.method = ForecastMethod::kEwma;
  // Long memory: a ramp's residual stays positive for minutes, which is
  // what the CUSUM integrates; the per-sample threshold stays high so the
  // robust-z screen keeps owning sharp anomalies. Minute-long CUSUM
  // blocks average per-second sampling noise down by ~sqrt(60), so a
  // creep far below the per-sample noise floor still accumulates, while
  // the slack k stays above what the workload's AR(1)+oscillation noise
  // sustains block after block.
  ewma.alpha = 0.003;
  ewma.threshold = 8.0;
  ewma.cusum_block = 60;
  ewma.cusum_k = 1.0;
  ewma.cusum_h = 14.0;

  ForecastOptions holt;
  holt.method = ForecastMethod::kHolt;
  holt.alpha = 0.1;
  holt.beta = 0.02;
  holt.threshold = 8.0;
  holt.cusum_k = 0.8;
  holt.cusum_h = 30.0;
  return {ewma, holt};
}

}  // namespace pinsql::detect
