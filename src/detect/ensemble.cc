#include "detect/ensemble.h"

#include <vector>

#include "anomaly/pettitt.h"

namespace pinsql::detect {

EnsembleDetector::EnsembleDetector(const EnsembleOptions& options)
    : options_(options) {}

void EnsembleDetector::InitMembers(int64_t sec) {
  if (options_.use_screen) {
    screen_.emplace(options_.screen, sec, /*interval_sec=*/1);
  }
  forecasters_.clear();
  forecasters_.reserve(options_.forecasters.size());
  for (const ForecastOptions& fo : options_.forecasters) {
    forecasters_.push_back(MakeForecastDetector(fo, sec, /*interval_sec=*/1));
  }
  initialized_ = true;
}

bool EnsembleDetector::in_run() const {
  if (screen_.has_value() && screen_->in_run()) return true;
  for (const auto& fc : forecasters_) {
    if (fc->in_run()) return true;
  }
  return false;
}

void EnsembleDetector::Reset() {
  initialized_ = false;
  screen_.reset();
  trailing_.clear();
  forecasters_.clear();
  fired_this_incident_ = false;
  // pettitt_rejections_ survives: it is a lifetime stat, not stream state.
}

std::optional<EnsembleTrigger> EnsembleDetector::Observe(int64_t sec,
                                                         double value) {
  if (!initialized_) InitMembers(sec);

  std::optional<EnsembleTrigger> fired;

  if (screen_.has_value()) {
    // The trailing buffer holds every sample, clean or flagged: the
    // change-point test needs the pre-anomaly distribution to confirm a
    // shift.
    trailing_.push_back(value);
    if (trailing_.size() > options_.pettitt_window) trailing_.pop_front();

    screen_->Push(value);
    if (!fired_this_incident_ && screen_->in_run() && screen_->run_up() &&
        screen_->run_length() >= options_.confirm_run_len &&
        trailing_.size() >= options_.pettitt_min_samples) {
      const auto pettitt = anomaly::PettittTest(
          std::vector<double>(trailing_.begin(), trailing_.end()));
      if (pettitt.significant(options_.pettitt_alpha) &&
          pettitt.shifted_up()) {
        fired_this_incident_ = true;
        EnsembleTrigger trigger;
        trigger.onset_sec = screen_->run_start_time();
        trigger.trigger_sec = sec;
        trigger.severity = screen_->run_peak();
        trigger.pettitt_p = pettitt.p_value;
        trigger.source = "robust_z_pettitt";
        fired = trigger;
      } else {
        ++pettitt_rejections_;
      }
    }
  }

  for (const auto& fc : forecasters_) {
    // Every member always sees every sample — confirmation never starves
    // a model, which is what keeps snapshots resume-exact.
    fc->Push(value);
    if (fired_this_incident_ || !fc->in_run() || !fc->run_up()) continue;
    const bool confirmed =
        fc->drift_run() ||
        fc->run_length() >= fc->options().confirm_run_len;
    if (!confirmed) continue;
    fired_this_incident_ = true;
    EnsembleTrigger trigger;
    trigger.onset_sec = fc->run_start_time();
    trigger.trigger_sec = sec;
    trigger.severity = fc->run_peak();
    trigger.pettitt_p = 1.0;
    trigger.source = fc->name();
    fired = trigger;
  }

  // The incident (union of member runs) ended: re-arm.
  if (!in_run()) fired_this_incident_ = false;
  return fired;
}

EnsembleSnapshot EnsembleDetector::ExportSnapshot() const {
  EnsembleSnapshot snap;
  snap.initialized = initialized_;
  snap.screen_present = screen_.has_value();
  if (screen_.has_value()) snap.screen = screen_->ExportSnapshot();
  snap.trailing.assign(trailing_.begin(), trailing_.end());
  snap.fired_this_incident = fired_this_incident_;
  snap.pettitt_rejections = pettitt_rejections_;
  snap.forecasters.reserve(forecasters_.size());
  for (const auto& fc : forecasters_) {
    snap.forecasters.push_back(fc->ExportSnapshot());
  }
  return snap;
}

void EnsembleDetector::Restore(const EnsembleSnapshot& snap) {
  initialized_ = snap.initialized;
  if (snap.screen_present) {
    screen_.emplace(anomaly::StreamingFeatureDetector::FromSnapshot(
        options_.screen, snap.screen));
  } else {
    screen_.reset();
  }
  trailing_.assign(snap.trailing.begin(), snap.trailing.end());
  fired_this_incident_ = snap.fired_this_incident;
  pettitt_rejections_ = snap.pettitt_rejections;
  forecasters_.clear();
  if (initialized_) {
    forecasters_.reserve(options_.forecasters.size());
    for (size_t i = 0; i < options_.forecasters.size(); ++i) {
      auto fc = MakeForecastDetector(options_.forecasters[i],
                                     /*start_time=*/0, /*interval_sec=*/1);
      if (i < snap.forecasters.size()) fc->Restore(snap.forecasters[i]);
      forecasters_.push_back(std::move(fc));
    }
  }
}

}  // namespace pinsql::detect
