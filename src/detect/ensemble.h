#ifndef PINSQL_DETECT_ENSEMBLE_H_
#define PINSQL_DETECT_ENSEMBLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "anomaly/detectors.h"
#include "detect/forecast.h"

namespace pinsql::detect {

/// Ensemble configuration: the paper's robust-z + Pettitt screen as the
/// first member, plus any number of forecasting detectors. An empty
/// forecaster list with use_screen=true reproduces the legacy online
/// detector exactly (same triggers, same Pettitt rejection counts).
struct EnsembleOptions {
  bool use_screen = true;
  anomaly::DetectorOptions screen;
  /// Screen confirmation gates (see OnlineDetectorOptions for rationale).
  size_t confirm_run_len = 3;
  size_t pettitt_window = 16;
  size_t pettitt_min_samples = 12;
  double pettitt_alpha = 0.1;
  std::vector<ForecastOptions> forecasters;
};

/// One confirmed ensemble trigger with per-detector attribution: `source`
/// names the member that confirmed first ("robust_z_pettitt", "ewma",
/// "holt", "holt_winters", "ewma_sketch").
struct EnsembleTrigger {
  int64_t onset_sec = 0;
  int64_t trigger_sec = 0;
  /// The confirming member's run peak: |z| units for threshold runs,
  /// CUSUM units for drift runs.
  double severity = 0.0;
  /// Pettitt p-value when the screen confirmed; 1.0 for forecaster
  /// confirmations (no change-point test ran).
  double pettitt_p = 1.0;
  const char* source = "";
};

/// Serializable ensemble state (forecaster snapshots in member order).
struct EnsembleSnapshot {
  /// Members are lazily constructed at the first observed sample; false
  /// means none exist yet.
  bool initialized = false;
  bool screen_present = false;
  anomaly::StreamingDetectorSnapshot screen;
  std::vector<double> trailing;
  bool fired_this_incident = false;
  uint64_t pettitt_rejections = 0;
  std::vector<ForecastSnapshot> forecasters;
};

/// First-to-confirm detector ensemble. Each second every member observes
/// the sample (members never starve, so restores stay bit-identical); an
/// *incident* is the union of the members' open runs, and at most one
/// trigger fires per incident — whichever member confirms first wins and
/// is named in the trigger. Member evaluation order is fixed (screen,
/// then forecasters in configuration order), so results are deterministic
/// at any ingest-thread count.
class EnsembleDetector {
 public:
  explicit EnsembleDetector(const EnsembleOptions& options);

  /// Observes the value for `sec` (consecutive seconds, first call fixes
  /// the clock). Returns a trigger when a member confirms a new incident.
  std::optional<EnsembleTrigger> Observe(int64_t sec, double value);

  /// True while any member has a run open.
  bool in_run() const;

  uint64_t pettitt_rejections() const { return pettitt_rejections_; }

  /// Drops all member state (used when a telemetry gap outlives the
  /// baseline: the stream effectively restarts).
  void Reset();

  EnsembleSnapshot ExportSnapshot() const;
  /// Restores mid-stream state; subsequent Observes are bit-identical to
  /// the ensemble the snapshot was taken from.
  void Restore(const EnsembleSnapshot& snap);

 private:
  void InitMembers(int64_t sec);

  EnsembleOptions options_;
  bool initialized_ = false;
  std::optional<anomaly::StreamingFeatureDetector> screen_;
  std::deque<double> trailing_;
  std::vector<std::unique_ptr<ForecastDetector>> forecasters_;
  bool fired_this_incident_ = false;
  uint64_t pettitt_rejections_ = 0;
};

}  // namespace pinsql::detect

#endif  // PINSQL_DETECT_ENSEMBLE_H_
