#ifndef PINSQL_FAULTS_ACTION_FAULTS_H_
#define PINSQL_FAULTS_ACTION_FAULTS_H_

#include <cstdint>
#include <string>

#include "repair/supervisor.h"

namespace pinsql::faults {

/// Seeded fault plan for the repair control plane, mirroring FaultPlan's
/// contract: `severity` in [0, 1] scales every rate linearly and severity 0
/// is a guaranteed no-op (the supervised path is bit-identical to the
/// direct one). Identical (seed, severity) plans perturb identically.
struct ActionFaultPlan {
  uint64_t seed = 1;
  double severity = 0.0;

  /// Per-attempt probabilities at severity 1 (scaled down linearly).
  double fail_rate = 0.55;     // transient control-plane failure
  double delay_rate = 0.35;    // application lands late
  double partial_rate = 0.35;  // action lands at reduced strength

  /// Delay magnitude at severity 1: Uniform(0, max_delay_ms). With the
  /// default retry budget of 2000 ms this makes some delays absorbable and
  /// some attempt-fatal, exactly the gray zone worth testing.
  double max_delay_ms = 5000.0;
  /// Weakest partial application at severity 1: fraction drawn from
  /// Uniform(min_partial_fraction, 1).
  double min_partial_fraction = 0.15;

  ActionFaultPlan WithSeverity(double s) const {
    ActionFaultPlan copy = *this;
    copy.severity = s;
    return copy;
  }
};

/// What the injector actually did (summed over a supervisor's lifetime).
struct ActionFaultStats {
  size_t attempts_seen = 0;
  size_t attempts_failed = 0;
  size_t applications_delayed = 0;
  size_t applications_partial = 0;
  std::string ToString() const;
};

/// Chaos hook for RepairSupervisor: decides per (ticket, attempt) whether
/// the control plane drops, delays or weakens the action. Stateless apart
/// from counters — every decision derives from (plan.seed, ticket,
/// attempt), so outcomes are independent of call order and thread count.
class ActionFaultInjector : public repair::ActionFaultHook {
 public:
  explicit ActionFaultInjector(ActionFaultPlan plan) : plan_(plan) {}

  repair::ActionFaultDecision OnAttempt(const repair::RepairAction& action,
                                        uint64_t ticket, int attempt,
                                        double now_ms) override;

  const ActionFaultStats& stats() const { return stats_; }

 private:
  ActionFaultPlan plan_;
  ActionFaultStats stats_;
};

}  // namespace pinsql::faults

#endif  // PINSQL_FAULTS_ACTION_FAULTS_H_
