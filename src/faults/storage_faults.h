#ifndef PINSQL_FAULTS_STORAGE_FAULTS_H_
#define PINSQL_FAULTS_STORAGE_FAULTS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "store/env.h"
#include "util/rng.h"

namespace pinsql::faults {

/// Seeded fault plan for the storage layer, mirroring FaultPlan's
/// contract: `severity` in [0, 1] scales every rate linearly and severity
/// 0 is a guaranteed pass-through. Identical (seed, severity) plans
/// perturb identically.
struct StorageFaultPlan {
  uint64_t seed = 1;
  double severity = 0.0;

  /// Per-operation probabilities at severity 1 (scaled down linearly).
  double torn_write_rate = 0.25;    // append persists only a prefix
  double bit_flip_rate = 0.15;      // one random bit flipped on read
  double short_read_rate = 0.10;    // read returns a truncated file
  double fsync_failure_rate = 0.35; // fsync reports failure

  StorageFaultPlan WithSeverity(double s) const {
    StorageFaultPlan copy = *this;
    copy.severity = s;
    return copy;
  }
};

/// What the injector actually did.
struct StorageFaultStats {
  size_t appends_seen = 0;
  size_t writes_torn = 0;
  size_t reads_seen = 0;
  size_t reads_bit_flipped = 0;
  size_t reads_shortened = 0;
  size_t fsyncs_seen = 0;
  size_t fsyncs_failed = 0;
  std::string ToString() const;
};

/// Chaos Env for the storage engine: wraps a base Env (normally PosixEnv)
/// and injects the disk's classic lies — torn writes, bit flips on the
/// read path, short reads and failing fsyncs — underneath an unmodified
/// WAL/checkpoint stack. The recovery tests assert that every injected
/// corruption is *detected* (CRC mismatch, counted truncation, fallback
/// checkpoint), never silently ingested.
///
/// Metadata operations (list/rename/delete/truncate) pass through
/// unperturbed; the interesting failure surface is the data path.
/// Not thread-safe (single-writer, like the engine above it).
class StorageFaultInjector : public store::Env {
 public:
  StorageFaultInjector(store::Env* base, const StorageFaultPlan& plan);

  StatusOr<std::unique_ptr<store::WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDirs(const std::string& dir) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;

  const StorageFaultStats& stats() const { return stats_; }

 private:
  friend class FaultyWritableFile;

  store::Env* base_;
  StorageFaultPlan plan_;
  Rng rng_;
  StorageFaultStats stats_;
};

}  // namespace pinsql::faults

#endif  // PINSQL_FAULTS_STORAGE_FAULTS_H_
