#ifndef PINSQL_FAULTS_FAULT_INJECTOR_H_
#define PINSQL_FAULTS_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/rsql.h"
#include "logstore/log_store.h"
#include "ts/time_series.h"

namespace pinsql::faults {

/// Telemetry fault classes observed in production collection pipelines
/// (Kafka/Flink lag and loss, SHOW STATUS sampling outages, best-effort
/// history retrieval, unsynchronized collector clocks). Chaos-style
/// perturbation with these classes validates that the diagnosis chain
/// degrades gracefully instead of crashing or silently lying.
enum class FaultClass {
  kMetricGap,        // isolated per-second samples lost (NaN)
  kMetricBlackout,   // contiguous monitoring outage (NaN run)
  kMetricGarbage,    // corrupt values: Inf / negative / wild spikes
  kLogDrop,          // query-log records lost in transit
  kLogDuplicate,     // at-least-once delivery duplicates
  kLogReorder,       // shuffled arrival order within a jitter horizon
  kLogLate,          // records delayed by seconds (arrive after the fact)
  kHistoryTruncate,  // history windows cut short by retention/retrieval
  kHistoryDrop,      // history windows missing entirely
  kClockSkew,        // log clock skewed against the metric clock
};

/// All classes, in declaration order (for sweeps and tests).
inline constexpr FaultClass kAllFaultClasses[] = {
    FaultClass::kMetricGap,       FaultClass::kMetricBlackout,
    FaultClass::kMetricGarbage,   FaultClass::kLogDrop,
    FaultClass::kLogDuplicate,    FaultClass::kLogReorder,
    FaultClass::kLogLate,         FaultClass::kHistoryTruncate,
    FaultClass::kHistoryDrop,     FaultClass::kClockSkew,
};

const char* FaultClassName(FaultClass c);

/// One seeded, configurable fault plan. `severity` in [0, 1] is the master
/// knob: every per-class rate scales linearly with it, and severity 0 is a
/// guaranteed no-op (injection leaves the inputs bit-identical). Identical
/// (seed, severity, classes) plans perturb identically.
struct FaultPlan {
  uint64_t seed = 1;
  double severity = 0.0;
  /// Classes that fire; defaults to all of them.
  std::vector<FaultClass> classes = {
      std::begin(kAllFaultClasses), std::end(kAllFaultClasses)};

  bool Enabled(FaultClass c) const;
  /// Copy with a different severity (sweep convenience).
  FaultPlan WithSeverity(double s) const;
  /// Copy restricted to a single class.
  FaultPlan Only(FaultClass c) const;
};

/// Counts of what an injection pass actually perturbed. total() == 0 means
/// the inputs are untouched (guaranteed at severity 0).
struct InjectionStats {
  size_t metric_points_gapped = 0;
  size_t metric_points_blacked_out = 0;
  size_t metric_points_garbled = 0;
  size_t log_records_dropped = 0;
  size_t log_records_duplicated = 0;
  size_t log_records_reordered = 0;
  size_t log_records_delayed = 0;
  size_t history_windows_truncated = 0;
  size_t history_windows_dropped = 0;
  int64_t clock_skew_ms = 0;

  size_t total() const;
  InjectionStats& MergeFrom(const InjectionStats& other);
  std::string ToString() const;
};

/// Perturbs one metric series in place with gaps, blackouts and garbage
/// values. `salt` decorrelates different series under one plan (so the
/// active session and cpu_usage don't black out in lockstep).
void InjectMetricFaults(const FaultPlan& plan, uint64_t salt,
                        TimeSeries* series, InjectionStats* stats);

/// Perturbs query-log records: drops, duplicates, reorders, delays and
/// clock-skews them. Returns the perturbed record set (order may differ
/// from input; LogStore re-sorts lazily).
std::vector<QueryLogRecord> InjectLogFaults(const FaultPlan& plan,
                                            std::vector<QueryLogRecord> records,
                                            InjectionStats* stats);

/// Perturbs stored history windows: truncates some, drops others.
void InjectHistoryFaults(const FaultPlan& plan,
                         core::MapHistoryProvider* history,
                         InjectionStats* stats);

}  // namespace pinsql::faults

#endif  // PINSQL_FAULTS_FAULT_INJECTOR_H_
