#include "faults/action_faults.h"

#include <algorithm>

#include "util/rng.h"
#include "util/strings.h"

namespace pinsql::faults {

std::string ActionFaultStats::ToString() const {
  return StrFormat("attempts=%zu failed=%zu delayed=%zu partial=%zu",
                   attempts_seen, attempts_failed, applications_delayed,
                   applications_partial);
}

repair::ActionFaultDecision ActionFaultInjector::OnAttempt(
    const repair::RepairAction& action, uint64_t ticket, int attempt,
    double now_ms) {
  (void)action;
  (void)now_ms;
  ++stats_.attempts_seen;
  repair::ActionFaultDecision decision;
  const double s = std::clamp(plan_.severity, 0.0, 1.0);
  if (s <= 0.0) return decision;

  // One fresh engine per (seed, ticket, attempt): the decision depends only
  // on the plan and the attempt's identity, never on injector call order.
  uint64_t z = plan_.seed ^ (ticket * 0x9E3779B97F4A7C15ULL +
                             static_cast<uint64_t>(attempt));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  Rng rng(z ^ (z >> 31));

  if (rng.Bernoulli(s * plan_.fail_rate)) {
    decision.fail = true;
    ++stats_.attempts_failed;
    return decision;
  }
  if (rng.Bernoulli(s * plan_.delay_rate)) {
    decision.delay_ms = rng.Uniform(0.0, s * plan_.max_delay_ms);
    ++stats_.applications_delayed;
  }
  if (rng.Bernoulli(s * plan_.partial_rate)) {
    // Higher severity pulls the floor down toward min_partial_fraction.
    const double floor =
        1.0 - s * (1.0 - plan_.min_partial_fraction);
    decision.partial_fraction = rng.Uniform(floor, 1.0);
    ++stats_.applications_partial;
  }
  return decision;
}

}  // namespace pinsql::faults
