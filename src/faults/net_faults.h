#ifndef PINSQL_FAULTS_NET_FAULTS_H_
#define PINSQL_FAULTS_NET_FAULTS_H_

#include <cstdint>
#include <string>

#include "util/rng.h"

namespace pinsql::faults {

/// Configuration for one chaos-client campaign against a serve endpoint.
struct NetChaosOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t seed = 42;
  /// Tenant name stamped on flood requests (the "abusive" tenant).
  std::string tenant = "chaos";
  uint32_t instance_id = 0;

  int slow_loris_conns = 4;
  /// Bytes trickled per slow-loris connection before giving up (the server
  /// should reap the connection via its read deadline first).
  int slow_loris_bytes = 32;
  int slow_loris_interval_ms = 50;
  /// Upper bound on how long one slow-loris connection waits for the
  /// server to close it.
  int slow_loris_wait_ms = 15'000;

  int mid_body_disconnects = 8;
  int garbage_frames = 16;
  size_t garbage_max_bytes = 512;
  /// Valid-but-hostile flood: well-formed ingest requests far past the
  /// tenant's budget.
  int flood_requests = 64;
  int flood_records_per_request = 200;
};

/// What a campaign observed. The assertions live in the tests; the client
/// only counts.
struct NetChaosStats {
  int connects_failed = 0;
  /// Slow-loris connections the server closed on us (the defense working).
  int loris_closed_by_server = 0;
  /// Slow-loris connections still open when the wait budget expired.
  int loris_survived = 0;
  int mid_body_sent = 0;
  int garbage_sent = 0;
  /// 4xx responses read back from garbage frames before the close.
  int garbage_got_4xx = 0;
  int flood_sent = 0;
  int flood_accepted = 0;   // 202
  int flood_rejected = 0;   // 4xx/5xx
  int flood_retry_after = 0;  // rejections that carried Retry-After
};

/// Adversarial network client for the serve layer: slow-loris trickle,
/// mid-body disconnects, random garbage frames and a well-formed tenant
/// flood. Deterministic given the seed (modulo kernel timing). Used by the
/// netchaos test suite and bench_serve; plain blocking sockets, no
/// dependency on the serve library.
class NetChaosClient {
 public:
  explicit NetChaosClient(const NetChaosOptions& options);

  NetChaosStats RunSlowLoris();
  NetChaosStats RunMidBodyDisconnect();
  NetChaosStats RunGarbage();
  NetChaosStats RunTenantFlood();
  /// All four campaigns, stats summed.
  NetChaosStats RunAll();

 private:
  /// Connects to host:port; -1 on failure (counted by the caller).
  int Connect() const;
  /// One well-formed ingest request body for the flood.
  std::string FloodBody(Rng* rng) const;

  NetChaosOptions options_;
};

}  // namespace pinsql::faults

#endif  // PINSQL_FAULTS_NET_FAULTS_H_
