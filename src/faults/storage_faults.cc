#include "faults/storage_faults.h"

#include <utility>

namespace pinsql::faults {

namespace {

double Scaled(double rate, double severity) {
  if (severity <= 0.0) return 0.0;
  return rate * (severity > 1.0 ? 1.0 : severity);
}

}  // namespace

std::string StorageFaultStats::ToString() const {
  std::string out;
  out += "appends=" + std::to_string(appends_seen);
  out += " torn=" + std::to_string(writes_torn);
  out += " reads=" + std::to_string(reads_seen);
  out += " bit_flipped=" + std::to_string(reads_bit_flipped);
  out += " shortened=" + std::to_string(reads_shortened);
  out += " fsyncs=" + std::to_string(fsyncs_seen);
  out += " fsync_failed=" + std::to_string(fsyncs_failed);
  return out;
}

/// Write handle that can tear an append (persist only a prefix, then
/// report failure — what a crashed or lying disk leaves behind) and fail
/// fsyncs without syncing.
class FaultyWritableFile : public store::WritableFile {
 public:
  FaultyWritableFile(std::unique_ptr<store::WritableFile> base,
                     StorageFaultInjector* owner)
      : base_(std::move(base)), owner_(owner) {}

  Status Append(std::string_view data) override {
    ++owner_->stats_.appends_seen;
    if (!data.empty() &&
        owner_->rng_.Bernoulli(
            Scaled(owner_->plan_.torn_write_rate, owner_->plan_.severity))) {
      ++owner_->stats_.writes_torn;
      const auto keep = static_cast<size_t>(owner_->rng_.UniformInt(
          0, static_cast<int64_t>(data.size()) - 1));
      base_->Append(data.substr(0, keep));
      return Status::Internal("injected torn write");
    }
    return base_->Append(data);
  }

  Status Sync() override {
    ++owner_->stats_.fsyncs_seen;
    if (owner_->rng_.Bernoulli(Scaled(owner_->plan_.fsync_failure_rate,
                                      owner_->plan_.severity))) {
      ++owner_->stats_.fsyncs_failed;
      return Status::Internal("injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<store::WritableFile> base_;
  StorageFaultInjector* owner_;
};

StorageFaultInjector::StorageFaultInjector(store::Env* base,
                                           const StorageFaultPlan& plan)
    : base_(base), plan_(plan), rng_(plan.seed) {}

StatusOr<std::unique_ptr<store::WritableFile>>
StorageFaultInjector::NewWritableFile(const std::string& path) {
  auto file = base_->NewWritableFile(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<store::WritableFile>(
      new FaultyWritableFile(std::move(file).value(), this));
}

Status StorageFaultInjector::ReadFile(const std::string& path,
                                      std::string* out) {
  if (Status status = base_->ReadFile(path, out); !status.ok()) return status;
  ++stats_.reads_seen;
  if (!out->empty() &&
      rng_.Bernoulli(Scaled(plan_.short_read_rate, plan_.severity))) {
    ++stats_.reads_shortened;
    out->resize(static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(out->size()) - 1)));
  }
  if (!out->empty() &&
      rng_.Bernoulli(Scaled(plan_.bit_flip_rate, plan_.severity))) {
    ++stats_.reads_bit_flipped;
    const auto pos = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(out->size()) - 1));
    (*out)[pos] = static_cast<char>(
        (*out)[pos] ^ static_cast<char>(1 << rng_.UniformInt(0, 7)));
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> StorageFaultInjector::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Status StorageFaultInjector::CreateDirs(const std::string& dir) {
  return base_->CreateDirs(dir);
}

Status StorageFaultInjector::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

Status StorageFaultInjector::RenameFile(const std::string& from,
                                        const std::string& to) {
  return base_->RenameFile(from, to);
}

Status StorageFaultInjector::TruncateFile(const std::string& path,
                                          uint64_t size) {
  return base_->TruncateFile(path, size);
}

StatusOr<uint64_t> StorageFaultInjector::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool StorageFaultInjector::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status StorageFaultInjector::SyncDir(const std::string& dir) {
  return base_->SyncDir(dir);
}

}  // namespace pinsql::faults
