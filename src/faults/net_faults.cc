#include "faults/net_faults.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace pinsql::faults {
namespace {

/// Sends every byte (blocking socket); false on error/disconnect.
bool SendAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until the peer closes or `budget_ms` expires; returns everything
/// received (possibly empty).
std::string ReadUntilClose(int fd, int budget_ms) {
  std::string out;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  char buf[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    const int remaining_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count());
    if (::poll(&pfd, 1, std::max(remaining_ms, 0)) <= 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // closed or error
  }
  return out;
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) return 0;
  return std::atoi(response.c_str() + 9);
}

}  // namespace

NetChaosClient::NetChaosClient(const NetChaosOptions& options)
    : options_(options) {}

int NetChaosClient::Connect() const {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

NetChaosStats NetChaosClient::RunSlowLoris() {
  NetChaosStats stats;
  const std::string header =
      "POST /v1/ingest HTTP/1.1\r\nX-Pinsql-Tenant: " + options_.tenant +
      "\r\nContent-Length: 100\r\n";
  for (int c = 0; c < options_.slow_loris_conns; ++c) {
    const int fd = Connect();
    if (fd < 0) {
      ++stats.connects_failed;
      continue;
    }
    // Trickle the header one byte at a time; never finish the request.
    bool closed = false;
    const int bytes =
        std::min<int>(options_.slow_loris_bytes,
                      static_cast<int>(header.size()));
    const auto wait_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.slow_loris_wait_ms);
    for (int i = 0; i < bytes; ++i) {
      if (!SendAll(fd, header.data() + i, 1)) {
        closed = true;
        break;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.slow_loris_interval_ms));
      // A pending read of 0 bytes means the server hung up on us.
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 0) > 0) {
        char buf[512];
        if (::recv(fd, buf, sizeof(buf), 0) <= 0) {
          closed = true;
          break;
        }
      }
      if (std::chrono::steady_clock::now() > wait_deadline) break;
    }
    if (!closed) {
      // Stop trickling and wait for the read deadline to reap us.
      const int remaining_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              wait_deadline - std::chrono::steady_clock::now())
              .count());
      const std::string tail = ReadUntilClose(fd, std::max(remaining_ms, 1));
      // After ReadUntilClose returns, either the server closed (recv saw
      // 0/err) or the budget expired with the connection still open.
      pollfd pfd{fd, POLLIN, 0};
      ::poll(&pfd, 1, 0);
      char probe;
      const ssize_t n = ::recv(fd, &probe, 1, MSG_DONTWAIT);
      closed = (n == 0) || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
      if (!tail.empty() && !closed) closed = false;
      if (!closed && !tail.empty()) {
        // Got a response (e.g. 408) but the FIN has not landed yet; count
        // it as the defense firing.
        closed = true;
      }
    }
    if (closed) {
      ++stats.loris_closed_by_server;
    } else {
      ++stats.loris_survived;
    }
    ::close(fd);
  }
  return stats;
}

NetChaosStats NetChaosClient::RunMidBodyDisconnect() {
  NetChaosStats stats;
  Rng rng(options_.seed ^ 0xB0D7);
  for (int c = 0; c < options_.mid_body_disconnects; ++c) {
    const int fd = Connect();
    if (fd < 0) {
      ++stats.connects_failed;
      continue;
    }
    const std::string body = FloodBody(&rng);
    const std::string request =
        "POST /v1/ingest HTTP/1.1\r\nX-Pinsql-Tenant: " + options_.tenant +
        "\r\nContent-Length: " + std::to_string(body.size()) +
        "\r\n\r\n" + body.substr(0, body.size() / 2);
    SendAll(fd, request.data(), request.size());
    ++stats.mid_body_sent;
    ::close(fd);  // vanish mid-body
  }
  return stats;
}

NetChaosStats NetChaosClient::RunGarbage() {
  NetChaosStats stats;
  Rng rng(options_.seed ^ 0x6A7B);
  for (int c = 0; c < options_.garbage_frames; ++c) {
    const int fd = Connect();
    if (fd < 0) {
      ++stats.connects_failed;
      continue;
    }
    std::string frame;
    const size_t len = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(options_.garbage_max_bytes)));
    frame.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      frame.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    // Terminate with a blank line sometimes so header parsing completes.
    if (rng.Bernoulli(0.5)) frame += "\r\n\r\n";
    SendAll(fd, frame.data(), frame.size());
    ++stats.garbage_sent;
    const std::string response = ReadUntilClose(fd, 2000);
    const int status = StatusOf(response);
    if (status >= 400 && status < 500) ++stats.garbage_got_4xx;
    ::close(fd);
  }
  return stats;
}

std::string NetChaosClient::FloodBody(Rng* rng) const {
  std::string body = "{\"instance\":" + std::to_string(options_.instance_id) +
                     ",\"records\":[";
  for (int i = 0; i < options_.flood_records_per_request; ++i) {
    if (i > 0) body += ',';
    body += "{\"arrival_ms\":" +
            std::to_string(1'000'000'000 + rng->UniformInt(0, 999)) +
            ",\"sql_id\":" + std::to_string(rng->UniformInt(1, 9)) +
            ",\"response_ms\":" + std::to_string(rng->UniformInt(1, 400)) +
            ",\"examined_rows\":" + std::to_string(rng->UniformInt(1, 5000)) +
            "}";
  }
  body += "]}";
  return body;
}

NetChaosStats NetChaosClient::RunTenantFlood() {
  NetChaosStats stats;
  Rng rng(options_.seed ^ 0xF100D);
  for (int c = 0; c < options_.flood_requests; ++c) {
    const int fd = Connect();
    if (fd < 0) {
      ++stats.connects_failed;
      continue;
    }
    const std::string body = FloodBody(&rng);
    const std::string request =
        "POST /v1/ingest HTTP/1.1\r\nX-Pinsql-Tenant: " + options_.tenant +
        "\r\nContent-Length: " + std::to_string(body.size()) +
        "\r\nConnection: close\r\n\r\n" + body;
    if (!SendAll(fd, request.data(), request.size())) {
      ::close(fd);
      continue;
    }
    ++stats.flood_sent;
    const std::string response = ReadUntilClose(fd, 5000);
    const int status = StatusOf(response);
    if (status == 202) {
      ++stats.flood_accepted;
    } else if (status >= 400) {
      ++stats.flood_rejected;
      if (response.find("Retry-After:") != std::string::npos) {
        ++stats.flood_retry_after;
      }
    }
    ::close(fd);
  }
  return stats;
}

NetChaosStats NetChaosClient::RunAll() {
  NetChaosStats total;
  const auto merge = [&total](const NetChaosStats& s) {
    total.connects_failed += s.connects_failed;
    total.loris_closed_by_server += s.loris_closed_by_server;
    total.loris_survived += s.loris_survived;
    total.mid_body_sent += s.mid_body_sent;
    total.garbage_sent += s.garbage_sent;
    total.garbage_got_4xx += s.garbage_got_4xx;
    total.flood_sent += s.flood_sent;
    total.flood_accepted += s.flood_accepted;
    total.flood_rejected += s.flood_rejected;
    total.flood_retry_after += s.flood_retry_after;
  };
  merge(RunGarbage());
  merge(RunMidBodyDisconnect());
  merge(RunTenantFlood());
  merge(RunSlowLoris());
  return total;
}

}  // namespace pinsql::faults
