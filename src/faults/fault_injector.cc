#include "faults/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "util/rng.h"
#include "util/strings.h"

namespace pinsql::faults {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Per-class base rates at severity 1.0; every rate scales linearly with
// the plan severity. Tuned so a 0.3-severity sweep visibly degrades
// accuracy without flat-lining it.
constexpr double kGapRateAtFull = 0.25;        // per metric point
constexpr double kGarbageRateAtFull = 0.08;    // per metric point
constexpr double kBlackoutFracAtFull = 0.30;   // of the series length
constexpr double kDropRateAtFull = 0.40;       // per log record
constexpr double kDuplicateRateAtFull = 0.15;  // per log record
constexpr double kReorderRateAtFull = 0.30;    // per log record
constexpr double kLateRateAtFull = 0.20;       // per log record
constexpr int64_t kMaxLatenessMs = 30000;      // late arrival horizon
constexpr int64_t kMaxReorderJitterMs = 3000;  // reorder shuffle horizon
constexpr double kHistoryTruncRateAtFull = 0.6;  // per stored window
constexpr double kHistoryDropRateAtFull = 0.4;   // per stored window
constexpr int64_t kMaxClockSkewMsAtFull = 20000;

// Salt labels keeping the per-concern streams decorrelated.
enum : uint64_t {
  kStreamGap = 0x67617073,       // "gaps"
  kStreamBlackout = 0x626c6b74,  // "blkt"
  kStreamGarbage = 0x67726267,   // "grbg"
  kStreamLogs = 0x6c6f6773,      // "logs"
  kStreamHistory = 0x68697374,   // "hist"
};

Rng MakeStream(const FaultPlan& plan, uint64_t salt, uint64_t stream) {
  Rng base(plan.seed ^ (salt * 0x9E3779B97F4A7C15ULL));
  return base.Fork(stream);
}

}  // namespace

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kMetricGap: return "metric_gap";
    case FaultClass::kMetricBlackout: return "metric_blackout";
    case FaultClass::kMetricGarbage: return "metric_garbage";
    case FaultClass::kLogDrop: return "log_drop";
    case FaultClass::kLogDuplicate: return "log_duplicate";
    case FaultClass::kLogReorder: return "log_reorder";
    case FaultClass::kLogLate: return "log_late";
    case FaultClass::kHistoryTruncate: return "history_truncate";
    case FaultClass::kHistoryDrop: return "history_drop";
    case FaultClass::kClockSkew: return "clock_skew";
  }
  return "unknown";
}

bool FaultPlan::Enabled(FaultClass c) const {
  if (severity <= 0.0) return false;
  return std::find(classes.begin(), classes.end(), c) != classes.end();
}

FaultPlan FaultPlan::WithSeverity(double s) const {
  FaultPlan out = *this;
  out.severity = s;
  return out;
}

FaultPlan FaultPlan::Only(FaultClass c) const {
  FaultPlan out = *this;
  out.classes = {c};
  return out;
}

size_t InjectionStats::total() const {
  return metric_points_gapped + metric_points_blacked_out +
         metric_points_garbled + log_records_dropped + log_records_duplicated +
         log_records_reordered + log_records_delayed +
         history_windows_truncated + history_windows_dropped +
         (clock_skew_ms != 0 ? 1 : 0);
}

InjectionStats& InjectionStats::MergeFrom(const InjectionStats& other) {
  metric_points_gapped += other.metric_points_gapped;
  metric_points_blacked_out += other.metric_points_blacked_out;
  metric_points_garbled += other.metric_points_garbled;
  log_records_dropped += other.log_records_dropped;
  log_records_duplicated += other.log_records_duplicated;
  log_records_reordered += other.log_records_reordered;
  log_records_delayed += other.log_records_delayed;
  history_windows_truncated += other.history_windows_truncated;
  history_windows_dropped += other.history_windows_dropped;
  if (other.clock_skew_ms != 0) clock_skew_ms = other.clock_skew_ms;
  return *this;
}

std::string InjectionStats::ToString() const {
  return StrFormat(
      "gaps=%zu blackout=%zu garbage=%zu drop=%zu dup=%zu reorder=%zu "
      "late=%zu hist_trunc=%zu hist_drop=%zu skew_ms=%lld",
      metric_points_gapped, metric_points_blacked_out, metric_points_garbled,
      log_records_dropped, log_records_duplicated, log_records_reordered,
      log_records_delayed, history_windows_truncated, history_windows_dropped,
      static_cast<long long>(clock_skew_ms));
}

void InjectMetricFaults(const FaultPlan& plan, uint64_t salt,
                        TimeSeries* series, InjectionStats* stats) {
  if (plan.severity <= 0.0 || series == nullptr || series->empty()) {
    if (series != nullptr) {
      PINSQL_OBS_COUNT("faults.metric_points_passed", series->size());
    }
    return;
  }
  const double sev = std::min(plan.severity, 1.0);
  std::vector<double>& v = series->values();
  const size_t n = v.size();
  size_t injected = 0;

  if (plan.Enabled(FaultClass::kMetricGap)) {
    Rng rng = MakeStream(plan, salt, kStreamGap);
    const double p = kGapRateAtFull * sev;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(p) && std::isfinite(v[i])) {
        v[i] = kNaN;
        ++injected;
        if (stats != nullptr) ++stats->metric_points_gapped;
      }
    }
  }

  if (plan.Enabled(FaultClass::kMetricBlackout)) {
    Rng rng = MakeStream(plan, salt, kStreamBlackout);
    // One outage with probability = severity; its length grows with
    // severity too, so mild plans lose a sliver and harsh plans a third.
    if (rng.Bernoulli(sev)) {
      const size_t len = std::max<size_t>(
          1, static_cast<size_t>(
                 std::llround(kBlackoutFracAtFull * sev *
                              static_cast<double>(n))));
      const size_t start = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n - 1)));
      for (size_t i = start; i < std::min(n, start + len); ++i) {
        if (std::isfinite(v[i])) {
          v[i] = kNaN;
          ++injected;
          if (stats != nullptr) ++stats->metric_points_blacked_out;
        }
      }
    }
  }

  if (plan.Enabled(FaultClass::kMetricGarbage)) {
    Rng rng = MakeStream(plan, salt, kStreamGarbage);
    const double p = kGarbageRateAtFull * sev;
    for (size_t i = 0; i < n; ++i) {
      if (!rng.Bernoulli(p)) continue;
      // Collector corruption modes: counter wrap (huge negative) and float
      // overflow (+Inf) are detectable by a sanity bound; the third mode is
      // a plausible-magnitude mis-scale (unit confusion, partial read) that
      // no bound can tell from a genuine spike — that one must be absorbed
      // by gap-aware statistics, not filtered.
      switch (rng.UniformInt(0, 2)) {
        case 0: v[i] = -1e18; break;
        case 1: v[i] = std::numeric_limits<double>::infinity(); break;
        default:
          v[i] = (std::isfinite(v[i]) ? std::fabs(v[i]) + 1.0 : 1.0) *
                     rng.Uniform(3.0, 40.0) +
                 rng.Uniform(0.0, 50.0);
      }
      ++injected;
      if (stats != nullptr) ++stats->metric_points_garbled;
    }
  }
  PINSQL_OBS_COUNT("faults.metric_points_injected", injected);
  // A point can take two faults (gap then garbage), so clamp at zero.
  PINSQL_OBS_COUNT("faults.metric_points_passed",
                   injected < n ? n - injected : 0);
}

std::vector<QueryLogRecord> InjectLogFaults(const FaultPlan& plan,
                                            std::vector<QueryLogRecord> records,
                                            InjectionStats* stats) {
  if (plan.severity <= 0.0 || records.empty()) {
    PINSQL_OBS_COUNT("faults.log_records_passed", records.size());
    return records;
  }
  const double sev = std::min(plan.severity, 1.0);
  Rng rng = MakeStream(plan, /*salt=*/0, kStreamLogs);
  size_t injected = 0;
  size_t passed = 0;

  int64_t skew_ms = 0;
  if (plan.Enabled(FaultClass::kClockSkew)) {
    const int64_t bound = static_cast<int64_t>(
        std::llround(kMaxClockSkewMsAtFull * sev));
    if (bound > 0) skew_ms = rng.UniformInt(-bound, bound);
    if (stats != nullptr) stats->clock_skew_ms = skew_ms;
  }

  std::vector<QueryLogRecord> out;
  out.reserve(records.size());
  for (const QueryLogRecord& rec : records) {
    bool touched = skew_ms != 0;
    if (plan.Enabled(FaultClass::kLogDrop) &&
        rng.Bernoulli(kDropRateAtFull * sev)) {
      ++injected;
      if (stats != nullptr) ++stats->log_records_dropped;
      continue;
    }
    QueryLogRecord kept = rec;
    kept.arrival_ms += skew_ms;
    if (plan.Enabled(FaultClass::kLogLate) &&
        rng.Bernoulli(kLateRateAtFull * sev)) {
      kept.arrival_ms += rng.UniformInt(
          1, std::max<int64_t>(1, static_cast<int64_t>(
                                      std::llround(kMaxLatenessMs * sev))));
      touched = true;
      if (stats != nullptr) ++stats->log_records_delayed;
    }
    if (plan.Enabled(FaultClass::kLogReorder) &&
        rng.Bernoulli(kReorderRateAtFull * sev)) {
      const int64_t jitter = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(kMaxReorderJitterMs * sev)));
      kept.arrival_ms += rng.UniformInt(-jitter, jitter);
      touched = true;
      if (stats != nullptr) ++stats->log_records_reordered;
    }
    out.push_back(kept);
    if (plan.Enabled(FaultClass::kLogDuplicate) &&
        rng.Bernoulli(kDuplicateRateAtFull * sev)) {
      out.push_back(kept);  // at-least-once delivery: exact replay
      touched = true;
      if (stats != nullptr) ++stats->log_records_duplicated;
    }
    if (touched) {
      ++injected;
    } else {
      ++passed;
    }
  }
  PINSQL_OBS_COUNT("faults.log_records_injected", injected);
  PINSQL_OBS_COUNT("faults.log_records_passed", passed);
  return out;
}

void InjectHistoryFaults(const FaultPlan& plan,
                         core::MapHistoryProvider* history,
                         InjectionStats* stats) {
  if (plan.severity <= 0.0 || history == nullptr || history->size() == 0) {
    if (history != nullptr) {
      PINSQL_OBS_COUNT("faults.history_windows_passed", history->size());
    }
    return;
  }
  const double sev = std::min(plan.severity, 1.0);
  Rng rng = MakeStream(plan, /*salt=*/0, kStreamHistory);

  // Collect the decisions first: Erase during ForEach would invalidate
  // the underlying map iteration.
  struct Decision {
    uint64_t sql_id;
    int days_ago;
    bool drop;
    double keep_frac;  // for truncation
  };
  std::vector<Decision> decisions;
  history->ForEach([&](uint64_t sql_id, int days_ago, const TimeSeries&) {
    Decision d{sql_id, days_ago, false, 1.0};
    if (plan.Enabled(FaultClass::kHistoryDrop) &&
        rng.Bernoulli(kHistoryDropRateAtFull * sev)) {
      d.drop = true;
    } else if (plan.Enabled(FaultClass::kHistoryTruncate) &&
               rng.Bernoulli(kHistoryTruncRateAtFull * sev)) {
      // Keep between 10% and 70% of the window: short enough that the
      // relative anomaly period usually falls off the end.
      d.keep_frac = rng.Uniform(0.1, 0.7);
    }
    decisions.push_back(d);
  });

  size_t injected = 0;
  for (const Decision& d : decisions) {
    if (d.drop) {
      if (history->Erase(d.sql_id, d.days_ago)) {
        ++injected;
        if (stats != nullptr) ++stats->history_windows_dropped;
      }
      continue;
    }
    if (d.keep_frac >= 1.0) continue;
    const TimeSeries* s = history->ExecutionHistory(d.sql_id, d.days_ago);
    if (s == nullptr || s->empty()) continue;
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::llround(d.keep_frac *
                                            static_cast<double>(s->size()))));
    if (keep >= s->size()) continue;
    std::vector<double> head(s->values().begin(),
                             s->values().begin() + static_cast<long>(keep));
    history->Put(d.sql_id, d.days_ago,
                 TimeSeries(s->start_time(), s->interval_sec(),
                            std::move(head)));
    ++injected;
    if (stats != nullptr) ++stats->history_windows_truncated;
  }
  PINSQL_OBS_COUNT("faults.history_windows_injected", injected);
  PINSQL_OBS_COUNT("faults.history_windows_passed",
                   decisions.size() - injected);
}

}  // namespace pinsql::faults
