#include "serve/admission.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace pinsql::serve {

void AdmissionController::Bucket::Refill(int64_t now_ms) {
  if (now_ms <= last_refill_ms) return;
  const double elapsed_sec =
      static_cast<double>(now_ms - last_refill_ms) / 1000.0;
  tokens = std::min(burst, tokens + elapsed_sec * rate_per_sec);
  last_refill_ms = now_ms;
}

bool AdmissionController::Bucket::Take(double cost, int64_t now_ms,
                                       int64_t* retry_after_ms) {
  Refill(now_ms);
  if (tokens >= cost) {
    tokens -= cost;
    return true;
  }
  if (retry_after_ms != nullptr) {
    const double deficit = cost - tokens;
    *retry_after_ms =
        rate_per_sec <= 0.0
            ? 60'000
            : static_cast<int64_t>(std::ceil(deficit / rate_per_sec * 1000.0));
    *retry_after_ms = std::max<int64_t>(*retry_after_ms, 1);
  }
  return false;
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  for (const auto& [name, quota] : options.tenants) {
    Tenant tenant;
    tenant.quota = quota;
    tenant.record_bucket.rate_per_sec = quota.records_per_sec;
    tenant.record_bucket.burst = quota.record_burst;
    tenant.record_bucket.tokens = quota.record_burst;
    tenant.byte_bucket.rate_per_sec = quota.bytes_per_sec;
    tenant.byte_bucket.burst = quota.byte_burst;
    tenant.byte_bucket.tokens = quota.byte_burst;
    tenants_.emplace(name, std::move(tenant));
  }
}

bool AdmissionController::KnownTenant(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(tenant) != 0;
}

bool AdmissionController::Authorized(const std::string& tenant,
                                     uint32_t instance_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  const auto& instances = it->second.quota.instances;
  return std::find(instances.begin(), instances.end(), instance_id) !=
         instances.end();
}

std::vector<uint32_t> AdmissionController::TenantInstances(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  return it->second.quota.instances;
}

AdmitDecision AdmissionController::PreAdmit(const std::string& tenant,
                                            size_t declared_bytes,
                                            int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    PINSQL_OBS_COUNT("serve.admission.unknown_tenant", 1);
    return {AdmitOutcome::kUnknownTenant, 0};
  }
  Tenant& t = it->second;
  // Global overload: shed before spending any tenant budget, so a recovery
  // after the backlog drains does not find every bucket empty.
  if (pending_bytes_ + declared_bytes > options_.max_pending_bytes) {
    ++t.stats.dropped_shed;
    PINSQL_OBS_COUNT("serve.admission.dropped_shed", 1);
    return {AdmitOutcome::kShed, 1000};
  }
  int64_t retry_after_ms = 0;
  if (!t.byte_bucket.Take(static_cast<double>(declared_bytes), now_ms,
                          &retry_after_ms)) {
    ++t.stats.dropped_rate_limited;
    PINSQL_OBS_COUNT("serve.admission.dropped_rate_limited", 1);
    return {AdmitOutcome::kRateLimited, retry_after_ms};
  }
  return {AdmitOutcome::kAdmitted, 0};
}

AdmitDecision AdmissionController::Enqueue(StagedBatch batch, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(batch.tenant);
  if (it == tenants_.end()) {
    PINSQL_OBS_COUNT("serve.admission.unknown_tenant", 1);
    return {AdmitOutcome::kUnknownTenant, 0};
  }
  Tenant& t = it->second;
  const auto& instances = t.quota.instances;
  if (std::find(instances.begin(), instances.end(), batch.instance_id) ==
      instances.end()) {
    PINSQL_OBS_COUNT("serve.admission.forbidden_instance", 1);
    return {AdmitOutcome::kForbiddenInstance, 0};
  }
  // Re-check the global ceiling here: PreAdmit does not reserve the
  // declared bytes (requests can die between header and body), so many
  // concurrent in-flight bodies could otherwise collectively overshoot
  // max_pending_bytes. Checked before the record bucket so a shed does not
  // burn tenant tokens.
  if (pending_bytes_ + batch.wire_bytes > options_.max_pending_bytes) {
    ++t.stats.dropped_shed;
    PINSQL_OBS_COUNT("serve.admission.dropped_shed", 1);
    return {AdmitOutcome::kShed, 1000};
  }
  if (t.queue.size() >= t.quota.queue_capacity_batches) {
    ++t.stats.dropped_over_quota;
    PINSQL_OBS_COUNT("serve.admission.dropped_over_quota", 1);
    return {AdmitOutcome::kOverQuota, 1000};
  }
  int64_t retry_after_ms = 0;
  const double cost =
      static_cast<double>(batch.records.size() + batch.samples.size());
  if (!t.record_bucket.Take(cost, now_ms, &retry_after_ms)) {
    ++t.stats.dropped_rate_limited;
    PINSQL_OBS_COUNT("serve.admission.dropped_rate_limited", 1);
    return {AdmitOutcome::kRateLimited, retry_after_ms};
  }

  ++t.stats.batches_admitted;
  t.stats.records_admitted += batch.records.size();
  t.stats.samples_admitted += batch.samples.size();
  t.stats.bytes_admitted += batch.wire_bytes;
  t.queued_bytes += batch.wire_bytes;
  pending_bytes_ += batch.wire_bytes;
  ++pending_batches_;
  batch.enqueued_ms = now_ms;
  t.queue.push_back(std::move(batch));
  if (!t.in_active_round) {
    t.in_active_round = true;
    t.deficit_bytes = 0;
    active_.push_back(it->first);
  }
  PINSQL_OBS_COUNT("serve.admission.batches_admitted", 1);
  PINSQL_OBS_GAUGE_SET("serve.admission.pending_bytes",
                       static_cast<int64_t>(pending_bytes_));
  return {AdmitOutcome::kAdmitted, 0};
}

std::vector<StagedBatch> AdmissionController::DequeueFair(size_t max_batches,
                                                          int64_t now_ms) {
  (void)now_ms;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StagedBatch> out;
  // Deficit round robin over the backlogged tenants: each visit grants
  // weight * quantum bytes of deficit, then drains whole batches while the
  // deficit covers them. A tenant that empties leaves the round (deficit
  // reset, no banking idle credit).
  size_t visits_without_progress = 0;
  while (out.size() < max_batches && !active_.empty() &&
         visits_without_progress <= active_.size()) {
    const std::string name = active_.front();
    active_.pop_front();
    auto it = tenants_.find(name);
    if (it == tenants_.end()) continue;  // quota map is fixed, but be safe
    Tenant& t = it->second;
    if (t.queue.empty()) {
      t.in_active_round = false;
      t.deficit_bytes = 0;
      continue;
    }
    t.deficit_bytes += static_cast<size_t>(std::max<uint32_t>(
                           t.quota.weight, 1)) *
                       options_.drr_quantum_bytes;
    bool progressed = false;
    while (out.size() < max_batches && !t.queue.empty() &&
           t.queue.front().wire_bytes <= t.deficit_bytes) {
      StagedBatch batch = std::move(t.queue.front());
      t.queue.pop_front();
      t.deficit_bytes -= batch.wire_bytes;
      t.queued_bytes -= batch.wire_bytes;
      pending_bytes_ -= batch.wire_bytes;
      --pending_batches_;
      progressed = true;
      out.push_back(std::move(batch));
    }
    if (t.queue.empty()) {
      t.in_active_round = false;
      t.deficit_bytes = 0;
    } else {
      active_.push_back(name);
    }
    visits_without_progress = progressed ? 0 : visits_without_progress + 1;
  }
  PINSQL_OBS_GAUGE_SET("serve.admission.pending_bytes",
                       static_cast<int64_t>(pending_bytes_));
  return out;
}

void AdmissionController::NoteDelivered(const std::string& tenant,
                                        size_t records, size_t samples) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  it->second.stats.records_delivered += records;
  it->second.stats.samples_delivered += samples;
}

void AdmissionController::NoteShed(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  PINSQL_OBS_COUNT("serve.admission.dropped_shed", 1);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  ++it->second.stats.dropped_shed;
}

void AdmissionController::NoteDeadlineExpired(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  PINSQL_OBS_COUNT("serve.admission.dropped_deadline", 1);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  ++it->second.stats.dropped_deadline;
}

size_t AdmissionController::pending_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_bytes_;
}

size_t AdmissionController::pending_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_batches_;
}

std::map<std::string, TenantAdmissionStats> AdmissionController::TenantStats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TenantAdmissionStats> out;
  for (const auto& [name, tenant] : tenants_) out[name] = tenant.stats;
  return out;
}

}  // namespace pinsql::serve
