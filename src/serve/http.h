#ifndef PINSQL_SERVE_HTTP_H_
#define PINSQL_SERVE_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pinsql::serve {

/// Hard bounds on what one request may cost before it is rejected. Every
/// limit maps to a definite status code, so abusive clients get a clean
/// 4xx/5xx instead of an allocation: oversized headers are 431, an
/// oversized declared body is 413 *before any body byte is buffered*, and
/// chunked encoding (unbounded by construction) is 501.
struct HttpLimits {
  size_t max_header_bytes = 8 * 1024;
  size_t max_headers = 64;
  size_t max_target_bytes = 2048;
  size_t max_body_bytes = 4 * 1024 * 1024;
};

struct HttpRequest {
  std::string method;
  std::string target;   // path?query as received
  std::string version;  // "HTTP/1.0" | "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  size_t content_length = 0;
  bool keep_alive = true;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
  /// Path without the query string.
  std::string_view Path() const;
  /// Value of one query parameter ("" when absent).
  std::string QueryParam(std::string_view key) const;
};

/// Incremental, bounded HTTP/1.1 request parser. Feed() appends raw bytes
/// and advances a state machine; the buffer can never grow past
/// max_header_bytes + content_length (itself capped at max_body_bytes), so
/// a malicious peer cannot make the server allocate unboundedly.
///
/// The parser surfaces kHeadersDone as a distinct state so the connection
/// layer can run admission control on the declared Content-Length *before*
/// the body is read — a denied request costs the server only the header
/// bytes.
class HttpParser {
 public:
  enum class State {
    kHeaders,      // still reading the request line / header block
    kHeadersDone,  // headers parsed; body (if any) not yet complete
    kComplete,     // full request available via request()
    kError,        // malformed; see error_status()/error_reason()
  };

  explicit HttpParser(const HttpLimits& limits) : limits_(limits) {}

  /// Appends bytes and parses as far as possible.
  State Feed(std::string_view data);
  State state() const { return state_; }

  const HttpRequest& request() const { return request_; }

  /// 400/413/431/501/505 when state() == kError.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Bytes currently buffered (tests assert this stays bounded).
  size_t buffered_bytes() const { return buffer_.size(); }

  /// Keep-alive: discards the completed request and re-parses any
  /// pipelined leftover bytes already received.
  void Reset();

 private:
  State Fail(int status, std::string reason);
  State ParseBuffer();
  State ParseHeaderBlock(size_t end);

  HttpLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;
  size_t body_start_ = 0;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_reason_;
};

struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Force Connection: close regardless of the request's keep-alive.
  bool close = false;
};

const char* StatusText(int status);

/// Wire form with Content-Length, Connection and a default
/// application/json Content-Type for non-empty bodies.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Convenience: a JSON error body {"error": reason} with optional
/// Retry-After (seconds, emitted when > 0).
HttpResponse ErrorResponse(int status, std::string_view reason,
                           int64_t retry_after_sec = 0);

}  // namespace pinsql::serve

#endif  // PINSQL_SERVE_HTTP_H_
