#include "serve/http.h"

#include <algorithm>
#include <cctype>

namespace pinsql::serve {
namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Header values may contain any printable byte plus horizontal tab;
/// embedded control bytes (header smuggling, log injection) are malformed.
bool CleanHeaderValue(std::string_view v) {
  return std::all_of(v.begin(), v.end(), [](char c) {
    const auto u = static_cast<unsigned char>(c);
    return u == '\t' || (u >= 0x20 && u != 0x7f);
  });
}

bool CleanToken(std::string_view v) {
  return !v.empty() && std::all_of(v.begin(), v.end(), [](char c) {
    const auto u = static_cast<unsigned char>(c);
    return u > 0x20 && u < 0x7f && u != ':';
  });
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

std::string_view HttpRequest::Path() const {
  const std::string_view t = target;
  const size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string HttpRequest::QueryParam(std::string_view key) const {
  const std::string_view t = target;
  const size_t q = t.find('?');
  if (q == std::string_view::npos) return "";
  std::string_view rest = t.substr(q + 1);
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    if (eq == std::string_view::npos && pair == key) return "";
    if (amp == std::string_view::npos) break;
    rest.remove_prefix(amp + 1);
  }
  return "";
}

HttpParser::State HttpParser::Fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
  buffer_.clear();
  buffer_.shrink_to_fit();
  return state_;
}

HttpParser::State HttpParser::Feed(std::string_view data) {
  if (state_ == State::kError || state_ == State::kComplete) return state_;
  buffer_.append(data.data(), data.size());
  return ParseBuffer();
}

HttpParser::State HttpParser::ParseBuffer() {
  if (state_ == State::kHeaders) {
    // Find the blank line terminating the header block. Lines end in \n
    // with an optional preceding \r (lenient framing, strict content).
    size_t end = std::string::npos;  // index one past the blank line
    size_t line_start = 0;
    for (size_t i = 0; i < buffer_.size(); ++i) {
      if (buffer_[i] != '\n') continue;
      size_t line_end = i;
      if (line_end > line_start && buffer_[line_end - 1] == '\r') --line_end;
      if (line_end == line_start) {
        if (line_start == 0) {
          return Fail(400, "request starts with a blank line");
        }
        end = i + 1;
        break;
      }
      line_start = i + 1;
    }
    if (end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Fail(431, "header block exceeds limit");
      }
      return state_;
    }
    if (end > limits_.max_header_bytes) {
      return Fail(431, "header block exceeds limit");
    }
    if (State s = ParseHeaderBlock(end); s == State::kError) return s;
    body_start_ = end;
    state_ = State::kHeadersDone;
  }
  if (state_ == State::kHeadersDone) {
    const size_t have = buffer_.size() - body_start_;
    if (have >= request_.content_length) {
      request_.body = buffer_.substr(body_start_, request_.content_length);
      // Keep only pipelined leftovers.
      buffer_.erase(0, body_start_ + request_.content_length);
      state_ = State::kComplete;
    }
  }
  return state_;
}

HttpParser::State HttpParser::ParseHeaderBlock(size_t end) {
  request_ = HttpRequest{};
  size_t pos = 0;
  size_t line_no = 0;
  bool saw_content_length = false;
  while (pos < end) {
    size_t nl = buffer_.find('\n', pos);
    size_t line_end = nl;
    if (line_end > pos && buffer_[line_end - 1] == '\r') --line_end;
    const std::string_view line(buffer_.data() + pos, line_end - pos);
    pos = nl + 1;
    if (line.empty()) break;  // blank line: end of headers
    if (line_no == 0) {
      // Request line: METHOD SP TARGET SP VERSION.
      const size_t sp1 = line.find(' ');
      const size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        return Fail(400, "malformed request line");
      }
      const std::string_view method = line.substr(0, sp1);
      const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string_view version = line.substr(sp2 + 1);
      if (!CleanToken(method) || method.size() > 16) {
        return Fail(400, "malformed method");
      }
      if (target.empty() || target.size() > limits_.max_target_bytes ||
          !CleanHeaderValue(target) ||
          target.find(' ') != std::string_view::npos) {
        return Fail(400, "malformed request target");
      }
      if (version != "HTTP/1.1" && version != "HTTP/1.0") {
        return Fail(505, "unsupported HTTP version");
      }
      request_.method = std::string(method);
      request_.target = std::string(target);
      request_.version = std::string(version);
      request_.keep_alive = version == "HTTP/1.1";
    } else {
      if (request_.headers.size() >= limits_.max_headers) {
        return Fail(431, "too many headers");
      }
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return Fail(400, "malformed header line");
      }
      const std::string_view name = line.substr(0, colon);
      const std::string_view value = Trim(line.substr(colon + 1));
      if (!CleanToken(name)) return Fail(400, "malformed header name");
      if (!CleanHeaderValue(value)) {
        return Fail(400, "control bytes in header value");
      }
      request_.headers.emplace_back(std::string(name), std::string(value));
    }
    ++line_no;
  }
  if (line_no == 0) return Fail(400, "empty request");

  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    return Fail(501, "transfer-encoding not supported");
  }
  if (const std::string* cl = request_.FindHeader("Content-Length")) {
    const std::string_view v = *cl;
    if (v.empty() || v.size() > 18 ||
        !std::all_of(v.begin(), v.end(),
                     [](char c) { return c >= '0' && c <= '9'; })) {
      return Fail(400, "malformed Content-Length");
    }
    uint64_t length = 0;
    for (char c : v) length = length * 10 + static_cast<uint64_t>(c - '0');
    // Reject before buffering a single body byte: the declared size alone
    // is enough to refuse the request with bounded memory.
    if (length > limits_.max_body_bytes) {
      return Fail(413, "declared body exceeds limit");
    }
    // A second, different Content-Length is smuggling; identical repeats
    // are tolerated.
    for (const auto& [key, value] : request_.headers) {
      if (EqualsIgnoreCase(key, "Content-Length") && value != *cl) {
        return Fail(400, "conflicting Content-Length headers");
      }
    }
    saw_content_length = true;
    request_.content_length = static_cast<size_t>(length);
  }
  if (!saw_content_length) request_.content_length = 0;

  if (const std::string* conn = request_.FindHeader("Connection")) {
    if (EqualsIgnoreCase(*conn, "close")) request_.keep_alive = false;
    if (EqualsIgnoreCase(*conn, "keep-alive")) request_.keep_alive = true;
  }
  return state_;
}

void HttpParser::Reset() {
  if (state_ != State::kComplete) return;
  request_ = HttpRequest{};
  body_start_ = 0;
  state_ = State::kHeaders;
  if (!buffer_.empty()) ParseBuffer();
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusText(response.status);
  out += "\r\n";
  bool has_type = false;
  for (const auto& [key, value] : response.headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
    if (EqualsIgnoreCase(key, "Content-Type")) has_type = true;
  }
  if (!has_type && !response.body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  out += (keep_alive && !response.close) ? "Connection: keep-alive\r\n"
                                         : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

HttpResponse ErrorResponse(int status, std::string_view reason,
                           int64_t retry_after_sec) {
  HttpResponse response;
  response.status = status;
  std::string body = "{\"error\":\"";
  // Reasons are our own constants: printable ASCII without quotes.
  body.append(reason.data(), reason.size());
  body += "\"}";
  response.body = std::move(body);
  if (retry_after_sec > 0) {
    response.headers.emplace_back("Retry-After",
                                  std::to_string(retry_after_sec));
  }
  return response;
}

}  // namespace pinsql::serve
