#ifndef PINSQL_SERVE_ADMISSION_H_
#define PINSQL_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "logstore/log_store.h"
#include "online/stream_ingestor.h"

namespace pinsql::serve {

/// Per-tenant admission budget. Token buckets are continuous-refill
/// (tokens/sec with a burst cap), so a tenant's long-run admitted rate can
/// never exceed its budget no matter how it shapes its traffic.
struct TenantQuota {
  double records_per_sec = 10'000.0;
  double record_burst = 20'000.0;
  double bytes_per_sec = 8.0 * 1024 * 1024;
  double byte_burst = 16.0 * 1024 * 1024;
  /// Bound on the tenant's staged (admitted, not yet delivered) batches.
  size_t queue_capacity_batches = 256;
  /// Weighted-fair share: a tenant with weight 2 drains twice the bytes
  /// per round of a tenant with weight 1 when both are backlogged.
  uint32_t weight = 1;
  /// Instances this tenant may ingest into and read reports for.
  std::vector<uint32_t> instances;
};

struct AdmissionOptions {
  std::map<std::string, TenantQuota> tenants;
  /// Global overload threshold: when the staged bytes across every tenant
  /// would exceed this, new ingest is shed (503) regardless of per-tenant
  /// budgets. Reports and health endpoints are unaffected by design — they
  /// never pass through this controller.
  size_t max_pending_bytes = 64 * 1024 * 1024;
  /// Deficit-round-robin quantum per weight unit per round.
  size_t drr_quantum_bytes = 64 * 1024;
};

enum class AdmitOutcome {
  kAdmitted,
  kRateLimited,       // 429: token bucket empty
  kOverQuota,         // 429: tenant staging queue full
  kShed,              // 503: global overload
  kUnknownTenant,     // 403
  kForbiddenInstance  // 403
};

struct AdmitDecision {
  AdmitOutcome outcome = AdmitOutcome::kAdmitted;
  /// For 429/503: suggested client backoff.
  int64_t retry_after_ms = 0;
};

/// One admitted ingest payload staged for fair delivery into the fleet.
struct StagedBatch {
  std::string tenant;
  uint32_t instance_id = 0;
  std::vector<QueryLogRecord> records;
  std::vector<online::PerfSample> samples;
  /// Wire size of the request body (the DRR currency).
  size_t wire_bytes = 0;
  int64_t enqueued_ms = 0;
};

/// Every admission drop is accounted per tenant, mirroring the ingest
/// layer's late/backpressure counters — nothing leaves the front door
/// silently (see /v1/metricsz for the unified view).
struct TenantAdmissionStats {
  uint64_t batches_admitted = 0;
  uint64_t records_admitted = 0;
  uint64_t samples_admitted = 0;
  uint64_t bytes_admitted = 0;
  /// Records/samples the fleet actually accepted (admitted minus the
  /// fleet's own backpressure/late drops).
  uint64_t records_delivered = 0;
  uint64_t samples_delivered = 0;
  uint64_t dropped_rate_limited = 0;   // requests
  uint64_t dropped_over_quota = 0;     // requests
  uint64_t dropped_shed = 0;           // requests
  uint64_t dropped_deadline = 0;       // requests (expired in handler queue)
};

/// The admission-control layer between the socket and the deterministic
/// ingest boundary: per-tenant token buckets + byte quotas on the way in,
/// a bounded per-tenant staging queue, and weighted deficit-round-robin on
/// the way out, so one flooding tenant can neither exhaust memory nor
/// starve well-behaved tenants' ingest.
///
/// Time is an explicit now_ms argument everywhere, so tests drive the
/// buckets deterministically. Thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  bool KnownTenant(const std::string& tenant) const;
  bool Authorized(const std::string& tenant, uint32_t instance_id) const;
  /// Instances `tenant` may read (empty for unknown tenants).
  std::vector<uint32_t> TenantInstances(const std::string& tenant) const;

  /// Header-time check against the declared body size: charges the byte
  /// bucket and applies the global shed threshold. Runs before a single
  /// body byte is buffered, so a denied flood costs only header bytes.
  AdmitDecision PreAdmit(const std::string& tenant, size_t declared_bytes,
                         int64_t now_ms);

  /// Post-parse: re-applies the global shed ceiling against the actual
  /// wire bytes (PreAdmit does not reserve them), charges the record
  /// bucket and stages the batch for fair delivery. On any non-admitted
  /// outcome the batch is dropped and counted.
  AdmitDecision Enqueue(StagedBatch batch, int64_t now_ms);

  /// Weighted deficit-round-robin drain across backlogged tenants, up to
  /// `max_batches` per call. Round-robin order is tenant-name order, so a
  /// single-threaded drain of a fixed admitted sequence is deterministic.
  std::vector<StagedBatch> DequeueFair(size_t max_batches, int64_t now_ms);

  /// Delivery accounting (what the fleet accepted of an admitted batch).
  void NoteDelivered(const std::string& tenant, size_t records,
                     size_t samples);
  /// A fully received request that expired in the handler queue (503).
  void NoteDeadlineExpired(const std::string& tenant);
  /// A request shed at the handler-queue boundary (503; counted with the
  /// byte-threshold sheds — one overload signal for clients).
  void NoteShed(const std::string& tenant);

  size_t pending_bytes() const;
  size_t pending_batches() const;
  std::map<std::string, TenantAdmissionStats> TenantStats() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    double rate_per_sec = 0.0;
    double burst = 0.0;
    int64_t last_refill_ms = 0;

    void Refill(int64_t now_ms);
    /// Takes `cost` tokens or reports how long until they accrue.
    bool Take(double cost, int64_t now_ms, int64_t* retry_after_ms);
  };
  struct Tenant {
    TenantQuota quota;
    Bucket record_bucket;
    Bucket byte_bucket;
    std::deque<StagedBatch> queue;
    size_t queued_bytes = 0;
    /// DRR deficit; meaningful only while backlogged.
    size_t deficit_bytes = 0;
    bool in_active_round = false;
    TenantAdmissionStats stats;
  };

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Tenant> tenants_;
  /// Backlogged tenants in round-robin order (names into tenants_).
  std::deque<std::string> active_;
  size_t pending_bytes_ = 0;
  size_t pending_batches_ = 0;
};

}  // namespace pinsql::serve

#endif  // PINSQL_SERVE_ADMISSION_H_
