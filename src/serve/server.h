#ifndef PINSQL_SERVE_SERVER_H_
#define PINSQL_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet_service.h"
#include "online/replay.h"
#include "serve/admission.h"
#include "serve/http.h"
#include "util/json.h"
#include "util/status.h"

namespace pinsql::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; the bound port is port() after Start().
  uint16_t port = 0;
  /// Bounded connection table: accepts past this are closed immediately
  /// (and counted), so a connection flood cannot exhaust fds or memory.
  size_t max_connections = 256;
  HttpLimits http;
  AdmissionOptions admission;
  /// A request must arrive completely within this window of its first
  /// byte; slow-loris connections are reaped with a best-effort 408.
  int64_t read_deadline_ms = 5000;
  /// A written response must drain within this window; slow readers are
  /// disconnected rather than allowed to pin buffers.
  int64_t write_deadline_ms = 5000;
  /// Keep-alive connections idle longer than this are closed.
  int64_t idle_deadline_ms = 30'000;
  /// A fully received ingest request that waits longer than this for a
  /// handler is answered 503 (deadline-expired) instead of being processed
  /// stale.
  int64_t request_deadline_ms = 2000;
  /// Bounded ingest handler queue; overflow is shed with 503. GET traffic
  /// (reports/health/metrics) never enters this queue — it is served
  /// directly from the event loop, so ingest floods cannot starve it.
  size_t handler_queue_capacity = 512;
  int num_handler_threads = 2;
  /// Delivery pump cadence when the staging queues are empty.
  int64_t advance_interval_ms = 10;
  /// Budget for the graceful drain of open connections on Stop().
  int64_t drain_deadline_ms = 1000;
  /// Per-request body shape bounds (beyond the byte limits in `http`).
  size_t max_records_per_batch = 65'536;
  size_t max_samples_per_batch = 4096;
  /// Bounds on the read-endpoint caches (reports/triggers/repairs serve
  /// from these); the oldest entries are evicted so a long-running server's
  /// memory stays bounded.
  size_t max_cached_outcomes = 1024;
  size_t max_cached_storms = 512;
  /// SO_SNDBUF for accepted sockets; 0 keeps the OS default. Tests use
  /// tiny values to exercise the partial-flush (POLLOUT resume) paths.
  int socket_send_buffer_bytes = 0;
  /// Record the per-instance accepted stream (records + watermark-
  /// advancing samples) so tests/benches can replay it and verify the
  /// deterministic-ingest fingerprint. Costs memory; off by default.
  bool capture_accepted = false;
};

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected_table_full = 0;
  uint64_t connections_closed_read_deadline = 0;
  uint64_t connections_closed_write_deadline = 0;
  uint64_t connections_closed_idle = 0;
  uint64_t parse_errors = 0;
  uint64_t requests_received = 0;
  uint64_t responses_sent = 0;
  uint64_t responses_4xx = 0;
  uint64_t responses_5xx = 0;
  uint64_t ingest_requests = 0;
  uint64_t ingest_accepted = 0;
  uint64_t handler_queue_shed = 0;
  uint64_t deadline_expired = 0;
  uint64_t batches_delivered = 0;
  uint64_t records_delivered = 0;
  uint64_t samples_delivered = 0;
  int64_t advanced_to_sec = 0;
};

/// HTTP/JSON front door for a FleetService: tenant-scoped ingest behind
/// the admission controller, plus report/trigger/repair/health/metrics
/// endpoints that stay responsive during ingest floods.
///
/// Architecture (see DESIGN.md §12): one poll()-based event loop owns every
/// socket and serves GET endpoints inline from caches; POST /v1/ingest
/// requests are pre-admitted at header time (byte quota + shed, before the
/// body is read), parsed and admitted on a small handler pool, staged in
/// the admission controller's per-tenant queues, and delivered into the
/// fleet by a single pump thread via weighted-fair dequeue — so the order
/// records enter the deterministic ingest boundary is a single serialized
/// stream, and replaying the accepted set is bit-reproducible.
class Server {
 public:
  /// The server does not own the fleet; callers stop the fleet (flushing
  /// its journals) after Server::Stop() has drained the staging queues.
  Server(fleet::FleetService* fleet, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the event loop, handler pool and delivery
  /// pump. InvalidArgument / Internal on socket errors.
  Status Start();

  /// Graceful drain: stops accepting, flushes open connections (bounded by
  /// drain_deadline_ms), finishes queued ingest requests, and delivers
  /// every staged batch into the fleet. Idempotent. The fleet itself keeps
  /// running; the owner stops it afterwards.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const;

  ServerStats stats() const;
  std::map<std::string, TenantAdmissionStats> tenant_stats() const;

  /// The captured accepted streams (capture_accepted only); call after
  /// Stop() for a complete set.
  std::map<uint32_t, online::ReplayLog> accepted_streams() const;

  /// Routes one parsed request exactly as the serving path would —
  /// exposed so hardening tests can hammer the handlers without sockets.
  /// now_ms feeds the admission buckets (pass a monotonically
  /// nondecreasing clock).
  HttpResponse HandleRequest(const HttpRequest& request, int64_t now_ms);

  /// Monotonic clock used for deadlines/buckets (steady_clock ms).
  static int64_t NowMs();

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    HttpParser parser;
    std::string out;
    size_t out_off = 0;
    int64_t read_deadline_at = 0;   // 0 = no partial request pending
    int64_t write_deadline_at = 0;  // 0 = nothing buffered
    int64_t idle_deadline_at = 0;
    bool close_after_write = false;
    /// fd already closed; entry reaped at the top of the next loop turn.
    bool closed = false;
    /// Request handed to the handler pool; reads pause until the response
    /// is written.
    bool awaiting_response = false;
    /// Header-time admission already ran for the current request.
    bool pre_admit_done = false;

    explicit Conn(const HttpLimits& limits) : parser(limits) {}
  };
  struct PendingIngest {
    uint64_t conn_id = 0;
    HttpRequest request;
    int64_t arrival_ms = 0;
    bool keep_alive = true;
  };
  struct OutboundResponse {
    uint64_t conn_id = 0;
    std::string bytes;
    bool close_after = false;
    bool error_class_4xx = false;
    bool error_class_5xx = false;
  };

  void IoLoop();
  void HandlerLoop();
  void PumpLoop();

  void AcceptPending(int64_t now_ms);
  void ReadFromConn(Conn* conn, int64_t now_ms);
  void ProcessParserProgress(Conn* conn, int64_t now_ms);
  void QueueResponse(Conn* conn, const HttpResponse& response,
                     bool keep_alive, int64_t now_ms);
  void FlushConn(Conn* conn, int64_t now_ms);
  void CloseConn(Conn* conn);
  void SweepDeadlines(int64_t now_ms);
  void DrainOutbound(int64_t now_ms);
  void Wake();

  /// Delivers one staged batch into the fleet; returns the max accepted
  /// sample second (INT64_MIN if none).
  int64_t DeliverBatch(StagedBatch batch);
  void RefreshCachesAfterAdvance(std::vector<fleet::FleetOutcome> outcomes);

  HttpResponse HandleIngest(const HttpRequest& request, int64_t now_ms);
  HttpResponse HandleHealthz() const;
  HttpResponse HandleMetricsz() const;
  HttpResponse HandleReports(const HttpRequest& request) const;
  HttpResponse HandleTriggers(const HttpRequest& request) const;
  HttpResponse HandleRepairs(const HttpRequest& request) const;
  StatusOr<StagedBatch> ParseIngestBody(const std::string& tenant,
                                        const std::string& body) const;

  fleet::FleetService* fleet_;
  ServerOptions options_;
  AdmissionController admission_;

  mutable std::mutex lifecycle_mu_;
  bool started_ = false;
  bool stopped_ = false;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::thread io_thread_;
  std::vector<std::thread> handler_threads_;
  std::thread pump_thread_;

  // IO-thread-only state.
  std::map<int, Conn> conns_;
  std::map<uint64_t, int> conn_fd_by_id_;
  uint64_t next_conn_id_ = 1;

  // Handler queue (IO thread -> handler pool).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingIngest> handler_queue_;
  bool handlers_stop_ = false;

  // Response queue (handler pool -> IO thread).
  std::mutex resp_mu_;
  std::vector<OutboundResponse> responses_;

  // Pump control.
  std::mutex pump_mu_;
  std::condition_variable pump_cv_;
  bool pump_stop_ = false;

  // Read-mostly caches the GET endpoints serve from (never touching the
  // fleet's advance mutex on the request path).
  mutable std::mutex cache_mu_;
  fleet::FleetStats fleet_stats_cache_;
  struct OutcomeEntry {
    uint32_t instance_id = 0;
    int64_t onset_sec = 0;
    int64_t trigger_sec = 0;
    double severity = 0.0;
    std::string source;  // confirming detector (ensemble attribution)
    bool ok = false;
    bool storm_deferred = false;
    uint64_t storm_batch = 0;
    std::string error;
    Json report_json;  // null unless ok
  };
  std::deque<OutcomeEntry> outcome_cache_;
  std::deque<fleet::StormBatch> storm_cache_;
  size_t storms_seen_ = 0;
  std::map<uint32_t, online::ReplayLog> capture_;
  std::map<uint32_t, int64_t> capture_last_sample_sec_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace pinsql::serve

#endif  // PINSQL_SERVE_SERVER_H_
