#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "obs/metrics.h"

namespace pinsql::serve {
namespace {

constexpr char kTenantHeader[] = "X-Pinsql-Tenant";

int64_t RetryAfterSec(int64_t retry_after_ms) {
  return std::max<int64_t>(1, (retry_after_ms + 999) / 1000);
}

/// Reads an integral JSON number within [min, max] (doubles carry 53 exact
/// integer bits — enough for every wire field we accept).
bool GetIntField(const Json& obj, std::string_view key, int64_t min,
                 int64_t max, int64_t* out) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return false;
  const double d = v->AsNumber();
  if (!std::isfinite(d) || d != std::floor(d)) return false;
  if (d < static_cast<double>(min) || d > static_cast<double>(max)) {
    return false;
  }
  *out = static_cast<int64_t>(d);
  return true;
}

bool GetFiniteField(const Json& obj, std::string_view key, double fallback,
                    double* out) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    *out = fallback;
    return true;
  }
  if (!v->is_number() || !std::isfinite(v->AsNumber())) return false;
  *out = v->AsNumber();
  return true;
}

}  // namespace

int64_t Server::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Server::Server(fleet::FleetService* fleet, const ServerOptions& options)
    : fleet_(fleet), options_(options), admission_(options.admission) {}

Server::~Server() { Stop(); }

bool Server::running() const {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  return started_ && !stopped_;
}

Status Server::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed: " +
                            std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe2() failed");
  }

  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    fleet_stats_cache_ = fleet_->stats();
  }

  stopping_.store(false);
  io_thread_ = std::thread(&Server::IoLoop, this);
  const int workers = std::max(1, options_.num_handler_threads);
  handler_threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    handler_threads_.emplace_back(&Server::HandlerLoop, this);
  }
  pump_thread_ = std::thread(&Server::PumpLoop, this);
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  // 1. Event loop: stop accepting, flush open connections, exit.
  stopping_.store(true);
  Wake();
  if (io_thread_.joinable()) io_thread_.join();
  // 2. Handler pool: finish every fully received ingest request (their
  //    batches land in the admission queues even though the connections
  //    are gone — received work is never half-dropped).
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    handlers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& thread : handler_threads_) {
    if (thread.joinable()) thread.join();
  }
  handler_threads_.clear();
  // 3. Pump: drain every staged batch into the fleet, advance, exit. The
  //    fleet (and its durable journals) is stopped by the owner.
  {
    std::lock_guard<std::mutex> lock(pump_mu_);
    pump_stop_ = true;
  }
  pump_cv_.notify_all();
  if (pump_thread_.joinable()) pump_thread_.join();

  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void Server::Wake() {
  if (wake_fds_[1] < 0) return;
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

// --- Event loop ----------------------------------------------------------

void Server::IoLoop() {
  std::vector<pollfd> pfds;
  int64_t drain_deadline_at = 0;
  while (true) {
    const int64_t now = NowMs();

    // Reap connections closed last turn.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second.closed) {
        conn_fd_by_id_.erase(it->second.id);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }

    if (stopping_.load()) {
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      if (drain_deadline_at == 0) {
        drain_deadline_at = now + options_.drain_deadline_ms;
      }
      if (conns_.empty() || now >= drain_deadline_at) {
        for (auto& [fd, conn] : conns_) {
          if (!conn.closed) CloseConn(&conn);
        }
        conns_.clear();
        conn_fd_by_id_.clear();
        return;
      }
    }

    pfds.clear();
    if (listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
    }
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = 0;
      if (!conn.awaiting_response && !conn.close_after_write) events |= POLLIN;
      if (conn.out_off < conn.out.size()) events |= POLLOUT;
      // events may be 0 while awaiting a handler response: POLLERR/POLLHUP
      // are still reported, and polling POLLIN here would busy-spin on any
      // pipelined bytes the client already sent.
      pfds.push_back({fd, events, 0});
    }

    ::poll(pfds.data(), pfds.size(), 20);
    const int64_t after = NowMs();

    size_t idx = 0;
    if (listen_fd_ >= 0) {
      if ((pfds[idx].revents & POLLIN) != 0) AcceptPending(after);
      ++idx;
    }
    if ((pfds[idx].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    ++idx;
    for (; idx < pfds.size(); ++idx) {
      auto it = conns_.find(pfds[idx].fd);
      if (it == conns_.end() || it->second.closed) continue;
      Conn* conn = &it->second;
      if ((pfds[idx].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (pfds[idx].revents & POLLIN) == 0) {
        CloseConn(conn);
        continue;
      }
      if ((pfds[idx].revents & POLLOUT) != 0) {
        FlushConn(conn, after);
        if (!conn->closed && conn->out_off >= conn->out.size() &&
            !conn->awaiting_response && !conn->close_after_write) {
          ProcessParserProgress(conn, after);
        }
      }
      if (!conn->closed && (pfds[idx].revents & POLLIN) != 0 &&
          !conn->awaiting_response && !conn->close_after_write) {
        ReadFromConn(conn, after);
      }
    }

    DrainOutbound(after);
    SweepDeadlines(after);
  }
}

void Server::AcceptPending(int64_t now_ms) {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    size_t alive = 0;
    for (const auto& [cfd, conn] : conns_) {
      if (!conn.closed) ++alive;
    }
    if (alive >= options_.max_connections) {
      // Bounded connection table: the flood pays with an immediate close.
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_rejected_table_full;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.socket_send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                   &options_.socket_send_buffer_bytes,
                   sizeof(options_.socket_send_buffer_bytes));
    }
    auto [it, inserted] = conns_.emplace(fd, Conn(options_.http));
    Conn& conn = it->second;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conn.idle_deadline_at = now_ms + options_.idle_deadline_ms;
    conn_fd_by_id_[conn.id] = fd;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

void Server::ReadFromConn(Conn* conn, int64_t now_ms) {
  char buf[16 * 1024];
  bool got_data = false;
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      got_data = true;
      if (conn->read_deadline_at == 0) {
        conn->read_deadline_at = now_ms + options_.read_deadline_ms;
      }
      conn->idle_deadline_at = now_ms + options_.idle_deadline_ms;
      const HttpParser::State state =
          conn->parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      // Stop at a request boundary: Feed() ignores bytes once the parser is
      // complete (or failed), so pipelined bytes past this request must stay
      // in the kernel buffer until the parser is Reset.
      if (state == HttpParser::State::kComplete ||
          state == HttpParser::State::kError) {
        break;
      }
      continue;
    }
    if (n == 0) {
      // Peer closed. Mid-request (mid-body disconnect chaos) there is
      // nobody to answer; just reclaim the connection.
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  if (got_data) ProcessParserProgress(conn, now_ms);
}

void Server::ProcessParserProgress(Conn* conn, int64_t now_ms) {
  while (!conn->closed && !conn->close_after_write &&
         !conn->awaiting_response) {
    HttpParser& parser = conn->parser;
    const HttpParser::State state = parser.state();
    if (state == HttpParser::State::kHeaders) return;  // need more bytes

    if (state == HttpParser::State::kError) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.parse_errors;
      }
      PINSQL_OBS_COUNT("serve.http.parse_errors", 1);
      HttpResponse response =
          ErrorResponse(parser.error_status(), parser.error_reason());
      response.close = true;
      QueueResponse(conn, response, false, now_ms);
      conn->close_after_write = true;
      return;
    }

    const HttpRequest& request = parser.request();
    const bool is_ingest =
        request.method == "POST" && request.Path() == "/v1/ingest";

    // Header-time admission: a denied ingest request is refused before its
    // body is buffered, so floods cost the server only header bytes.
    if (is_ingest && !conn->pre_admit_done) {
      conn->pre_admit_done = true;
      const std::string* tenant = request.FindHeader(kTenantHeader);
      const AdmitDecision decision = admission_.PreAdmit(
          tenant != nullptr ? *tenant : "", request.content_length, now_ms);
      if (decision.outcome != AdmitOutcome::kAdmitted) {
        HttpResponse response;
        switch (decision.outcome) {
          case AdmitOutcome::kUnknownTenant:
            response = ErrorResponse(403, "unknown tenant");
            break;
          case AdmitOutcome::kShed:
            response = ErrorResponse(503, "overloaded: ingest shed",
                                     RetryAfterSec(decision.retry_after_ms));
            break;
          default:
            response = ErrorResponse(429, "tenant byte budget exhausted",
                                     RetryAfterSec(decision.retry_after_ms));
        }
        // The body will not be read; the connection cannot be reused.
        response.close = true;
        QueueResponse(conn, response, false, now_ms);
        conn->close_after_write = true;
        return;
      }
    }

    if (state == HttpParser::State::kHeadersDone) return;  // body pending

    // state == kComplete.
    conn->read_deadline_at = 0;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests_received;
    }
    const bool keep_alive = request.keep_alive && !stopping_.load();

    if (is_ingest) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.ingest_requests;
      }
      bool shed = false;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (handler_queue_.size() >= options_.handler_queue_capacity) {
          shed = true;
        } else {
          PendingIngest pending;
          pending.conn_id = conn->id;
          pending.request = request;  // copy: parser resets under us
          pending.arrival_ms = now_ms;
          pending.keep_alive = keep_alive;
          handler_queue_.push_back(std::move(pending));
        }
      }
      if (shed) {
        const std::string* tenant = request.FindHeader(kTenantHeader);
        admission_.NoteShed(tenant != nullptr ? *tenant : "");
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.handler_queue_shed;
        }
        QueueResponse(conn,
                      ErrorResponse(503, "overloaded: handler queue full", 1),
                      keep_alive, now_ms);
        if (conn->closed) return;
        // Reset before any early return: the POLLOUT path re-enters this
        // function once the flush drains, and a still-kComplete parser
        // would re-process (and re-answer) the same request.
        parser.Reset();
        conn->pre_admit_done = false;
        if (conn->out_off < conn->out.size()) return;  // resume after flush
        continue;
      }
      queue_cv_.notify_one();
      conn->awaiting_response = true;
      return;
    }

    // Everything else (reports/health/metrics/404/405) is served inline —
    // ingest floods queue behind the handler pool, never in front of these.
    const HttpResponse response = HandleRequest(request, now_ms);
    QueueResponse(conn, response, keep_alive, now_ms);
    if (conn->closed) return;
    // As above: Reset must precede the partial-flush return so the POLLOUT
    // re-entry sees a fresh parser, never the already-answered request.
    parser.Reset();
    conn->pre_admit_done = false;
    if (conn->out_off < conn->out.size()) return;  // resume after flush
  }
}

void Server::QueueResponse(Conn* conn, const HttpResponse& response,
                           bool keep_alive, int64_t now_ms) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.responses_sent;
    if (response.status >= 500) {
      ++stats_.responses_5xx;
    } else if (response.status >= 400) {
      ++stats_.responses_4xx;
    }
  }
  conn->out += SerializeResponse(response, keep_alive);
  if (response.close || !keep_alive) conn->close_after_write = true;
  if (conn->write_deadline_at == 0) {
    conn->write_deadline_at = now_ms + options_.write_deadline_ms;
  }
  FlushConn(conn, now_ms);
}

void Server::FlushConn(Conn* conn, int64_t now_ms) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  conn->write_deadline_at = 0;
  conn->idle_deadline_at = now_ms + options_.idle_deadline_ms;
  if (conn->close_after_write) CloseConn(conn);
}

void Server::CloseConn(Conn* conn) {
  if (conn->closed) return;
  ::close(conn->fd);
  conn->closed = true;
}

void Server::SweepDeadlines(int64_t now_ms) {
  for (auto& [fd, conn] : conns_) {
    if (conn.closed) continue;
    if (conn.read_deadline_at != 0 && now_ms > conn.read_deadline_at) {
      // Slow-loris: the request never completed. Best-effort 408, close.
      if (conn.out.empty()) {
        HttpResponse timeout = ErrorResponse(408, "request read deadline");
        timeout.close = true;
        const std::string bytes = SerializeResponse(timeout, false);
        [[maybe_unused]] ssize_t n =
            ::send(conn.fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      }
      CloseConn(&conn);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_closed_read_deadline;
      PINSQL_OBS_COUNT("serve.conn.read_deadline_closed", 1);
      continue;
    }
    if (conn.write_deadline_at != 0 && now_ms > conn.write_deadline_at) {
      CloseConn(&conn);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_closed_write_deadline;
      PINSQL_OBS_COUNT("serve.conn.write_deadline_closed", 1);
      continue;
    }
    if (!conn.awaiting_response && conn.idle_deadline_at != 0 &&
        now_ms > conn.idle_deadline_at && conn.read_deadline_at == 0 &&
        conn.out.empty()) {
      CloseConn(&conn);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_closed_idle;
    }
  }
}

void Server::DrainOutbound(int64_t now_ms) {
  std::vector<OutboundResponse> ready;
  {
    std::lock_guard<std::mutex> lock(resp_mu_);
    ready.swap(responses_);
  }
  for (OutboundResponse& response : ready) {
    auto id_it = conn_fd_by_id_.find(response.conn_id);
    if (id_it == conn_fd_by_id_.end()) continue;  // connection died
    auto it = conns_.find(id_it->second);
    if (it == conns_.end() || it->second.closed ||
        it->second.id != response.conn_id) {
      continue;
    }
    Conn* conn = &it->second;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.responses_sent;
      if (response.error_class_5xx) {
        ++stats_.responses_5xx;
      } else if (response.error_class_4xx) {
        ++stats_.responses_4xx;
      }
    }
    conn->out += response.bytes;
    if (response.close_after) conn->close_after_write = true;
    if (conn->write_deadline_at == 0) {
      conn->write_deadline_at = now_ms + options_.write_deadline_ms;
    }
    conn->awaiting_response = false;
    conn->parser.Reset();
    conn->pre_admit_done = false;
    FlushConn(conn, now_ms);
    if (!conn->closed && conn->out_off >= conn->out.size() &&
        !conn->close_after_write) {
      ProcessParserProgress(conn, now_ms);
    }
  }
}

// --- Handler pool --------------------------------------------------------

void Server::HandlerLoop() {
  while (true) {
    PendingIngest pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return handlers_stop_ || !handler_queue_.empty();
      });
      if (handler_queue_.empty()) {
        if (handlers_stop_) return;
        continue;
      }
      pending = std::move(handler_queue_.front());
      handler_queue_.pop_front();
    }
    const int64_t now = NowMs();
    HttpResponse response;
    if (now - pending.arrival_ms > options_.request_deadline_ms) {
      // The request went stale waiting for a handler: answer 503 so the
      // client retries against fresher capacity instead of being silently
      // processed late.
      const std::string* tenant = pending.request.FindHeader(kTenantHeader);
      admission_.NoteDeadlineExpired(tenant != nullptr ? *tenant : "");
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.deadline_expired;
      }
      response = ErrorResponse(503, "request deadline expired", 1);
    } else {
      response = HandleRequest(pending.request, now);
    }
    OutboundResponse outbound;
    outbound.conn_id = pending.conn_id;
    const bool keep_alive = pending.keep_alive && !response.close;
    outbound.bytes = SerializeResponse(response, keep_alive);
    outbound.close_after = !keep_alive;
    outbound.error_class_4xx = response.status >= 400 && response.status < 500;
    outbound.error_class_5xx = response.status >= 500;
    {
      std::lock_guard<std::mutex> lock(resp_mu_);
      responses_.push_back(std::move(outbound));
    }
    Wake();
  }
}

// --- Delivery pump -------------------------------------------------------

void Server::PumpLoop() {
  int64_t advanced_to = std::numeric_limits<int64_t>::min();

  const auto deliver_round = [&]() -> bool {
    std::vector<StagedBatch> batches =
        admission_.DequeueFair(256, NowMs());
    if (batches.empty()) return false;
    int64_t max_sec = std::numeric_limits<int64_t>::min();
    for (StagedBatch& batch : batches) {
      max_sec = std::max(max_sec, DeliverBatch(std::move(batch)));
    }
    std::vector<fleet::FleetOutcome> outcomes;
    if (max_sec != std::numeric_limits<int64_t>::min() &&
        max_sec > advanced_to) {
      advanced_to = max_sec;
      outcomes = fleet_->AdvanceTo(max_sec);
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.advanced_to_sec = max_sec;
    }
    RefreshCachesAfterAdvance(std::move(outcomes));
    return true;
  };

  while (true) {
    if (deliver_round()) continue;
    std::unique_lock<std::mutex> lock(pump_mu_);
    if (pump_stop_) break;
    pump_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.advance_interval_ms));
    if (pump_stop_) break;
  }
  // Graceful drain: everything admitted is flushed into the fleet (whose
  // durable journals capture it) before the pump exits.
  while (deliver_round()) {
  }
}

int64_t Server::DeliverBatch(StagedBatch batch) {
  size_t records_ok = 0;
  size_t samples_ok = 0;
  int64_t max_sec = std::numeric_limits<int64_t>::min();
  for (const QueryLogRecord& record : batch.records) {
    if (!fleet_->IngestRecord(batch.instance_id, record)) continue;
    ++records_ok;
    if (options_.capture_accepted) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      capture_[batch.instance_id].records.push_back(record);
    }
  }
  for (const online::PerfSample& sample : batch.samples) {
    if (!fleet_->IngestMetrics(batch.instance_id, sample)) continue;
    ++samples_ok;
    max_sec = std::max(max_sec, sample.sec);
    if (options_.capture_accepted) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto [it, inserted] = capture_last_sample_sec_.emplace(
          batch.instance_id, std::numeric_limits<int64_t>::min());
      if (sample.sec > it->second) {
        it->second = sample.sec;
        capture_[batch.instance_id].samples.push_back(sample);
      }
      // Non-monotone samples are still ingested (the ring accepts them);
      // the capture keeps the watermark-advancing subsequence replay
      // requires.
    }
  }
  admission_.NoteDelivered(batch.tenant, records_ok, samples_ok);
  PINSQL_OBS_COUNT("serve.pump.records_delivered", records_ok);
  PINSQL_OBS_COUNT("serve.pump.samples_delivered", samples_ok);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches_delivered;
    stats_.records_delivered += records_ok;
    stats_.samples_delivered += samples_ok;
  }
  return max_sec;
}

void Server::RefreshCachesAfterAdvance(
    std::vector<fleet::FleetOutcome> outcomes) {
  const fleet::FleetStats fresh = fleet_->stats();
  std::lock_guard<std::mutex> lock(cache_mu_);
  fleet_stats_cache_ = fresh;
  for (const fleet::FleetOutcome& fo : outcomes) {
    OutcomeEntry entry;
    entry.instance_id = fo.outcome.trigger.instance_id;
    entry.onset_sec = fo.outcome.trigger.onset_sec;
    entry.trigger_sec = fo.outcome.trigger.trigger_sec;
    entry.severity = fo.outcome.trigger.severity;
    entry.source = fo.outcome.trigger.source;
    entry.ok = fo.outcome.ok;
    entry.storm_deferred =
        fo.disposition == fleet::FleetOutcome::Disposition::kStormDeferred;
    entry.storm_batch = fo.storm_batch;
    entry.error = fo.outcome.error;
    if (fo.outcome.ok) entry.report_json = fo.outcome.report.ToJson();
    outcome_cache_.push_back(std::move(entry));
  }
  // Only the pump mutates the fleet, so reading its storm list here (new
  // entries only) is race-free.
  const auto& storms = fleet_->storms();
  for (; storms_seen_ < storms.size(); ++storms_seen_) {
    storm_cache_.push_back(storms[storms_seen_]);
  }
  // Evict oldest entries so a long-running server's caches stay bounded;
  // the read endpoints serve newest-first, so recent history survives.
  while (outcome_cache_.size() > options_.max_cached_outcomes) {
    outcome_cache_.pop_front();
  }
  while (storm_cache_.size() > options_.max_cached_storms) {
    storm_cache_.pop_front();
  }
}

// --- Request handling ----------------------------------------------------

HttpResponse Server::HandleRequest(const HttpRequest& request,
                                   int64_t now_ms) {
  const std::string_view path = request.Path();
  if (path == "/v1/ingest") {
    if (request.method != "POST") {
      return ErrorResponse(405, "POST required");
    }
    return HandleIngest(request, now_ms);
  }
  if (request.method != "GET") return ErrorResponse(405, "GET required");
  if (path == "/v1/healthz") return HandleHealthz();
  if (path == "/v1/metricsz") return HandleMetricsz();
  if (path == "/v1/reports") return HandleReports(request);
  if (path == "/v1/triggers") return HandleTriggers(request);
  if (path == "/v1/repairs") return HandleRepairs(request);
  return ErrorResponse(404, "unknown endpoint");
}

StatusOr<StagedBatch> Server::ParseIngestBody(const std::string& tenant,
                                              const std::string& body) const {
  auto parsed = Json::Parse(body);
  if (!parsed.ok()) {
    return Status::ParseError("invalid JSON: " + parsed.status().message());
  }
  const Json& root = parsed.value();
  if (!root.is_object()) return Status::ParseError("body must be an object");

  StagedBatch batch;
  batch.tenant = tenant;
  batch.wire_bytes = body.size();

  int64_t instance = 0;
  if (!GetIntField(root, "instance", 0,
                   std::numeric_limits<uint32_t>::max(), &instance)) {
    return Status::ParseError("missing or invalid 'instance'");
  }
  batch.instance_id = static_cast<uint32_t>(instance);

  if (const Json* records = root.Find("records")) {
    if (!records->is_array()) {
      return Status::ParseError("'records' must be an array");
    }
    if (records->AsArray().size() > options_.max_records_per_batch) {
      return Status::ParseError("too many records in one batch");
    }
    batch.records.reserve(records->AsArray().size());
    for (const Json& item : records->AsArray()) {
      if (!item.is_object()) {
        return Status::ParseError("record must be an object");
      }
      QueryLogRecord record;
      int64_t sql_id = 0;
      // 2^53: the largest integer a JSON double carries exactly.
      constexpr int64_t kMaxExact = int64_t{1} << 53;
      constexpr int64_t kMaxMs = int64_t{4'000'000'000'000'000};
      if (!GetIntField(item, "arrival_ms", -kMaxMs, kMaxMs,
                       &record.arrival_ms) ||
          !GetIntField(item, "sql_id", 0, kMaxExact, &sql_id) ||
          !GetIntField(item, "examined_rows", 0, kMaxMs,
                       &record.examined_rows)) {
        return Status::ParseError("invalid record fields");
      }
      if (!GetFiniteField(item, "response_ms", 0.0, &record.response_ms) ||
          record.response_ms < 0.0) {
        return Status::ParseError("invalid record response_ms");
      }
      record.sql_id = static_cast<uint64_t>(sql_id);
      batch.records.push_back(record);
    }
  }

  if (const Json* samples = root.Find("samples")) {
    if (!samples->is_array()) {
      return Status::ParseError("'samples' must be an array");
    }
    if (samples->AsArray().size() > options_.max_samples_per_batch) {
      return Status::ParseError("too many samples in one batch");
    }
    batch.samples.reserve(samples->AsArray().size());
    for (const Json& item : samples->AsArray()) {
      if (!item.is_object()) {
        return Status::ParseError("sample must be an object");
      }
      online::PerfSample sample;
      constexpr int64_t kMaxSec = int64_t{4'000'000'000'000};
      if (!GetIntField(item, "sec", -kMaxSec, kMaxSec, &sample.sec)) {
        return Status::ParseError("invalid sample sec");
      }
      if (!GetFiniteField(item, "active_session", 0.0,
                          &sample.active_session) ||
          !GetFiniteField(item, "cpu_usage", 0.0, &sample.cpu_usage) ||
          !GetFiniteField(item, "iops_usage", 0.0, &sample.iops_usage) ||
          !GetFiniteField(item, "row_lock_waits", 0.0,
                          &sample.row_lock_waits) ||
          !GetFiniteField(item, "mdl_waits", 0.0, &sample.mdl_waits)) {
        return Status::ParseError("invalid sample metric");
      }
      batch.samples.push_back(sample);
    }
  }
  return batch;
}

HttpResponse Server::HandleIngest(const HttpRequest& request,
                                  int64_t now_ms) {
  const std::string* tenant_header = request.FindHeader(kTenantHeader);
  if (tenant_header == nullptr) {
    return ErrorResponse(403, "missing X-Pinsql-Tenant header");
  }
  const std::string& tenant = *tenant_header;
  if (!admission_.KnownTenant(tenant)) {
    return ErrorResponse(403, "unknown tenant");
  }
  auto batch = ParseIngestBody(tenant, request.body);
  if (!batch.ok()) {
    return ErrorResponse(400, batch.status().message());
  }
  const size_t records = batch.value().records.size();
  const size_t samples = batch.value().samples.size();
  const AdmitDecision decision =
      admission_.Enqueue(std::move(batch).value(), now_ms);
  switch (decision.outcome) {
    case AdmitOutcome::kAdmitted: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.ingest_accepted;
      }
      pump_cv_.notify_one();
      HttpResponse response;
      response.status = 202;
      response.body = "{\"accepted\":true,\"records\":" +
                      std::to_string(records) +
                      ",\"samples\":" + std::to_string(samples) + "}";
      return response;
    }
    case AdmitOutcome::kRateLimited:
      return ErrorResponse(429, "tenant rate limit exceeded",
                           RetryAfterSec(decision.retry_after_ms));
    case AdmitOutcome::kOverQuota:
      return ErrorResponse(429, "tenant staging quota exceeded",
                           RetryAfterSec(decision.retry_after_ms));
    case AdmitOutcome::kShed:
      return ErrorResponse(503, "overloaded: ingest shed",
                           RetryAfterSec(decision.retry_after_ms));
    case AdmitOutcome::kForbiddenInstance:
      return ErrorResponse(403, "instance not owned by tenant");
    case AdmitOutcome::kUnknownTenant:
      return ErrorResponse(403, "unknown tenant");
  }
  return ErrorResponse(500, "unreachable");
}

HttpResponse Server::HandleHealthz() const {
  fleet::FleetStats cached;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cached = fleet_stats_cache_;
  }
  Json body = Json::MakeObject();
  body.Set("status", "ok");
  body.Set("instances", static_cast<int64_t>(cached.instances));
  body.Set("seconds_processed", cached.seconds_processed);
  body.Set("stopping", stopping_.load());
  HttpResponse response;
  response.body = body.Dump();
  return response;
}

HttpResponse Server::HandleMetricsz() const {
  const auto tenant_stats = admission_.TenantStats();
  fleet::FleetStats cached;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cached = fleet_stats_cache_;
  }
  ServerStats server_stats = stats();

  Json root = Json::MakeObject();

  Json tenants = Json::MakeObject();
  uint64_t rate_limited = 0, over_quota = 0, shed = 0, deadline = 0;
  for (const auto& [name, s] : tenant_stats) {
    Json t = Json::MakeObject();
    t.Set("batches_admitted", static_cast<int64_t>(s.batches_admitted));
    t.Set("records_admitted", static_cast<int64_t>(s.records_admitted));
    t.Set("samples_admitted", static_cast<int64_t>(s.samples_admitted));
    t.Set("bytes_admitted", static_cast<int64_t>(s.bytes_admitted));
    t.Set("records_delivered", static_cast<int64_t>(s.records_delivered));
    t.Set("samples_delivered", static_cast<int64_t>(s.samples_delivered));
    t.Set("dropped_rate_limited",
          static_cast<int64_t>(s.dropped_rate_limited));
    t.Set("dropped_over_quota", static_cast<int64_t>(s.dropped_over_quota));
    t.Set("dropped_shed", static_cast<int64_t>(s.dropped_shed));
    t.Set("dropped_deadline", static_cast<int64_t>(s.dropped_deadline));
    tenants.Set(name, std::move(t));
    rate_limited += s.dropped_rate_limited;
    over_quota += s.dropped_over_quota;
    shed += s.dropped_shed;
    deadline += s.dropped_deadline;
  }
  Json admission = Json::MakeObject();
  admission.Set("tenants", std::move(tenants));
  admission.Set("pending_bytes",
                static_cast<int64_t>(admission_.pending_bytes()));
  admission.Set("pending_batches",
                static_cast<int64_t>(admission_.pending_batches()));
  root.Set("admission", std::move(admission));

  // The unified drop ledger: admission-layer drops (this PR) next to the
  // ingest layer's own backpressure/late drops — one place to see every
  // record the service refused, and why.
  Json drops = Json::MakeObject();
  Json admission_drops = Json::MakeObject();
  admission_drops.Set("rate_limited", static_cast<int64_t>(rate_limited));
  admission_drops.Set("over_quota", static_cast<int64_t>(over_quota));
  admission_drops.Set("shed", static_cast<int64_t>(shed));
  admission_drops.Set("deadline_expired", static_cast<int64_t>(deadline));
  drops.Set("admission", std::move(admission_drops));
  Json ingest_drops = Json::MakeObject();
  ingest_drops.Set(
      "backpressure",
      static_cast<int64_t>(cached.ingest.records_dropped_backpressure));
  ingest_drops.Set("late",
                   static_cast<int64_t>(cached.ingest.records_dropped_late));
  ingest_drops.Set(
      "metric_samples",
      static_cast<int64_t>(cached.ingest.metric_samples_dropped));
  drops.Set("ingest", std::move(ingest_drops));
  root.Set("drops", std::move(drops));

  Json fleet = Json::MakeObject();
  fleet.Set("instances", static_cast<int64_t>(cached.instances));
  fleet.Set("seconds_processed", cached.seconds_processed);
  fleet.Set("records_enqueued",
            static_cast<int64_t>(cached.ingest.records_enqueued));
  fleet.Set("records_folded",
            static_cast<int64_t>(cached.ingest.records_folded));
  fleet.Set("triggers_accepted",
            static_cast<int64_t>(cached.triggers_accepted));
  fleet.Set("diagnoses_ok", static_cast<int64_t>(cached.diagnoses_ok));
  fleet.Set("storm_deferred", static_cast<int64_t>(cached.storm_deferred));
  fleet.Set("pending_journal_records",
            static_cast<int64_t>(cached.pending_journal_records));
  root.Set("fleet", std::move(fleet));

  Json server = Json::MakeObject();
  server.Set("connections_accepted",
             static_cast<int64_t>(server_stats.connections_accepted));
  server.Set("connections_rejected_table_full",
             static_cast<int64_t>(
                 server_stats.connections_rejected_table_full));
  server.Set("connections_closed_read_deadline",
             static_cast<int64_t>(
                 server_stats.connections_closed_read_deadline));
  server.Set("parse_errors", static_cast<int64_t>(server_stats.parse_errors));
  server.Set("requests_received",
             static_cast<int64_t>(server_stats.requests_received));
  server.Set("handler_queue_shed",
             static_cast<int64_t>(server_stats.handler_queue_shed));
  server.Set("deadline_expired",
             static_cast<int64_t>(server_stats.deadline_expired));
  server.Set("records_delivered",
             static_cast<int64_t>(server_stats.records_delivered));
  root.Set("server", std::move(server));

  if constexpr (obs::kEnabled) {
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();
    Json counters = Json::MakeObject();
    for (const auto& [name, value] : snapshot.counters) {
      counters.Set(name, static_cast<int64_t>(value));
    }
    Json gauges = Json::MakeObject();
    for (const auto& [name, g] : snapshot.gauges) {
      Json entry = Json::MakeObject();
      entry.Set("value", g.value);
      entry.Set("max", g.max);
      gauges.Set(name, std::move(entry));
    }
    Json obs_json = Json::MakeObject();
    obs_json.Set("counters", std::move(counters));
    obs_json.Set("gauges", std::move(gauges));
    root.Set("obs", std::move(obs_json));
  }

  HttpResponse response;
  response.body = root.Dump();
  return response;
}

namespace {

/// `limit` query parameter shared by the three read endpoints: default 100,
/// clamped to [1, 1000] so no response serializes an unbounded cache.
size_t ParseLimit(const HttpRequest& request) {
  size_t limit = 100;
  if (const std::string param = request.QueryParam("limit"); !param.empty()) {
    limit = static_cast<size_t>(
        std::clamp<int64_t>(std::atoll(param.c_str()), 1, 1000));
  }
  return limit;
}

}  // namespace

HttpResponse Server::HandleReports(const HttpRequest& request) const {
  const std::string* tenant = request.FindHeader(kTenantHeader);
  if (tenant == nullptr || !admission_.KnownTenant(*tenant)) {
    return ErrorResponse(403, "unknown tenant");
  }
  const std::vector<uint32_t> scope = admission_.TenantInstances(*tenant);
  const size_t limit = ParseLimit(request);
  Json reports = Json::MakeArray();
  std::lock_guard<std::mutex> lock(cache_mu_);
  size_t emitted = 0;
  for (auto it = outcome_cache_.rbegin();
       it != outcome_cache_.rend() && emitted < limit; ++it) {
    if (std::find(scope.begin(), scope.end(), it->instance_id) ==
        scope.end()) {
      continue;
    }
    Json entry = Json::MakeObject();
    entry.Set("instance", static_cast<int64_t>(it->instance_id));
    entry.Set("onset_sec", it->onset_sec);
    entry.Set("trigger_sec", it->trigger_sec);
    entry.Set("severity", it->severity);
    entry.Set("source", it->source);
    entry.Set("ok", it->ok);
    entry.Set("storm_deferred", it->storm_deferred);
    entry.Set("storm_batch", static_cast<int64_t>(it->storm_batch));
    if (!it->error.empty()) entry.Set("error", it->error);
    if (it->ok) entry.Set("report", it->report_json);
    reports.Append(std::move(entry));
    ++emitted;
  }
  Json root = Json::MakeObject();
  root.Set("reports", std::move(reports));
  HttpResponse response;
  response.body = root.Dump();
  return response;
}

HttpResponse Server::HandleTriggers(const HttpRequest& request) const {
  const std::string* tenant = request.FindHeader(kTenantHeader);
  if (tenant == nullptr || !admission_.KnownTenant(*tenant)) {
    return ErrorResponse(403, "unknown tenant");
  }
  const std::vector<uint32_t> scope = admission_.TenantInstances(*tenant);
  const size_t limit = ParseLimit(request);
  Json triggers = Json::MakeArray();
  Json storms = Json::MakeArray();
  std::lock_guard<std::mutex> lock(cache_mu_);
  size_t emitted = 0;
  for (auto it = outcome_cache_.rbegin();
       it != outcome_cache_.rend() && emitted < limit; ++it) {
    if (std::find(scope.begin(), scope.end(), it->instance_id) ==
        scope.end()) {
      continue;
    }
    Json t = Json::MakeObject();
    t.Set("instance", static_cast<int64_t>(it->instance_id));
    t.Set("onset_sec", it->onset_sec);
    t.Set("trigger_sec", it->trigger_sec);
    t.Set("severity", it->severity);
    t.Set("source", it->source);
    t.Set("storm_deferred", it->storm_deferred);
    t.Set("storm_batch", static_cast<int64_t>(it->storm_batch));
    triggers.Append(std::move(t));
    ++emitted;
  }
  size_t storms_emitted = 0;
  for (auto it = storm_cache_.rbegin();
       it != storm_cache_.rend() && storms_emitted < limit; ++it) {
    Json s = Json::MakeObject();
    s.Set("id", static_cast<int64_t>(it->id));
    s.Set("opened_sec", it->opened_sec);
    s.Set("closed_sec", it->closed_sec);
    s.Set("members", static_cast<int64_t>(it->members.size()));
    s.Set("triaged", static_cast<int64_t>(it->triaged.size()));
    storms.Append(std::move(s));
    ++storms_emitted;
  }
  Json root = Json::MakeObject();
  root.Set("triggers", std::move(triggers));
  root.Set("storms", std::move(storms));
  HttpResponse response;
  response.body = root.Dump();
  return response;
}

HttpResponse Server::HandleRepairs(const HttpRequest& request) const {
  const std::string* tenant = request.FindHeader(kTenantHeader);
  if (tenant == nullptr || !admission_.KnownTenant(*tenant)) {
    return ErrorResponse(403, "unknown tenant");
  }
  const std::vector<uint32_t> scope = admission_.TenantInstances(*tenant);
  const size_t limit = ParseLimit(request);
  Json repairs = Json::MakeArray();
  std::lock_guard<std::mutex> lock(cache_mu_);
  size_t emitted = 0;
  for (auto it = outcome_cache_.rbegin();
       it != outcome_cache_.rend() && emitted < limit; ++it) {
    if (!it->ok) continue;
    if (std::find(scope.begin(), scope.end(), it->instance_id) ==
        scope.end()) {
      continue;
    }
    Json r = Json::MakeObject();
    r.Set("instance", static_cast<int64_t>(it->instance_id));
    r.Set("trigger_sec", it->trigger_sec);
    if (const Json* events = it->report_json.Find("repair_events")) {
      r.Set("events", *events);
    } else {
      r.Set("events", Json::MakeArray());
    }
    repairs.Append(std::move(r));
    ++emitted;
  }
  Json root = Json::MakeObject();
  root.Set("repairs", std::move(repairs));
  HttpResponse response;
  response.body = root.Dump();
  return response;
}

// --- Introspection -------------------------------------------------------

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::map<std::string, TenantAdmissionStats> Server::tenant_stats() const {
  return admission_.TenantStats();
}

std::map<uint32_t, online::ReplayLog> Server::accepted_streams() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return capture_;
}

}  // namespace pinsql::serve
