#include "online/replay.h"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>
#include <utility>

namespace pinsql::online {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void AppendOutcomeFingerprint(const DiagnosisOutcome& outcome,
                              std::string* out) {
  *out += "trigger:";
  *out += std::to_string(outcome.trigger.instance_id);
  *out += ',';
  *out += std::to_string(outcome.trigger.onset_sec);
  *out += ',';
  *out += std::to_string(outcome.trigger.trigger_sec);
  *out += ',';
  *out += FormatDouble(outcome.trigger.severity);
  *out += ',';
  *out += FormatDouble(outcome.trigger.pettitt_p);
  *out += ',';
  *out += outcome.trigger.source;
  *out += '\n';
  *out += outcome.ok ? "ok\n" : ("error:" + outcome.error + "\n");
  if (outcome.ok) {
    *out += outcome.report.ToJson().Dump();
    *out += '\n';
  }
  *out += "repairs:";
  *out += std::to_string(outcome.repairs_applied);
  *out += ",ttr:";
  *out += FormatDouble(outcome.ttr_sec);
  *out += '\n';
}

std::string ReplayResult::Fingerprint() const {
  std::string out;
  out += "latencies:";
  for (int64_t latency : detection_latencies_sec) {
    out += std::to_string(latency);
    out += ',';
  }
  out += '\n';
  for (const DiagnosisOutcome& outcome : outcomes) {
    AppendOutcomeFingerprint(outcome, &out);
  }
  return out;
}

ReplayResult RunReplay(const ReplayLog& log, const LogStore& catalog,
                       const ReplayOptions& options,
                       repair::RepairSupervisor* supervisor,
                       const core::HistoryProvider* history) {
  ReplayResult result;
  if (log.samples.empty()) return result;

  ServiceOptions service_options = options.service;
  if (options.zero_timings) service_options.scheduler.zero_timings = true;
  OnlineService service(service_options, supervisor, history);
  for (const auto& [sql_id, entry] : catalog.catalog()) {
    service.archive()->RegisterTemplate(sql_id, entry);
  }

  // Expand the sample stream to one entry per second; missing seconds
  // become gap samples so the virtual clock never stalls.
  const int64_t first_sec = log.samples.front().sec;
  const int64_t last_sec = log.samples.back().sec;
  std::vector<PerfSample> timeline;
  timeline.reserve(static_cast<size_t>(last_sec - first_sec + 1));
  {
    const double gap = std::numeric_limits<double>::quiet_NaN();
    size_t k = 0;
    for (int64_t sec = first_sec; sec <= last_sec; ++sec) {
      while (k < log.samples.size() && log.samples[k].sec < sec) ++k;
      if (k < log.samples.size() && log.samples[k].sec == sec) {
        timeline.push_back(log.samples[k]);
      } else {
        timeline.push_back(
            PerfSample{.sec = sec, .active_session = gap, .cpu_usage = gap,
                       .iops_usage = gap, .row_lock_waits = gap,
                       .mdl_waits = gap});
      }
    }
  }

  std::vector<QueryLogRecord> records = log.records;
  std::stable_sort(records.begin(), records.end(),
                   [](const QueryLogRecord& a, const QueryLogRecord& b) {
                     return a.arrival_ms < b.arrival_ms;
                   });

  // Per-second record ranges: second i's range is everything that arrived
  // before the end of that second and was not pushed yet (the last second
  // also takes the tail).
  std::vector<std::pair<size_t, size_t>> ranges(timeline.size());
  {
    size_t cursor = 0;
    for (size_t i = 0; i < timeline.size(); ++i) {
      const size_t begin = cursor;
      const int64_t end_ms = (timeline[i].sec + 1) * 1000;
      while (cursor < records.size() &&
             records[cursor].arrival_ms < end_ms) {
        ++cursor;
      }
      if (i + 1 == timeline.size()) cursor = records.size();
      ranges[i] = {begin, cursor};
    }
  }

  const int num_threads = std::max(options.num_ingest_threads, 1);
  const size_t num_shards = std::max<size_t>(
      service_options.ingestor.num_shards, 1);

  service.Start();
  // Two barriers per second: ingest threads finish the second's pushes,
  // the main loop advances the clock and processes it, then everyone moves
  // to the next second. Thread j only touches shards ≡ j (mod T), and
  // each walks the global record order, so every shard queue's order is
  // the global order restricted to that shard — invariant under T.
  std::barrier sync(num_threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    workers.emplace_back([&, tid]() {
      for (size_t i = 0; i < timeline.size(); ++i) {
        for (size_t k = ranges[i].first; k < ranges[i].second; ++k) {
          const size_t shard = records[k].sql_id % num_shards;
          if (static_cast<int>(shard % static_cast<size_t>(num_threads)) ==
              tid) {
            service.IngestRecord(records[k]);
          }
        }
        sync.arrive_and_wait();
        sync.arrive_and_wait();
      }
    });
  }
  for (size_t i = 0; i < timeline.size(); ++i) {
    sync.arrive_and_wait();
    service.IngestMetrics(timeline[i]);
    service.Advance();
    sync.arrive_and_wait();
  }
  for (std::thread& worker : workers) worker.join();
  service.Stop();

  result.outcomes = service.outcomes();
  result.detection_latencies_sec = service.detector().latencies_sec();
  result.stats = service.stats();
  return result;
}

}  // namespace pinsql::online
