#ifndef PINSQL_ONLINE_REPLAY_H_
#define PINSQL_ONLINE_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "logstore/log_store.h"
#include "online/service.h"

namespace pinsql::online {

/// A recorded stream: query-log records plus the per-second metric samples
/// that drive the virtual clock. Samples must be in ascending second
/// order; missing seconds inside the span are replayed as telemetry gaps
/// (NaN samples that still advance the clock). Records may be in any
/// order; the replay stably orders them by arrival time.
struct ReplayLog {
  std::vector<QueryLogRecord> records;
  std::vector<PerfSample> samples;
};

struct ReplayOptions {
  ServiceOptions service;
  /// Concurrent ingest threads feeding the service. Thread j owns the
  /// shards with index ≡ j (mod num_ingest_threads), so every shard's
  /// queue order — and therefore every downstream result — is identical at
  /// any thread count.
  int num_ingest_threads = 1;
  /// Force wall-clock timing fields to zero in the produced reports so
  /// replays are byte-comparable. On by default; turn off to measure.
  bool zero_timings = true;
};

struct ReplayResult {
  std::vector<DiagnosisOutcome> outcomes;
  std::vector<int64_t> detection_latencies_sec;
  ServiceStats stats;

  /// Deterministic digest of everything the replay produced that is
  /// promised bit-reproducible: triggers, detection latencies, report
  /// JSON, repair events and time-to-repair. Two replays of one log are
  /// correct iff their fingerprints are byte-identical — at any
  /// num_ingest_threads and any diagnoser num_threads.
  std::string Fingerprint() const;
};

/// Appends the deterministic digest of one diagnosis outcome (trigger
/// fields, report JSON, repair accounting). Shared by the single-instance
/// ReplayResult fingerprint and the fleet-level fingerprints, so "the same
/// diagnosis" digests identically in both deployments.
void AppendOutcomeFingerprint(const DiagnosisOutcome& outcome,
                              std::string* out);

/// Replays a recorded stream through a fresh OnlineService, bit-
/// deterministically: the clock is the sample stream, ingest threads are
/// shard-partitioned, and each simulated second is fully ingested before
/// it is processed. `catalog` seeds the archive's template texts.
/// `supervisor` (optional) closes the loop — repairs mutate its engine and
/// time-to-repair is measured against it.
ReplayResult RunReplay(const ReplayLog& log, const LogStore& catalog,
                       const ReplayOptions& options,
                       repair::RepairSupervisor* supervisor = nullptr,
                       const core::HistoryProvider* history = nullptr);

}  // namespace pinsql::online

#endif  // PINSQL_ONLINE_REPLAY_H_
