#ifndef PINSQL_ONLINE_STREAM_INGESTOR_H_
#define PINSQL_ONLINE_STREAM_INGESTOR_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "logstore/log_store.h"
#include "pipeline/template_metrics.h"
#include "ts/time_series.h"
#include "util/arena.h"
#include "util/status.h"

namespace pinsql::online {

/// One per-second performance sample from the monitoring agent, the
/// streaming form of dbsim::InstanceMetrics: the value of every monitored
/// metric for one wall second. Non-finite values are telemetry gaps, as
/// everywhere else in the repo.
struct PerfSample {
  int64_t sec = 0;
  double active_session = 0.0;
  double cpu_usage = 0.0;
  double iops_usage = 0.0;
  double row_lock_waits = 0.0;
  double mdl_waits = 0.0;
};

/// Producer->pump handoff unit: records move through the shard queues a
/// chunk at a time, so a pump takes each queue lock once per ~256 records
/// instead of once per record, and staging allocates nothing per record —
/// chunks recycle through an arena-backed pool (shared fleet-wide when the
/// fleet passes one in).
inline constexpr uint32_t kIngestChunkCapacity = 256;
using IngestChunk = util::Chunk<QueryLogRecord, kIngestChunkCapacity>;
using IngestChunkPool = util::ChunkPool<QueryLogRecord, kIngestChunkCapacity>;

struct IngestorOptions {
  /// Sliding window the ring buffers retain, in seconds. Must cover the
  /// scheduler's delta_s lookback plus the longest anomaly it should be
  /// able to diagnose.
  int64_t window_sec = 1800;
  /// Query-log records are sharded by sql_id into this many independently
  /// locked staging queues, so concurrent producers contend only within a
  /// shard.
  size_t num_shards = 8;
  /// Bounded staging queue per shard: a full queue drops the record and
  /// counts it (explicit backpressure — the collector never blocks the
  /// database it watches).
  size_t shard_queue_capacity = 1 << 16;
  /// Records older than watermark - late_grace_sec are dropped as late
  /// (their ring bucket may already be recycled).
  int64_t late_grace_sec = 120;
};

/// Every drop is accounted: nothing leaves the pipeline silently.
///
/// stats() returns a *consistent cut*: the shard counters are read with
/// every shard's fold and queue locks held at once, so the invariant
/// `records_enqueued == records_folded + records_dropped_late +
/// records_dropped_backpressure + records_staged` holds exactly in every
/// snapshot, even while producers and pumpers race — never a torn
/// per-shard sum. (Fleet-level stats sum these per-instance cuts.)
struct IngestStats {
  /// Every record offered to IngestRecord, accepted or not.
  size_t records_enqueued = 0;
  size_t records_folded = 0;
  size_t records_dropped_backpressure = 0;
  size_t records_dropped_late = 0;
  /// Records accepted into a shard queue but not yet folded by a Pump().
  size_t records_staged = 0;
  size_t metric_samples = 0;
  size_t metric_samples_dropped = 0;
};

/// Metric series snapshot over one window, shaped for DiagnosisInput.
struct WindowMetrics {
  TimeSeries active_session;
  std::map<std::string, TimeSeries> helpers;  // cpu/iops/lock-wait nodes
};

/// Serializable mirror of a StreamIngestor's full mutable state, for the
/// durable service's checkpoints (see online/service_state.h). A restored
/// ingestor folds, snapshots and drops bit-identically to the one the
/// state was exported from.
struct IngestorCellState {
  uint64_t sql_id = 0;
  double count = 0.0;
  double total_response_ms = 0.0;
  double examined_rows = 0.0;
};

struct IngestorBucketState {
  int64_t sec = -1;
  std::vector<IngestorCellState> cells;
};

struct IngestorShardState {
  /// Staged records accepted but not yet folded by a Pump().
  std::vector<QueryLogRecord> queue;
  uint64_t enqueued = 0;
  uint64_t dropped_backpressure = 0;
  uint64_t folded = 0;
  uint64_t dropped_late = 0;
  /// Occupied ring buckets only (sec >= 0), in ring-index order.
  std::vector<IngestorBucketState> buckets;
};

struct IngestorMetricBucketState {
  int64_t sec = -1;
  PerfSample sample;
};

struct IngestorState {
  std::vector<IngestorShardState> shards;
  std::vector<IngestorMetricBucketState> metric_buckets;
  uint64_t metric_samples = 0;
  uint64_t metric_samples_dropped = 0;
  /// INT64_MIN = no sample seen yet.
  int64_t watermark = std::numeric_limits<int64_t>::min();
};

/// Thread-safe streaming ingestion of query-log records and per-second
/// perf samples, maintaining *incremental* sliding-window aggregates in
/// ring buffers — assembling a diagnosis window never rescans a LogStore.
///
/// Data flow: producers stage records into sql_id-sharded chunk lists
/// (multi-producer, lock per shard, one pooled chunk per ~256 records);
/// Pump() detaches each shard's whole chunk list under one lock hold,
/// folds it into per-shard rings of per-second template cells, archives
/// every chunk span into the attached LogStore in one call, and recycles
/// the chunks. Metric samples go straight into a per-second ring and
/// advance the watermark (the service's virtual clock). Snapshot*()
/// assembles the window views the detector and the DiagnosisScheduler
/// consume.
///
/// Memory layout (DESIGN.md §13): ring cells are structure-of-arrays —
/// per bucket, parallel `ids` / `count` / `total_response_ms` /
/// `examined_rows` columns — so folds touch four contiguous arrays and
/// snapshot scans stream over doubles.
///
/// Determinism: a template's records all land in one shard queue, so their
/// fold order is the producer's publish order; ring cells are sequential
/// per-(sql_id, sec) sums kept in first-touch order and snapshots insert
/// cells into disjoint series buckets, so a snapshot is bit-identical to
/// the batch AggregateWindow over the same records in the same
/// per-template order.
class StreamIngestor {
 public:
  /// `pool` shares chunk capacity across ingestors (the fleet passes one
  /// pool to every instance); nullptr gives the ingestor a private pool.
  explicit StreamIngestor(const IngestorOptions& options,
                          std::shared_ptr<IngestChunkPool> pool = nullptr);
  ~StreamIngestor();
  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

  /// Optional: folded records are also archived here (one AppendSpans call
  /// per pump). The archive is what Diagnose() scans; concurrent readers
  /// must use LogStore::SnapshotRange.
  void AttachArchive(LogStore* store) { archive_ = store; }

  /// Stages one record (thread-safe). Returns false when the shard queue
  /// was full and the record was dropped.
  bool IngestRecord(const QueryLogRecord& record);

  /// Ingests one per-second sample (thread-safe) and advances the
  /// watermark. Returns false when the sample was older than the retained
  /// window and was dropped. A sample at exactly window_floor_sec() is the
  /// oldest retained instant.
  bool IngestMetrics(const PerfSample& sample);

  /// Folds every staged record into the rings (and the archive). Safe to
  /// call from any thread; concurrent pumps serialize per shard. Returns
  /// the number of records folded.
  size_t Pump();

  /// Latest metric second seen (the virtual clock), or nullopt before the
  /// first sample.
  std::optional<int64_t> watermark_sec() const;

  /// The sample for `sec`, if it is inside the retained window.
  std::optional<PerfSample> SampleAt(int64_t sec) const;

  /// Assembles the per-template aggregates over [t0_sec, t1_sec) from the
  /// rings. Seconds outside the retained window contribute nothing.
  TemplateMetricsStore SnapshotTemplates(int64_t t0_sec, int64_t t1_sec) const;

  /// Assembles the metric series over [t0_sec, t1_sec); seconds without a
  /// sample are gaps (NaN), which DataQuality accounting downstream picks
  /// up as usual.
  WindowMetrics SnapshotMetrics(int64_t t0_sec, int64_t t1_sec) const;

  /// Oldest second still retained by the rings (watermark - window + 1),
  /// or nullopt before the first sample. Snapshots at exactly this second
  /// see retained data; one second older is outside the rings.
  std::optional<int64_t> window_floor_sec() const;

  IngestStats stats() const;

  /// The chunk pool backing the shard queues (shared or private).
  const IngestChunkPool& chunk_pool() const { return *pool_; }

  /// Captures the full mutable state (rings, staged queues, counters,
  /// watermark) as one consistent cut — safe while producers race.
  IngestorState ExportState() const;

  /// Restores an exported state. The ingestor must be shaped identically
  /// (same shard count and window) to the one the state came from;
  /// InvalidArgument otherwise. Not thread-safe: call before producers
  /// start.
  Status ImportState(const IngestorState& state);

 private:
  /// One second of one shard's template aggregates, structure-of-arrays:
  /// slot i of every column belongs to ids[i]; slots are in first-touch
  /// (fold) order, which snapshots and exports preserve. `lookup` is an
  /// open-addressing id->slot table engaged once the linear scan over the
  /// contiguous `ids` column stops being the faster option.
  /// Empty-slot sentinel for the ring buckets. INT64_MIN (not -1): early
  /// streams have genuinely negative window-floor seconds, and the
  /// sentinel must compare older than every real second so the
  /// recycled-slot checks stay branch-free.
  static constexpr int64_t kEmptySec = std::numeric_limits<int64_t>::min();

  struct Bucket {
    int64_t sec = kEmptySec;
    std::vector<uint64_t> ids;
    std::vector<double> count;
    std::vector<double> total_response_ms;
    std::vector<double> examined_rows;
    std::vector<uint32_t> lookup;

    size_t FindOrAddSlot(uint64_t id);
    void RebuildLookup();
    void ClearCells();
  };
  struct Shard {
    // Lock order: fold_mu before queue_mu wherever both are held (Pump and
    // stats), and the pool mutex only ever after queue_mu/fold_mu (the
    // pool is a leaf). IngestRecord takes only queue_mu (+ pool on chunk
    // boundaries), so producers never wait on a fold in progress.
    mutable std::mutex queue_mu;
    IngestChunk* head = nullptr;
    IngestChunk* tail = nullptr;
    size_t staged = 0;
    size_t enqueued = 0;
    size_t dropped_backpressure = 0;

    mutable std::mutex fold_mu;
    std::vector<Bucket> ring;
    size_t folded = 0;
    size_t dropped_late = 0;
  };
  struct MetricBucket {
    int64_t sec = kEmptySec;
    PerfSample sample;
  };

  /// Ring slot for `sec`, correct for negative seconds too (C++ % truncates
  /// toward zero, which would index out of bounds below sec 0 — and the
  /// window floor of an early stream *is* negative).
  size_t RingIndex(int64_t sec) const {
    const int64_t w = options_.window_sec;
    const int64_t m = sec % w;
    return static_cast<size_t>(m < 0 ? m + w : m);
  }

  /// `cached_sec` / `cached_bucket` memoize the last resolved ring slot
  /// across a fold run: consecutive records in a chunk overwhelmingly
  /// share a second, so the ring-index modulo (a runtime division) runs
  /// once per second transition instead of once per record.
  void FoldRecord(Shard* shard, const QueryLogRecord& record,
                  int64_t watermark, int64_t* cached_sec,
                  Bucket** cached_bucket);
  /// Shard for a template id: bitmask when num_shards is a power of two,
  /// modulo otherwise.
  size_t ShardIndex(uint64_t sql_id) const {
    return shard_mask_ != 0 ? static_cast<size_t>(sql_id & shard_mask_)
                            : static_cast<size_t>(sql_id % shards_.size());
  }
  /// Releases a shard's staged chunk list back to the pool (queue_mu held).
  void DropStagedLocked(Shard* shard);

  IngestorOptions options_;
  std::shared_ptr<IngestChunkPool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// num_shards - 1 when num_shards is a power of two, else 0 (use %).
  uint64_t shard_mask_ = 0;
  LogStore* archive_ = nullptr;

  mutable std::mutex metrics_mu_;
  std::vector<MetricBucket> metric_ring_;
  size_t metric_samples_ = 0;
  size_t metric_samples_dropped_ = 0;
  /// INT64_MIN before the first sample. Relaxed loads are fine: folding
  /// only needs a recent-enough lateness horizon.
  std::atomic<int64_t> watermark_;
};

}  // namespace pinsql::online

#endif  // PINSQL_ONLINE_STREAM_INGESTOR_H_
