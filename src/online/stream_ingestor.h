#ifndef PINSQL_ONLINE_STREAM_INGESTOR_H_
#define PINSQL_ONLINE_STREAM_INGESTOR_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "logstore/log_store.h"
#include "pipeline/template_metrics.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace pinsql::online {

/// One per-second performance sample from the monitoring agent, the
/// streaming form of dbsim::InstanceMetrics: the value of every monitored
/// metric for one wall second. Non-finite values are telemetry gaps, as
/// everywhere else in the repo.
struct PerfSample {
  int64_t sec = 0;
  double active_session = 0.0;
  double cpu_usage = 0.0;
  double iops_usage = 0.0;
  double row_lock_waits = 0.0;
  double mdl_waits = 0.0;
};

struct IngestorOptions {
  /// Sliding window the ring buffers retain, in seconds. Must cover the
  /// scheduler's delta_s lookback plus the longest anomaly it should be
  /// able to diagnose.
  int64_t window_sec = 1800;
  /// Query-log records are sharded by sql_id into this many independently
  /// locked staging queues, so concurrent producers contend only within a
  /// shard.
  size_t num_shards = 8;
  /// Bounded staging queue per shard: a full queue drops the record and
  /// counts it (explicit backpressure — the collector never blocks the
  /// database it watches).
  size_t shard_queue_capacity = 1 << 16;
  /// Records older than watermark - late_grace_sec are dropped as late
  /// (their ring bucket may already be recycled).
  int64_t late_grace_sec = 120;
};

/// Every drop is accounted: nothing leaves the pipeline silently.
///
/// stats() returns a *consistent cut*: the shard counters are read with
/// every shard's fold and queue locks held at once, so the invariant
/// `records_enqueued == records_folded + records_dropped_late +
/// records_staged` holds exactly in every snapshot, even while producers
/// and pumpers race — never a torn per-shard sum. (Fleet-level stats sum
/// these per-instance cuts.)
struct IngestStats {
  size_t records_enqueued = 0;
  size_t records_folded = 0;
  size_t records_dropped_backpressure = 0;
  size_t records_dropped_late = 0;
  /// Records accepted into a shard queue but not yet folded by a Pump().
  size_t records_staged = 0;
  size_t metric_samples = 0;
  size_t metric_samples_dropped = 0;
};

/// Metric series snapshot over one window, shaped for DiagnosisInput.
struct WindowMetrics {
  TimeSeries active_session;
  std::map<std::string, TimeSeries> helpers;  // cpu/iops/lock-wait nodes
};

/// Serializable mirror of a StreamIngestor's full mutable state, for the
/// durable service's checkpoints (see online/service_state.h). A restored
/// ingestor folds, snapshots and drops bit-identically to the one the
/// state was exported from.
struct IngestorCellState {
  uint64_t sql_id = 0;
  double count = 0.0;
  double total_response_ms = 0.0;
  double examined_rows = 0.0;
};

struct IngestorBucketState {
  int64_t sec = -1;
  std::vector<IngestorCellState> cells;
};

struct IngestorShardState {
  /// Staged records accepted but not yet folded by a Pump().
  std::vector<QueryLogRecord> queue;
  uint64_t enqueued = 0;
  uint64_t dropped_backpressure = 0;
  uint64_t folded = 0;
  uint64_t dropped_late = 0;
  /// Occupied ring buckets only (sec >= 0), in ring-index order.
  std::vector<IngestorBucketState> buckets;
};

struct IngestorMetricBucketState {
  int64_t sec = -1;
  PerfSample sample;
};

struct IngestorState {
  std::vector<IngestorShardState> shards;
  std::vector<IngestorMetricBucketState> metric_buckets;
  uint64_t metric_samples = 0;
  uint64_t metric_samples_dropped = 0;
  /// INT64_MIN = no sample seen yet.
  int64_t watermark = std::numeric_limits<int64_t>::min();
};

/// Thread-safe streaming ingestion of query-log records and per-second
/// perf samples, maintaining *incremental* sliding-window aggregates in
/// ring buffers — assembling a diagnosis window never rescans a LogStore.
///
/// Data flow: producers append records into sql_id-sharded bounded queues
/// (multi-producer, lock per shard); Pump() folds the staged records into
/// per-shard rings of per-second template cells and archives them into the
/// attached LogStore in one batch per shard. Metric samples go straight
/// into a per-second ring and advance the watermark (the service's virtual
/// clock). Snapshot*() assembles the window views the detector and the
/// DiagnosisScheduler consume.
///
/// Determinism: a template's records all land in one shard queue, so their
/// fold order is the producer's publish order; ring cells are sequential
/// per-(sql_id, sec) sums and snapshots insert cells into disjoint series
/// buckets, so a snapshot is bit-identical to the batch AggregateWindow
/// over the same records in the same per-template order.
class StreamIngestor {
 public:
  explicit StreamIngestor(const IngestorOptions& options);

  /// Optional: folded records are also archived here (AppendBatch per
  /// shard per pump). The archive is what Diagnose() scans; concurrent
  /// readers must use LogStore::SnapshotRange.
  void AttachArchive(LogStore* store) { archive_ = store; }

  /// Stages one record (thread-safe). Returns false when the shard queue
  /// was full and the record was dropped.
  bool IngestRecord(const QueryLogRecord& record);

  /// Ingests one per-second sample (thread-safe) and advances the
  /// watermark. Returns false when the sample was older than the retained
  /// window and was dropped.
  bool IngestMetrics(const PerfSample& sample);

  /// Folds every staged record into the rings (and the archive). Safe to
  /// call from any thread; concurrent pumps serialize per shard. Returns
  /// the number of records folded.
  size_t Pump();

  /// Latest metric second seen (the virtual clock), or nullopt before the
  /// first sample.
  std::optional<int64_t> watermark_sec() const;

  /// The sample for `sec`, if it is inside the retained window.
  std::optional<PerfSample> SampleAt(int64_t sec) const;

  /// Assembles the per-template aggregates over [t0_sec, t1_sec) from the
  /// rings. Seconds outside the retained window contribute nothing.
  TemplateMetricsStore SnapshotTemplates(int64_t t0_sec, int64_t t1_sec) const;

  /// Assembles the metric series over [t0_sec, t1_sec); seconds without a
  /// sample are gaps (NaN), which DataQuality accounting downstream picks
  /// up as usual.
  WindowMetrics SnapshotMetrics(int64_t t0_sec, int64_t t1_sec) const;

  /// Oldest second still retained by the rings (watermark - window + 1),
  /// or nullopt before the first sample.
  std::optional<int64_t> window_floor_sec() const;

  IngestStats stats() const;

  /// Captures the full mutable state (rings, staged queues, counters,
  /// watermark) as one consistent cut — safe while producers race.
  IngestorState ExportState() const;

  /// Restores an exported state. The ingestor must be shaped identically
  /// (same shard count and window) to the one the state came from;
  /// InvalidArgument otherwise. Not thread-safe: call before producers
  /// start.
  Status ImportState(const IngestorState& state);

 private:
  struct Cell {
    double count = 0.0;
    double total_response_ms = 0.0;
    double examined_rows = 0.0;
  };
  struct Bucket {
    int64_t sec = -1;
    // Flat cells: a second holds few distinct templates, and deterministic
    // iteration (insertion order per shard queue) costs nothing.
    std::vector<std::pair<uint64_t, Cell>> cells;
  };
  struct Shard {
    // Lock order: fold_mu before queue_mu wherever both are held (Pump and
    // stats). IngestRecord takes only queue_mu, so producers never wait on
    // a fold in progress.
    mutable std::mutex queue_mu;
    std::vector<QueryLogRecord> queue;
    size_t enqueued = 0;
    size_t dropped_backpressure = 0;

    mutable std::mutex fold_mu;
    std::vector<Bucket> ring;
    size_t folded = 0;
    size_t dropped_late = 0;
  };
  struct MetricBucket {
    int64_t sec = -1;
    PerfSample sample;
  };

  void FoldRecord(Shard* shard, const QueryLogRecord& record,
                  int64_t watermark);

  IngestorOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  LogStore* archive_ = nullptr;

  mutable std::mutex metrics_mu_;
  std::vector<MetricBucket> metric_ring_;
  size_t metric_samples_ = 0;
  size_t metric_samples_dropped_ = 0;
  /// INT64_MIN before the first sample. Relaxed loads are fine: folding
  /// only needs a recent-enough lateness horizon.
  std::atomic<int64_t> watermark_;
};

}  // namespace pinsql::online

#endif  // PINSQL_ONLINE_STREAM_INGESTOR_H_
