#include "online/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pinsql::online {

bool TriggerDeduper::Accept(const AnomalyTrigger& trigger) {
  auto it = last_activity_.find(trigger.instance_id);
  if (it != last_activity_.end() &&
      trigger.onset_sec <= it->second + cooldown_sec_) {
    if (trigger.trigger_sec > it->second) it->second = trigger.trigger_sec;
    return false;
  }
  if (it == last_activity_.end()) {
    last_activity_.emplace(trigger.instance_id, trigger.trigger_sec);
  } else if (trigger.trigger_sec > it->second) {
    it->second = trigger.trigger_sec;
  }
  return true;
}

std::vector<std::pair<uint32_t, int64_t>> TriggerDeduper::ExportActivity()
    const {
  return {last_activity_.begin(), last_activity_.end()};
}

void TriggerDeduper::ImportActivity(
    const std::vector<std::pair<uint32_t, int64_t>>& pairs) {
  last_activity_.clear();
  for (const auto& [instance_id, sec] : pairs) {
    last_activity_[instance_id] = sec;
  }
}

void TriggerDeduper::NoteActivity(uint32_t instance_id, int64_t sec) {
  // Extends an existing incident's horizon only. Screen activity before
  // any trigger fired must not anchor the cooldown — it would suppress the
  // very trigger that confirms the incident (the screen flags a few
  // seconds before Pettitt can confirm).
  auto it = last_activity_.find(instance_id);
  if (it != last_activity_.end() && sec > it->second) it->second = sec;
}

DiagnosisScheduler::DiagnosisScheduler(StreamIngestor* ingestor,
                                       const LogStore* archive,
                                       const SchedulerOptions& options,
                                       repair::RepairSupervisor* supervisor,
                                       const core::HistoryProvider* history)
    : ingestor_(ingestor),
      archive_(archive),
      options_(options),
      supervisor_(supervisor),
      history_(history != nullptr ? history : &empty_history_),
      deduper_(options.cooldown_sec) {}

bool DiagnosisScheduler::OnTrigger(const AnomalyTrigger& trigger) {
  if (!deduper_.Accept(trigger)) {
    ++stats_.triggers_suppressed;
    PINSQL_OBS_COUNT("online.triggers_suppressed", 1);
    return false;
  }
  Pending pending;
  pending.trigger = trigger;
  pending.due_sec = trigger.trigger_sec + options_.diagnose_delay_sec;
  pending_.push_back(pending);
  ++stats_.triggers_accepted;
  PINSQL_OBS_COUNT("online.triggers_accepted", 1);
  return true;
}

void DiagnosisScheduler::NoteAnomalousActivity(int64_t sec,
                                               uint32_t instance_id) {
  deduper_.NoteActivity(instance_id, sec);
}

std::vector<DiagnosisOutcome> DiagnosisScheduler::Poll(int64_t now_sec) {
  std::vector<DiagnosisOutcome> completed;
  while (!pending_.empty() && pending_.front().due_sec <= now_sec) {
    Pending pending = pending_.front();
    pending_.pop_front();
    completed.push_back(RunDiagnosis(pending));
  }
  return completed;
}

std::vector<DiagnosisOutcome> DiagnosisScheduler::Drain() {
  std::vector<DiagnosisOutcome> completed;
  while (!pending_.empty()) {
    Pending pending = pending_.front();
    pending_.pop_front();
    completed.push_back(RunDiagnosis(pending));
  }
  return completed;
}

std::optional<int64_t> DiagnosisScheduler::open_window_floor_ms() const {
  std::optional<int64_t> floor;
  for (const Pending& pending : pending_) {
    const int64_t t0_ms =
        (pending.trigger.onset_sec - options_.diagnoser.delta_s_sec) * 1000;
    if (!floor.has_value() || t0_ms < *floor) floor = t0_ms;
  }
  return floor;
}

namespace {

void ZeroTimings(core::DiagnosisResult* result) {
  result->estimate_seconds = 0.0;
  result->hsql_seconds = 0.0;
  result->cluster_seconds = 0.0;
  result->verify_seconds = 0.0;
  result->total_seconds = 0.0;
  result->trace.total_seconds = 0.0;
  for (obs::StageTrace& stage : result->trace.stages) stage.seconds = 0.0;
}

}  // namespace

DiagnosisOutcome RunWindowedDiagnosis(const WindowedDiagnosisContext& ctx,
                                      const AnomalyTrigger& trigger,
                                      int64_t window_end_sec,
                                      DiagnosisSideStats* side) {
  const SchedulerOptions& options = *ctx.options;
  DiagnosisOutcome outcome;
  outcome.trigger = trigger;

  const int64_t a_s = trigger.onset_sec;
  const int64_t a_e = window_end_sec;
  const int64_t t0 = a_s - options.diagnoser.delta_s_sec;

  // Window-local log store: a consistent point-in-time copy of the archive
  // records the diagnoser will scan, taken while ingest threads keep
  // appending. The catalog is copied so BuildReport resolves texts.
  LogStore window_logs;
  window_logs.ReplaceRecords(
      ctx.archive->SnapshotRange(t0 * 1000, a_e * 1000));
  for (const auto& [sql_id, entry] : ctx.archive->catalog()) {
    window_logs.RegisterTemplate(sql_id, entry);
  }

  WindowMetrics metrics = ctx.ingestor->SnapshotMetrics(t0, a_e);

  core::DiagnosisInput input;
  input.logs = &window_logs;
  input.active_session = std::move(metrics.active_session);
  input.helper_metrics = std::move(metrics.helpers);
  input.anomaly_start_sec = a_s;
  input.anomaly_end_sec = a_e;
  input.history = ctx.history;

  auto result = core::Diagnose(input, options.diagnoser);
  if (!result.ok()) {
    outcome.ok = false;
    outcome.error = result.status().ToString();
    PINSQL_OBS_COUNT("online.diagnoses_failed", 1);
    return outcome;
  }
  if (options.zero_timings) ZeroTimings(&result.value());

  std::vector<anomaly::Phenomenon> phenomena;
  anomaly::Phenomenon phenomenon;
  phenomenon.rule = "active_session.spike";
  phenomenon.start_sec = a_s;
  phenomenon.end_sec = a_e;
  phenomenon.severity = trigger.severity;
  phenomena.push_back(phenomenon);

  outcome.confirmed_rsqls = result->TopRsql(options.top_k);
  std::vector<repair::Suggestion> suggestions = ctx.rules->Suggest(
      phenomena, outcome.confirmed_rsqls, result->metrics, a_s, a_e,
      std::max<size_t>(options.max_repairs, 1));

  size_t events_before = 0;
  if (ctx.supervisor != nullptr && options.auto_repair) {
    events_before = ctx.supervisor->events().size();
    const double now_ms = static_cast<double>(a_e) * 1000.0;
    // Baseline for post-action verification: the latest observed
    // active-session sample (negative skips verification when telemetry is
    // out).
    double observed = -1.0;
    if (auto sample = ctx.ingestor->SampleAt(a_e - 1);
        sample.has_value() && std::isfinite(sample->active_session)) {
      observed = sample->active_session;
    }
    size_t applied = 0;
    for (const repair::Suggestion& suggestion : suggestions) {
      if (applied >= options.max_repairs) break;
      auto apply = ctx.supervisor->Apply(suggestion.action, now_ms, observed);
      if (apply.ok() &&
          apply->code == repair::ApplyOutcome::Code::kApplied) {
        ++applied;
        if (side != nullptr) ++side->repairs_applied;
        PINSQL_OBS_COUNT("online.repairs_applied", 1);
        if (outcome.ttr_sec < 0.0) {
          outcome.ttr_sec =
              apply->applied_ms / 1000.0 - static_cast<double>(a_s);
        }
      } else {
        if (side != nullptr) ++side->repairs_rejected;
        PINSQL_OBS_COUNT("online.repairs_rejected", 1);
      }
    }
    outcome.repairs_applied = applied;
  }

  outcome.report =
      core::BuildReport(result.value(), *ctx.archive, phenomena, a_s, a_e,
                        suggestions, options.top_k);
  if (ctx.supervisor != nullptr && options.auto_repair) {
    const auto& events = ctx.supervisor->events();
    outcome.report.repair_events.assign(events.begin() + events_before,
                                        events.end());
  }

  outcome.ok = true;
  PINSQL_OBS_COUNT("online.diagnoses", 1);
  return outcome;
}

SchedulerState DiagnosisScheduler::ExportState() const {
  SchedulerState state;
  state.pending.reserve(pending_.size());
  for (const Pending& pending : pending_) {
    SchedulerPendingState p;
    p.trigger = pending.trigger;
    p.due_sec = pending.due_sec;
    state.pending.push_back(p);
  }
  state.dedup_activity = deduper_.ExportActivity();
  state.stats = stats_;
  state.outcomes = outcomes_;
  return state;
}

void DiagnosisScheduler::ImportState(const SchedulerState& state) {
  pending_.clear();
  for (const SchedulerPendingState& p : state.pending) {
    Pending pending;
    pending.trigger = p.trigger;
    pending.due_sec = p.due_sec;
    pending_.push_back(pending);
  }
  deduper_.ImportActivity(state.dedup_activity);
  stats_ = state.stats;
  outcomes_ = state.outcomes;
}

DiagnosisOutcome DiagnosisScheduler::RunDiagnosis(const Pending& pending) {
  WindowedDiagnosisContext ctx;
  ctx.ingestor = ingestor_;
  ctx.archive = archive_;
  ctx.options = &options_;
  ctx.supervisor = supervisor_;
  ctx.history = history_;
  ctx.rules = &rules_;
  DiagnosisSideStats side;
  DiagnosisOutcome outcome =
      RunWindowedDiagnosis(ctx, pending.trigger, pending.due_sec, &side);
  stats_.repairs_applied += side.repairs_applied;
  stats_.repairs_rejected += side.repairs_rejected;
  if (outcome.ok) {
    ++stats_.diagnoses_ok;
  } else {
    ++stats_.diagnoses_failed;
  }
  outcomes_.push_back(outcome);
  return outcome;
}

}  // namespace pinsql::online
