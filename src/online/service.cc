#include "online/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace pinsql::online {

OnlineService::OnlineService(const ServiceOptions& options,
                             repair::RepairSupervisor* supervisor,
                             const core::HistoryProvider* history)
    : options_(options),
      ingestor_(options.ingestor),
      detector_(options.detector),
      scheduler_(&ingestor_, &archive_, options.scheduler, supervisor,
                 history) {
  ingestor_.AttachArchive(&archive_);
}

OnlineService::~OnlineService() { Stop(); }

void OnlineService::Start() {
  std::lock_guard<std::mutex> lock(advance_mu_);
  if (running_) return;
  running_ = true;
  {
    std::unique_lock<std::shared_mutex> gate(ingest_gate_);
    accepting_ = true;
  }
  if (options_.background_pump) {
    {
      std::lock_guard<std::mutex> pump_lock(pump_mu_);
      pump_stop_ = false;
    }
    pump_thread_ = std::thread(&OnlineService::PumpLoop, this);
  }
}

void OnlineService::Stop() {
  {
    std::lock_guard<std::mutex> lock(advance_mu_);
    if (!running_) return;
  }
  // Close the ingest gate first: the exclusive acquisition waits for every
  // in-flight producer call (and whole AppendBatch) to finish, and flips
  // accepting_ so later calls reject cleanly. Only then is the drain below
  // a complete, final cut — nothing can arrive behind it and be stranded
  // in the staging queues.
  {
    std::unique_lock<std::shared_mutex> gate(ingest_gate_);
    accepting_ = false;
  }
  if (pump_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> pump_lock(pump_mu_);
      pump_stop_ = true;
    }
    pump_cv_.notify_all();
    pump_thread_.join();
  }
  std::lock_guard<std::mutex> lock(advance_mu_);
  // Drain: fold everything still staged, process every watermark second,
  // then force the queued diagnoses that were not yet due.
  ingestor_.Pump();
  std::vector<DiagnosisOutcome> completed;
  if (auto mark = ingestor_.watermark_sec(); mark.has_value()) {
    const int64_t from =
        processed_any_ ? last_processed_sec_ + 1 : *mark;
    for (int64_t sec = from; sec <= *mark; ++sec) {
      ProcessSecond(sec, &completed);
    }
  }
  scheduler_.Drain();
  running_ = false;
}

void OnlineService::PumpLoop() {
  std::unique_lock<std::mutex> lock(pump_mu_);
  while (!pump_stop_) {
    lock.unlock();
    ingestor_.Pump();
    lock.lock();
    pump_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

bool OnlineService::IngestRecord(const QueryLogRecord& record) {
  std::shared_lock<std::shared_mutex> gate(ingest_gate_);
  if (!accepting_) {
    records_rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
    PINSQL_OBS_COUNT("online.service.records_rejected_stopped", 1);
    return false;
  }
  return ingestor_.IngestRecord(record);
}

bool OnlineService::IngestMetrics(const PerfSample& sample) {
  std::shared_lock<std::shared_mutex> gate(ingest_gate_);
  if (!accepting_) {
    samples_rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
    PINSQL_OBS_COUNT("online.service.samples_rejected_stopped", 1);
    return false;
  }
  return ingestor_.IngestMetrics(sample);
}

bool OnlineService::AppendBatch(const std::vector<QueryLogRecord>& records,
                                const std::vector<PerfSample>& samples) {
  // The shared lock spans the whole batch, so Stop()'s exclusive
  // acquisition can only observe it fully applied or not started.
  std::shared_lock<std::shared_mutex> gate(ingest_gate_);
  if (!accepting_) {
    records_rejected_stopped_.fetch_add(records.size(),
                                        std::memory_order_relaxed);
    samples_rejected_stopped_.fetch_add(samples.size(),
                                        std::memory_order_relaxed);
    batches_rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
    PINSQL_OBS_COUNT("online.service.batches_rejected_stopped", 1);
    return false;
  }
  for (const QueryLogRecord& record : records) {
    ingestor_.IngestRecord(record);
  }
  for (const PerfSample& sample : samples) {
    ingestor_.IngestMetrics(sample);
  }
  return true;
}

std::vector<DiagnosisOutcome> OnlineService::Advance() {
  std::lock_guard<std::mutex> lock(advance_mu_);
  std::vector<DiagnosisOutcome> completed;
  if (!running_) return completed;
  const auto mark = ingestor_.watermark_sec();
  if (!mark.has_value()) return completed;
  const int64_t from = processed_any_ ? last_processed_sec_ + 1 : *mark;
  for (int64_t sec = from; sec <= *mark; ++sec) {
    ProcessSecond(sec, &completed);
  }
  return completed;
}

void OnlineService::ProcessSecond(int64_t sec,
                                  std::vector<DiagnosisOutcome>* completed) {
  // One pump per processed second: everything staged before this second's
  // sample arrived is folded before the window could be snapshotted.
  ingestor_.Pump();

  double value = std::numeric_limits<double>::quiet_NaN();
  if (auto sample = ingestor_.SampleAt(sec); sample.has_value()) {
    value = sample->active_session;
  }
  if (auto trigger = detector_.Observe(sec, value); trigger.has_value()) {
    scheduler_.OnTrigger(*trigger);
  }
  if (detector_.in_run()) scheduler_.NoteAnomalousActivity(sec);

  auto outcomes = scheduler_.Poll(sec);
  completed->insert(completed->end(), outcomes.begin(), outcomes.end());

  if (options_.retention_every_sec > 0 &&
      sec % options_.retention_every_sec == 0) {
    // Never trim a record an open sliding window or an in-flight diagnosis
    // still needs.
    int64_t keep_from_ms = std::numeric_limits<int64_t>::max();
    if (auto floor = ingestor_.window_floor_sec(); floor.has_value()) {
      keep_from_ms = *floor * 1000;
    }
    if (auto floor = scheduler_.open_window_floor_ms(); floor.has_value()) {
      keep_from_ms = std::min(keep_from_ms, *floor);
    }
    records_retired_ += archive_.TrimExpiredKeeping(sec * 1000, keep_from_ms,
                                                    options_.retention_ms);
    ++retention_sweeps_;
  }

  last_processed_sec_ = sec;
  processed_any_ = true;
  ++seconds_processed_;
  PINSQL_OBS_COUNT("online.seconds_processed", 1);
}

ServiceState OnlineService::ExportState() const {
  std::lock_guard<std::mutex> lock(advance_mu_);
  ServiceState state;
  state.ingestor = ingestor_.ExportState();
  state.detector = detector_.ExportState();
  state.scheduler = scheduler_.ExportState();
  state.processed_any = processed_any_;
  state.last_processed_sec = last_processed_sec_;
  state.retention_sweeps = retention_sweeps_;
  state.records_retired = records_retired_;
  state.seconds_processed = seconds_processed_;
  state.archive_records = archive_.SortedRecords();
  state.catalog.assign(archive_.catalog().begin(), archive_.catalog().end());
  std::sort(state.catalog.begin(), state.catalog.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return state;
}

Status OnlineService::ImportState(const ServiceState& state) {
  std::lock_guard<std::mutex> lock(advance_mu_);
  if (running_) {
    return Status::FailedPrecondition(
        "ImportState requires a stopped service");
  }
  if (Status status = ingestor_.ImportState(state.ingestor); !status.ok()) {
    return status;
  }
  detector_.ImportState(state.detector);
  scheduler_.ImportState(state.scheduler);
  processed_any_ = state.processed_any;
  last_processed_sec_ = state.last_processed_sec;
  retention_sweeps_ = state.retention_sweeps;
  records_retired_ = state.records_retired;
  seconds_processed_ = state.seconds_processed;
  archive_.ReplaceRecords(state.archive_records);
  for (const auto& [sql_id, entry] : state.catalog) {
    archive_.RegisterTemplate(sql_id, entry);
  }
  return Status::OK();
}

const std::vector<DiagnosisOutcome>& OnlineService::outcomes() const {
  return scheduler_.outcomes();
}

ServiceStats OnlineService::stats() const {
  std::lock_guard<std::mutex> lock(advance_mu_);
  ServiceStats stats;
  stats.ingest = ingestor_.stats();
  stats.detector = detector_.stats();
  stats.scheduler = scheduler_.stats();
  stats.seconds_processed = seconds_processed_;
  stats.retention_sweeps = static_cast<size_t>(retention_sweeps_);
  stats.records_retired = records_retired_;
  stats.records_rejected_stopped =
      records_rejected_stopped_.load(std::memory_order_relaxed);
  stats.samples_rejected_stopped =
      samples_rejected_stopped_.load(std::memory_order_relaxed);
  stats.batches_rejected_stopped =
      batches_rejected_stopped_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pinsql::online
