#include "online/online_detector.h"

#include <cmath>
#include <vector>

#include "anomaly/pettitt.h"
#include "obs/metrics.h"

namespace pinsql::online {

OnlineAnomalyDetector::OnlineAnomalyDetector(
    const OnlineDetectorOptions& options)
    : options_(options) {}

bool OnlineAnomalyDetector::in_run() const {
  return screen_.has_value() && screen_->in_run();
}

OnlineDetectorState OnlineAnomalyDetector::ExportState() const {
  OnlineDetectorState state;
  state.screen_initialized = screen_.has_value();
  if (screen_.has_value()) state.screen = screen_->ExportSnapshot();
  state.trailing.assign(trailing_.begin(), trailing_.end());
  state.last_finite = last_finite_;
  state.seen_finite = seen_finite_;
  state.triggered_this_run = triggered_this_run_;
  state.latencies = latencies_;
  state.stats = stats_;
  return state;
}

void OnlineAnomalyDetector::ImportState(const OnlineDetectorState& state) {
  if (state.screen_initialized) {
    screen_.emplace(anomaly::StreamingFeatureDetector::FromSnapshot(
        options_.screen, state.screen));
  } else {
    screen_.reset();
  }
  trailing_.assign(state.trailing.begin(), state.trailing.end());
  last_finite_ = state.last_finite;
  seen_finite_ = state.seen_finite;
  triggered_this_run_ = state.triggered_this_run;
  latencies_ = state.latencies;
  stats_ = state.stats;
}

std::optional<AnomalyTrigger> OnlineAnomalyDetector::Observe(
    int64_t sec, double active_session) {
  ++stats_.samples;
  double value = active_session;
  if (!std::isfinite(value)) {
    if (!seen_finite_) {
      // Nothing to carry yet; the screen's clock starts at the first
      // finite sample.
      ++stats_.gaps_skipped;
      return std::nullopt;
    }
    value = last_finite_;
    ++stats_.gaps_carried;
  } else {
    last_finite_ = value;
    seen_finite_ = true;
  }

  if (!screen_.has_value()) {
    screen_.emplace(options_.screen, sec, /*interval_sec=*/1);
  }

  // The trailing buffer holds every sample, clean or flagged: the
  // change-point test needs the pre-anomaly distribution to confirm a
  // shift.
  trailing_.push_back(value);
  if (trailing_.size() > options_.pettitt_window) trailing_.pop_front();

  const bool was_in_run = screen_->in_run();
  screen_->Push(value);
  if (!screen_->in_run()) {
    triggered_this_run_ = false;
    return std::nullopt;
  }
  if (!was_in_run) triggered_this_run_ = false;

  if (triggered_this_run_ || !screen_->run_up() ||
      screen_->run_length() < options_.confirm_run_len ||
      trailing_.size() < options_.pettitt_min_samples) {
    return std::nullopt;
  }

  const auto pettitt = anomaly::PettittTest(
      std::vector<double>(trailing_.begin(), trailing_.end()));
  if (!pettitt.significant(options_.pettitt_alpha) || !pettitt.shifted_up()) {
    ++stats_.pettitt_rejections;
    return std::nullopt;
  }

  triggered_this_run_ = true;
  AnomalyTrigger trigger;
  trigger.onset_sec = screen_->run_start_time();
  trigger.trigger_sec = sec;
  trigger.severity = screen_->run_peak();
  trigger.pettitt_p = pettitt.p_value;
  ++stats_.triggers;
  latencies_.push_back(trigger.trigger_sec - trigger.onset_sec);
  PINSQL_OBS_COUNT("online.triggers", 1);
  return trigger;
}

}  // namespace pinsql::online
