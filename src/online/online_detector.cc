#include "online/online_detector.h"

#include <cmath>

#include "obs/metrics.h"

namespace pinsql::online {

detect::EnsembleOptions MakeEnsembleOptions(
    const OnlineDetectorOptions& options) {
  detect::EnsembleOptions ensemble;
  ensemble.use_screen = options.use_screen;
  ensemble.screen = options.screen;
  ensemble.confirm_run_len = options.confirm_run_len;
  ensemble.pettitt_window = options.pettitt_window;
  ensemble.pettitt_min_samples = options.pettitt_min_samples;
  ensemble.pettitt_alpha = options.pettitt_alpha;
  ensemble.forecasters = options.forecasters;
  return ensemble;
}

OnlineAnomalyDetector::OnlineAnomalyDetector(
    const OnlineDetectorOptions& options)
    : options_(options), ensemble_(MakeEnsembleOptions(options)) {}

bool OnlineAnomalyDetector::in_run() const { return ensemble_.in_run(); }

OnlineDetectorState OnlineAnomalyDetector::ExportState() const {
  OnlineDetectorState state;
  state.ensemble = ensemble_.ExportSnapshot();
  state.last_finite = last_finite_;
  state.seen_finite = seen_finite_;
  state.consecutive_gaps = consecutive_gaps_;
  state.latencies = latencies_;
  state.stats = stats_;
  return state;
}

void OnlineAnomalyDetector::ImportState(const OnlineDetectorState& state) {
  ensemble_.Restore(state.ensemble);
  last_finite_ = state.last_finite;
  seen_finite_ = state.seen_finite;
  consecutive_gaps_ = state.consecutive_gaps;
  latencies_ = state.latencies;
  stats_ = state.stats;
}

std::optional<AnomalyTrigger> OnlineAnomalyDetector::Observe(
    int64_t sec, double active_session) {
  ++stats_.samples;
  double value = active_session;
  if (!std::isfinite(value)) {
    ++consecutive_gaps_;
    if (!seen_finite_) {
      // Nothing to carry yet; the ensemble's clock starts at the first
      // finite sample.
      ++stats_.gaps_skipped;
      return std::nullopt;
    }
    if (consecutive_gaps_ >= options_.screen.baseline_window) {
      // The gap has outlived every sample the baseline was built from:
      // whatever comes after is a new stream, not a continuation. Reset
      // instead of freezing the carried value into the baseline forever.
      ensemble_.Reset();
      seen_finite_ = false;
      ++stats_.baseline_resets;
      ++stats_.gaps_skipped;
      return std::nullopt;
    }
    value = last_finite_;
    ++stats_.gaps_carried;
  } else {
    last_finite_ = value;
    seen_finite_ = true;
    consecutive_gaps_ = 0;
  }

  const std::optional<detect::EnsembleTrigger> fired =
      ensemble_.Observe(sec, value);
  stats_.pettitt_rejections =
      static_cast<size_t>(ensemble_.pettitt_rejections());
  if (!fired.has_value()) return std::nullopt;

  AnomalyTrigger trigger;
  trigger.onset_sec = fired->onset_sec;
  trigger.trigger_sec = fired->trigger_sec;
  trigger.severity = fired->severity;
  trigger.pettitt_p = fired->pettitt_p;
  trigger.source = fired->source;
  ++stats_.triggers;
  latencies_.push_back(trigger.trigger_sec - trigger.onset_sec);
  PINSQL_OBS_COUNT("online.triggers", 1);
  return trigger;
}

}  // namespace pinsql::online
