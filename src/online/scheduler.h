#ifndef PINSQL_ONLINE_SCHEDULER_H_
#define PINSQL_ONLINE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/diagnoser.h"
#include "core/report.h"
#include "core/rsql.h"
#include "online/online_detector.h"
#include "online/stream_ingestor.h"
#include "repair/rule_engine.h"
#include "repair/supervisor.h"

namespace pinsql::online {

struct SchedulerOptions {
  /// Full diagnoser configuration (delta_s lookback, stage options,
  /// num_threads — Diagnose() parallelizes internally and is bit-identical
  /// at any thread count).
  core::DiagnoserOptions diagnoser;
  /// Diagnosis runs this many seconds after the trigger fires, so the
  /// anomaly period has substance beyond its first confirmed seconds. The
  /// anomaly window is fixed at trigger time ([onset, trigger + delay)),
  /// which keeps replay deterministic regardless of poll cadence.
  int64_t diagnose_delay_sec = 30;
  /// Hysteresis: a trigger whose onset falls within `cooldown_sec` of the
  /// last seen anomalous activity is a re-detection of the same incident
  /// and is suppressed, never diagnosed twice.
  int64_t cooldown_sec = 300;
  /// Ranking depth of the built reports.
  size_t top_k = 5;
  /// Zeroes every wall-clock timing field (DiagnosisResult stage seconds
  /// and PipelineTrace durations) before the report is built, so replayed
  /// runs produce byte-identical reports. Counters are untouched.
  bool zero_timings = false;
  /// Hand rule-engine suggestions for confirmed R-SQLs to the supervisor.
  bool auto_repair = true;
  /// Cap on supervised actions per diagnosis.
  size_t max_repairs = 1;
};

/// Everything one trigger produced: the report, the confirmed R-SQLs and
/// the closed-loop outcome.
struct DiagnosisOutcome {
  AnomalyTrigger trigger;
  bool ok = false;
  std::string error;
  core::DiagnosisReport report;
  std::vector<uint64_t> confirmed_rsqls;
  size_t repairs_applied = 0;
  /// Time-to-repair: seconds from anomaly onset to the first successful
  /// supervised application. Negative when nothing was applied.
  double ttr_sec = -1.0;
};

struct SchedulerStats {
  size_t triggers_accepted = 0;
  size_t triggers_suppressed = 0;
  size_t diagnoses_ok = 0;
  size_t diagnoses_failed = 0;
  size_t repairs_applied = 0;
  size_t repairs_rejected = 0;
};

/// Serializable mirror of a DiagnosisScheduler's mutable state, for the
/// durable service's checkpoints (see online/service_state.h). Pending
/// diagnoses survive a restart with their planned windows intact — the
/// open-diagnosis-window retention floor is therefore restored too.
struct SchedulerPendingState {
  AnomalyTrigger trigger;
  int64_t due_sec = 0;
};

struct SchedulerState {
  std::vector<SchedulerPendingState> pending;
  /// TriggerDeduper: instance id -> last anomalous activity second.
  std::vector<std::pair<uint32_t, int64_t>> dedup_activity;
  SchedulerStats stats;
  std::vector<DiagnosisOutcome> outcomes;
};

/// Cooldown/hysteresis trigger deduplication, keyed by instance id: one
/// instance's cooldown can never suppress another instance's confirming
/// trigger. A trigger whose onset falls within `cooldown_sec` of *its own
/// instance's* last anomalous activity is a re-detection of the same
/// incident and is suppressed; activity before any accepted trigger never
/// anchors the cooldown (it would suppress the confirming trigger itself).
class TriggerDeduper {
 public:
  explicit TriggerDeduper(int64_t cooldown_sec)
      : cooldown_sec_(cooldown_sec) {}

  /// Accepts or suppresses; an accepted trigger (re-)anchors its
  /// instance's hysteresis horizon.
  bool Accept(const AnomalyTrigger& trigger);

  /// Extends an existing incident's horizon (no-op before the instance's
  /// first accepted trigger).
  void NoteActivity(uint32_t instance_id, int64_t sec);

  /// Checkpoint support: the activity map as (instance id, last activity
  /// second) pairs in id order.
  std::vector<std::pair<uint32_t, int64_t>> ExportActivity() const;
  void ImportActivity(const std::vector<std::pair<uint32_t, int64_t>>& pairs);

 private:
  int64_t cooldown_sec_;
  /// instance id -> last anomalous activity second. Absence means the
  /// instance has no accepted trigger yet.
  std::map<uint32_t, int64_t> last_activity_;
};

/// Everything RunWindowedDiagnosis needs besides the trigger itself. The
/// fleet's diagnoser pool runs many of these concurrently for *different*
/// instances; all mutable state (supervisor, rule engine) must therefore
/// be per-instance or absent.
struct WindowedDiagnosisContext {
  StreamIngestor* ingestor = nullptr;
  const LogStore* archive = nullptr;
  const SchedulerOptions* options = nullptr;
  repair::RepairSupervisor* supervisor = nullptr;     // null = diagnose-only
  const core::HistoryProvider* history = nullptr;      // must be non-null
  repair::RepairRuleEngine* rules = nullptr;           // must be non-null
};

/// Repair accounting of one diagnosis (merged into SchedulerStats by the
/// caller; kept separate so concurrent fleet diagnoses don't race on a
/// shared stats struct).
struct DiagnosisSideStats {
  size_t repairs_applied = 0;
  size_t repairs_rejected = 0;
};

/// Runs one complete windowed diagnosis for an accepted trigger: snapshots
/// the window [onset - delta_s, window_end) from the ingestor's rings and
/// the archive, runs Diagnose(), builds the report and (optionally) hands
/// confirmed R-SQLs to the repair supervisor. The window end is fixed by
/// the caller at trigger time, so the result is independent of *when* the
/// diagnosis actually runs — the property the fleet's bounded pool relies
/// on for schedule-invariant fingerprints.
DiagnosisOutcome RunWindowedDiagnosis(const WindowedDiagnosisContext& ctx,
                                      const AnomalyTrigger& trigger,
                                      int64_t window_end_sec,
                                      DiagnosisSideStats* side);

/// Turns confirmed anomaly triggers into full diagnoses: snapshots the
/// window from the ingestor's rings and the archive, assembles a
/// DiagnosisInput, runs Diagnose() (which fans out on its internal thread
/// pool), builds the report, and hands confirmed R-SQLs to the repair
/// supervisor. Overlapping triggers of one incident are deduplicated with
/// cooldown/hysteresis; an accepted trigger is diagnosed exactly once.
///
/// Not internally synchronized: OnTrigger / NoteAnomalousActivity / Poll /
/// Drain belong to the service's per-second processing thread (producers
/// touch only the ingestor).
class DiagnosisScheduler {
 public:
  /// `archive` provides the window's query-log records via SnapshotRange
  /// and resolves template texts; its catalog must be registered before
  /// streaming starts. `supervisor` may be null (diagnose-only).
  /// `history` may be null (no history verification).
  DiagnosisScheduler(StreamIngestor* ingestor, const LogStore* archive,
                     const SchedulerOptions& options,
                     repair::RepairSupervisor* supervisor = nullptr,
                     const core::HistoryProvider* history = nullptr);

  /// Accepts or suppresses a trigger. Accepted triggers are queued for
  /// diagnosis at trigger_sec + diagnose_delay_sec. Cooldown state is
  /// keyed by trigger.instance_id: suppression never crosses instances.
  bool OnTrigger(const AnomalyTrigger& trigger);

  /// Extends the hysteresis horizon of `instance_id`: call once per second
  /// while that instance's detector has a flagged run open, so a run that
  /// briefly closes mid-anomaly cannot re-trigger the same incident after
  /// the cooldown anchor went stale.
  void NoteAnomalousActivity(int64_t sec, uint32_t instance_id = 0);

  /// Runs every queued diagnosis whose due time has arrived. Returns the
  /// completed outcomes (also appended to outcomes()).
  std::vector<DiagnosisOutcome> Poll(int64_t now_sec);

  /// Graceful drain: runs every queued diagnosis now, due or not. Each
  /// keeps its planned window (fixed at trigger time); metrics beyond the
  /// watermark show up as gaps, accounted in DataQuality as usual.
  std::vector<DiagnosisOutcome> Drain();

  /// Oldest millisecond any queued diagnosis still needs from the archive
  /// (onset - delta_s), or nullopt when nothing is queued. Retention must
  /// not trim past this.
  std::optional<int64_t> open_window_floor_ms() const;

  size_t pending() const { return pending_.size(); }
  const std::vector<DiagnosisOutcome>& outcomes() const { return outcomes_; }
  const SchedulerStats& stats() const { return stats_; }

  /// Checkpoint support: a scheduler restored from an exported state polls,
  /// suppresses and diagnoses bit-identically to the one it came from.
  SchedulerState ExportState() const;
  void ImportState(const SchedulerState& state);

 private:
  struct Pending {
    AnomalyTrigger trigger;
    int64_t due_sec = 0;
  };

  DiagnosisOutcome RunDiagnosis(const Pending& pending);

  StreamIngestor* ingestor_;
  const LogStore* archive_;
  SchedulerOptions options_;
  repair::RepairSupervisor* supervisor_;
  const core::HistoryProvider* history_;
  core::MapHistoryProvider empty_history_;
  repair::RepairRuleEngine rules_ = repair::RepairRuleEngine::Default();

  std::deque<Pending> pending_;
  std::vector<DiagnosisOutcome> outcomes_;
  TriggerDeduper deduper_;
  SchedulerStats stats_;
};

}  // namespace pinsql::online

#endif  // PINSQL_ONLINE_SCHEDULER_H_
