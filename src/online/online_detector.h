#ifndef PINSQL_ONLINE_ONLINE_DETECTOR_H_
#define PINSQL_ONLINE_ONLINE_DETECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "anomaly/detectors.h"
#include "detect/ensemble.h"

namespace pinsql::online {

/// One confirmed anomaly onset, ready to hand to the DiagnosisScheduler.
struct AnomalyTrigger {
  /// Instance the trigger belongs to. Single-instance deployments leave
  /// the default (0); the fleet service stamps its per-instance id so
  /// cooldown state and correlation are keyed correctly.
  uint32_t instance_id = 0;
  /// First second of the flagged run (where the anomaly started).
  int64_t onset_sec = 0;
  /// Second at which the detector confirmed and fired (>= onset_sec); the
  /// difference is the detection latency.
  int64_t trigger_sec = 0;
  /// The confirming detector's run peak: robust/residual |z| units for
  /// threshold runs, CUSUM units for drift confirmations.
  double severity = 0.0;
  /// p-value of the confirming Pettitt change-point test; 1.0 when a
  /// forecaster confirmed (no change-point test ran).
  double pettitt_p = 1.0;
  /// Which ensemble member confirmed ("robust_z_pettitt", "ewma", "holt",
  /// "holt_winters", "ewma_sketch") — the per-detector attribution that
  /// flows into reports, the serve API and replay fingerprints.
  std::string source = "robust_z_pettitt";
};

struct OnlineDetectorOptions {
  /// Screening detector (robust z against a frozen clean baseline).
  anomaly::DetectorOptions screen;
  /// Disable to run the configured forecasters without the robust-z screen
  /// — ablation studies only; production keeps the screen as the fast path
  /// for sharp anomalies.
  bool use_screen = true;
  /// A flagged up-run must persist this many consecutive samples before the
  /// confirmation test runs — one- and two-sample blips never page anyone
  /// (noisy integer-valued session counts routinely throw single-sample
  /// z-spikes that Pettitt alone would confirm).
  size_t confirm_run_len = 3;
  /// Trailing samples the Pettitt confirmation test sees. Deliberately
  /// short: Pettitt's significance is rank-based, so an n-sample window
  /// needs roughly 0.8*sqrt(n) post-change samples before p can clear
  /// alpha no matter how extreme the shift is — a short window is what
  /// keeps detection latency in the single-digit seconds. (It is also
  /// O(n^2) per invocation, run only on flagged seconds.)
  size_t pettitt_window = 16;
  /// Minimum trailing samples before Pettitt can confirm.
  size_t pettitt_min_samples = 12;
  /// Pettitt significance level for confirmation.
  double pettitt_alpha = 0.1;
  /// Forecasting ensemble members run alongside the screen (empty = the
  /// legacy robust-z + Pettitt pipeline, bit-identical). See
  /// detect::DefaultEnsembleForecasters() for the stock drift-catching
  /// configuration.
  std::vector<detect::ForecastOptions> forecasters;
};

struct OnlineDetectorStats {
  size_t samples = 0;
  /// Non-finite samples replaced by the previous finite value.
  size_t gaps_carried = 0;
  /// Non-finite samples before the first finite one (nothing to carry).
  size_t gaps_skipped = 0;
  size_t triggers = 0;
  /// Confirmation attempts where Pettitt did not find a significant upward
  /// change point (the screen keeps retrying while the run persists).
  size_t pettitt_rejections = 0;
  /// Telemetry gaps that outlived the entire robust-z baseline window and
  /// reset the detector (the pre-gap baseline said nothing about the
  /// post-gap world).
  size_t baseline_resets = 0;
};

/// Serializable mirror of an OnlineAnomalyDetector's mutable state, for
/// the durable service's checkpoints (see online/service_state.h).
struct OnlineDetectorState {
  detect::EnsembleSnapshot ensemble;
  double last_finite = 0.0;
  bool seen_finite = false;
  uint64_t consecutive_gaps = 0;
  std::vector<int64_t> latencies;
  OnlineDetectorStats stats;
};

/// Streaming active-session anomaly detector: a first-to-confirm ensemble
/// of the cheap per-sample robust z-score screen (confirmed by the Pettitt
/// change-point test) and any configured forecasting detectors (EWMA /
/// Holt / Holt-Winters / sketch residual screens with CUSUM drift
/// accumulation). Fires at most one trigger per incident, so one sustained
/// anomaly can never produce duplicate diagnoses; the scheduler's cooldown
/// handles incidents that briefly close mid-anomaly.
///
/// Feed it exactly one sample per second, in order. A telemetry gap (NaN)
/// is carried forward from the last finite sample so the ensemble's clock
/// stays aligned with wall seconds and a gap can neither start nor end a
/// run by itself — unless the gap outlives the entire baseline window, in
/// which case the detector resets and re-learns from the post-gap stream
/// (a frozen pre-gap baseline would score the new world against stale
/// statistics indefinitely).
class OnlineAnomalyDetector {
 public:
  explicit OnlineAnomalyDetector(const OnlineDetectorOptions& options);

  /// Observes the active-session value for `sec`. Seconds must be
  /// consecutive from the first call. Returns a trigger when this sample
  /// confirms a new anomaly.
  std::optional<AnomalyTrigger> Observe(int64_t sec, double active_session);

  /// Detection latency (trigger_sec - onset_sec) of every trigger fired,
  /// in firing order.
  const std::vector<int64_t>& latencies_sec() const { return latencies_; }

  const OnlineDetectorStats& stats() const { return stats_; }

  /// True while any ensemble member currently has a flagged run open.
  bool in_run() const;

  /// Checkpoint support: a detector restored from an exported state
  /// observes the rest of the stream bit-identically.
  OnlineDetectorState ExportState() const;
  void ImportState(const OnlineDetectorState& state);

 private:
  OnlineDetectorOptions options_;
  detect::EnsembleDetector ensemble_;
  double last_finite_ = 0.0;
  bool seen_finite_ = false;
  uint64_t consecutive_gaps_ = 0;
  std::vector<int64_t> latencies_;
  OnlineDetectorStats stats_;
};

/// Builds the ensemble configuration an OnlineDetectorOptions describes.
detect::EnsembleOptions MakeEnsembleOptions(
    const OnlineDetectorOptions& options);

}  // namespace pinsql::online

#endif  // PINSQL_ONLINE_ONLINE_DETECTOR_H_
