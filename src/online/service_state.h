#ifndef PINSQL_ONLINE_SERVICE_STATE_H_
#define PINSQL_ONLINE_SERVICE_STATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "logstore/log_store.h"
#include "online/online_detector.h"
#include "online/scheduler.h"
#include "online/stream_ingestor.h"

namespace pinsql::online {

/// Complete serializable state of an OnlineService, captured by
/// OnlineService::ExportState() and restored by ImportState(): a restored
/// service continues the stream bit-identically to one that never stopped.
/// The component states (IngestorState, OnlineDetectorState,
/// SchedulerState) are declared next to their owners; this header only
/// assembles them. The durable store checkpoints this struct (see
/// store/checkpoint.h and DESIGN.md §11).
struct ServiceState {
  IngestorState ingestor;
  OnlineDetectorState detector;
  SchedulerState scheduler;

  bool processed_any = false;
  int64_t last_processed_sec = 0;
  int64_t retention_sweeps = 0;
  uint64_t records_retired = 0;
  int64_t seconds_processed = 0;

  /// Archive contents in arrival order (ties keep insertion order, which
  /// LogStore's stable sort preserves — required for bit-identical window
  /// snapshots after a restore).
  std::vector<QueryLogRecord> archive_records;
  /// Catalog sorted by sql_id so exported state is deterministic.
  std::vector<std::pair<uint64_t, TemplateCatalogEntry>> catalog;
};

}  // namespace pinsql::online

#endif  // PINSQL_ONLINE_SERVICE_STATE_H_
