#include "online/stream_ingestor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace pinsql::online {

StreamIngestor::StreamIngestor(const IngestorOptions& options)
    : options_(options),
      metric_ring_(static_cast<size_t>(std::max<int64_t>(options.window_sec, 1))),
      watermark_(std::numeric_limits<int64_t>::min()) {
  const size_t num_shards = std::max<size_t>(options_.num_shards, 1);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring.resize(static_cast<size_t>(
        std::max<int64_t>(options_.window_sec, 1)));
    shards_.push_back(std::move(shard));
  }
}

bool StreamIngestor::IngestRecord(const QueryLogRecord& record) {
  Shard& shard = *shards_[record.sql_id % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.queue_mu);
  if (shard.queue.size() >= options_.shard_queue_capacity) {
    ++shard.dropped_backpressure;
    return false;
  }
  shard.queue.push_back(record);
  ++shard.enqueued;
  return true;
}

bool StreamIngestor::IngestMetrics(const PerfSample& sample) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  const int64_t mark = watermark_.load(std::memory_order_relaxed);
  if (mark != std::numeric_limits<int64_t>::min() &&
      sample.sec <= mark - options_.window_sec) {
    ++metric_samples_dropped_;
    return false;
  }
  MetricBucket& bucket =
      metric_ring_[static_cast<size_t>(sample.sec %
                                       options_.window_sec)];
  if (bucket.sec > sample.sec) {
    // The slot was already recycled for a newer second.
    ++metric_samples_dropped_;
    return false;
  }
  bucket.sec = sample.sec;
  bucket.sample = sample;
  ++metric_samples_;
  if (sample.sec > mark) {
    watermark_.store(sample.sec, std::memory_order_relaxed);
  }
  return true;
}

void StreamIngestor::FoldRecord(Shard* shard, const QueryLogRecord& record,
                                int64_t watermark) {
  const int64_t sec = record.arrival_ms / 1000;
  // Strictly older than the grace horizon: a record at exactly
  // watermark - late_grace_sec is still on time.
  if (watermark != std::numeric_limits<int64_t>::min() &&
      sec < watermark - options_.late_grace_sec) {
    ++shard->dropped_late;
    return;
  }
  Bucket& bucket =
      shard->ring[static_cast<size_t>(sec % options_.window_sec)];
  if (bucket.sec != sec) {
    if (bucket.sec > sec) {
      // Bucket already recycled for a newer second: the record is too late.
      ++shard->dropped_late;
      return;
    }
    bucket.sec = sec;
    bucket.cells.clear();
  }
  Cell* cell = nullptr;
  for (auto& [id, c] : bucket.cells) {
    if (id == record.sql_id) {
      cell = &c;
      break;
    }
  }
  if (cell == nullptr) {
    bucket.cells.emplace_back(record.sql_id, Cell{});
    cell = &bucket.cells.back().second;
  }
  cell->count += 1.0;
  cell->total_response_ms += record.response_ms;
  cell->examined_rows += static_cast<double>(record.examined_rows);
  ++shard->folded;
}

size_t StreamIngestor::Pump() {
  // Everything one pump folds is archived in ONE AppendBatch, concatenated
  // in shard-index order (the same order the per-shard folds ran). A
  // concurrent LogStore::SnapshotRange therefore observes a pump
  // atomically — all of its records or none — which is also the granularity
  // the durable WAL journals (frame == batch).
  std::vector<QueryLogRecord> pumped;
  const int64_t mark = watermark_.load(std::memory_order_relaxed);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::vector<QueryLogRecord> staged;
    {
      // fold_mu is held across the swap *and* the fold, so a record is
      // always visible to stats() as either staged (in the queue) or
      // folded/late — never in an invisible in-between (see the IngestStats
      // consistency contract).
      std::lock_guard<std::mutex> fold_lock(shard.fold_mu);
      {
        std::lock_guard<std::mutex> queue_lock(shard.queue_mu);
        staged.swap(shard.queue);
      }
      if (staged.empty()) continue;
      for (const QueryLogRecord& record : staged) {
        FoldRecord(&shard, record, mark);
      }
    }
    if (pumped.empty()) {
      pumped = std::move(staged);
    } else {
      pumped.insert(pumped.end(), staged.begin(), staged.end());
    }
  }
  if (archive_ != nullptr && !pumped.empty()) archive_->AppendBatch(pumped);
  const size_t folded = pumped.size();
  PINSQL_OBS_COUNT("online.ingest_pumped", folded);
  return folded;
}

std::optional<int64_t> StreamIngestor::watermark_sec() const {
  const int64_t mark = watermark_.load(std::memory_order_relaxed);
  if (mark == std::numeric_limits<int64_t>::min()) return std::nullopt;
  return mark;
}

std::optional<PerfSample> StreamIngestor::SampleAt(int64_t sec) const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  const MetricBucket& bucket =
      metric_ring_[static_cast<size_t>(sec % options_.window_sec)];
  if (bucket.sec != sec) return std::nullopt;
  return bucket.sample;
}

TemplateMetricsStore StreamIngestor::SnapshotTemplates(int64_t t0_sec,
                                                       int64_t t1_sec) const {
  TemplateMetricsStore store(t0_sec, t1_sec, /*interval_sec=*/1);
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.fold_mu);
    for (int64_t sec = t0_sec; sec < t1_sec; ++sec) {
      const Bucket& bucket =
          shard.ring[static_cast<size_t>(sec % options_.window_sec)];
      if (bucket.sec != sec) continue;
      for (const auto& [sql_id, cell] : bucket.cells) {
        store.AccumulateCell(sql_id, sec, cell.count, cell.total_response_ms,
                             cell.examined_rows);
      }
    }
  }
  return store;
}

WindowMetrics StreamIngestor::SnapshotMetrics(int64_t t0_sec,
                                              int64_t t1_sec) const {
  const size_t n = t1_sec > t0_sec ? static_cast<size_t>(t1_sec - t0_sec) : 0;
  const double gap = std::numeric_limits<double>::quiet_NaN();
  WindowMetrics out;
  out.active_session = TimeSeries(t0_sec, 1, n);
  TimeSeries cpu(t0_sec, 1, n), iops(t0_sec, 1, n), row_lock(t0_sec, 1, n),
      mdl(t0_sec, 1, n);
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (size_t i = 0; i < n; ++i) {
    const int64_t sec = t0_sec + static_cast<int64_t>(i);
    const MetricBucket& bucket =
        metric_ring_[static_cast<size_t>(sec % options_.window_sec)];
    if (bucket.sec == sec) {
      out.active_session[i] = bucket.sample.active_session;
      cpu[i] = bucket.sample.cpu_usage;
      iops[i] = bucket.sample.iops_usage;
      row_lock[i] = bucket.sample.row_lock_waits;
      mdl[i] = bucket.sample.mdl_waits;
    } else {
      out.active_session[i] = gap;
      cpu[i] = gap;
      iops[i] = gap;
      row_lock[i] = gap;
      mdl[i] = gap;
    }
  }
  out.helpers.emplace("cpu_usage", std::move(cpu));
  out.helpers.emplace("iops_usage", std::move(iops));
  out.helpers.emplace("row_lock_waits", std::move(row_lock));
  out.helpers.emplace("mdl_waits", std::move(mdl));
  return out;
}

std::optional<int64_t> StreamIngestor::window_floor_sec() const {
  const auto mark = watermark_sec();
  if (!mark.has_value()) return std::nullopt;
  return *mark - options_.window_sec + 1;
}

IngestorState StreamIngestor::ExportState() const {
  // Same consistent-cut locking discipline as stats(): every fold_mu, then
  // every queue_mu, then the metrics mutex.
  std::vector<std::unique_lock<std::mutex>> fold_locks;
  fold_locks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    fold_locks.emplace_back(shard_ptr->fold_mu);
  }
  std::vector<std::unique_lock<std::mutex>> queue_locks;
  queue_locks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    queue_locks.emplace_back(shard_ptr->queue_mu);
  }
  IngestorState state;
  state.shards.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    IngestorShardState shard_state;
    shard_state.queue = shard.queue;
    shard_state.enqueued = shard.enqueued;
    shard_state.dropped_backpressure = shard.dropped_backpressure;
    shard_state.folded = shard.folded;
    shard_state.dropped_late = shard.dropped_late;
    for (const Bucket& bucket : shard.ring) {
      if (bucket.sec < 0) continue;
      IngestorBucketState bucket_state;
      bucket_state.sec = bucket.sec;
      bucket_state.cells.reserve(bucket.cells.size());
      for (const auto& [sql_id, cell] : bucket.cells) {
        bucket_state.cells.push_back(
            {sql_id, cell.count, cell.total_response_ms, cell.examined_rows});
      }
      shard_state.buckets.push_back(std::move(bucket_state));
    }
    state.shards.push_back(std::move(shard_state));
  }
  queue_locks.clear();
  fold_locks.clear();
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (const MetricBucket& bucket : metric_ring_) {
    if (bucket.sec < 0) continue;
    state.metric_buckets.push_back({bucket.sec, bucket.sample});
  }
  state.metric_samples = metric_samples_;
  state.metric_samples_dropped = metric_samples_dropped_;
  state.watermark = watermark_.load(std::memory_order_relaxed);
  return state;
}

Status StreamIngestor::ImportState(const IngestorState& state) {
  if (state.shards.size() != shards_.size()) {
    return Status::InvalidArgument(
        "ingestor state has " + std::to_string(state.shards.size()) +
        " shards, ingestor has " + std::to_string(shards_.size()));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    const IngestorShardState& shard_state = state.shards[i];
    shard.queue = shard_state.queue;
    shard.enqueued = static_cast<size_t>(shard_state.enqueued);
    shard.dropped_backpressure =
        static_cast<size_t>(shard_state.dropped_backpressure);
    shard.folded = static_cast<size_t>(shard_state.folded);
    shard.dropped_late = static_cast<size_t>(shard_state.dropped_late);
    for (Bucket& bucket : shard.ring) {
      bucket.sec = -1;
      bucket.cells.clear();
    }
    for (const IngestorBucketState& bucket_state : shard_state.buckets) {
      if (bucket_state.sec < 0) {
        return Status::InvalidArgument("ingestor bucket with negative sec");
      }
      Bucket& bucket = shard.ring[static_cast<size_t>(
          bucket_state.sec % options_.window_sec)];
      bucket.sec = bucket_state.sec;
      bucket.cells.clear();
      bucket.cells.reserve(bucket_state.cells.size());
      for (const IngestorCellState& cell : bucket_state.cells) {
        bucket.cells.emplace_back(
            cell.sql_id,
            Cell{cell.count, cell.total_response_ms, cell.examined_rows});
      }
    }
  }
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (MetricBucket& bucket : metric_ring_) bucket.sec = -1;
  for (const IngestorMetricBucketState& bucket_state : state.metric_buckets) {
    if (bucket_state.sec < 0) {
      return Status::InvalidArgument("metric bucket with negative sec");
    }
    MetricBucket& bucket = metric_ring_[static_cast<size_t>(
        bucket_state.sec % options_.window_sec)];
    bucket.sec = bucket_state.sec;
    bucket.sample = bucket_state.sample;
  }
  metric_samples_ = static_cast<size_t>(state.metric_samples);
  metric_samples_dropped_ = static_cast<size_t>(state.metric_samples_dropped);
  watermark_.store(state.watermark, std::memory_order_relaxed);
  return Status::OK();
}

IngestStats StreamIngestor::stats() const {
  // Consistent cut: hold every shard's fold_mu, then every queue_mu, and
  // only then read. With all locks held no record can move between the
  // staged / folded / dropped states, so the totals satisfy
  // enqueued == folded + dropped_late + staged exactly — a fleet summing
  // per-instance snapshots never sees a torn read. Lock order (fold before
  // queue, shards in index order) matches Pump(), so this cannot deadlock.
  std::vector<std::unique_lock<std::mutex>> fold_locks;
  fold_locks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    fold_locks.emplace_back(shard_ptr->fold_mu);
  }
  std::vector<std::unique_lock<std::mutex>> queue_locks;
  queue_locks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    queue_locks.emplace_back(shard_ptr->queue_mu);
  }
  IngestStats stats;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    stats.records_enqueued += shard.enqueued;
    stats.records_dropped_backpressure += shard.dropped_backpressure;
    stats.records_folded += shard.folded;
    stats.records_dropped_late += shard.dropped_late;
    stats.records_staged += shard.queue.size();
  }
  queue_locks.clear();
  fold_locks.clear();
  std::lock_guard<std::mutex> lock(metrics_mu_);
  stats.metric_samples = metric_samples_;
  stats.metric_samples_dropped = metric_samples_dropped_;
  return stats;
}

}  // namespace pinsql::online
