#include "online/stream_ingestor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace pinsql::online {

namespace {

constexpr uint32_t kNoSlot = 0xFFFFFFFFu;
/// Below this many templates in a bucket, a linear scan over the
/// contiguous ids column beats hashing.
constexpr size_t kLinearSlots = 8;

inline size_t HashId(uint64_t id) {
  uint64_t h = id * 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>(h ^ (h >> 29));
}

}  // namespace

size_t StreamIngestor::Bucket::FindOrAddSlot(uint64_t id) {
  const size_t n = ids.size();
  if (lookup.empty()) {
    for (size_t i = 0; i < n; ++i) {
      if (ids[i] == id) return i;
    }
  } else {
    const size_t mask = lookup.size() - 1;
    for (size_t p = HashId(id) & mask;; p = (p + 1) & mask) {
      const uint32_t slot = lookup[p];
      if (slot == kNoSlot) break;
      if (ids[slot] == id) return slot;
    }
  }
  ids.push_back(id);
  count.push_back(0.0);
  total_response_ms.push_back(0.0);
  examined_rows.push_back(0.0);
  if (ids.size() > kLinearSlots && ids.size() * 4 >= lookup.size()) {
    RebuildLookup();
  } else if (!lookup.empty()) {
    const size_t mask = lookup.size() - 1;
    size_t p = HashId(id) & mask;
    while (lookup[p] != kNoSlot) p = (p + 1) & mask;
    lookup[p] = static_cast<uint32_t>(n);
  }
  return n;
}

void StreamIngestor::Bucket::RebuildLookup() {
  size_t cap = 64;
  while (cap < ids.size() * 8) cap <<= 1;
  lookup.assign(cap, kNoSlot);
  const size_t mask = cap - 1;
  for (size_t i = 0; i < ids.size(); ++i) {
    size_t p = HashId(ids[i]) & mask;
    while (lookup[p] != kNoSlot) p = (p + 1) & mask;
    lookup[p] = static_cast<uint32_t>(i);
  }
}

void StreamIngestor::Bucket::ClearCells() {
  ids.clear();
  count.clear();
  total_response_ms.clear();
  examined_rows.clear();
  lookup.clear();
}

StreamIngestor::StreamIngestor(const IngestorOptions& options,
                               std::shared_ptr<IngestChunkPool> pool)
    : options_(options),
      pool_(pool != nullptr ? std::move(pool)
                            : std::make_shared<IngestChunkPool>()),
      metric_ring_(static_cast<size_t>(std::max<int64_t>(options.window_sec, 1))),
      watermark_(std::numeric_limits<int64_t>::min()) {
  options_.window_sec = std::max<int64_t>(options_.window_sec, 1);
  const size_t num_shards = std::max<size_t>(options_.num_shards, 1);
  if ((num_shards & (num_shards - 1)) == 0) {
    shard_mask_ = static_cast<uint64_t>(num_shards - 1);
  }
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring.resize(static_cast<size_t>(options_.window_sec));
    shards_.push_back(std::move(shard));
  }
}

StreamIngestor::~StreamIngestor() {
  // Staged chunks go back to the (possibly shared) pool, not down with us.
  for (auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->queue_mu);
    DropStagedLocked(shard_ptr.get());
  }
}

void StreamIngestor::DropStagedLocked(Shard* shard) {
  if (shard->head != nullptr) {
    pool_->ReleaseList(shard->head);
    shard->head = nullptr;
    shard->tail = nullptr;
    shard->staged = 0;
  }
}

bool StreamIngestor::IngestRecord(const QueryLogRecord& record) {
  Shard& shard = *shards_[ShardIndex(record.sql_id)];
  std::lock_guard<std::mutex> lock(shard.queue_mu);
  ++shard.enqueued;
  if (shard.staged >= options_.shard_queue_capacity) {
    ++shard.dropped_backpressure;
    return false;
  }
  if (shard.tail == nullptr || shard.tail->full()) {
    IngestChunk* chunk = pool_->Acquire();
    if (shard.tail == nullptr) {
      shard.head = chunk;
    } else {
      shard.tail->next = chunk;
    }
    shard.tail = chunk;
  }
  shard.tail->push(record);
  ++shard.staged;
  return true;
}

bool StreamIngestor::IngestMetrics(const PerfSample& sample) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  const int64_t mark = watermark_.load(std::memory_order_relaxed);
  // Strict: a sample at exactly mark - window_sec + 1 (the window floor)
  // is the oldest retained instant; one second older misses the rings.
  if (mark != std::numeric_limits<int64_t>::min() &&
      sample.sec <= mark - options_.window_sec) {
    ++metric_samples_dropped_;
    return false;
  }
  MetricBucket& bucket = metric_ring_[RingIndex(sample.sec)];
  if (bucket.sec > sample.sec) {
    // The slot was already recycled for a newer second.
    ++metric_samples_dropped_;
    return false;
  }
  bucket.sec = sample.sec;
  bucket.sample = sample;
  ++metric_samples_;
  if (sample.sec > mark) {
    watermark_.store(sample.sec, std::memory_order_relaxed);
  }
  return true;
}

void StreamIngestor::FoldRecord(Shard* shard, const QueryLogRecord& record,
                                int64_t watermark, int64_t* cached_sec,
                                Bucket** cached_bucket) {
  const int64_t sec = record.arrival_ms / 1000;
  // Strictly older than the grace horizon: a record at exactly
  // watermark - late_grace_sec is still on time.
  if (watermark != std::numeric_limits<int64_t>::min() &&
      sec < watermark - options_.late_grace_sec) {
    ++shard->dropped_late;
    return;
  }
  Bucket* bucket;
  if (sec == *cached_sec && *cached_bucket != nullptr) {
    bucket = *cached_bucket;
  } else {
    bucket = &shard->ring[RingIndex(sec)];
    if (bucket->sec != sec) {
      if (bucket->sec > sec) {
        // Bucket already recycled for a newer second: the record is too
        // late.
        ++shard->dropped_late;
        return;
      }
      bucket->sec = sec;
      bucket->ClearCells();
    }
    *cached_sec = sec;
    *cached_bucket = bucket;
  }
  const size_t slot = bucket->FindOrAddSlot(record.sql_id);
  bucket->count[slot] += 1.0;
  bucket->total_response_ms[slot] += record.response_ms;
  bucket->examined_rows[slot] += static_cast<double>(record.examined_rows);
  ++shard->folded;
}

size_t StreamIngestor::Pump() {
  // Everything one pump folds is archived in ONE AppendSpans call, chunk
  // spans in shard-index order (the same order the per-shard folds ran). A
  // concurrent LogStore::SnapshotRange therefore observes a pump
  // atomically — all of its records or none — which is also the granularity
  // the durable WAL journals (frame == batch). The chunks themselves only
  // return to the pool after the archive has copied them.
  std::vector<std::pair<const QueryLogRecord*, size_t>> spans;
  IngestChunk* release_head = nullptr;
  IngestChunk** release_tail = &release_head;
  IngestChunk* release_last = nullptr;
  size_t release_count = 0;
  size_t pumped = 0;
  const int64_t mark = watermark_.load(std::memory_order_relaxed);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    IngestChunk* chunks = nullptr;
    {
      // fold_mu is held across the detach *and* the fold, so a record is
      // always visible to stats() as either staged (in the queue) or
      // folded/late — never in an invisible in-between (see the IngestStats
      // consistency contract).
      std::lock_guard<std::mutex> fold_lock(shard.fold_mu);
      {
        std::lock_guard<std::mutex> queue_lock(shard.queue_mu);
        chunks = shard.head;
        shard.head = nullptr;
        shard.tail = nullptr;
        shard.staged = 0;
      }
      if (chunks == nullptr) continue;
      int64_t cached_sec = kEmptySec;
      Bucket* cached_bucket = nullptr;
      for (const IngestChunk* c = chunks; c != nullptr; c = c->next) {
        for (uint32_t i = 0; i < c->size; ++i) {
          FoldRecord(&shard, c->items[i], mark, &cached_sec, &cached_bucket);
        }
      }
    }
    for (IngestChunk* c = chunks;; c = c->next) {
      spans.emplace_back(c->items, c->size);
      pumped += c->size;
      ++release_count;
      if (c->next == nullptr) {
        *release_tail = chunks;
        release_tail = &c->next;
        release_last = c;
        break;
      }
    }
  }
  if (archive_ != nullptr && !spans.empty()) archive_->AppendSpans(spans);
  if (release_head != nullptr) {
    // The span walk above already visited every chunk, so the pool can
    // splice the whole chain in O(1) without re-walking it under its lock.
    pool_->ReleaseChain(release_head, release_last, release_count);
  }
  PINSQL_OBS_COUNT("online.ingest_pumped", pumped);
  return pumped;
}

std::optional<int64_t> StreamIngestor::watermark_sec() const {
  const int64_t mark = watermark_.load(std::memory_order_relaxed);
  if (mark == std::numeric_limits<int64_t>::min()) return std::nullopt;
  return mark;
}

std::optional<PerfSample> StreamIngestor::SampleAt(int64_t sec) const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  const MetricBucket& bucket = metric_ring_[RingIndex(sec)];
  if (bucket.sec != sec) return std::nullopt;
  return bucket.sample;
}

TemplateMetricsStore StreamIngestor::SnapshotTemplates(int64_t t0_sec,
                                                       int64_t t1_sec) const {
  TemplateMetricsStore store(t0_sec, t1_sec, /*interval_sec=*/1);
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.fold_mu);
    for (int64_t sec = t0_sec; sec < t1_sec; ++sec) {
      const Bucket& bucket = shard.ring[RingIndex(sec)];
      if (bucket.sec != sec) continue;
      for (size_t i = 0; i < bucket.ids.size(); ++i) {
        store.AccumulateCell(bucket.ids[i], sec, bucket.count[i],
                             bucket.total_response_ms[i],
                             bucket.examined_rows[i]);
      }
    }
  }
  return store;
}

WindowMetrics StreamIngestor::SnapshotMetrics(int64_t t0_sec,
                                              int64_t t1_sec) const {
  const size_t n = t1_sec > t0_sec ? static_cast<size_t>(t1_sec - t0_sec) : 0;
  const double gap = std::numeric_limits<double>::quiet_NaN();
  WindowMetrics out;
  out.active_session = TimeSeries(t0_sec, 1, n);
  TimeSeries cpu(t0_sec, 1, n), iops(t0_sec, 1, n), row_lock(t0_sec, 1, n),
      mdl(t0_sec, 1, n);
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (size_t i = 0; i < n; ++i) {
    const int64_t sec = t0_sec + static_cast<int64_t>(i);
    const MetricBucket& bucket = metric_ring_[RingIndex(sec)];
    if (bucket.sec == sec) {
      out.active_session[i] = bucket.sample.active_session;
      cpu[i] = bucket.sample.cpu_usage;
      iops[i] = bucket.sample.iops_usage;
      row_lock[i] = bucket.sample.row_lock_waits;
      mdl[i] = bucket.sample.mdl_waits;
    } else {
      out.active_session[i] = gap;
      cpu[i] = gap;
      iops[i] = gap;
      row_lock[i] = gap;
      mdl[i] = gap;
    }
  }
  out.helpers.emplace("cpu_usage", std::move(cpu));
  out.helpers.emplace("iops_usage", std::move(iops));
  out.helpers.emplace("row_lock_waits", std::move(row_lock));
  out.helpers.emplace("mdl_waits", std::move(mdl));
  return out;
}

std::optional<int64_t> StreamIngestor::window_floor_sec() const {
  const auto mark = watermark_sec();
  if (!mark.has_value()) return std::nullopt;
  return *mark - options_.window_sec + 1;
}

IngestorState StreamIngestor::ExportState() const {
  // Same consistent-cut locking discipline as stats(): every fold_mu, then
  // every queue_mu, then the metrics mutex.
  std::vector<std::unique_lock<std::mutex>> fold_locks;
  fold_locks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    fold_locks.emplace_back(shard_ptr->fold_mu);
  }
  std::vector<std::unique_lock<std::mutex>> queue_locks;
  queue_locks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    queue_locks.emplace_back(shard_ptr->queue_mu);
  }
  IngestorState state;
  state.shards.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    IngestorShardState shard_state;
    shard_state.queue.reserve(shard.staged);
    for (const IngestChunk* c = shard.head; c != nullptr; c = c->next) {
      shard_state.queue.insert(shard_state.queue.end(), c->items,
                               c->items + c->size);
    }
    shard_state.enqueued = shard.enqueued;
    shard_state.dropped_backpressure = shard.dropped_backpressure;
    shard_state.folded = shard.folded;
    shard_state.dropped_late = shard.dropped_late;
    for (const Bucket& bucket : shard.ring) {
      if (bucket.sec == kEmptySec) continue;
      IngestorBucketState bucket_state;
      bucket_state.sec = bucket.sec;
      bucket_state.cells.reserve(bucket.ids.size());
      for (size_t i = 0; i < bucket.ids.size(); ++i) {
        bucket_state.cells.push_back({bucket.ids[i], bucket.count[i],
                                      bucket.total_response_ms[i],
                                      bucket.examined_rows[i]});
      }
      shard_state.buckets.push_back(std::move(bucket_state));
    }
    state.shards.push_back(std::move(shard_state));
  }
  queue_locks.clear();
  fold_locks.clear();
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (const MetricBucket& bucket : metric_ring_) {
    if (bucket.sec == kEmptySec) continue;
    state.metric_buckets.push_back({bucket.sec, bucket.sample});
  }
  state.metric_samples = metric_samples_;
  state.metric_samples_dropped = metric_samples_dropped_;
  state.watermark = watermark_.load(std::memory_order_relaxed);
  return state;
}

Status StreamIngestor::ImportState(const IngestorState& state) {
  if (state.shards.size() != shards_.size()) {
    return Status::InvalidArgument(
        "ingestor state has " + std::to_string(state.shards.size()) +
        " shards, ingestor has " + std::to_string(shards_.size()));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    const IngestorShardState& shard_state = state.shards[i];
    {
      std::lock_guard<std::mutex> lock(shard.queue_mu);
      DropStagedLocked(&shard);
      for (const QueryLogRecord& record : shard_state.queue) {
        if (shard.tail == nullptr || shard.tail->full()) {
          IngestChunk* chunk = pool_->Acquire();
          if (shard.tail == nullptr) {
            shard.head = chunk;
          } else {
            shard.tail->next = chunk;
          }
          shard.tail = chunk;
        }
        shard.tail->push(record);
        ++shard.staged;
      }
    }
    shard.enqueued = static_cast<size_t>(shard_state.enqueued);
    shard.dropped_backpressure =
        static_cast<size_t>(shard_state.dropped_backpressure);
    shard.folded = static_cast<size_t>(shard_state.folded);
    shard.dropped_late = static_cast<size_t>(shard_state.dropped_late);
    for (Bucket& bucket : shard.ring) {
      bucket.sec = kEmptySec;
      bucket.ClearCells();
    }
    for (const IngestorBucketState& bucket_state : shard_state.buckets) {
      if (bucket_state.sec == kEmptySec) {
        return Status::InvalidArgument("ingestor bucket with sentinel sec");
      }
      Bucket& bucket = shard.ring[RingIndex(bucket_state.sec)];
      bucket.sec = bucket_state.sec;
      bucket.ClearCells();
      for (const IngestorCellState& cell : bucket_state.cells) {
        const size_t slot = bucket.FindOrAddSlot(cell.sql_id);
        bucket.count[slot] = cell.count;
        bucket.total_response_ms[slot] = cell.total_response_ms;
        bucket.examined_rows[slot] = cell.examined_rows;
      }
    }
  }
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (MetricBucket& bucket : metric_ring_) bucket.sec = kEmptySec;
  for (const IngestorMetricBucketState& bucket_state : state.metric_buckets) {
    if (bucket_state.sec == kEmptySec) {
      return Status::InvalidArgument("metric bucket with sentinel sec");
    }
    MetricBucket& bucket = metric_ring_[RingIndex(bucket_state.sec)];
    bucket.sec = bucket_state.sec;
    bucket.sample = bucket_state.sample;
  }
  metric_samples_ = static_cast<size_t>(state.metric_samples);
  metric_samples_dropped_ = static_cast<size_t>(state.metric_samples_dropped);
  watermark_.store(state.watermark, std::memory_order_relaxed);
  return Status::OK();
}

IngestStats StreamIngestor::stats() const {
  // Consistent cut: hold every shard's fold_mu, then every queue_mu, and
  // only then read. With all locks held no record can move between the
  // staged / folded / dropped states, so the totals satisfy
  // enqueued == folded + dropped_late + dropped_backpressure + staged
  // exactly — a fleet summing per-instance snapshots never sees a torn
  // read. Lock order (fold before queue, shards in index order) matches
  // Pump(), so this cannot deadlock.
  std::vector<std::unique_lock<std::mutex>> fold_locks;
  fold_locks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    fold_locks.emplace_back(shard_ptr->fold_mu);
  }
  std::vector<std::unique_lock<std::mutex>> queue_locks;
  queue_locks.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    queue_locks.emplace_back(shard_ptr->queue_mu);
  }
  IngestStats stats;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    stats.records_enqueued += shard.enqueued;
    stats.records_dropped_backpressure += shard.dropped_backpressure;
    stats.records_folded += shard.folded;
    stats.records_dropped_late += shard.dropped_late;
    stats.records_staged += shard.staged;
  }
  queue_locks.clear();
  fold_locks.clear();
  std::lock_guard<std::mutex> lock(metrics_mu_);
  stats.metric_samples = metric_samples_;
  stats.metric_samples_dropped = metric_samples_dropped_;
  return stats;
}

}  // namespace pinsql::online
