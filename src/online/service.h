#ifndef PINSQL_ONLINE_SERVICE_H_
#define PINSQL_ONLINE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "logstore/log_store.h"
#include "online/online_detector.h"
#include "online/scheduler.h"
#include "online/service_state.h"
#include "online/stream_ingestor.h"
#include "repair/supervisor.h"
#include "util/status.h"

namespace pinsql::online {

struct ServiceOptions {
  IngestorOptions ingestor;
  OnlineDetectorOptions detector;
  SchedulerOptions scheduler;
  /// Archive retention sweep cadence in processed seconds (0 disables).
  int64_t retention_every_sec = 60;
  int64_t retention_ms = LogStore::kRetentionMs;
  /// Real-time mode: a background thread keeps pumping the ingestor's
  /// staging queues so producers never see deep queues between Advance()
  /// calls. Replay leaves this off — Advance() pumps deterministically.
  bool background_pump = false;
};

struct ServiceStats {
  IngestStats ingest;
  OnlineDetectorStats detector;
  SchedulerStats scheduler;
  /// Seconds the processing loop has consumed (Advance ticks).
  int64_t seconds_processed = 0;
  size_t retention_sweeps = 0;
  size_t records_retired = 0;
  /// Producer calls refused whole because the service was stopped or
  /// stopping. Mirrors the ingest layer's drop counters: a record that a
  /// producer handed to a closed service is counted, never half-applied.
  uint64_t records_rejected_stopped = 0;
  uint64_t samples_rejected_stopped = 0;
  uint64_t batches_rejected_stopped = 0;
};

/// The continuous online diagnosis service: glues ingestion, streaming
/// detection, scheduled diagnosis and supervised repair into one
/// start/stop lifecycle.
///
/// Threading: IngestRecord / IngestMetrics are safe from any number of
/// producer threads at any time between Start() and Stop(). Advance() is
/// the per-second processing loop — it drains staged records, feeds the
/// detector one sample per watermark second, polls the scheduler and
/// applies retention; calls serialize on an internal mutex. The clock is
/// *virtual*: it is the metric watermark, so driving the service from a
/// recorded stream replays bit-identically (no wall-clock reads anywhere
/// on the processing path).
class OnlineService {
 public:
  explicit OnlineService(const ServiceOptions& options,
                         repair::RepairSupervisor* supervisor = nullptr,
                         const core::HistoryProvider* history = nullptr);
  ~OnlineService();

  OnlineService(const OnlineService&) = delete;
  OnlineService& operator=(const OnlineService&) = delete;

  /// The archive the folded records land in. Register the template catalog
  /// here before Start().
  LogStore* archive() { return &archive_; }

  /// Starts accepting work (and the pump thread, in real-time mode).
  void Start();

  /// Graceful drain: stops the pump thread, folds every staged record,
  /// processes every watermark second not yet processed, runs every queued
  /// diagnosis. Idempotent.
  void Stop();

  bool running() const { return running_; }

  /// Thread-safe producer entry points. Return false when the record /
  /// sample was dropped (and counted). After Stop() begins its drain these
  /// reject cleanly (counted as rejected_stopped) instead of stranding
  /// records in the staging queues.
  bool IngestRecord(const QueryLogRecord& record);
  bool IngestMetrics(const PerfSample& sample);

  /// Atomic multi-item ingest with respect to Stop(): either every item is
  /// offered to the ingestor before the drain starts, or the whole batch
  /// is rejected (returns false, counted). Per-item backpressure/late
  /// drops within an accepted batch still apply and are counted by the
  /// ingestor as usual.
  bool AppendBatch(const std::vector<QueryLogRecord>& records,
                   const std::vector<PerfSample>& samples);

  /// Processes every watermark second not yet processed. Returns the
  /// diagnosis outcomes completed by this call.
  std::vector<DiagnosisOutcome> Advance();

  /// Every completed diagnosis so far, in completion order.
  const std::vector<DiagnosisOutcome>& outcomes() const;

  const OnlineAnomalyDetector& detector() const { return detector_; }
  const DiagnosisScheduler& scheduler() const { return scheduler_; }
  const StreamIngestor& ingestor() const { return ingestor_; }

  ServiceStats stats() const;

  /// Captures the complete mutable state (components, counters, archive,
  /// catalog) as one consistent cut under the advance mutex. A service
  /// restored from it continues the stream bit-identically. Safe while
  /// producers race; call between Advance() ticks.
  ServiceState ExportState() const;

  /// Restores an exported state. The service must be stopped and shaped
  /// identically (same ingestor shard count / window) to the exporter;
  /// FailedPrecondition / InvalidArgument otherwise.
  Status ImportState(const ServiceState& state);

 private:
  void ProcessSecond(int64_t sec, std::vector<DiagnosisOutcome>* completed);
  void PumpLoop();

  ServiceOptions options_;
  LogStore archive_;
  StreamIngestor ingestor_;
  OnlineAnomalyDetector detector_;
  DiagnosisScheduler scheduler_;

  /// Ingest gate ordering producers against Stop(): producers hold it
  /// shared for the duration of one call (or one whole batch); Stop()
  /// flips accepting_ under the exclusive side before draining, so every
  /// in-flight call/batch completes fully and every later one is rejected
  /// whole — a batch is never half-applied across the drain boundary.
  mutable std::shared_mutex ingest_gate_;
  bool accepting_ = false;  // guarded by ingest_gate_
  std::atomic<uint64_t> records_rejected_stopped_{0};
  std::atomic<uint64_t> samples_rejected_stopped_{0};
  std::atomic<uint64_t> batches_rejected_stopped_{0};

  mutable std::mutex advance_mu_;
  bool running_ = false;
  bool processed_any_ = false;
  int64_t last_processed_sec_ = 0;
  int64_t retention_sweeps_ = 0;
  size_t records_retired_ = 0;
  int64_t seconds_processed_ = 0;

  std::mutex pump_mu_;
  std::condition_variable pump_cv_;
  bool pump_stop_ = false;
  std::thread pump_thread_;
};

}  // namespace pinsql::online

#endif  // PINSQL_ONLINE_SERVICE_H_
