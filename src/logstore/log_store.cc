#include "logstore/log_store.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace pinsql {

LogStore::LogStore(const LogStore& other) {
  std::lock_guard<std::mutex> lock(other.sort_mu_);
  records_ = other.records_;
  sorted_ = other.sorted_;
  catalog_ = other.catalog_;
}

LogStore& LogStore::operator=(const LogStore& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(sort_mu_, other.sort_mu_);
  records_ = other.records_;
  sorted_ = other.sorted_;
  catalog_ = other.catalog_;
  return *this;
}

LogStore::LogStore(LogStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.sort_mu_);
  records_ = std::move(other.records_);
  sorted_ = other.sorted_;
  catalog_ = std::move(other.catalog_);
}

LogStore& LogStore::operator=(LogStore&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(sort_mu_, other.sort_mu_);
  records_ = std::move(other.records_);
  sorted_ = other.sorted_;
  catalog_ = std::move(other.catalog_);
  return *this;
}

void LogStore::Append(const QueryLogRecord& record) {
  std::lock_guard<std::mutex> lock(sort_mu_);
  if (!records_.empty() && record.arrival_ms < records_.back().arrival_ms) {
    sorted_ = false;
  }
  records_.push_back(record);
}

void LogStore::AppendBatch(const std::vector<QueryLogRecord>& records) {
  if (records.empty()) return;
  std::lock_guard<std::mutex> lock(sort_mu_);
  for (const QueryLogRecord& record : records) {
    if (!records_.empty() && record.arrival_ms < records_.back().arrival_ms) {
      sorted_ = false;
    }
    records_.push_back(record);
  }
}

void LogStore::RegisterTemplate(uint64_t sql_id, TemplateCatalogEntry entry) {
  catalog_.emplace(sql_id, std::move(entry));
}

const TemplateCatalogEntry* LogStore::FindTemplate(uint64_t sql_id) const {
  auto it = catalog_.find(sql_id);
  return it == catalog_.end() ? nullptr : &it->second;
}

size_t LogStore::size() const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  return records_.size();
}

void LogStore::EnsureSortedLocked() const {
  if (sorted_) return;
  PINSQL_OBS_COUNT("logstore.sort_triggers", 1);
  std::stable_sort(records_.begin(), records_.end(),
                   [](const QueryLogRecord& a, const QueryLogRecord& b) {
                     return a.arrival_ms < b.arrival_ms;
                   });
  sorted_ = true;
}

void LogStore::EnsureSorted() const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  EnsureSortedLocked();
}

void LogStore::ScanRange(
    int64_t t0_ms, int64_t t1_ms,
    const std::function<void(const QueryLogRecord&)>& fn) const {
  EnsureSorted();
  auto lo = std::lower_bound(records_.begin(), records_.end(), t0_ms,
                             [](const QueryLogRecord& r, int64_t t) {
                               return r.arrival_ms < t;
                             });
  size_t scanned = 0;
  for (auto it = lo; it != records_.end() && it->arrival_ms < t1_ms; ++it) {
    fn(*it);
    ++scanned;
  }
  PINSQL_OBS_COUNT("logstore.scans", 1);
  PINSQL_OBS_COUNT("logstore.records_scanned", scanned);
}

std::vector<QueryLogRecord> LogStore::Range(int64_t t0_ms,
                                            int64_t t1_ms) const {
  std::vector<QueryLogRecord> out;
  ScanRange(t0_ms, t1_ms,
            [&out](const QueryLogRecord& r) { out.push_back(r); });
  return out;
}

std::vector<QueryLogRecord> LogStore::SnapshotRange(int64_t t0_ms,
                                                    int64_t t1_ms) const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  EnsureSortedLocked();
  auto lo = std::lower_bound(records_.begin(), records_.end(), t0_ms,
                             [](const QueryLogRecord& r, int64_t t) {
                               return r.arrival_ms < t;
                             });
  auto hi = std::lower_bound(lo, records_.end(), t1_ms,
                             [](const QueryLogRecord& r, int64_t t) {
                               return r.arrival_ms < t;
                             });
  PINSQL_OBS_COUNT("logstore.snapshots", 1);
  PINSQL_OBS_COUNT("logstore.records_snapshotted",
                   static_cast<uint64_t>(hi - lo));
  return std::vector<QueryLogRecord>(lo, hi);
}

size_t LogStore::TrimBeforeLocked(int64_t cutoff_ms) {
  EnsureSortedLocked();
  auto lo = std::lower_bound(records_.begin(), records_.end(), cutoff_ms,
                             [](const QueryLogRecord& r, int64_t t) {
                               return r.arrival_ms < t;
                             });
  const size_t dropped = static_cast<size_t>(lo - records_.begin());
  records_.erase(records_.begin(), lo);
  PINSQL_OBS_COUNT("logstore.records_trimmed", dropped);
  return dropped;
}

size_t LogStore::TrimBefore(int64_t cutoff_ms) {
  std::lock_guard<std::mutex> lock(sort_mu_);
  return TrimBeforeLocked(cutoff_ms);
}

size_t LogStore::TrimExpired(int64_t now_ms, int64_t retention_ms) {
  PINSQL_OBS_COUNT("logstore.retention_trims", 1);
  return TrimBefore(now_ms - retention_ms);
}

size_t LogStore::TrimExpiredKeeping(int64_t now_ms, int64_t keep_from_ms,
                                    int64_t retention_ms) {
  PINSQL_OBS_COUNT("logstore.retention_trims", 1);
  return TrimBefore(std::min(now_ms - retention_ms, keep_from_ms));
}

void LogStore::ReplaceRecords(std::vector<QueryLogRecord> records) {
  std::lock_guard<std::mutex> lock(sort_mu_);
  records_ = std::move(records);
  sorted_ = false;
}

const std::vector<QueryLogRecord>& LogStore::SortedRecords() const {
  EnsureSorted();
  return records_;
}

}  // namespace pinsql
