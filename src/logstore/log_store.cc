#include "logstore/log_store.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace pinsql {

LogStore::LogStore(const LogStore& other) {
  std::lock_guard<std::mutex> lock(other.sort_mu_);
  for (const IndexEntry* e = other.IndexBegin(); e != other.IndexEnd(); ++e) {
    AppendLocked(other.Record(*e));
  }
  sorted_ = other.sorted_;
  catalog_ = other.catalog_;
}

LogStore& LogStore::operator=(const LogStore& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(sort_mu_, other.sort_mu_);
  arena_.Clear();
  index_.clear();
  head_ = 0;
  materialized_valid_ = false;
  for (const IndexEntry* e = other.IndexBegin(); e != other.IndexEnd(); ++e) {
    AppendLocked(other.Record(*e));
  }
  sorted_ = other.sorted_;
  catalog_ = other.catalog_;
  return *this;
}

LogStore::LogStore(LogStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.sort_mu_);
  arena_ = std::move(other.arena_);
  index_ = std::move(other.index_);
  head_ = other.head_;
  sorted_ = other.sorted_;
  materialized_ = std::move(other.materialized_);
  materialized_valid_ = other.materialized_valid_;
  catalog_ = std::move(other.catalog_);
  // The moved-from store is a well-defined empty store: Append() after the
  // move starts a fresh log instead of invoking unspecified vector state.
  other.index_.clear();
  other.head_ = 0;
  other.sorted_ = true;
  other.materialized_.clear();
  other.materialized_valid_ = false;
  other.catalog_.clear();
}

LogStore& LogStore::operator=(LogStore&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(sort_mu_, other.sort_mu_);
  arena_ = std::move(other.arena_);
  index_ = std::move(other.index_);
  head_ = other.head_;
  sorted_ = other.sorted_;
  materialized_ = std::move(other.materialized_);
  materialized_valid_ = other.materialized_valid_;
  catalog_ = std::move(other.catalog_);
  other.index_.clear();
  other.head_ = 0;
  other.sorted_ = true;
  other.materialized_.clear();
  other.materialized_valid_ = false;
  other.catalog_.clear();
  return *this;
}

void LogStore::AppendLocked(const QueryLogRecord& record) {
  if (index_.size() > head_ && record.arrival_ms < index_.back().arrival_ms) {
    sorted_ = false;
  }
  index_.push_back(IndexEntry{record.arrival_ms,
                              arena_.Create<QueryLogRecord>(record)});
  materialized_valid_ = false;
}

void LogStore::Append(const QueryLogRecord& record) {
  std::lock_guard<std::mutex> lock(sort_mu_);
  AppendLocked(record);
}

void LogStore::AppendBatch(const std::vector<QueryLogRecord>& records) {
  if (records.empty()) return;
  std::lock_guard<std::mutex> lock(sort_mu_);
  for (const QueryLogRecord& record : records) AppendLocked(record);
}

void LogStore::AppendSpans(
    const std::vector<std::pair<const QueryLogRecord*, size_t>>& spans) {
  std::lock_guard<std::mutex> lock(sort_mu_);
  for (const auto& [data, n] : spans) {
    for (size_t i = 0; i < n; ++i) AppendLocked(data[i]);
  }
}

void LogStore::RegisterTemplate(uint64_t sql_id, TemplateCatalogEntry entry) {
  catalog_.emplace(sql_id, std::move(entry));
}

const TemplateCatalogEntry* LogStore::FindTemplate(uint64_t sql_id) const {
  auto it = catalog_.find(sql_id);
  return it == catalog_.end() ? nullptr : &it->second;
}

size_t LogStore::size() const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  return index_.size() - head_;
}

void LogStore::EnsureSortedLocked() const {
  if (sorted_) return;
  PINSQL_OBS_COUNT("logstore.sort_triggers", 1);
  // Stable: ties on arrival_ms keep append order, the contract every
  // bit-identity suite leans on. Only the 16-byte index entries move; the
  // records stay pinned in their slabs.
  std::stable_sort(index_.begin() + static_cast<ptrdiff_t>(head_),
                   index_.end(),
                   [](const IndexEntry& a, const IndexEntry& b) {
                     return a.arrival_ms < b.arrival_ms;
                   });
  sorted_ = true;
}

void LogStore::EnsureSorted() const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  EnsureSortedLocked();
}

void LogStore::ScanRange(
    int64_t t0_ms, int64_t t1_ms,
    const std::function<void(const QueryLogRecord&)>& fn) const {
  EnsureSorted();
  const IndexEntry* lo =
      std::lower_bound(IndexBegin(), IndexEnd(), t0_ms,
                       [](const IndexEntry& e, int64_t t) {
                         return e.arrival_ms < t;
                       });
  size_t scanned = 0;
  for (const IndexEntry* e = lo; e != IndexEnd() && e->arrival_ms < t1_ms;
       ++e) {
    fn(Record(*e));
    ++scanned;
  }
  PINSQL_OBS_COUNT("logstore.scans", 1);
  PINSQL_OBS_COUNT("logstore.records_scanned", scanned);
}

std::vector<QueryLogRecord> LogStore::Range(int64_t t0_ms,
                                            int64_t t1_ms) const {
  std::vector<QueryLogRecord> out;
  ScanRange(t0_ms, t1_ms,
            [&out](const QueryLogRecord& r) { out.push_back(r); });
  return out;
}

std::vector<QueryLogRecord> LogStore::SnapshotRange(int64_t t0_ms,
                                                    int64_t t1_ms) const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  EnsureSortedLocked();
  const IndexEntry* lo =
      std::lower_bound(IndexBegin(), IndexEnd(), t0_ms,
                       [](const IndexEntry& e, int64_t t) {
                         return e.arrival_ms < t;
                       });
  const IndexEntry* hi =
      std::lower_bound(lo, IndexEnd(), t1_ms,
                       [](const IndexEntry& e, int64_t t) {
                         return e.arrival_ms < t;
                       });
  PINSQL_OBS_COUNT("logstore.snapshots", 1);
  PINSQL_OBS_COUNT("logstore.records_snapshotted",
                   static_cast<uint64_t>(hi - lo));
  std::vector<QueryLogRecord> out;
  out.reserve(static_cast<size_t>(hi - lo));
  for (const IndexEntry* e = lo; e != hi; ++e) out.push_back(Record(*e));
  return out;
}

size_t LogStore::TrimBeforeLocked(int64_t cutoff_ms) {
  EnsureSortedLocked();
  const IndexEntry* lo =
      std::lower_bound(IndexBegin(), IndexEnd(), cutoff_ms,
                       [](const IndexEntry& e, int64_t t) {
                         return e.arrival_ms < t;
                       });
  const size_t dropped = static_cast<size_t>(lo - IndexBegin());
  if (dropped == 0) return 0;
  for (const IndexEntry* e = IndexBegin(); e != lo; ++e) {
    // Releasing every record in a slab recycles the whole slab; expiry
    // walks arrival order, so slabs drain roughly front-to-back.
    arena_.Release(e->handle, sizeof(QueryLogRecord));
  }
  head_ += dropped;
  // Compact the index once the dead prefix outweighs the live tail, so trim
  // cost stays amortized O(1) per record instead of O(n) per sweep.
  if (head_ >= index_.size() - head_) {
    index_.erase(index_.begin(), index_.begin() + static_cast<ptrdiff_t>(head_));
    head_ = 0;
  }
  materialized_valid_ = false;
  PINSQL_OBS_COUNT("logstore.records_trimmed", dropped);
  return dropped;
}

size_t LogStore::TrimBefore(int64_t cutoff_ms) {
  std::lock_guard<std::mutex> lock(sort_mu_);
  return TrimBeforeLocked(cutoff_ms);
}

size_t LogStore::TrimExpired(int64_t now_ms, int64_t retention_ms) {
  PINSQL_OBS_COUNT("logstore.retention_trims", 1);
  return TrimBefore(now_ms - retention_ms);
}

size_t LogStore::TrimExpiredKeeping(int64_t now_ms, int64_t keep_from_ms,
                                    int64_t retention_ms) {
  PINSQL_OBS_COUNT("logstore.retention_trims", 1);
  return TrimBefore(std::min(now_ms - retention_ms, keep_from_ms));
}

void LogStore::ReplaceRecords(std::vector<QueryLogRecord> records) {
  std::lock_guard<std::mutex> lock(sort_mu_);
  arena_.Clear();
  index_.clear();
  head_ = 0;
  materialized_valid_ = false;
  sorted_ = true;
  for (const QueryLogRecord& record : records) AppendLocked(record);
}

const std::vector<QueryLogRecord>& LogStore::SortedRecords() const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  EnsureSortedLocked();
  if (!materialized_valid_) {
    materialized_.clear();
    materialized_.reserve(index_.size() - head_);
    for (const IndexEntry* e = IndexBegin(); e != IndexEnd(); ++e) {
      materialized_.push_back(Record(*e));
    }
    materialized_valid_ = true;
  }
  return materialized_;
}

util::Arena::Stats LogStore::arena_stats() const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  return arena_.stats();
}

}  // namespace pinsql
