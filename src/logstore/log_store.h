#ifndef PINSQL_LOGSTORE_LOG_STORE_H_
#define PINSQL_LOGSTORE_LOG_STORE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sqltpl/fingerprint.h"
#include "util/arena.h"

namespace pinsql {

/// One collected query-log entry (paper Sec. IV-A): for every SQL query the
/// collector records its template id, arrival timestamp in milliseconds,
/// response time, and the number of examined rows.
struct QueryLogRecord {
  int64_t arrival_ms = 0;    // t(q): when the query reached the database
  double response_ms = 0.0;  // tres(q): response / DB time
  uint64_t sql_id = 0;       // template id
  int64_t examined_rows = 0; // #examined_rows(q)
};

/// Side table mapping SQL_ID -> template metadata so the per-record payload
/// stays small (billions of queries aggregate into tens of thousands of
/// templates in production).
struct TemplateCatalogEntry {
  std::string template_text;
  sqltpl::StatementKind kind = sqltpl::StatementKind::kOther;
  std::vector<std::string> tables;
};

/// Append-only query-log store, the stand-in for Alibaba Cloud LogStore.
///
/// Memory layout (DESIGN.md §13): records live in arena slabs (32-bit
/// handles, bulk slab recycling) and never move once written; ordering is a
/// separate *sorted-offset index* of (arrival_ms, handle) entries. Scans
/// binary-search the index; the lazy re-sort moves 16-byte index entries
/// instead of 32-byte records; retention pops an index prefix and recycles
/// whole slabs once every record inside them expired — no O(n) record
/// memmove per sweep. Completion order != arrival order, so the index is
/// sorted lazily when scanned (stable: ties keep append order). Retention
/// trimming models the paper's 3-day expiry.
class LogStore {
 public:
  LogStore() = default;
  // The mutex is per-instance state, not data: copies/moves transfer the
  // records and catalog and get their own fresh mutex. Self-assignment and
  // self-move are no-ops; a moved-from store is a valid empty store that
  // accepts Append() again.
  LogStore(const LogStore& other);
  LogStore& operator=(const LogStore& other);
  LogStore(LogStore&& other) noexcept;
  LogStore& operator=(LogStore&& other) noexcept;

  /// Appends one completed-query record. Thread-safe: concurrent appenders
  /// serialize on the store mutex, so the online ingestor can append while
  /// another thread snapshots (see SnapshotRange). Batch the appends when
  /// the per-record lock traffic matters.
  void Append(const QueryLogRecord& record);
  /// Appends many records under one lock acquisition.
  void AppendBatch(const std::vector<QueryLogRecord>& records);
  /// Appends several contiguous spans under ONE lock acquisition, in span
  /// order — the ingestor's chunked pump archives a whole pump atomically
  /// (a concurrent SnapshotRange sees all of it or none) without first
  /// concatenating the chunks into a scratch vector.
  void AppendSpans(
      const std::vector<std::pair<const QueryLogRecord*, size_t>>& spans);

  /// Registers template metadata (idempotent).
  void RegisterTemplate(uint64_t sql_id, TemplateCatalogEntry entry);
  /// Returns nullptr when unknown.
  const TemplateCatalogEntry* FindTemplate(uint64_t sql_id) const;
  const std::unordered_map<uint64_t, TemplateCatalogEntry>& catalog() const {
    return catalog_;
  }

  size_t size() const;

  /// Invokes `fn` for every record with arrival_ms in [t0_ms, t1_ms), in
  /// arrival order.
  ///
  /// Concurrency contract: the lazy sort runs under the store mutex, but
  /// the iteration afterwards is lock-free so that the parallel diagnosis
  /// stages can scan one shared store concurrently. Safe with any number
  /// of concurrent *readers*; writers (Append/Trim*) must be quiescent for
  /// the duration of the scan. A reader racing a writer must use
  /// SnapshotRange instead.
  void ScanRange(int64_t t0_ms, int64_t t1_ms,
                 const std::function<void(const QueryLogRecord&)>& fn) const;

  /// Copies the records with arrival_ms in [t0_ms, t1_ms), arrival-ordered.
  /// Same concurrency contract as ScanRange.
  std::vector<QueryLogRecord> Range(int64_t t0_ms, int64_t t1_ms) const;

  /// Epoch read path: sorts (if needed) and copies the records with
  /// arrival_ms in [t0_ms, t1_ms) under a single lock hold, so it is safe
  /// against concurrent Append/AppendBatch/Trim*. The copy is a consistent
  /// point-in-time snapshot: it observes every record appended before the
  /// call started or none of a concurrent append, never a torn state. This
  /// is the read the online DiagnosisScheduler uses while ingest threads
  /// keep appending.
  std::vector<QueryLogRecord> SnapshotRange(int64_t t0_ms,
                                            int64_t t1_ms) const;

  /// Drops every record with arrival_ms < cutoff_ms (retention). Returns
  /// the number of dropped records.
  size_t TrimBefore(int64_t cutoff_ms);

  /// The paper's 3-day log retention, in milliseconds.
  static constexpr int64_t kRetentionMs = 3LL * 24 * 3600 * 1000;

  /// Applies retention at `now_ms`: keeps exactly the half-open window
  /// [now_ms - retention_ms, now_ms + inf), matching the ScanRange
  /// convention — a record arriving exactly at the 3-day edge is the first
  /// *retained* instant, and anything older is dropped. Returns the number
  /// of dropped records.
  size_t TrimExpired(int64_t now_ms, int64_t retention_ms = kRetentionMs);

  /// Retention with a floor: like TrimExpired, but never drops a record
  /// with arrival_ms >= keep_from_ms even when it is older than the
  /// retention horizon. The online service passes the start of its open
  /// sliding window (or of an in-flight diagnosis window), so retention can
  /// never eat records a pending trigger is about to diagnose. Records at
  /// exactly the 3-day edge follow the TrimExpired half-open convention.
  size_t TrimExpiredKeeping(int64_t now_ms, int64_t keep_from_ms,
                            int64_t retention_ms = kRetentionMs);

  /// Replaces the full record set, keeping the template catalog. Used by
  /// the telemetry fault injectors (and tests) to rewrite a store's
  /// records with dropped/duplicated/reordered/skewed copies. The records
  /// may arrive in any order; scans re-sort lazily as usual.
  void ReplaceRecords(std::vector<QueryLogRecord> records);

  /// All records, arrival-ordered. Materialized lazily from the arena into
  /// a contiguous cache (invalidated by any write); same concurrency
  /// contract as ScanRange.
  const std::vector<QueryLogRecord>& SortedRecords() const;

  /// Arena occupancy / compaction counters (DESIGN.md §13).
  util::Arena::Stats arena_stats() const;

 private:
  /// Sorted-offset index entry: the record itself never moves; sorting and
  /// trimming shuffle these 16-byte entries only.
  struct IndexEntry {
    int64_t arrival_ms = 0;
    util::Arena::Handle handle = util::Arena::kNullHandle;
  };

  /// Lazily sorts under a mutex so that concurrent *const* scans (the
  /// parallel diagnosis stages all read one shared LogStore) are safe.
  /// Writes (Append/Trim*/ReplaceRecords) take the same mutex, so a write
  /// never races the sort itself; only the lock-free iteration after
  /// ScanRange's sort requires quiescent writers (see ScanRange).
  void EnsureSorted() const;
  /// Sort step with the mutex already held.
  void EnsureSortedLocked() const;
  /// TrimBefore with the mutex already held.
  size_t TrimBeforeLocked(int64_t cutoff_ms);
  /// Append one record with the mutex already held.
  void AppendLocked(const QueryLogRecord& record);
  /// Live (post-head) index range.
  const IndexEntry* IndexBegin() const { return index_.data() + head_; }
  const IndexEntry* IndexEnd() const { return index_.data() + index_.size(); }
  const QueryLogRecord& Record(const IndexEntry& e) const {
    return *arena_.Get<QueryLogRecord>(e.handle);
  }

  mutable std::mutex sort_mu_;
  mutable util::Arena arena_;
  mutable std::vector<IndexEntry> index_;
  /// Trimmed prefix length: live entries are index_[head_ ..). Dead space
  /// is compacted away once it exceeds the live half.
  size_t head_ = 0;
  mutable bool sorted_ = true;
  mutable std::vector<QueryLogRecord> materialized_;
  mutable bool materialized_valid_ = false;
  std::unordered_map<uint64_t, TemplateCatalogEntry> catalog_;
};

}  // namespace pinsql

#endif  // PINSQL_LOGSTORE_LOG_STORE_H_
