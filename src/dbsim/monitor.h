#ifndef PINSQL_DBSIM_MONITOR_H_
#define PINSQL_DBSIM_MONITOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dbsim/types.h"
#include "ts/time_series.h"
#include "util/rng.h"

namespace pinsql::dbsim {

/// Per-second instance performance metrics, as the monitoring agent would
/// report them (paper Definition II.4 and Sec. IV).
struct InstanceMetrics {
  /// Number of active sessions observed by SHOW STATUS. Crucially, the
  /// sample is taken at an *unknown* offset t3 inside each second (Fig. 3);
  /// the offsets are recorded here only as ground truth for tests and are
  /// never shown to the estimator.
  TimeSeries active_session;
  TimeSeries cpu_usage;       // percent of effective CPU capacity
  TimeSeries iops_usage;      // percent of IO capacity
  TimeSeries row_lock_waits;  // row-lock waits begun per second
  TimeSeries mdl_waits;       // metadata-lock waits begun per second
  TimeSeries qps;             // successfully completed queries per second
  std::vector<double> sample_offset_ms;  // hidden t3 offsets, one per second
};

/// Derives the monitor's view from the simulator's post-mortem records.
/// `effective_cores` and `io_capacity_ms_per_sec` size the usage
/// percentages; `rng` draws the hidden SHOW STATUS offsets.
InstanceMetrics ComputeInstanceMetrics(
    const std::vector<CompletedQuery>& completed, int64_t start_sec,
    int64_t end_sec, double effective_cores, double io_capacity_ms_per_sec,
    Rng* rng);

/// Ground-truth individual active session per template: the mean number of
/// concurrently-active queries of each template in every second (integral
/// of the active intervals). Used to label H-SQLs in the synthetic dataset
/// and to validate the estimator.
std::unordered_map<uint64_t, TimeSeries> ComputeTrueTemplateSessions(
    const std::vector<CompletedQuery>& completed, int64_t start_sec,
    int64_t end_sec);

/// Sum of the per-template true sessions = true instance mean concurrency.
TimeSeries ComputeTrueInstanceSession(
    const std::vector<CompletedQuery>& completed, int64_t start_sec,
    int64_t end_sec);

}  // namespace pinsql::dbsim

#endif  // PINSQL_DBSIM_MONITOR_H_
