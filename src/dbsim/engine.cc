#include "dbsim/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pinsql::dbsim {

const char* MonitoringConfigName(MonitoringConfig config) {
  switch (config) {
    case MonitoringConfig::kNormal:
      return "normal";
    case MonitoringConfig::kPfs:
      return "pfs";
    case MonitoringConfig::kPfsIns:
      return "pfs+ins";
    case MonitoringConfig::kPfsCon:
      return "pfs+con";
    case MonitoringConfig::kPfsConIns:
      return "pfs+con+ins";
  }
  return "unknown";
}

double MonitoringOverheadFraction(MonitoringConfig config) {
  // Calibrated against Table IV's QPS decline bands. The closed-loop QPS of
  // a CPU-saturated instance scales with capacity, so the decline rate is
  // approximately the overhead fraction.
  switch (config) {
    case MonitoringConfig::kNormal:
      return 0.0;
    case MonitoringConfig::kPfs:
      return 0.105;
    case MonitoringConfig::kPfsIns:
      return 0.125;
    case MonitoringConfig::kPfsCon:
      return 0.135;
    case MonitoringConfig::kPfsConIns:
      return 0.28;
  }
  return 0.0;
}

Engine::Engine(const SimConfig& config) : config_(config) {
  assert(config.cpu_cores > 0.0);
  assert(config.io_capacity_ms_per_sec > 0.0);
}

double Engine::EffectiveCores() const {
  return config_.cpu_cores *
         (1.0 - MonitoringOverheadFraction(config_.monitoring));
}

void Engine::Schedule(double time_ms, EventType type, uint64_t query_id,
                      uint64_t aux_key) {
  events_.push(Event{time_ms, next_seq_++, type, query_id, aux_key});
}

void Engine::AddArrival(const QueryArrival& arrival) {
  const uint64_t id = next_query_id_++;
  ActiveQuery q;
  q.spec = arrival.spec;
  q.arrival_ms = arrival.arrival_ms;
  q.client_id = arrival.client_id;
  // Canonical lock order prevents deadlocks by construction. Duplicate keys
  // are merged, keeping the strongest mode, so a query never re-requests a
  // key it already holds.
  std::sort(q.spec.locks.begin(), q.spec.locks.end(),
            [](const LockRequest& a, const LockRequest& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.mode == LockMode::kExclusive &&
                     b.mode == LockMode::kShared;
            });
  auto last = std::unique(q.spec.locks.begin(), q.spec.locks.end(),
                          [](const LockRequest& a, const LockRequest& b) {
                            return a.key == b.key;
                          });
  q.spec.locks.erase(last, q.spec.locks.end());
  active_.emplace(id, std::move(q));
  Schedule(static_cast<double>(arrival.arrival_ms), EventType::kArrival, id);
}

void Engine::AddArrivals(const std::vector<QueryArrival>& arrivals) {
  for (const QueryArrival& a : arrivals) AddArrival(a);
}

void Engine::RunUntil(double t_end_ms) {
  while (!events_.empty() && events_.top().time_ms < t_end_ms) {
    const Event ev = events_.top();
    events_.pop();
    now_ms_ = ev.time_ms;
    switch (ev.type) {
      case EventType::kArrival:
        HandleArrival(ev.query_id);
        break;
      case EventType::kCompletion:
        HandleCompletion(ev.query_id);
        break;
      case EventType::kLockTimeout:
        HandleLockTimeout(ev.query_id, ev.aux_key, ev.seq);
        break;
    }
  }
  now_ms_ = std::max(now_ms_, t_end_ms);
}

void Engine::RunToCompletion() {
  while (!events_.empty()) {
    RunUntil(events_.top().time_ms + 1.0);
  }
}

std::vector<CompletedQuery> Engine::TakeCompleted() {
  std::vector<CompletedQuery> out;
  out.swap(completed_);
  return out;
}

void Engine::SetThrottle(uint64_t sql_id, double max_qps) {
  ThrottleState& st = throttles_[sql_id];
  st.max_qps = max_qps;
  st.window_sec = -1;
  st.admitted = 0.0;
}

void Engine::ClearThrottle(uint64_t sql_id) { throttles_.erase(sql_id); }

void Engine::SetCostMultiplier(uint64_t sql_id, double cpu_factor,
                               double io_factor, double rows_factor) {
  cost_multipliers_[sql_id] = CostMultiplier{cpu_factor, io_factor,
                                             rows_factor};
}

Engine::CostFactors Engine::GetCostMultiplier(uint64_t sql_id) const {
  auto it = cost_multipliers_.find(sql_id);
  if (it == cost_multipliers_.end()) return CostFactors{};
  return CostFactors{it->second.cpu, it->second.io, it->second.rows};
}

bool Engine::IsThrottled(uint64_t sql_id) const {
  return throttles_.find(sql_id) != throttles_.end();
}

double Engine::ThrottleMaxQps(uint64_t sql_id) const {
  auto it = throttles_.find(sql_id);
  assert(it != throttles_.end());
  return it->second.max_qps;
}

void Engine::SetCpuCores(double cores) {
  assert(cores > 0.0);
  config_.cpu_cores = cores;
}

void Engine::SetIoCapacity(double ms_per_sec) {
  assert(ms_per_sec > 0.0);
  config_.io_capacity_ms_per_sec = ms_per_sec;
}

bool Engine::Admit(uint64_t sql_id, int64_t arrival_ms) {
  auto it = throttles_.find(sql_id);
  if (it == throttles_.end()) return true;
  ThrottleState& st = it->second;
  const int64_t sec = arrival_ms / 1000;
  if (sec != st.window_sec) {
    st.window_sec = sec;
    st.admitted = 0.0;
  }
  if (st.admitted + 1.0 > st.max_qps) return false;
  st.admitted += 1.0;
  return true;
}

void Engine::HandleArrival(uint64_t query_id) {
  auto it = active_.find(query_id);
  assert(it != active_.end());
  ActiveQuery& q = it->second;
  if (!Admit(q.spec.sql_id, q.arrival_ms)) {
    ++throttled_count_;
    Finish(query_id, now_ms_, QueryOutcome::kThrottled);
    return;
  }
  auto mit = cost_multipliers_.find(q.spec.sql_id);
  if (mit != cost_multipliers_.end()) {
    q.spec.cpu_ms *= mit->second.cpu;
    q.spec.io_ms *= mit->second.io;
    q.spec.examined_rows = static_cast<int64_t>(
        std::llround(static_cast<double>(q.spec.examined_rows) *
                     mit->second.rows));
  }
  ContinueAcquisition(query_id);
}

void Engine::ContinueAcquisition(uint64_t query_id) {
  auto it = active_.find(query_id);
  assert(it != active_.end());
  ActiveQuery& q = it->second;
  while (q.next_lock < q.spec.locks.size()) {
    const LockRequest& req = q.spec.locks[q.next_lock];
    if (lock_manager_.Request(query_id, req.key, req.mode)) {
      ++q.next_lock;
      continue;
    }
    // Blocked: remember the wait and arm a timeout.
    q.waiting = true;
    q.wait_seq = next_seq_;
    if (IsMdlKey(req.key)) {
      q.waited_mdl = true;
    } else {
      q.waited_row_lock = true;
    }
    Schedule(now_ms_ + config_.lock_wait_timeout_ms, EventType::kLockTimeout,
             query_id, req.key);
    return;
  }
  StartService(query_id);
}

void Engine::StartService(uint64_t query_id) {
  auto it = active_.find(query_id);
  assert(it != active_.end());
  ActiveQuery& q = it->second;
  q.waiting = false;
  q.in_service = true;
  q.service_start_ms = now_ms_;
  ++n_in_service_;
  const bool uses_io = q.spec.io_ms > 0.0;
  if (uses_io) ++n_io_in_service_;

  const double cpu_slowdown =
      std::max(1.0, static_cast<double>(n_in_service_) / EffectiveCores());
  const double io_channels = config_.io_capacity_ms_per_sec / 1000.0;
  const double io_slowdown =
      uses_io ? std::max(1.0, static_cast<double>(n_io_in_service_) /
                                  io_channels)
              : 1.0;
  const double duration =
      q.spec.cpu_ms * cpu_slowdown + q.spec.io_ms * io_slowdown;
  Schedule(now_ms_ + std::max(duration, 0.01), EventType::kCompletion,
           query_id);
}

void Engine::HandleCompletion(uint64_t query_id) {
  auto it = active_.find(query_id);
  assert(it != active_.end());
  ActiveQuery& q = it->second;
  assert(q.in_service);
  --n_in_service_;
  if (q.spec.io_ms > 0.0) --n_io_in_service_;
  Finish(query_id, now_ms_, QueryOutcome::kCompleted);
}

void Engine::HandleLockTimeout(uint64_t query_id, uint64_t key,
                               uint64_t seq) {
  auto it = active_.find(query_id);
  if (it == active_.end()) return;  // already finished; stale event
  ActiveQuery& q = it->second;
  // Stale if the query progressed past this wait (wait_seq is bumped on
  // every new wait, and the timeout's heap seq is wait_seq + 1... compare
  // by the blocked lock instead: still waiting on the same key?).
  (void)seq;
  if (!q.waiting || q.next_lock >= q.spec.locks.size() ||
      q.spec.locks[q.next_lock].key != key) {
    return;
  }
  std::vector<uint64_t> granted;
  const bool removed = lock_manager_.CancelWait(query_id, key, &granted);
  if (!removed) return;
  ++timeout_count_;
  Finish(query_id, now_ms_, QueryOutcome::kLockTimeout);
  ResumeGranted(granted);
}

void Engine::ResumeGranted(const std::vector<uint64_t>& granted) {
  for (uint64_t gid : granted) {
    auto it = active_.find(gid);
    assert(it != active_.end());
    ActiveQuery& gq = it->second;
    assert(gq.waiting);
    gq.waiting = false;
    ++gq.next_lock;  // the granted lock is now held
    ContinueAcquisition(gid);
  }
}

void Engine::Finish(uint64_t query_id, double completion_ms,
                    QueryOutcome outcome) {
  auto it = active_.find(query_id);
  assert(it != active_.end());
  ActiveQuery q = std::move(it->second);
  active_.erase(it);

  // Release every held lock (the first next_lock entries).
  std::vector<uint64_t> granted;
  for (size_t i = 0; i < q.next_lock; ++i) {
    lock_manager_.Release(query_id, q.spec.locks[i].key, &granted);
  }

  CompletedQuery record;
  record.sql_id = q.spec.sql_id;
  record.client_id = q.client_id;
  record.arrival_ms = q.arrival_ms;
  record.service_start_ms =
      q.in_service ? q.service_start_ms : completion_ms;
  record.completion_ms = completion_ms;
  record.cpu_ms = q.spec.cpu_ms;
  record.io_ms = q.spec.io_ms;
  record.examined_rows = q.spec.examined_rows;
  record.waited_row_lock = q.waited_row_lock;
  record.waited_mdl = q.waited_mdl;
  record.outcome = outcome;
  completed_.push_back(record);

  if (log_store_ != nullptr && outcome != QueryOutcome::kThrottled) {
    QueryLogRecord log;
    log.arrival_ms = record.arrival_ms;
    log.response_ms = record.response_ms();
    log.sql_id = record.sql_id;
    log.examined_rows =
        outcome == QueryOutcome::kCompleted ? record.examined_rows : 0;
    log_store_->Append(log);
  }

  ResumeGranted(granted);

  if (driver_ != nullptr && q.client_id >= 0) {
    std::optional<QueryArrival> next =
        driver_->OnQueryDone(q.client_id, completion_ms);
    if (next.has_value()) AddArrival(*next);
  }
}

}  // namespace pinsql::dbsim
