#ifndef PINSQL_DBSIM_LOCK_MANAGER_H_
#define PINSQL_DBSIM_LOCK_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pinsql::dbsim {

/// Lock modes: shared (read / MDL-read) and exclusive (write / DDL).
enum class LockMode { kShared, kExclusive };

/// Lock keys encode two lock levels in one 64-bit id:
///  - metadata locks (one per table; DDL takes them exclusive, paper R-SQL
///    category 3-i), and
///  - row-group locks (a row-group stands for a contiguous key range; row
///    locks at individual-row granularity would be needlessly fine for the
///    convoy effects PinSQL cares about, category 3-ii).
uint64_t MakeMdlKey(uint32_t table_id);
uint64_t MakeRowKey(uint32_t table_id, uint32_t row_group);
bool IsMdlKey(uint64_t key);
uint32_t TableOfKey(uint64_t key);

/// FIFO lock manager with MySQL-style grant semantics: requests queue in
/// arrival order; a release grants the queue head, and if the head is
/// shared, every consecutive shared request behind it as well. No barging:
/// a shared request arriving behind a waiting exclusive request waits too
/// (this is what creates the MDL pile-ups the paper describes).
class LockManager {
 public:
  /// Attempts to acquire `key` in `mode` for `query_id`. Returns true if
  /// granted immediately; otherwise the query is queued as a waiter.
  bool Request(uint64_t query_id, uint64_t key, LockMode mode);

  /// Releases one lock held by `query_id`. Appends the ids of queries whose
  /// queued request became granted to `granted_out`.
  void Release(uint64_t query_id, uint64_t key,
               std::vector<uint64_t>* granted_out);

  /// Removes a queued (not yet granted) waiter; used by lock-wait timeouts.
  /// Grants may cascade if the cancelled waiter was blocking the head.
  /// Returns true if the waiter was found and removed.
  bool CancelWait(uint64_t query_id, uint64_t key,
                  std::vector<uint64_t>* granted_out);

  /// True if `query_id` currently holds `key`.
  bool Holds(uint64_t query_id, uint64_t key) const;
  /// Number of queries waiting on `key`.
  size_t WaiterCount(uint64_t key) const;
  /// Number of distinct keys with any owner or waiter (for tests).
  size_t ActiveKeyCount() const { return locks_.size(); }

 private:
  struct Waiter {
    uint64_t query_id;
    LockMode mode;
  };
  struct LockState {
    std::unordered_set<uint64_t> shared_owners;
    uint64_t exclusive_owner = 0;
    bool exclusive_held = false;
    std::deque<Waiter> queue;

    bool Unowned() const { return shared_owners.empty() && !exclusive_held; }
  };

  /// Grants as many queue-head requests as the state allows.
  void PumpQueue(uint64_t key, LockState* state,
                 std::vector<uint64_t>* granted_out);
  void EraseIfIdle(uint64_t key);

  std::unordered_map<uint64_t, LockState> locks_;
};

}  // namespace pinsql::dbsim

#endif  // PINSQL_DBSIM_LOCK_MANAGER_H_
