#include "dbsim/lock_manager.h"

#include <cassert>

namespace pinsql::dbsim {

namespace {
constexpr uint64_t kMdlBit = 1ULL << 63;
}  // namespace

uint64_t MakeMdlKey(uint32_t table_id) {
  return kMdlBit | (static_cast<uint64_t>(table_id) << 32);
}

uint64_t MakeRowKey(uint32_t table_id, uint32_t row_group) {
  return (static_cast<uint64_t>(table_id) << 32) | row_group;
}

bool IsMdlKey(uint64_t key) { return (key & kMdlBit) != 0; }

uint32_t TableOfKey(uint64_t key) {
  return static_cast<uint32_t>((key & ~kMdlBit) >> 32);
}

bool LockManager::Request(uint64_t query_id, uint64_t key, LockMode mode) {
  LockState& state = locks_[key];
  const bool queue_empty = state.queue.empty();
  bool grantable = false;
  if (mode == LockMode::kShared) {
    grantable = queue_empty && !state.exclusive_held;
  } else {
    grantable = queue_empty && state.Unowned();
  }
  if (grantable) {
    if (mode == LockMode::kShared) {
      state.shared_owners.insert(query_id);
    } else {
      state.exclusive_held = true;
      state.exclusive_owner = query_id;
    }
    return true;
  }
  state.queue.push_back({query_id, mode});
  return false;
}

void LockManager::PumpQueue(uint64_t key, LockState* state,
                            std::vector<uint64_t>* granted_out) {
  while (!state->queue.empty()) {
    const Waiter& head = state->queue.front();
    if (head.mode == LockMode::kExclusive) {
      if (!state->Unowned()) break;
      state->exclusive_held = true;
      state->exclusive_owner = head.query_id;
      granted_out->push_back(head.query_id);
      state->queue.pop_front();
      break;  // exclusive blocks everything behind it
    }
    // Shared head: grantable unless an exclusive lock is held.
    if (state->exclusive_held) break;
    state->shared_owners.insert(head.query_id);
    granted_out->push_back(head.query_id);
    state->queue.pop_front();
    // Keep granting consecutive shared requests.
  }
  (void)key;
}

void LockManager::EraseIfIdle(uint64_t key) {
  auto it = locks_.find(key);
  if (it != locks_.end() && it->second.Unowned() && it->second.queue.empty()) {
    locks_.erase(it);
  }
}

void LockManager::Release(uint64_t query_id, uint64_t key,
                          std::vector<uint64_t>* granted_out) {
  auto it = locks_.find(key);
  assert(it != locks_.end() && "releasing an unknown lock");
  LockState& state = it->second;
  if (state.exclusive_held && state.exclusive_owner == query_id) {
    state.exclusive_held = false;
    state.exclusive_owner = 0;
  } else {
    const size_t erased = state.shared_owners.erase(query_id);
    assert(erased == 1 && "releasing a lock not held by this query");
    (void)erased;
  }
  PumpQueue(key, &state, granted_out);
  EraseIfIdle(key);
}

bool LockManager::CancelWait(uint64_t query_id, uint64_t key,
                             std::vector<uint64_t>* granted_out) {
  auto it = locks_.find(key);
  if (it == locks_.end()) return false;
  LockState& state = it->second;
  bool removed = false;
  for (auto qit = state.queue.begin(); qit != state.queue.end(); ++qit) {
    if (qit->query_id == query_id) {
      state.queue.erase(qit);
      removed = true;
      break;
    }
  }
  if (removed) {
    // The cancelled waiter may have been the head blocking compatible
    // requests behind it.
    PumpQueue(key, &state, granted_out);
    EraseIfIdle(key);
  }
  return removed;
}

bool LockManager::Holds(uint64_t query_id, uint64_t key) const {
  auto it = locks_.find(key);
  if (it == locks_.end()) return false;
  const LockState& state = it->second;
  return (state.exclusive_held && state.exclusive_owner == query_id) ||
         state.shared_owners.count(query_id) > 0;
}

size_t LockManager::WaiterCount(uint64_t key) const {
  auto it = locks_.find(key);
  return it == locks_.end() ? 0 : it->second.queue.size();
}

}  // namespace pinsql::dbsim
