#ifndef PINSQL_DBSIM_CLOSED_LOOP_H_
#define PINSQL_DBSIM_CLOSED_LOOP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "dbsim/engine.h"
#include "dbsim/types.h"
#include "util/rng.h"

namespace pinsql::dbsim {

/// Sysbench-style closed-loop load driver (used by the monitoring-overhead
/// experiment, Table IV): a fixed number of client threads each keep
/// exactly one query in flight; as soon as a query finishes the thread
/// issues the next one, so throughput is capacity-bound.
class ClosedLoopDriver : public ArrivalDriver {
 public:
  /// Generates one query instance; receives the driver's RNG so specs can
  /// randomize row groups / jitter demand.
  using SpecGenerator = std::function<QuerySpec(Rng*)>;

  /// `mix` pairs a generator with a relative weight (e.g. 70 % point
  /// selects / 30 % updates for the read-write profile).
  ClosedLoopDriver(std::vector<std::pair<SpecGenerator, double>> mix,
                   int32_t num_threads, double stop_after_ms, uint64_t seed);

  /// One arrival per client thread at t=start_ms (with sub-ms jitter).
  std::vector<QueryArrival> InitialArrivals(int64_t start_ms);

  std::optional<QueryArrival> OnQueryDone(int32_t client_id,
                                          double now_ms) override;

  size_t issued() const { return issued_; }

 private:
  QuerySpec SampleSpec();

  std::vector<std::pair<SpecGenerator, double>> mix_;
  double total_weight_ = 0.0;
  int32_t num_threads_;
  double stop_after_ms_;
  Rng rng_;
  size_t issued_ = 0;
};

}  // namespace pinsql::dbsim

#endif  // PINSQL_DBSIM_CLOSED_LOOP_H_
