#ifndef PINSQL_DBSIM_ENGINE_H_
#define PINSQL_DBSIM_ENGINE_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "dbsim/lock_manager.h"
#include "dbsim/types.h"
#include "logstore/log_store.h"

namespace pinsql::dbsim {

/// Source of follow-up arrivals for closed-loop clients (sysbench-style
/// stress tests, Table IV): when a client's query completes, the driver is
/// asked for that client's next query.
class ArrivalDriver {
 public:
  virtual ~ArrivalDriver() = default;
  /// Returns the next arrival for `client_id` after its previous query
  /// finished at `now_ms`, or nullopt to retire the client.
  virtual std::optional<QueryArrival> OnQueryDone(int32_t client_id,
                                                  double now_ms) = 0;
};

/// Event-driven cloud-database instance simulator.
///
/// Query lifecycle: arrival -> (throttle check) -> ordered lock acquisition
/// (FIFO queues, wait timeout) -> service -> completion (locks released,
/// log record emitted). Service time is the CPU demand scaled by the
/// processor-sharing slowdown observed at service start plus the IO demand
/// scaled by IO-channel contention; freezing the slowdown at service start
/// is a documented approximation (DESIGN.md §4.7) that keeps the simulation
/// O(#queries log #queries).
///
/// Repair hooks (SetThrottle / SetCostMultiplier / SetCpuCores /
/// set_monitoring) can be changed between RunUntil segments, which is how
/// the repairing case study (Fig. 8) replays user actions over a day.
class Engine {
 public:
  explicit Engine(const SimConfig& config);

  /// Optional sink for query-log records of completed queries.
  void AttachLogStore(LogStore* store) { log_store_ = store; }
  /// Optional closed-loop driver.
  void SetArrivalDriver(ArrivalDriver* driver) { driver_ = driver; }

  /// Schedules arrivals (any order; they are heap-ordered internally).
  void AddArrivals(const std::vector<QueryArrival>& arrivals);
  void AddArrival(const QueryArrival& arrival);

  /// Processes all events strictly before t_end_ms and advances the clock.
  void RunUntil(double t_end_ms);
  /// Runs until no events remain (closed-loop drivers must retire clients).
  void RunToCompletion();

  double now_ms() const { return now_ms_; }
  /// Queries currently waiting on locks or in service.
  size_t ActiveCount() const { return active_.size(); }
  size_t InServiceCount() const { return n_in_service_; }

  /// Finished-query records accumulated so far.
  const std::vector<CompletedQuery>& completed() const { return completed_; }
  /// Moves the accumulated records out (e.g. once per simulated window).
  std::vector<CompletedQuery> TakeCompleted();

  // --- Operational knobs (repair module / experiments) ---------------------

  /// Rate-limits a template to `max_qps` arrivals per second; excess
  /// arrivals are rejected (QueryOutcome::kThrottled).
  void SetThrottle(uint64_t sql_id, double max_qps);
  void ClearThrottle(uint64_t sql_id);

  /// Scales the resource demand of future arrivals of a template; models a
  /// query-optimization action (index added, query rewritten).
  void SetCostMultiplier(uint64_t sql_id, double cpu_factor,
                         double io_factor, double rows_factor);

  /// Current demand scaling of a template (all 1.0 when untouched). The
  /// repair supervisor snapshots this before an optimize action so a failed
  /// verification window can restore the exact prior state.
  struct CostFactors {
    double cpu = 1.0;
    double io = 1.0;
    double rows = 1.0;
  };
  CostFactors GetCostMultiplier(uint64_t sql_id) const;

  /// Whether a throttle is currently installed for the template, and its
  /// cap (valid only when IsThrottled returns true).
  bool IsThrottled(uint64_t sql_id) const;
  double ThrottleMaxQps(uint64_t sql_id) const;

  /// Instance auto-scaling.
  void SetCpuCores(double cores);
  double cpu_cores() const { return config_.cpu_cores; }
  void SetIoCapacity(double ms_per_sec);
  double io_capacity_ms_per_sec() const {
    return config_.io_capacity_ms_per_sec;
  }

  void set_monitoring(MonitoringConfig m) { config_.monitoring = m; }
  MonitoringConfig monitoring() const { return config_.monitoring; }

  /// CPU capacity net of monitoring overhead, in cores.
  double EffectiveCores() const;

  /// Counters.
  size_t throttled_count() const { return throttled_count_; }
  size_t timeout_count() const { return timeout_count_; }

 private:
  enum class EventType { kArrival, kCompletion, kLockTimeout };
  struct Event {
    double time_ms;
    uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventType type;
    uint64_t query_id;
    uint64_t aux_key;  // lock key for timeout events
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_ms != b.time_ms) return a.time_ms > b.time_ms;
      return a.seq > b.seq;
    }
  };
  struct ActiveQuery {
    QuerySpec spec;
    int64_t arrival_ms = 0;
    int32_t client_id = -1;
    size_t next_lock = 0;     // index of the first not-yet-held lock
    bool in_service = false;
    bool waiting = false;     // blocked on spec.locks[next_lock]
    uint64_t wait_seq = 0;    // matches the pending timeout event
    bool waited_row_lock = false;
    bool waited_mdl = false;
    double service_start_ms = 0.0;
  };
  struct ThrottleState {
    double max_qps = 0.0;
    int64_t window_sec = -1;
    double admitted = 0.0;
  };
  struct CostMultiplier {
    double cpu = 1.0;
    double io = 1.0;
    double rows = 1.0;
  };

  void Schedule(double time_ms, EventType type, uint64_t query_id,
                uint64_t aux_key = 0);
  void HandleArrival(uint64_t query_id);
  void HandleCompletion(uint64_t query_id);
  void HandleLockTimeout(uint64_t query_id, uint64_t key, uint64_t seq);
  /// Acquires locks from next_lock on; starts service when all are held.
  void ContinueAcquisition(uint64_t query_id);
  void StartService(uint64_t query_id);
  /// Finalizes a query: releases locks, records, logs, notifies driver.
  void Finish(uint64_t query_id, double completion_ms, QueryOutcome outcome);
  void ResumeGranted(const std::vector<uint64_t>& granted);
  bool Admit(uint64_t sql_id, int64_t arrival_ms);

  SimConfig config_;
  LockManager lock_manager_;
  LogStore* log_store_ = nullptr;
  ArrivalDriver* driver_ = nullptr;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::unordered_map<uint64_t, ActiveQuery> active_;
  std::vector<CompletedQuery> completed_;
  std::unordered_map<uint64_t, ThrottleState> throttles_;
  std::unordered_map<uint64_t, CostMultiplier> cost_multipliers_;

  double now_ms_ = 0.0;
  uint64_t next_query_id_ = 1;
  uint64_t next_seq_ = 1;
  size_t n_in_service_ = 0;
  size_t n_io_in_service_ = 0;
  size_t throttled_count_ = 0;
  size_t timeout_count_ = 0;
};

}  // namespace pinsql::dbsim

#endif  // PINSQL_DBSIM_ENGINE_H_
