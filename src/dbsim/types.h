#ifndef PINSQL_DBSIM_TYPES_H_
#define PINSQL_DBSIM_TYPES_H_

#include <cstdint>
#include <vector>

#include "dbsim/lock_manager.h"

namespace pinsql::dbsim {

/// One lock a query must hold for its whole execution (acquired in key
/// order before service, released at completion).
struct LockRequest {
  uint64_t key = 0;
  LockMode mode = LockMode::kShared;
};

/// Resource demand and lock footprint of a single query instance.
struct QuerySpec {
  uint64_t sql_id = 0;
  double cpu_ms = 1.0;         // pure CPU service demand at an idle instance
  double io_ms = 0.0;          // IO portion of the service demand
  int64_t examined_rows = 0;   // reported in the query log
  std::vector<LockRequest> locks;
};

/// A query arriving at the instance. client_id >= 0 marks closed-loop
/// clients (sysbench-style): their completion triggers the next arrival.
struct QueryArrival {
  int64_t arrival_ms = 0;
  QuerySpec spec;
  int32_t client_id = -1;
};

/// How a query ended.
enum class QueryOutcome {
  kCompleted,
  kLockTimeout,  // aborted after waiting too long on a lock
  kThrottled,    // rejected by an SQL-throttling rule
};

/// Post-mortem record of one simulated query; the Monitor derives all
/// ground-truth metrics from these.
struct CompletedQuery {
  uint64_t sql_id = 0;
  int32_t client_id = -1;
  int64_t arrival_ms = 0;
  double service_start_ms = 0.0;  // lock waits end here
  double completion_ms = 0.0;
  double cpu_ms = 0.0;  // effective CPU demand (after optimization actions)
  double io_ms = 0.0;
  int64_t examined_rows = 0;
  bool waited_row_lock = false;
  bool waited_mdl = false;
  QueryOutcome outcome = QueryOutcome::kCompleted;

  double response_ms() const {
    return completion_ms - static_cast<double>(arrival_ms);
  }
};

/// MySQL Performance Schema configurations whose overhead Table IV
/// measures. Monitoring steals a fraction of CPU capacity.
enum class MonitoringConfig {
  kNormal,     // performance_schema = OFF
  kPfs,        // performance_schema = ON, defaults
  kPfsIns,     // + all instrumentation enabled
  kPfsCon,     // + all consumers enabled
  kPfsConIns,  // + both
};

const char* MonitoringConfigName(MonitoringConfig config);

/// Fraction of CPU capacity consumed by the monitoring configuration.
/// Calibrated so the closed-loop QPS decline reproduces Table IV's bands
/// (pfs ~ 9-13 %, single add-on ~ 8-18 %, both ~ 26-30 %).
double MonitoringOverheadFraction(MonitoringConfig config);

/// Instance-level simulator configuration.
struct SimConfig {
  double cpu_cores = 16.0;
  /// IO budget: milliseconds of device time available per wall second.
  double io_capacity_ms_per_sec = 8000.0;
  MonitoringConfig monitoring = MonitoringConfig::kNormal;
  /// innodb_lock_wait_timeout analogue.
  double lock_wait_timeout_ms = 50'000.0;
};

}  // namespace pinsql::dbsim

#endif  // PINSQL_DBSIM_TYPES_H_
