#include "dbsim/monitor.h"

#include <algorithm>
#include <cmath>

namespace pinsql::dbsim {

namespace {

/// Adds `amount` spread uniformly over [begin_ms, end_ms) into per-second
/// buckets of `series` (values accumulate proportionally to overlap).
void SpreadOverSeconds(TimeSeries* series, double begin_ms, double end_ms,
                       double amount) {
  if (end_ms <= begin_ms || amount == 0.0) return;
  const double density = amount / (end_ms - begin_ms);
  const int64_t first_sec = static_cast<int64_t>(std::floor(begin_ms / 1000.0));
  const int64_t last_sec = static_cast<int64_t>(std::floor((end_ms - 1e-9) / 1000.0));
  for (int64_t sec = first_sec; sec <= last_sec; ++sec) {
    const double lo = std::max(begin_ms, static_cast<double>(sec) * 1000.0);
    const double hi =
        std::min(end_ms, static_cast<double>(sec + 1) * 1000.0);
    if (hi > lo && series->Covers(sec)) {
      series->AtTime(sec) += density * (hi - lo);
    }
  }
}

}  // namespace

InstanceMetrics ComputeInstanceMetrics(
    const std::vector<CompletedQuery>& completed, int64_t start_sec,
    int64_t end_sec, double effective_cores, double io_capacity_ms_per_sec,
    Rng* rng) {
  const size_t n = static_cast<size_t>(end_sec - start_sec);
  InstanceMetrics m;
  m.active_session = TimeSeries(start_sec, 1, n);
  m.cpu_usage = TimeSeries(start_sec, 1, n);
  m.iops_usage = TimeSeries(start_sec, 1, n);
  m.row_lock_waits = TimeSeries(start_sec, 1, n);
  m.mdl_waits = TimeSeries(start_sec, 1, n);
  m.qps = TimeSeries(start_sec, 1, n);
  m.sample_offset_ms.resize(n);

  // Hidden SHOW STATUS sampling instants, one per second.
  std::vector<double> sample_ms(n);
  for (size_t i = 0; i < n; ++i) {
    m.sample_offset_ms[i] = rng->Uniform(0.0, 1000.0);
    sample_ms[i] = static_cast<double>(start_sec + static_cast<int64_t>(i)) *
                       1000.0 +
                   m.sample_offset_ms[i];
  }

  // Point-in-time active-session counting via a two-pointer sweep over
  // sorted interval endpoints (a query is active from arrival to
  // completion, lock waits included; throttled queries never occupied a
  // session).
  std::vector<double> starts;
  std::vector<double> ends;
  starts.reserve(completed.size());
  ends.reserve(completed.size());
  for (const CompletedQuery& q : completed) {
    if (q.outcome == QueryOutcome::kThrottled) continue;
    starts.push_back(static_cast<double>(q.arrival_ms));
    ends.push_back(q.completion_ms);
  }
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  size_t si = 0;
  size_t ei = 0;
  for (size_t i = 0; i < n; ++i) {
    while (si < starts.size() && starts[si] <= sample_ms[i]) ++si;
    while (ei < ends.size() && ends[ei] <= sample_ms[i]) ++ei;
    m.active_session[i] = static_cast<double>(si - ei);
  }

  // Resource usage: distribute each query's CPU/IO demand uniformly over
  // its service interval, then express per-second work as a percentage of
  // capacity.
  for (const CompletedQuery& q : completed) {
    if (q.outcome == QueryOutcome::kThrottled) continue;
    SpreadOverSeconds(&m.cpu_usage, q.service_start_ms, q.completion_ms,
                      q.outcome == QueryOutcome::kCompleted ? q.cpu_ms : 0.0);
    SpreadOverSeconds(&m.iops_usage, q.service_start_ms, q.completion_ms,
                      q.outcome == QueryOutcome::kCompleted ? q.io_ms : 0.0);
    const int64_t arr_sec = q.arrival_ms / 1000;
    if (q.waited_row_lock) m.row_lock_waits.AccumulateAt(arr_sec, 1.0);
    if (q.waited_mdl) m.mdl_waits.AccumulateAt(arr_sec, 1.0);
    if (q.outcome == QueryOutcome::kCompleted) {
      const int64_t done_sec =
          static_cast<int64_t>(std::floor(q.completion_ms / 1000.0));
      m.qps.AccumulateAt(done_sec, 1.0);
    }
  }
  const double cpu_capacity_ms = effective_cores * 1000.0;
  for (size_t i = 0; i < n; ++i) {
    m.cpu_usage[i] = std::min(100.0, 100.0 * m.cpu_usage[i] /
                                         cpu_capacity_ms);
    m.iops_usage[i] =
        std::min(100.0, 100.0 * m.iops_usage[i] / io_capacity_ms_per_sec);
  }
  return m;
}

std::unordered_map<uint64_t, TimeSeries> ComputeTrueTemplateSessions(
    const std::vector<CompletedQuery>& completed, int64_t start_sec,
    int64_t end_sec) {
  const size_t n = static_cast<size_t>(end_sec - start_sec);
  std::unordered_map<uint64_t, TimeSeries> out;
  for (const CompletedQuery& q : completed) {
    if (q.outcome == QueryOutcome::kThrottled) continue;
    auto [it, inserted] = out.try_emplace(q.sql_id);
    if (inserted) it->second = TimeSeries(start_sec, 1, n);
    // Mean concurrency contribution: active-time overlap per second / 1 s.
    const double begin = static_cast<double>(q.arrival_ms);
    const double end = q.completion_ms;
    SpreadOverSeconds(&it->second, begin, end, (end - begin) / 1000.0);
  }
  return out;
}

TimeSeries ComputeTrueInstanceSession(
    const std::vector<CompletedQuery>& completed, int64_t start_sec,
    int64_t end_sec) {
  const size_t n = static_cast<size_t>(end_sec - start_sec);
  TimeSeries total(start_sec, 1, n);
  for (const CompletedQuery& q : completed) {
    if (q.outcome == QueryOutcome::kThrottled) continue;
    const double begin = static_cast<double>(q.arrival_ms);
    const double end = q.completion_ms;
    SpreadOverSeconds(&total, begin, end, (end - begin) / 1000.0);
  }
  return total;
}

}  // namespace pinsql::dbsim
