#include "dbsim/closed_loop.h"

#include <cassert>
#include <cmath>

namespace pinsql::dbsim {

ClosedLoopDriver::ClosedLoopDriver(
    std::vector<std::pair<SpecGenerator, double>> mix, int32_t num_threads,
    double stop_after_ms, uint64_t seed)
    : mix_(std::move(mix)),
      num_threads_(num_threads),
      stop_after_ms_(stop_after_ms),
      rng_(seed) {
  assert(!mix_.empty());
  assert(num_threads_ > 0);
  for (const auto& [gen, weight] : mix_) {
    assert(weight > 0.0);
    total_weight_ += weight;
  }
}

QuerySpec ClosedLoopDriver::SampleSpec() {
  double pick = rng_.Uniform(0.0, total_weight_);
  for (const auto& [gen, weight] : mix_) {
    if (pick < weight) {
      ++issued_;
      return gen(&rng_);
    }
    pick -= weight;
  }
  ++issued_;
  return mix_.back().first(&rng_);
}

std::vector<QueryArrival> ClosedLoopDriver::InitialArrivals(
    int64_t start_ms) {
  std::vector<QueryArrival> out;
  out.reserve(static_cast<size_t>(num_threads_));
  for (int32_t c = 0; c < num_threads_; ++c) {
    QueryArrival arrival;
    arrival.arrival_ms = start_ms + rng_.UniformInt(0, 2);
    arrival.spec = SampleSpec();
    arrival.client_id = c;
    out.push_back(std::move(arrival));
  }
  return out;
}

std::optional<QueryArrival> ClosedLoopDriver::OnQueryDone(int32_t client_id,
                                                          double now_ms) {
  if (now_ms >= stop_after_ms_) return std::nullopt;
  QueryArrival arrival;
  arrival.arrival_ms = static_cast<int64_t>(std::ceil(now_ms));
  arrival.spec = SampleSpec();
  arrival.client_id = client_id;
  return arrival;
}

}  // namespace pinsql::dbsim
