#include "anomaly/phenomenon.h"

#include <algorithm>

#include "util/strings.h"

namespace pinsql::anomaly {

bool PhenomenonRule::Matches(FeatureType type) const {
  if (feature == "spike") {
    return type == FeatureType::kSpikeUp;
  }
  if (feature == "level_shift") {
    return type == FeatureType::kLevelShiftUp;
  }
  if (feature == "spike_up") return type == FeatureType::kSpikeUp;
  if (feature == "spike_down") return type == FeatureType::kSpikeDown;
  if (feature == "level_shift_up") {
    return type == FeatureType::kLevelShiftUp;
  }
  if (feature == "level_shift_down") {
    return type == FeatureType::kLevelShiftDown;
  }
  return false;
}

PhenomenonConfig PhenomenonConfig::Default() {
  PhenomenonConfig config;
  for (const char* metric : {"active_session", "cpu_usage", "iops_usage"}) {
    config.rules.push_back({metric, "spike"});
    config.rules.push_back({metric, "level_shift"});
  }
  return config;
}

StatusOr<PhenomenonConfig> PhenomenonConfig::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("phenomenon config must be an object");
  }
  PhenomenonConfig config;
  const Json* rules = json.Find("rules");
  if (rules == nullptr || !rules->is_array()) {
    return Status::InvalidArgument("phenomenon config needs a rules array");
  }
  for (const Json& rule : rules->AsArray()) {
    if (!rule.is_string()) {
      return Status::InvalidArgument("each rule must be a string");
    }
    const std::string& text = rule.AsString();
    const size_t dot = text.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= text.size()) {
      return Status::ParseError(
          StrFormat("rule '%s' is not <metric>.<feature>", text.c_str()));
    }
    config.rules.push_back({text.substr(0, dot), text.substr(dot + 1)});
  }
  config.merge_gap_sec = static_cast<int64_t>(
      json.GetNumberOr("merge_gap_sec",
                       static_cast<double>(config.merge_gap_sec)));
  config.min_duration_sec = static_cast<int64_t>(
      json.GetNumberOr("min_duration_sec",
                       static_cast<double>(config.min_duration_sec)));
  config.detector.threshold =
      json.GetNumberOr("threshold", config.detector.threshold);
  return config;
}

std::vector<Phenomenon> DetectPhenomena(
    const std::map<std::string, const TimeSeries*>& metrics,
    const PhenomenonConfig& config) {
  std::vector<Phenomenon> out;
  for (const auto& [metric_name, series] : metrics) {
    // Only detect on metrics some rule references.
    bool referenced = false;
    for (const PhenomenonRule& rule : config.rules) {
      if (rule.metric == metric_name) referenced = true;
    }
    if (!referenced || series == nullptr) continue;

    const std::vector<FeatureEvent> features =
        DetectFeatures(*series, config.detector);
    for (const PhenomenonRule& rule : config.rules) {
      if (rule.metric != metric_name) continue;
      for (const FeatureEvent& ev : features) {
        if (!rule.Matches(ev.type)) continue;
        Phenomenon p;
        p.rule = rule.metric + "." + rule.feature;
        p.start_sec = ev.start_sec;
        p.end_sec = ev.end_sec;
        p.severity = ev.severity;
        out.push_back(std::move(p));
      }
    }
  }

  // Merge phenomena of the same rule that are close in time.
  std::sort(out.begin(), out.end(), [](const Phenomenon& a,
                                       const Phenomenon& b) {
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.start_sec < b.start_sec;
  });
  std::vector<Phenomenon> merged;
  for (Phenomenon& p : out) {
    if (!merged.empty() && merged.back().rule == p.rule &&
        p.start_sec - merged.back().end_sec <= config.merge_gap_sec) {
      merged.back().end_sec = std::max(merged.back().end_sec, p.end_sec);
      merged.back().severity = std::max(merged.back().severity, p.severity);
    } else {
      merged.push_back(std::move(p));
    }
  }

  // Drop too-short phenomena.
  std::vector<Phenomenon> kept;
  for (Phenomenon& p : merged) {
    if (p.end_sec - p.start_sec >= config.min_duration_sec) {
      kept.push_back(std::move(p));
    }
  }
  return kept;
}

bool ExtractAnomalyPeriod(const std::vector<Phenomenon>& phenomena,
                          int64_t* anomaly_start, int64_t* anomaly_end) {
  if (phenomena.empty()) return false;
  // Anchor on the most severe phenomenon and absorb only phenomena that
  // overlap (or nearly overlap) it: an unrelated low-severity blip far
  // before the real event must not stretch the anomaly period.
  constexpr int64_t kJoinGapSec = 60;
  size_t anchor = 0;
  for (size_t i = 1; i < phenomena.size(); ++i) {
    if (phenomena[i].severity > phenomena[anchor].severity) anchor = i;
  }
  int64_t start = phenomena[anchor].start_sec;
  int64_t end = phenomena[anchor].end_sec;
  bool grew = true;
  std::vector<bool> used(phenomena.size(), false);
  used[anchor] = true;
  while (grew) {
    grew = false;
    for (size_t i = 0; i < phenomena.size(); ++i) {
      if (used[i]) continue;
      const Phenomenon& p = phenomena[i];
      if (p.start_sec <= end + kJoinGapSec &&
          p.end_sec + kJoinGapSec >= start) {
        start = std::min(start, p.start_sec);
        end = std::max(end, p.end_sec);
        used[i] = true;
        grew = true;
      }
    }
  }
  *anomaly_start = start;
  *anomaly_end = end;
  return true;
}

}  // namespace pinsql::anomaly
