#ifndef PINSQL_ANOMALY_PETTITT_H_
#define PINSQL_ANOMALY_PETTITT_H_

#include <cstddef>
#include <vector>

#include "ts/time_series.h"

namespace pinsql::anomaly {

/// Pettitt's non-parametric change-point test (Pettitt 1979, the paper's
/// reference [28] for its anomaly-detection toolbox). Finds the single
/// most likely change point of a series' distribution and its approximate
/// significance.
struct PettittResult {
  /// Index of the last point of the first segment (change happens after
  /// it). Undefined when the series is shorter than 2 points.
  size_t change_index = 0;
  /// Max |U_t| statistic.
  double statistic = 0.0;
  /// Approximate two-sided p-value: 2 exp(-6 K^2 / (n^3 + n^2)).
  double p_value = 1.0;
  /// Mean of the segments before/after the change point.
  double mean_before = 0.0;
  double mean_after = 0.0;

  bool significant(double alpha = 0.05) const { return p_value < alpha; }
  bool shifted_up() const { return mean_after > mean_before; }
};

/// Runs the test over the raw values (O(n^2); resample long series first).
PettittResult PettittTest(const std::vector<double>& x);
PettittResult PettittTest(const TimeSeries& x);

}  // namespace pinsql::anomaly

#endif  // PINSQL_ANOMALY_PETTITT_H_
