#include "anomaly/detectors.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace pinsql::anomaly {

const char* FeatureTypeName(FeatureType type) {
  switch (type) {
    case FeatureType::kSpikeUp:
      return "spike_up";
    case FeatureType::kSpikeDown:
      return "spike_down";
    case FeatureType::kLevelShiftUp:
      return "level_shift_up";
    case FeatureType::kLevelShiftDown:
      return "level_shift_down";
  }
  return "unknown";
}

namespace {

double MedianOf(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid),
                   v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(),
                   v.begin() + static_cast<ptrdiff_t>(mid) - 1,
                   v.begin() + static_cast<ptrdiff_t>(mid));
  return 0.5 * (hi + v[mid - 1]);
}

struct RobustBaseline {
  double median = 0.0;
  double mad = 0.0;
};

RobustBaseline ComputeBaseline(const std::deque<double>& clean,
                               const DetectorOptions& options) {
  std::vector<double> v(clean.begin(), clean.end());
  RobustBaseline b;
  b.median = MedianOf(v);
  for (double& x : v) x = std::fabs(x - b.median);
  b.mad = MedianOf(std::move(v));
  const double floor = options.mad_floor_frac * std::fabs(b.median) + 0.5;
  b.mad = std::max(b.mad, floor);
  return b;
}

}  // namespace

std::vector<FeatureEvent> DetectFeatures(const TimeSeries& series,
                                         const DetectorOptions& options) {
  std::vector<FeatureEvent> events;
  const size_t n = series.size();
  if (n == 0) return events;

  std::deque<double> clean;
  RobustBaseline baseline;
  bool baseline_fresh = false;

  // Current run of flagged points.
  bool in_run = false;
  bool run_up = true;
  size_t run_start = 0;
  double run_peak = 0.0;

  auto close_run = [&](size_t end_index) {
    const int64_t start_sec = series.TimeForIndex(run_start);
    const int64_t end_sec = series.TimeForIndex(end_index);
    const bool recovered = end_index < n;
    const bool long_run =
        (end_sec - start_sec) >=
        options.level_shift_min_sec * series.interval_sec();
    FeatureEvent ev;
    if (!recovered || long_run) {
      ev.type = run_up ? FeatureType::kLevelShiftUp
                       : FeatureType::kLevelShiftDown;
    } else {
      ev.type = run_up ? FeatureType::kSpikeUp : FeatureType::kSpikeDown;
    }
    ev.start_sec = start_sec;
    // Half-open: the event covers up to the start of the first clean point
    // (or the series end).
    ev.end_sec = end_index < n ? series.TimeForIndex(end_index)
                               : series.end_time();
    ev.severity = run_peak;
    events.push_back(ev);
    in_run = false;
  };

  for (size_t i = 0; i < n; ++i) {
    const double v = series[i];
    bool flagged = false;
    bool up = true;
    double z = 0.0;
    if (clean.size() >= options.min_baseline) {
      if (!baseline_fresh) {
        baseline = ComputeBaseline(clean, options);
        baseline_fresh = true;
      }
      z = (v - baseline.median) / (1.4826 * baseline.mad);
      if (z > options.threshold) {
        flagged = true;
        up = true;
      } else if (z < -options.threshold) {
        flagged = true;
        up = false;
      }
    }

    if (flagged) {
      if (in_run && up != run_up) {
        close_run(i);
      }
      if (!in_run) {
        in_run = true;
        run_up = up;
        run_start = i;
        run_peak = std::fabs(z);
      } else {
        run_peak = std::max(run_peak, std::fabs(z));
      }
      // Baseline frozen during the run: flagged points are not clean.
    } else {
      if (in_run) close_run(i);
      clean.push_back(v);
      if (clean.size() > options.baseline_window) clean.pop_front();
      baseline_fresh = false;
    }
  }
  if (in_run) close_run(n);
  return events;
}

bool HasFeatureInRange(const std::vector<FeatureEvent>& events,
                       FeatureType type, int64_t start_sec,
                       int64_t end_sec) {
  for (const FeatureEvent& ev : events) {
    if (ev.type == type && ev.start_sec < end_sec && ev.end_sec > start_sec) {
      return true;
    }
  }
  return false;
}

}  // namespace pinsql::anomaly
