#include "anomaly/detectors.h"

#include <algorithm>
#include <cmath>

namespace pinsql::anomaly {

const char* FeatureTypeName(FeatureType type) {
  switch (type) {
    case FeatureType::kSpikeUp:
      return "spike_up";
    case FeatureType::kSpikeDown:
      return "spike_down";
    case FeatureType::kLevelShiftUp:
      return "level_shift_up";
    case FeatureType::kLevelShiftDown:
      return "level_shift_down";
  }
  return "unknown";
}

namespace {

double MedianOf(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid),
                   v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(),
                   v.begin() + static_cast<ptrdiff_t>(mid) - 1,
                   v.begin() + static_cast<ptrdiff_t>(mid));
  return 0.5 * (hi + v[mid - 1]);
}

}  // namespace

StreamingFeatureDetector::StreamingFeatureDetector(
    const DetectorOptions& options, int64_t start_time, int64_t interval_sec)
    : options_(options), start_time_(start_time), interval_sec_(interval_sec) {}

int64_t StreamingFeatureDetector::run_start_time() const {
  return start_time_ + static_cast<int64_t>(run_start_) * interval_sec_;
}

std::optional<FeatureEvent> StreamingFeatureDetector::CloseRun(
    size_t end_index, bool recovered) {
  const int64_t start_sec =
      start_time_ + static_cast<int64_t>(run_start_) * interval_sec_;
  const int64_t end_sec =
      start_time_ + static_cast<int64_t>(end_index) * interval_sec_;
  const bool long_run =
      (end_sec - start_sec) >= options_.level_shift_min_sec * interval_sec_;
  FeatureEvent ev;
  if (!recovered || long_run) {
    ev.type =
        run_up_ ? FeatureType::kLevelShiftUp : FeatureType::kLevelShiftDown;
  } else {
    ev.type = run_up_ ? FeatureType::kSpikeUp : FeatureType::kSpikeDown;
  }
  ev.start_sec = start_sec;
  // Half-open: the event covers up to the start of the first clean point
  // (or the series end).
  ev.end_sec = end_sec;
  ev.severity = run_peak_;
  in_run_ = false;
  return ev;
}

std::optional<FeatureEvent> StreamingFeatureDetector::Push(double value) {
  std::optional<FeatureEvent> closed;
  bool flagged = false;
  bool up = true;
  double z = 0.0;
  if (clean_.size() >= options_.min_baseline) {
    if (!baseline_fresh_) {
      std::vector<double> v(clean_.begin(), clean_.end());
      baseline_median_ = MedianOf(v);
      for (double& x : v) x = std::fabs(x - baseline_median_);
      baseline_mad_ = MedianOf(std::move(v));
      const double floor =
          options_.mad_floor_frac * std::fabs(baseline_median_) + 0.5;
      baseline_mad_ = std::max(baseline_mad_, floor);
      baseline_fresh_ = true;
    }
    z = (value - baseline_median_) / (1.4826 * baseline_mad_);
    if (z > options_.threshold) {
      flagged = true;
      up = true;
    } else if (z < -options_.threshold) {
      flagged = true;
      up = false;
    }
  }
  last_z_ = z;

  if (flagged) {
    if (in_run_ && up != run_up_) {
      closed = CloseRun(count_, /*recovered=*/true);
    }
    if (!in_run_) {
      in_run_ = true;
      run_up_ = up;
      run_start_ = count_;
      run_peak_ = std::fabs(z);
    } else {
      run_peak_ = std::max(run_peak_, std::fabs(z));
    }
    // Baseline frozen during the run: flagged points are not clean.
  } else {
    if (in_run_) closed = CloseRun(count_, /*recovered=*/true);
    clean_.push_back(value);
    if (clean_.size() > options_.baseline_window) clean_.pop_front();
    baseline_fresh_ = false;
  }
  ++count_;
  return closed;
}

StreamingDetectorSnapshot StreamingFeatureDetector::ExportSnapshot() const {
  StreamingDetectorSnapshot snap;
  snap.clean.assign(clean_.begin(), clean_.end());
  snap.baseline_median = baseline_median_;
  snap.baseline_mad = baseline_mad_;
  snap.baseline_fresh = baseline_fresh_;
  snap.in_run = in_run_;
  snap.run_up = run_up_;
  snap.run_start = run_start_;
  snap.run_peak = run_peak_;
  snap.last_z = last_z_;
  snap.count = count_;
  snap.start_time = start_time_;
  snap.interval_sec = interval_sec_;
  return snap;
}

StreamingFeatureDetector StreamingFeatureDetector::FromSnapshot(
    const DetectorOptions& options, const StreamingDetectorSnapshot& snap) {
  StreamingFeatureDetector detector(options, snap.start_time,
                                    snap.interval_sec);
  detector.clean_.assign(snap.clean.begin(), snap.clean.end());
  detector.baseline_median_ = snap.baseline_median;
  detector.baseline_mad_ = snap.baseline_mad;
  detector.baseline_fresh_ = snap.baseline_fresh;
  detector.in_run_ = snap.in_run;
  detector.run_up_ = snap.run_up;
  detector.run_start_ = static_cast<size_t>(snap.run_start);
  detector.run_peak_ = snap.run_peak;
  detector.last_z_ = snap.last_z;
  detector.count_ = static_cast<size_t>(snap.count);
  return detector;
}

std::optional<FeatureEvent> StreamingFeatureDetector::Finish() {
  if (!in_run_) return std::nullopt;
  return CloseRun(count_, /*recovered=*/false);
}

std::vector<FeatureEvent> DetectFeatures(const TimeSeries& series,
                                         const DetectorOptions& options) {
  std::vector<FeatureEvent> events;
  if (series.empty()) return events;
  StreamingFeatureDetector detector(options, series.start_time(),
                                    series.interval_sec());
  for (size_t i = 0; i < series.size(); ++i) {
    if (auto ev = detector.Push(series[i])) events.push_back(*ev);
  }
  if (auto ev = detector.Finish()) events.push_back(*ev);
  return events;
}

bool HasFeatureInRange(const std::vector<FeatureEvent>& events,
                       FeatureType type, int64_t start_sec,
                       int64_t end_sec) {
  for (const FeatureEvent& ev : events) {
    if (ev.type == type && ev.start_sec < end_sec && ev.end_sec > start_sec) {
      return true;
    }
  }
  return false;
}

}  // namespace pinsql::anomaly
