#include "anomaly/pettitt.h"

#include <cmath>

namespace pinsql::anomaly {

PettittResult PettittTest(const std::vector<double>& x) {
  PettittResult result;
  const size_t n = x.size();
  if (n < 2) return result;
  // Degenerate inputs return the clean "no change point" default instead
  // of NaN-propagating into detector thresholds: a series with fewer than
  // 4 finite points (all-gap telemetry, tiny windows) cannot support a
  // change-point verdict. Non-finite points contribute sign 0 to U_t below,
  // so mixed-gap series still work; their segment means skip the gaps.
  size_t finite_points = 0;
  for (double v : x) {
    if (std::isfinite(v)) ++finite_points;
  }
  if (finite_points < 4) return result;

  // U_t = sum_{i<=t} sum_{j>t} sign(x_j - x_i), computed incrementally:
  // U_t = U_{t-1} + sum_j sign(x_j - x_t) restricted to j > t side... the
  // direct identity is U_t = U_{t-1} + V_t with
  //   V_t = sum_{j=t+1..n} sign(x_j - x_t) - sum_{i=1..t-1} sign(x_t - x_i),
  // still O(n) per step -> O(n^2) total, which is fine for the window
  // sizes PinSQL works with (resample first for very long series).
  double u = 0.0;
  double best = 0.0;
  size_t best_index = 0;
  for (size_t t = 0; t + 1 < n; ++t) {
    double v = 0.0;
    for (size_t j = t + 1; j < n; ++j) {
      const double d = x[j] - x[t];
      v += d > 0 ? 1.0 : (d < 0 ? -1.0 : 0.0);
    }
    for (size_t i = 0; i < t; ++i) {
      const double d = x[t] - x[i];
      v -= d > 0 ? 1.0 : (d < 0 ? -1.0 : 0.0);
    }
    u += v;
    if (std::fabs(u) > best) {
      best = std::fabs(u);
      best_index = t;
    }
  }

  result.change_index = best_index;
  result.statistic = best;
  const double nn = static_cast<double>(n);
  const double exponent = -6.0 * best * best / (nn * nn * nn + nn * nn);
  result.p_value = std::min(1.0, 2.0 * std::exp(exponent));

  // Segment means over the finite points only: a single telemetry gap in a
  // segment used to turn both means (and every shifted_up() verdict built
  // on them) into NaN. A segment with no finite points keeps the clean 0.
  double sum_before = 0.0;
  size_t count_before = 0;
  for (size_t i = 0; i <= best_index; ++i) {
    if (!std::isfinite(x[i])) continue;
    sum_before += x[i];
    ++count_before;
  }
  double sum_after = 0.0;
  size_t count_after = 0;
  for (size_t i = best_index + 1; i < n; ++i) {
    if (!std::isfinite(x[i])) continue;
    sum_after += x[i];
    ++count_after;
  }
  if (count_before > 0) {
    result.mean_before = sum_before / static_cast<double>(count_before);
  }
  if (count_after > 0) {
    result.mean_after = sum_after / static_cast<double>(count_after);
  }
  return result;
}

PettittResult PettittTest(const TimeSeries& x) {
  return PettittTest(x.values());
}

}  // namespace pinsql::anomaly
