#ifndef PINSQL_ANOMALY_PHENOMENON_H_
#define PINSQL_ANOMALY_PHENOMENON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "anomaly/detectors.h"
#include "ts/time_series.h"
#include "util/json.h"
#include "util/status.h"

namespace pinsql::anomaly {

/// One configured trigger: "<metric>.<feature>", e.g. "active_session.spike"
/// (paper Sec. IV-B). `spike`/`level_shift` match the up-variants;
/// the explicit forms ("spike_up", "spike_down", ...) are also accepted.
struct PhenomenonRule {
  std::string metric;
  std::string feature;  // "spike", "level_shift", "spike_up", ...

  bool Matches(FeatureType type) const;
};

/// A detected anomaly phenomenon: the triggering rule plus the merged
/// anomaly period.
struct Phenomenon {
  std::string rule;  // "<metric>.<feature>"
  int64_t start_sec = 0;
  int64_t end_sec = 0;
  double severity = 0.0;
};

/// Phenomenon Perception Layer configuration.
struct PhenomenonConfig {
  std::vector<PhenomenonRule> rules;
  /// Phenomena of the same rule closer than this merge into one.
  int64_t merge_gap_sec = 120;
  /// Phenomena shorter than this are ignored.
  int64_t min_duration_sec = 10;
  DetectorOptions detector;

  /// The paper's default: active_session / cpu_usage / iops_usage spikes
  /// and level shifts.
  static PhenomenonConfig Default();
  /// Parses {"rules": ["active_session.spike", ...], "merge_gap_sec": ...}.
  static StatusOr<PhenomenonConfig> FromJson(const Json& json);
};

/// Runs the Basic Perception Layer over every configured metric and then
/// matches the configured rules; overlapping/nearby events of one rule are
/// merged and short ones dropped. The earliest phenomenon defines the
/// anomaly case (paper Sec. IV-B).
std::vector<Phenomenon> DetectPhenomena(
    const std::map<std::string, const TimeSeries*>& metrics,
    const PhenomenonConfig& config);

/// The diagnosis window the detected phenomena induce: [a_s, a_e) is the
/// span of the merged phenomena. Returns false when nothing was detected.
bool ExtractAnomalyPeriod(const std::vector<Phenomenon>& phenomena,
                          int64_t* anomaly_start, int64_t* anomaly_end);

}  // namespace pinsql::anomaly

#endif  // PINSQL_ANOMALY_PHENOMENON_H_
