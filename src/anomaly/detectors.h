#ifndef PINSQL_ANOMALY_DETECTORS_H_
#define PINSQL_ANOMALY_DETECTORS_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "ts/time_series.h"

namespace pinsql::anomaly {

/// Anomalous features the Basic Perception Layer recognizes (paper Sec.
/// IV-B, citing iSQUAD's taxonomy): a spike recovers, a level shift stays.
enum class FeatureType {
  kSpikeUp,
  kSpikeDown,
  kLevelShiftUp,
  kLevelShiftDown,
};

const char* FeatureTypeName(FeatureType type);

/// One detected anomalous feature: [start_sec, end_sec) plus a severity
/// (peak robust z-score).
struct FeatureEvent {
  FeatureType type = FeatureType::kSpikeUp;
  int64_t start_sec = 0;
  int64_t end_sec = 0;
  double severity = 0.0;
};

/// Detector tuning.
struct DetectorOptions {
  /// Robust z-score threshold for flagging a point.
  double threshold = 6.0;
  /// Number of trailing clean samples forming the rolling baseline.
  size_t baseline_window = 120;
  /// Minimum baseline samples before detection starts.
  size_t min_baseline = 30;
  /// Runs at least this long that never recover before the series ends
  /// are classified as level shifts rather than spikes.
  int64_t level_shift_min_sec = 300;
  /// Floor on the MAD so flat baselines don't divide by ~0. Expressed as a
  /// fraction of the baseline median (plus a small absolute floor).
  double mad_floor_frac = 0.05;
};

/// Complete serializable state of a StreamingFeatureDetector, captured by
/// ExportSnapshot() and restored by FromSnapshot(): a restored detector
/// continues the stream bit-identically to one that never stopped. The
/// durable online service checkpoints this across process restarts.
struct StreamingDetectorSnapshot {
  std::vector<double> clean;
  double baseline_median = 0.0;
  double baseline_mad = 0.0;
  bool baseline_fresh = false;
  bool in_run = false;
  bool run_up = true;
  uint64_t run_start = 0;
  double run_peak = 0.0;
  double last_z = 0.0;
  uint64_t count = 0;
  /// Clock parameters, echoed so a restore can rebuild the constructor
  /// arguments.
  int64_t start_time = 0;
  int64_t interval_sec = 1;
};

/// Incremental robust detector: push one sample at a time, each compared
/// against the median/MAD of the last `baseline_window` *clean* points, so
/// the baseline stays frozen while an anomaly is in progress (otherwise a
/// long pile-up would absorb itself into the baseline and end the event).
///
/// Cost per Push is O(1) amortized for a fixed baseline window: the
/// median/MAD recompute (O(window)) only happens lazily, when a sample must
/// be scored after the clean set changed; flagged stretches reuse the
/// frozen baseline for free. This is the entry point the online service
/// feeds sample-by-sample; the batch DetectFeatures below is a thin loop
/// over it, so the two are equivalent by construction.
class StreamingFeatureDetector {
 public:
  /// Samples pushed are at start_time, start_time + interval, ...
  StreamingFeatureDetector(const DetectorOptions& options, int64_t start_time,
                           int64_t interval_sec);

  /// Pushes the next sample. Returns the completed event when this sample
  /// closes a flagged run (a clean sample after a run, or a run flipping
  /// direction), nullopt otherwise.
  std::optional<FeatureEvent> Push(double value);

  /// Closes the series: an open run that never recovered is classified as
  /// a level shift ending at the current end-of-series timestamp.
  std::optional<FeatureEvent> Finish();

  /// True while the most recent sample extended a flagged run.
  bool in_run() const { return in_run_; }
  /// Direction of the open run (meaningful only while in_run()).
  bool run_up() const { return run_up_; }
  /// Timestamp of the first sample of the open run.
  int64_t run_start_time() const;
  /// Samples in the open run so far (0 when not in a run).
  size_t run_length() const { return in_run_ ? count_ - run_start_ : 0; }
  /// Peak |robust z| of the open run.
  double run_peak() const { return run_peak_; }
  /// Robust z-score of the most recent sample (0 before min_baseline).
  double last_z() const { return last_z_; }
  /// Samples pushed so far.
  size_t count() const { return count_; }

  /// Captures the full mutable state (see StreamingDetectorSnapshot).
  StreamingDetectorSnapshot ExportSnapshot() const;
  /// Rebuilds a detector mid-stream from a snapshot; subsequent pushes are
  /// bit-identical to the detector the snapshot was taken from.
  static StreamingFeatureDetector FromSnapshot(
      const DetectorOptions& options, const StreamingDetectorSnapshot& snap);

 private:
  std::optional<FeatureEvent> CloseRun(size_t end_index, bool recovered);

  DetectorOptions options_;
  int64_t start_time_;
  int64_t interval_sec_;
  std::deque<double> clean_;
  double baseline_median_ = 0.0;
  double baseline_mad_ = 0.0;
  bool baseline_fresh_ = false;
  bool in_run_ = false;
  bool run_up_ = true;
  size_t run_start_ = 0;
  double run_peak_ = 0.0;
  double last_z_ = 0.0;
  size_t count_ = 0;
};

/// Batch form: feeds the series through a StreamingFeatureDetector and
/// returns the flagged runs as events, classified spike vs level shift.
std::vector<FeatureEvent> DetectFeatures(const TimeSeries& series,
                                         const DetectorOptions& options);

/// Convenience: true iff any feature of `type` overlaps [start, end).
bool HasFeatureInRange(const std::vector<FeatureEvent>& events,
                       FeatureType type, int64_t start_sec, int64_t end_sec);

}  // namespace pinsql::anomaly

#endif  // PINSQL_ANOMALY_DETECTORS_H_
