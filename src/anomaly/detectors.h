#ifndef PINSQL_ANOMALY_DETECTORS_H_
#define PINSQL_ANOMALY_DETECTORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ts/time_series.h"

namespace pinsql::anomaly {

/// Anomalous features the Basic Perception Layer recognizes (paper Sec.
/// IV-B, citing iSQUAD's taxonomy): a spike recovers, a level shift stays.
enum class FeatureType {
  kSpikeUp,
  kSpikeDown,
  kLevelShiftUp,
  kLevelShiftDown,
};

const char* FeatureTypeName(FeatureType type);

/// One detected anomalous feature: [start_sec, end_sec) plus a severity
/// (peak robust z-score).
struct FeatureEvent {
  FeatureType type = FeatureType::kSpikeUp;
  int64_t start_sec = 0;
  int64_t end_sec = 0;
  double severity = 0.0;
};

/// Detector tuning.
struct DetectorOptions {
  /// Robust z-score threshold for flagging a point.
  double threshold = 6.0;
  /// Number of trailing clean samples forming the rolling baseline.
  size_t baseline_window = 120;
  /// Minimum baseline samples before detection starts.
  size_t min_baseline = 30;
  /// Runs at least this long that never recover before the series ends
  /// are classified as level shifts rather than spikes.
  int64_t level_shift_min_sec = 300;
  /// Floor on the MAD so flat baselines don't divide by ~0. Expressed as a
  /// fraction of the baseline median (plus a small absolute floor).
  double mad_floor_frac = 0.05;
};

/// Streaming-style robust detector: each point is compared against the
/// median/MAD of the last `baseline_window` *clean* points, so the
/// baseline stays frozen while an anomaly is in progress (otherwise a long
/// pile-up would absorb itself into the baseline and end the event).
/// Returns the flagged runs as events, classified spike vs level shift.
std::vector<FeatureEvent> DetectFeatures(const TimeSeries& series,
                                         const DetectorOptions& options);

/// Convenience: true iff any feature of `type` overlaps [start, end).
bool HasFeatureInRange(const std::vector<FeatureEvent>& events,
                       FeatureType type, int64_t start_sec, int64_t end_sec);

}  // namespace pinsql::anomaly

#endif  // PINSQL_ANOMALY_DETECTORS_H_
