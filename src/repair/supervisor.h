#ifndef PINSQL_REPAIR_SUPERVISOR_H_
#define PINSQL_REPAIR_SUPERVISOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "repair/actions.h"
#include "repair/events.h"
#include "util/rng.h"
#include "util/status.h"

namespace pinsql::repair {

/// Per-attempt perturbation decided by an action-layer fault hook: the
/// control plane can fail transiently, apply late, or apply partially.
/// The default-constructed decision is a clean, full, immediate success.
struct ActionFaultDecision {
  bool fail = false;              // transient failure: the attempt is lost
  double delay_ms = 0.0;          // application lands this much late
  double partial_fraction = 1.0;  // (0, 1]: action lands at reduced strength
};

/// Consulted by the supervisor before every execution attempt. Implemented
/// by faults::ActionFaultInjector (seeded chaos); a null hook means the
/// control plane is perfect. (ticket, attempt) identify the attempt, so
/// stateless implementations stay deterministic under any call order.
class ActionFaultHook {
 public:
  virtual ~ActionFaultHook() = default;
  virtual ActionFaultDecision OnAttempt(const RepairAction& action,
                                        uint64_t ticket, int attempt,
                                        double now_ms) = 0;
};

/// Preflight policy limits, checked before any attempt. The defaults are
/// permissive enough for the paper's case studies; Strict() models a
/// cautious production tenant.
struct GuardrailPolicy {
  /// Reject a new throttle when this many are already installed.
  size_t max_concurrent_throttles = 8;
  /// A throttle below this cap would starve the tenant outright.
  double min_throttle_qps = 0.1;
  /// Throttle durations must be positive and bounded.
  int64_t max_throttle_duration_sec = 24 * 3600;
  /// Optimize cost fractions must stay in [min_optimize_factor, 1].
  double min_optimize_factor = 0.005;
  /// Total cores the supervisor may add across all autoscales.
  double max_added_cores_total = 64.0;
  /// Refuse a second action on the same sql_id within this many seconds of
  /// the previous successful application (0 disables the cooldown).
  int64_t per_sql_cooldown_sec = 0;

  static GuardrailPolicy Strict();
};

/// Bounded retries with exponential backoff and seeded jitter. Backoff is
/// bookkeeping time (recorded in events), not simulation time: attempts of
/// one Apply() resolve synchronously against the engine.
struct RetryPolicy {
  int max_attempts = 3;
  double initial_backoff_ms = 200.0;
  double backoff_multiplier = 2.0;
  /// Jitter fraction j: each backoff is scaled by a deterministic factor
  /// drawn uniformly from [1-j, 1+j] (seeded by ticket and attempt).
  double jitter_fraction = 0.2;
  /// An application delayed beyond this budget counts as a failed attempt.
  double attempt_timeout_ms = 2000.0;
};

/// Per-action-type circuit breaker: opens after repeated exhausted
/// lifecycles, rejects while open, admits one trial after a cooldown.
struct BreakerPolicy {
  int open_after_failures = 3;
  double open_cooldown_ms = 120'000.0;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* BreakerStateName(BreakerState state);

/// Post-action verification: after an application, the supervisor watches
/// the anomaly metric (fed via Tick) for `window_sec`; if the metric fails
/// to improve by `improvement_margin` relative to the at-apply baseline —
/// or regresses past `regression_factor` at any tick inside the window —
/// the action is rolled back.
struct VerificationPolicy {
  int64_t window_sec = 120;
  double improvement_margin = 0.05;
  double regression_factor = 1.25;
  /// Disables verification (and hence rollback) entirely.
  bool enabled = true;
};

struct SupervisorOptions {
  GuardrailPolicy guardrails;
  RetryPolicy retry;
  BreakerPolicy breaker;
  VerificationPolicy verify;
  /// Seeds the backoff jitter stream; fixed seed => fully deterministic
  /// retry timing.
  uint64_t seed = 1;
};

/// Result of a successful (or suppressed-duplicate) Apply().
struct ApplyOutcome {
  enum class Code { kApplied, kDuplicate };
  Code code = Code::kApplied;
  uint64_t ticket = 0;
  int attempts = 1;
  /// The action actually landed weaker than requested.
  bool partial = false;
  /// Effective application time (now_ms + injected delay, if any).
  double applied_ms = 0.0;
};

/// Counters summarizing a supervisor's lifetime (all derivable from the
/// event stream; kept separately for cheap assertions and benches).
struct SupervisorStats {
  size_t applied = 0;
  size_t partial_applications = 0;
  size_t duplicates_suppressed = 0;
  size_t rejected = 0;
  size_t breaker_rejected = 0;
  size_t failed = 0;
  size_t attempts = 0;
  size_t retries = 0;
  size_t rollbacks = 0;
  size_t verified = 0;
  size_t breaker_opens = 0;
};

/// Closed-loop repair supervisor: wraps ActionExecutor in the full safety
/// lifecycle — preflight guardrails, fault-tolerant execution with retry /
/// backoff and a per-action-type circuit breaker, post-action verification
/// windows with automatic rollback, idempotency suppression, and a typed
/// event audit trail.
///
/// Time is simulation time, driven by the caller: Apply() at the moment an
/// action is decided, Tick() whenever the simulation advances (it expires
/// throttles, settles verification windows and cools breakers). With no
/// fault hook and default policies the engine mutations are exactly the
/// plain ActionExecutor sequence, so the unsupervised path is the severity-0
/// special case.
class RepairSupervisor {
 public:
  RepairSupervisor(dbsim::Engine* engine, SupervisorOptions options,
                   ActionFaultHook* fault_hook = nullptr);

  /// Runs the full lifecycle for one action at sim time now_ms.
  /// `observed_metric` is the current value of the anomaly metric the
  /// action is meant to improve (e.g. active-session mean); it baselines
  /// the verification window. Pass a negative value to skip verification
  /// for this action. `idempotency_key` suppresses duplicates while an
  /// action with the same key is still active (empty = derived from the
  /// action type and sql_id).
  ///
  /// Errors: FailedPrecondition (guardrail, with the reason),
  /// kFailedPrecondition with "breaker open" (circuit open), kInternal
  /// (every attempt exhausted).
  StatusOr<ApplyOutcome> Apply(const RepairAction& action, double now_ms,
                               double observed_metric = -1.0,
                               const std::string& idempotency_key = "");

  /// Preflight guardrail check only (no side effects, no events). Public
  /// so callers can probe policy before committing to an action.
  Status Preflight(const RepairAction& action, double now_ms) const;

  /// Advances supervised time: expires throttles, re-evaluates pending
  /// verification windows against `anomaly_metric`, transitions breakers
  /// out of open after their cooldown.
  void Tick(double now_ms, double anomaly_metric);

  const std::vector<RepairEvent>& events() const { return events_; }
  Json EventsJson() const;
  const SupervisorStats& stats() const { return stats_; }
  BreakerState breaker_state(ActionType type) const;
  /// Actions applied and not yet rolled back / expired.
  size_t active_actions() const { return active_.size(); }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    double opened_at_ms = 0.0;
  };
  struct ActiveAction {
    uint64_t ticket = 0;
    std::string key;
    RepairAction requested;   // as asked for
    RepairAction effective;   // as landed (after partial application)
    double applied_ms = 0.0;
    // Verification state.
    bool verify_pending = false;
    double baseline_metric = 0.0;
    double verify_deadline_ms = 0.0;
    // Rollback snapshots.
    dbsim::Engine::CostFactors prior_cost;
    double prior_cores = 0.0;
    double prior_io_capacity = 0.0;
  };

  void Emit(double time_ms, RepairEventKind kind, const RepairAction& action,
            uint64_t ticket, int attempt, std::string detail);
  Breaker& BreakerFor(ActionType type);
  /// Open -> half-open transition once the cooldown elapsed.
  void CoolBreaker(ActionType type, double now_ms);
  void Rollback(const ActiveAction& action, double now_ms,
                const std::string& reason);
  /// Deterministic jitter factor in [1-j, 1+j] for (ticket, attempt).
  double JitterFactor(uint64_t ticket, int attempt);
  std::string DefaultKey(const RepairAction& action) const;

  dbsim::Engine* engine_;
  SupervisorOptions options_;
  ActionFaultHook* fault_hook_;
  ActionExecutor executor_;

  std::vector<RepairEvent> events_;
  SupervisorStats stats_;
  std::map<ActionType, Breaker> breakers_;
  std::vector<ActiveAction> active_;
  std::map<uint64_t, double> last_applied_ms_;  // per sql_id (cooldown)
  double added_cores_total_ = 0.0;
  uint64_t last_ticket_ = 0;
};

}  // namespace pinsql::repair

#endif  // PINSQL_REPAIR_SUPERVISOR_H_
