#ifndef PINSQL_REPAIR_RULE_ENGINE_H_
#define PINSQL_REPAIR_RULE_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "anomaly/phenomenon.h"
#include "pipeline/template_metrics.h"
#include "repair/actions.h"
#include "util/json.h"
#include "util/status.h"

namespace pinsql::repair {

/// One configured repair rule (paper Fig. 5): when an anomaly phenomenon
/// matches `anomaly` and an R-SQL's metric matches `template_feature`,
/// suggest `action`.
struct RepairRule {
  /// Phenomenon selector, "<metric>.<feature>" (e.g. "cpu_usage.spike"),
  /// or "*" to match any phenomenon.
  std::string anomaly = "*";
  /// Template-metric precondition: "", "examined_rows.sudden_increase" or
  /// "execution_count.sudden_increase" (Tukey's rule inside the anomaly
  /// period).
  std::string template_feature;
  RepairAction action;
  /// Execute automatically (paper: off by default, suggestions only).
  bool auto_execute = false;
  /// Notification channels (informational; surfaced in suggestions).
  std::vector<std::string> notify;
};

/// A rule that fired for a specific R-SQL.
struct Suggestion {
  RepairAction action;
  uint64_t sql_id = 0;
  std::string matched_rule;  // "<anomaly> & <template_feature>"
  bool auto_execute = false;
  std::vector<std::string> notify;
};

/// Rule-driven repair recommendation (paper Sec. VII): PinSQL pinpoints
/// the R-SQLs; this engine decides what to do with them based on the
/// user's configuration.
class RepairRuleEngine {
 public:
  RepairRuleEngine() = default;
  explicit RepairRuleEngine(std::vector<RepairRule> rules)
      : rules_(std::move(rules)) {}

  /// The paper's default policy: throttle on active-session anomalies,
  /// optimize on CPU/IO anomalies whose R-SQL shows an examined-rows
  /// surge. AutoScale stays opt-in.
  static RepairRuleEngine Default();

  /// Parses {"rules": [{"anomaly": "...", "template_feature": "...",
  /// "action": "throttle|optimize|autoscale", "params": {...},
  /// "auto_execute": bool, "notify": ["dingtalk", ...]}, ...]}.
  static StatusOr<RepairRuleEngine> FromJson(const Json& json);
  /// Convenience: parse from JSON text.
  static StatusOr<RepairRuleEngine> FromJsonText(std::string_view text);

  /// Serializes the configuration back to the FromJson schema (round-trip
  /// safe: FromJson(ToJson()) reproduces the effective policy).
  Json ToJson() const;

  const std::vector<RepairRule>& rules() const { return rules_; }

  /// Matches every (phenomenon, R-SQL) pair against the rules. At most one
  /// suggestion per (rule, sql_id) pair is produced.
  std::vector<Suggestion> Suggest(
      const std::vector<anomaly::Phenomenon>& phenomena,
      const std::vector<uint64_t>& rsql_ranking,
      const TemplateMetricsStore& metrics, int64_t anomaly_start,
      int64_t anomaly_end, size_t max_rsqls = 3) const;

 private:
  std::vector<RepairRule> rules_;
};

}  // namespace pinsql::repair

#endif  // PINSQL_REPAIR_RULE_ENGINE_H_
