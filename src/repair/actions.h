#ifndef PINSQL_REPAIR_ACTIONS_H_
#define PINSQL_REPAIR_ACTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dbsim/engine.h"

namespace pinsql::repair {

/// The three autonomous actions PinSQL ships (paper Sec. VII); others plug
/// in by extending the enum and the executor.
enum class ActionType {
  kThrottle,   // rate-limit an R-SQL
  kOptimize,   // report to the query optimizer (index / rewrite)
  kAutoScale,  // upgrade the instance (add CPU cores)
};

const char* ActionTypeName(ActionType type);

/// One concrete action against an R-SQL or the instance.
struct RepairAction {
  ActionType type = ActionType::kThrottle;
  /// Target template; ignored for kAutoScale.
  uint64_t sql_id = 0;

  // kThrottle parameters.
  double throttle_max_qps = 2.0;
  int64_t throttle_duration_sec = 600;

  // kOptimize parameters: remaining cost fractions after optimization
  // (e.g. 0.1 = the optimized plan costs 10 % of the original).
  double optimize_cpu_factor = 0.1;
  double optimize_rows_factor = 0.1;

  // kAutoScale parameters: a class upgrade adds CPU cores and multiplies
  // the IO budget.
  double autoscale_add_cores = 8.0;
  double autoscale_io_factor = 2.0;

  std::string ToString() const;
};

/// Applies actions to a simulated instance and expires throttles. In
/// production these calls would go to the database's control plane; the
/// simulator's knobs expose the same effects (rejected queries, cheaper
/// plans, more cores).
class ActionExecutor {
 public:
  explicit ActionExecutor(dbsim::Engine* engine) : engine_(engine) {}

  /// Executes one action at simulation time now_ms.
  void Execute(const RepairAction& action, double now_ms);

  /// Lifts throttles whose duration elapsed. Call when simulation time
  /// advances (e.g. once per simulated segment).
  void ExpireThrottles(double now_ms);

  /// Actions executed so far (audit log).
  const std::vector<std::string>& audit_log() const { return audit_log_; }

 private:
  struct ActiveThrottle {
    uint64_t sql_id;
    double expires_ms;
  };

  dbsim::Engine* engine_;
  std::vector<ActiveThrottle> throttles_;
  std::vector<std::string> audit_log_;
};

}  // namespace pinsql::repair

#endif  // PINSQL_REPAIR_ACTIONS_H_
