#ifndef PINSQL_REPAIR_ACTIONS_H_
#define PINSQL_REPAIR_ACTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dbsim/engine.h"

namespace pinsql::repair {

/// The three autonomous actions PinSQL ships (paper Sec. VII); others plug
/// in by extending the enum and the executor.
enum class ActionType {
  kThrottle,   // rate-limit an R-SQL
  kOptimize,   // report to the query optimizer (index / rewrite)
  kAutoScale,  // upgrade the instance (add CPU cores)
};

const char* ActionTypeName(ActionType type);

/// Sentinel for optimize_io_factor: follow optimize_cpu_factor.
inline constexpr double kFollowCpuFactor = -1.0;

/// One concrete action against an R-SQL or the instance.
struct RepairAction {
  ActionType type = ActionType::kThrottle;
  /// Target template; ignored for kAutoScale.
  uint64_t sql_id = 0;

  // kThrottle parameters.
  double throttle_max_qps = 2.0;
  int64_t throttle_duration_sec = 600;

  // kOptimize parameters: remaining cost fractions after optimization
  // (e.g. 0.1 = the optimized plan costs 10 % of the original). The IO
  // fraction defaults to the CPU fraction (kFollowCpuFactor) so existing
  // configs keep their behavior; set it explicitly for IO-bound plans.
  double optimize_cpu_factor = 0.1;
  double optimize_io_factor = kFollowCpuFactor;
  double optimize_rows_factor = 0.1;

  // kAutoScale parameters: a class upgrade adds CPU cores and multiplies
  // the IO budget.
  double autoscale_add_cores = 8.0;
  double autoscale_io_factor = 2.0;

  /// The IO cost fraction actually applied (resolves the follow-CPU
  /// sentinel).
  double effective_io_factor() const {
    return optimize_io_factor < 0.0 ? optimize_cpu_factor
                                    : optimize_io_factor;
  }

  std::string ToString() const;
};

/// Weakens an action to `fraction` of its intended effect (models partial
/// application by a flaky control plane). fraction=1 returns the action
/// unchanged; fraction->0 approaches a no-op: a partial throttle admits
/// more QPS, a partial optimization leaves cost fractions closer to 1, a
/// partial autoscale adds fewer cores.
RepairAction ScaleActionEffect(const RepairAction& action, double fraction);

/// Applies actions to a simulated instance and expires throttles. In
/// production these calls would go to the database's control plane; the
/// simulator's knobs expose the same effects (rejected queries, cheaper
/// plans, more cores).
class ActionExecutor {
 public:
  explicit ActionExecutor(dbsim::Engine* engine) : engine_(engine) {}

  /// Executes one action at simulation time now_ms. Re-throttling an
  /// already-throttled template replaces the existing entry (new cap, new
  /// expiry) instead of stacking a second one.
  void Execute(const RepairAction& action, double now_ms);

  /// Lifts throttles whose duration elapsed and returns their sql_ids.
  /// Call when simulation time advances (e.g. once per simulated segment).
  std::vector<uint64_t> ExpireThrottles(double now_ms);

  /// Lifts a throttle before its expiry (rollback / manual un-throttle).
  /// Returns false when the template is not throttled.
  bool CancelThrottle(uint64_t sql_id, double now_ms);

  /// Throttles currently installed (guardrail accounting).
  size_t ActiveThrottleCount() const { return throttles_.size(); }

  /// Actions executed so far (audit log).
  const std::vector<std::string>& audit_log() const { return audit_log_; }

 private:
  struct ActiveThrottle {
    uint64_t sql_id;
    double expires_ms;
  };

  dbsim::Engine* engine_;
  std::vector<ActiveThrottle> throttles_;
  std::vector<std::string> audit_log_;
};

}  // namespace pinsql::repair

#endif  // PINSQL_REPAIR_ACTIONS_H_
