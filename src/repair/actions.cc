#include "repair/actions.h"

#include <algorithm>

#include "util/strings.h"

namespace pinsql::repair {

const char* ActionTypeName(ActionType type) {
  switch (type) {
    case ActionType::kThrottle:
      return "throttle";
    case ActionType::kOptimize:
      return "optimize";
    case ActionType::kAutoScale:
      return "autoscale";
  }
  return "unknown";
}

std::string RepairAction::ToString() const {
  switch (type) {
    case ActionType::kThrottle:
      return StrFormat("throttle sql=%s max_qps=%.1f duration=%llds",
                       HashToHex(sql_id).c_str(), throttle_max_qps,
                       static_cast<long long>(throttle_duration_sec));
    case ActionType::kOptimize:
      return StrFormat("optimize sql=%s cpu_factor=%.2f rows_factor=%.2f",
                       HashToHex(sql_id).c_str(), optimize_cpu_factor,
                       optimize_rows_factor);
    case ActionType::kAutoScale:
      return StrFormat("autoscale add_cores=%.1f", autoscale_add_cores);
  }
  return "unknown";
}

void ActionExecutor::Execute(const RepairAction& action, double now_ms) {
  switch (action.type) {
    case ActionType::kThrottle:
      engine_->SetThrottle(action.sql_id, action.throttle_max_qps);
      throttles_.push_back(
          {action.sql_id,
           now_ms + 1000.0 * static_cast<double>(
                                 action.throttle_duration_sec)});
      break;
    case ActionType::kOptimize:
      engine_->SetCostMultiplier(action.sql_id, action.optimize_cpu_factor,
                                 action.optimize_cpu_factor,
                                 action.optimize_rows_factor);
      break;
    case ActionType::kAutoScale:
      engine_->SetCpuCores(engine_->cpu_cores() +
                           action.autoscale_add_cores);
      engine_->SetIoCapacity(engine_->io_capacity_ms_per_sec() *
                             action.autoscale_io_factor);
      break;
  }
  audit_log_.push_back(
      StrFormat("t=%.0fms %s", now_ms, action.ToString().c_str()));
}

void ActionExecutor::ExpireThrottles(double now_ms) {
  auto it = throttles_.begin();
  while (it != throttles_.end()) {
    if (it->expires_ms <= now_ms) {
      engine_->ClearThrottle(it->sql_id);
      audit_log_.push_back(StrFormat("t=%.0fms unthrottle sql=%s", now_ms,
                                     HashToHex(it->sql_id).c_str()));
      it = throttles_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace pinsql::repair
