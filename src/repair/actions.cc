#include "repair/actions.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace pinsql::repair {

const char* ActionTypeName(ActionType type) {
  switch (type) {
    case ActionType::kThrottle:
      return "throttle";
    case ActionType::kOptimize:
      return "optimize";
    case ActionType::kAutoScale:
      return "autoscale";
  }
  return "unknown";
}

std::string RepairAction::ToString() const {
  switch (type) {
    case ActionType::kThrottle:
      return StrFormat("throttle sql=%s max_qps=%.1f duration=%llds",
                       HashToHex(sql_id).c_str(), throttle_max_qps,
                       static_cast<long long>(throttle_duration_sec));
    case ActionType::kOptimize:
      return StrFormat(
          "optimize sql=%s cpu_factor=%.2f io_factor=%.2f rows_factor=%.2f",
          HashToHex(sql_id).c_str(), optimize_cpu_factor,
          effective_io_factor(), optimize_rows_factor);
    case ActionType::kAutoScale:
      return StrFormat("autoscale add_cores=%.1f", autoscale_add_cores);
  }
  return "unknown";
}

RepairAction ScaleActionEffect(const RepairAction& action, double fraction) {
  assert(fraction > 0.0 && fraction <= 1.0);
  RepairAction out = action;
  if (fraction >= 1.0) return out;
  switch (action.type) {
    case ActionType::kThrottle:
      // A weaker throttle admits proportionally more traffic.
      out.throttle_max_qps = action.throttle_max_qps / fraction;
      break;
    case ActionType::kOptimize:
      // Cost fractions interpolate toward 1 (no optimization).
      out.optimize_cpu_factor =
          1.0 - fraction * (1.0 - action.optimize_cpu_factor);
      out.optimize_io_factor =
          1.0 - fraction * (1.0 - action.effective_io_factor());
      out.optimize_rows_factor =
          1.0 - fraction * (1.0 - action.optimize_rows_factor);
      break;
    case ActionType::kAutoScale:
      out.autoscale_add_cores = fraction * action.autoscale_add_cores;
      out.autoscale_io_factor =
          1.0 + fraction * (action.autoscale_io_factor - 1.0);
      break;
  }
  return out;
}

void ActionExecutor::Execute(const RepairAction& action, double now_ms) {
  switch (action.type) {
    case ActionType::kThrottle: {
      engine_->SetThrottle(action.sql_id, action.throttle_max_qps);
      const double expires_ms =
          now_ms +
          1000.0 * static_cast<double>(action.throttle_duration_sec);
      // Re-throttle replaces the existing entry: keeping both would let the
      // earlier entry's expiry lift the newer throttle prematurely.
      auto it = std::find_if(throttles_.begin(), throttles_.end(),
                             [&](const ActiveThrottle& t) {
                               return t.sql_id == action.sql_id;
                             });
      if (it != throttles_.end()) {
        it->expires_ms = expires_ms;
      } else {
        throttles_.push_back({action.sql_id, expires_ms});
      }
      break;
    }
    case ActionType::kOptimize:
      engine_->SetCostMultiplier(action.sql_id, action.optimize_cpu_factor,
                                 action.effective_io_factor(),
                                 action.optimize_rows_factor);
      break;
    case ActionType::kAutoScale:
      engine_->SetCpuCores(engine_->cpu_cores() +
                           action.autoscale_add_cores);
      engine_->SetIoCapacity(engine_->io_capacity_ms_per_sec() *
                             action.autoscale_io_factor);
      break;
  }
  audit_log_.push_back(
      StrFormat("t=%.0fms %s", now_ms, action.ToString().c_str()));
}

std::vector<uint64_t> ActionExecutor::ExpireThrottles(double now_ms) {
  std::vector<uint64_t> expired;
  auto it = throttles_.begin();
  while (it != throttles_.end()) {
    if (it->expires_ms <= now_ms) {
      engine_->ClearThrottle(it->sql_id);
      audit_log_.push_back(StrFormat("t=%.0fms unthrottle sql=%s", now_ms,
                                     HashToHex(it->sql_id).c_str()));
      expired.push_back(it->sql_id);
      it = throttles_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

bool ActionExecutor::CancelThrottle(uint64_t sql_id, double now_ms) {
  auto it = std::find_if(
      throttles_.begin(), throttles_.end(),
      [&](const ActiveThrottle& t) { return t.sql_id == sql_id; });
  if (it == throttles_.end()) return false;
  engine_->ClearThrottle(sql_id);
  audit_log_.push_back(StrFormat("t=%.0fms unthrottle sql=%s (cancelled)",
                                 now_ms, HashToHex(sql_id).c_str()));
  throttles_.erase(it);
  return true;
}

}  // namespace pinsql::repair
