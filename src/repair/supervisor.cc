#include "repair/supervisor.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/strings.h"

namespace pinsql::repair {

namespace {

/// Absolute slack on verification comparisons: metrics like active session
/// hover near zero on a healthy instance, where pure relative margins are
/// meaningless.
constexpr double kVerifyAbsSlack = 0.5;

}  // namespace

GuardrailPolicy GuardrailPolicy::Strict() {
  GuardrailPolicy p;
  p.max_concurrent_throttles = 2;
  p.min_throttle_qps = 0.5;
  p.max_throttle_duration_sec = 3600;
  p.min_optimize_factor = 0.02;
  p.max_added_cores_total = 16.0;
  p.per_sql_cooldown_sec = 300;
  return p;
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

RepairSupervisor::RepairSupervisor(dbsim::Engine* engine,
                                   SupervisorOptions options,
                                   ActionFaultHook* fault_hook)
    : engine_(engine),
      options_(options),
      fault_hook_(fault_hook),
      executor_(engine) {}

void RepairSupervisor::Emit(double time_ms, RepairEventKind kind,
                            const RepairAction& action, uint64_t ticket,
                            int attempt, std::string detail) {
  RepairEvent e;
  e.time_ms = time_ms;
  e.kind = kind;
  e.action = action.type;
  e.sql_id = action.sql_id;
  e.ticket = ticket;
  e.attempt = attempt;
  e.detail = std::move(detail);
  events_.push_back(std::move(e));

  // Every lifecycle transition funnels through here, so this one switch is
  // the complete metrics surface of the supervisor.
  switch (kind) {
    case RepairEventKind::kRejected:
      PINSQL_OBS_COUNT("repair.preflight_rejects", 1);
      break;
    case RepairEventKind::kBreakerRejected:
      PINSQL_OBS_COUNT("repair.breaker_rejects", 1);
      break;
    case RepairEventKind::kDuplicate:
      PINSQL_OBS_COUNT("repair.duplicates_suppressed", 1);
      break;
    case RepairEventKind::kRetryScheduled:
      PINSQL_OBS_COUNT("repair.retries", 1);
      break;
    case RepairEventKind::kApplied:
      PINSQL_OBS_COUNT("repair.applied", 1);
      break;
    case RepairEventKind::kFailed:
      PINSQL_OBS_COUNT("repair.failed", 1);
      break;
    case RepairEventKind::kRolledBack:
      PINSQL_OBS_COUNT("repair.rollbacks", 1);
      break;
    case RepairEventKind::kBreakerOpened:
    case RepairEventKind::kBreakerHalfOpen:
    case RepairEventKind::kBreakerClosed:
      PINSQL_OBS_COUNT("repair.breaker_transitions", 1);
      break;
    default:
      break;
  }
}

RepairSupervisor::Breaker& RepairSupervisor::BreakerFor(ActionType type) {
  return breakers_[type];
}

void RepairSupervisor::CoolBreaker(ActionType type, double now_ms) {
  Breaker& br = breakers_[type];
  if (br.state == BreakerState::kOpen &&
      now_ms >= br.opened_at_ms + options_.breaker.open_cooldown_ms) {
    br.state = BreakerState::kHalfOpen;
    RepairAction probe;
    probe.type = type;
    probe.sql_id = 0;
    Emit(now_ms, RepairEventKind::kBreakerHalfOpen, probe, 0, 0,
         "cooldown elapsed; one trial admitted");
  }
}

BreakerState RepairSupervisor::breaker_state(ActionType type) const {
  auto it = breakers_.find(type);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

std::string RepairSupervisor::DefaultKey(const RepairAction& action) const {
  return StrFormat("%s:%s", ActionTypeName(action.type),
                   HashToHex(action.sql_id).c_str());
}

double RepairSupervisor::JitterFactor(uint64_t ticket, int attempt) {
  const double j = options_.retry.jitter_fraction;
  if (j <= 0.0) return 1.0;
  // Stateless seeded draw: (seed, ticket, attempt) fully determine the
  // jitter, independent of call order and thread count.
  const uint64_t mix = options_.seed +
                       ticket * 0x9E3779B97F4A7C15ULL +
                       static_cast<uint64_t>(attempt) * 0xBF58476D1CE4E5B9ULL;
  Rng rng(mix);
  return 1.0 + j * rng.Uniform(-1.0, 1.0);
}

Status RepairSupervisor::Preflight(const RepairAction& action,
                                   double now_ms) const {
  const GuardrailPolicy& g = options_.guardrails;
  switch (action.type) {
    case ActionType::kThrottle:
      if (action.throttle_max_qps < g.min_throttle_qps) {
        return Status::FailedPrecondition(StrFormat(
            "throttle cap %.2f qps below policy floor %.2f qps",
            action.throttle_max_qps, g.min_throttle_qps));
      }
      if (action.throttle_duration_sec <= 0 ||
          action.throttle_duration_sec > g.max_throttle_duration_sec) {
        return Status::FailedPrecondition(StrFormat(
            "throttle duration %llds outside (0, %llds]",
            static_cast<long long>(action.throttle_duration_sec),
            static_cast<long long>(g.max_throttle_duration_sec)));
      }
      // Replacing an installed throttle does not add a concurrent one.
      if (!engine_->IsThrottled(action.sql_id) &&
          executor_.ActiveThrottleCount() >= g.max_concurrent_throttles) {
        return Status::FailedPrecondition(StrFormat(
            "%zu throttles already active (policy max %zu)",
            executor_.ActiveThrottleCount(), g.max_concurrent_throttles));
      }
      break;
    case ActionType::kOptimize: {
      const double cpu = action.optimize_cpu_factor;
      const double io = action.effective_io_factor();
      const double rows = action.optimize_rows_factor;
      if (cpu < g.min_optimize_factor || cpu > 1.0 ||
          io < g.min_optimize_factor || io > 1.0 ||
          rows < g.min_optimize_factor || rows > 1.0) {
        return Status::FailedPrecondition(StrFormat(
            "optimize factors (cpu=%.3f io=%.3f rows=%.3f) outside "
            "[%.3f, 1]",
            cpu, io, rows, g.min_optimize_factor));
      }
      break;
    }
    case ActionType::kAutoScale:
      if (action.autoscale_add_cores <= 0.0) {
        return Status::FailedPrecondition("autoscale must add cores");
      }
      if (added_cores_total_ + action.autoscale_add_cores >
          g.max_added_cores_total) {
        return Status::FailedPrecondition(StrFormat(
            "adding %.1f cores would exceed the %.1f-core budget "
            "(%.1f already added)",
            action.autoscale_add_cores, g.max_added_cores_total,
            added_cores_total_));
      }
      break;
  }
  if (g.per_sql_cooldown_sec > 0) {
    auto it = last_applied_ms_.find(action.sql_id);
    if (it != last_applied_ms_.end() &&
        now_ms <
            it->second + 1000.0 * static_cast<double>(g.per_sql_cooldown_sec)) {
      return Status::FailedPrecondition(StrFormat(
          "sql %s in cooldown until t=%.0fms",
          HashToHex(action.sql_id).c_str(),
          it->second + 1000.0 * static_cast<double>(g.per_sql_cooldown_sec)));
    }
  }
  return Status::OK();
}

StatusOr<ApplyOutcome> RepairSupervisor::Apply(
    const RepairAction& action, double now_ms, double observed_metric,
    const std::string& idempotency_key) {
  const uint64_t ticket = ++last_ticket_;
  const std::string key =
      idempotency_key.empty() ? DefaultKey(action) : idempotency_key;

  // Idempotency: while an action with this key is still active, a repeat
  // diagnosis trigger must not double-apply.
  for (const ActiveAction& a : active_) {
    if (a.key == key) {
      ++stats_.duplicates_suppressed;
      Emit(now_ms, RepairEventKind::kDuplicate, action, ticket, 0,
           StrFormat("key '%s' already active (ticket %llu)", key.c_str(),
                     static_cast<unsigned long long>(a.ticket)));
      ApplyOutcome out;
      out.code = ApplyOutcome::Code::kDuplicate;
      out.ticket = a.ticket;
      out.attempts = 0;
      out.applied_ms = a.applied_ms;
      return out;
    }
  }

  // Circuit breaker.
  CoolBreaker(action.type, now_ms);
  Breaker& br = BreakerFor(action.type);
  if (br.state == BreakerState::kOpen) {
    ++stats_.breaker_rejected;
    Emit(now_ms, RepairEventKind::kBreakerRejected, action, ticket, 0,
         StrFormat("breaker open until t=%.0fms",
                   br.opened_at_ms + options_.breaker.open_cooldown_ms));
    return Status::FailedPrecondition(StrFormat(
        "%s breaker open", ActionTypeName(action.type)));
  }

  // Guardrails.
  if (Status preflight = Preflight(action, now_ms); !preflight.ok()) {
    ++stats_.rejected;
    Emit(now_ms, RepairEventKind::kRejected, action, ticket, 0,
         preflight.message());
    return preflight;
  }

  // Fault-tolerant execution: bounded retries with exponential backoff and
  // deterministic jitter. Backoff is bookkept (events) rather than simulated.
  const RetryPolicy& retry = options_.retry;
  double backoff_ms = retry.initial_backoff_ms;
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    ++stats_.attempts;
    Emit(now_ms, RepairEventKind::kAttempt, action, ticket, attempt, "");
    ActionFaultDecision decision;
    if (fault_hook_ != nullptr) {
      decision = fault_hook_->OnAttempt(action, ticket, attempt, now_ms);
    }
    if (decision.fail) {
      Emit(now_ms, RepairEventKind::kAttemptFailed, action, ticket, attempt,
           "transient control-plane failure");
    } else if (decision.delay_ms > retry.attempt_timeout_ms) {
      Emit(now_ms, RepairEventKind::kAttemptFailed, action, ticket, attempt,
           StrFormat("application timed out (%.0fms > %.0fms budget)",
                     decision.delay_ms, retry.attempt_timeout_ms));
    } else {
      // Success: land the (possibly partial, possibly delayed) action.
      const double fraction =
          std::clamp(decision.partial_fraction, 1e-3, 1.0);
      const bool partial = fraction < 1.0;
      const RepairAction effective = ScaleActionEffect(action, fraction);

      ActiveAction active;
      active.ticket = ticket;
      active.key = key;
      active.requested = action;
      active.effective = effective;
      active.applied_ms = now_ms + decision.delay_ms;
      active.prior_cost = engine_->GetCostMultiplier(action.sql_id);
      active.prior_cores = engine_->cpu_cores();
      active.prior_io_capacity = engine_->io_capacity_ms_per_sec();

      executor_.Execute(effective, active.applied_ms);
      if (action.type == ActionType::kAutoScale) {
        added_cores_total_ += effective.autoscale_add_cores;
      }
      last_applied_ms_[action.sql_id] = active.applied_ms;

      if (options_.verify.enabled && observed_metric >= 0.0) {
        active.verify_pending = true;
        active.baseline_metric = observed_metric;
        active.verify_deadline_ms =
            active.applied_ms +
            1000.0 * static_cast<double>(options_.verify.window_sec);
      }

      std::string detail;
      if (partial) {
        detail += StrFormat("partial application %.2f", fraction);
      }
      if (decision.delay_ms > 0.0) {
        if (!detail.empty()) detail += ", ";
        detail += StrFormat("applied %.0fms late", decision.delay_ms);
      }
      Emit(active.applied_ms, RepairEventKind::kApplied, action, ticket,
           attempt, detail);
      active_.push_back(std::move(active));

      ++stats_.applied;
      if (partial) ++stats_.partial_applications;
      br.consecutive_failures = 0;
      if (br.state == BreakerState::kHalfOpen) {
        br.state = BreakerState::kClosed;
        Emit(now_ms, RepairEventKind::kBreakerClosed, action, 0, 0,
             "half-open trial succeeded");
      }

      ApplyOutcome out;
      out.code = ApplyOutcome::Code::kApplied;
      out.ticket = ticket;
      out.attempts = attempt;
      out.partial = partial;
      out.applied_ms = now_ms + decision.delay_ms;
      return out;
    }

    if (attempt < retry.max_attempts) {
      ++stats_.retries;
      const double jittered = backoff_ms * JitterFactor(ticket, attempt);
      Emit(now_ms, RepairEventKind::kRetryScheduled, action, ticket, attempt,
           StrFormat("backoff %.0fms", jittered));
      backoff_ms *= retry.backoff_multiplier;
    }
  }

  // Every attempt exhausted.
  ++stats_.failed;
  Emit(now_ms, RepairEventKind::kFailed, action, ticket,
       retry.max_attempts,
       StrFormat("gave up after %d attempts", retry.max_attempts));
  ++br.consecutive_failures;
  if (br.state == BreakerState::kHalfOpen ||
      br.consecutive_failures >= options_.breaker.open_after_failures) {
    br.state = BreakerState::kOpen;
    br.opened_at_ms = now_ms;
    br.consecutive_failures = 0;
    ++stats_.breaker_opens;
    Emit(now_ms, RepairEventKind::kBreakerOpened, action, 0, 0,
         StrFormat("cooling down for %.0fms",
                   options_.breaker.open_cooldown_ms));
  }
  return Status::Internal(StrFormat(
      "%s on sql %s failed after %d attempts", ActionTypeName(action.type),
      HashToHex(action.sql_id).c_str(), retry.max_attempts));
}

void RepairSupervisor::Rollback(const ActiveAction& action, double now_ms,
                                const std::string& reason) {
  switch (action.effective.type) {
    case ActionType::kThrottle:
      executor_.CancelThrottle(action.effective.sql_id, now_ms);
      break;
    case ActionType::kOptimize:
      engine_->SetCostMultiplier(action.effective.sql_id,
                                 action.prior_cost.cpu,
                                 action.prior_cost.io,
                                 action.prior_cost.rows);
      break;
    case ActionType::kAutoScale:
      engine_->SetCpuCores(action.prior_cores);
      engine_->SetIoCapacity(action.prior_io_capacity);
      added_cores_total_ -= action.effective.autoscale_add_cores;
      break;
  }
  ++stats_.rollbacks;
  Emit(now_ms, RepairEventKind::kRolledBack, action.requested, action.ticket,
       0, reason);
}

void RepairSupervisor::Tick(double now_ms, double anomaly_metric) {
  for (auto& [type, br] : breakers_) CoolBreaker(type, now_ms);

  // Normal throttle expiry retires the matching active actions (and frees
  // their idempotency keys).
  const std::vector<uint64_t> expired = executor_.ExpireThrottles(now_ms);
  for (uint64_t sql_id : expired) {
    auto it = std::find_if(active_.begin(), active_.end(),
                           [&](const ActiveAction& a) {
                             return a.effective.type == ActionType::kThrottle &&
                                    a.effective.sql_id == sql_id;
                           });
    if (it != active_.end()) {
      Emit(now_ms, RepairEventKind::kExpired, it->requested, it->ticket, 0,
           "throttle duration elapsed");
      active_.erase(it);
    }
  }

  // Verification windows. Iterate by index: Rollback mutates engine state
  // only, but we erase from active_ below.
  const VerificationPolicy& verify = options_.verify;
  for (size_t i = 0; i < active_.size();) {
    ActiveAction& a = active_[i];
    if (!a.verify_pending || now_ms <= a.applied_ms) {
      ++i;
      continue;
    }
    const double baseline = a.baseline_metric;
    bool rolled_back = false;
    if (anomaly_metric >
        baseline * verify.regression_factor + kVerifyAbsSlack) {
      // The action made things worse: do not wait out the window.
      Rollback(a, now_ms,
               StrFormat("regression: metric %.1f > %.2fx baseline %.1f",
                         anomaly_metric, verify.regression_factor, baseline));
      rolled_back = true;
    } else if (now_ms >= a.verify_deadline_ms) {
      const double pass_below =
          baseline * (1.0 - verify.improvement_margin) + kVerifyAbsSlack;
      if (anomaly_metric <= pass_below) {
        Emit(now_ms, RepairEventKind::kVerified, a.requested, a.ticket, 0,
             StrFormat("metric %.1f improved vs baseline %.1f",
                       anomaly_metric, baseline));
        ++stats_.verified;
        a.verify_pending = false;
      } else {
        Rollback(a, now_ms,
                 StrFormat("no improvement: metric %.1f vs baseline %.1f "
                           "(needed <= %.1f)",
                           anomaly_metric, baseline, pass_below));
        rolled_back = true;
      }
    }
    if (rolled_back) {
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

Json RepairSupervisor::EventsJson() const {
  Json arr = Json::MakeArray();
  for (const RepairEvent& e : events_) arr.Append(e.ToJson());
  return arr;
}

}  // namespace pinsql::repair
