#include "repair/events.h"

#include <map>
#include <set>

#include "util/strings.h"

namespace pinsql::repair {

const char* RepairEventKindName(RepairEventKind kind) {
  switch (kind) {
    case RepairEventKind::kRejected:
      return "rejected";
    case RepairEventKind::kBreakerRejected:
      return "breaker_rejected";
    case RepairEventKind::kDuplicate:
      return "duplicate";
    case RepairEventKind::kAttempt:
      return "attempt";
    case RepairEventKind::kAttemptFailed:
      return "attempt_failed";
    case RepairEventKind::kRetryScheduled:
      return "retry_scheduled";
    case RepairEventKind::kApplied:
      return "applied";
    case RepairEventKind::kFailed:
      return "failed";
    case RepairEventKind::kVerified:
      return "verified";
    case RepairEventKind::kRolledBack:
      return "rolled_back";
    case RepairEventKind::kExpired:
      return "expired";
    case RepairEventKind::kBreakerOpened:
      return "breaker_opened";
    case RepairEventKind::kBreakerHalfOpen:
      return "breaker_half_open";
    case RepairEventKind::kBreakerClosed:
      return "breaker_closed";
  }
  return "unknown";
}

bool RepairEventKindFromName(std::string_view name, RepairEventKind* out) {
  static constexpr RepairEventKind kAll[] = {
      RepairEventKind::kRejected,       RepairEventKind::kBreakerRejected,
      RepairEventKind::kDuplicate,      RepairEventKind::kAttempt,
      RepairEventKind::kAttemptFailed,  RepairEventKind::kRetryScheduled,
      RepairEventKind::kApplied,        RepairEventKind::kFailed,
      RepairEventKind::kVerified,       RepairEventKind::kRolledBack,
      RepairEventKind::kExpired,        RepairEventKind::kBreakerOpened,
      RepairEventKind::kBreakerHalfOpen, RepairEventKind::kBreakerClosed,
  };
  for (RepairEventKind kind : kAll) {
    if (name == RepairEventKindName(kind)) {
      if (out != nullptr) *out = kind;
      return true;
    }
  }
  return false;
}

bool ActionTypeFromName(std::string_view name, ActionType* out) {
  static constexpr ActionType kAll[] = {
      ActionType::kThrottle, ActionType::kOptimize, ActionType::kAutoScale};
  for (ActionType type : kAll) {
    if (name == ActionTypeName(type)) {
      if (out != nullptr) *out = type;
      return true;
    }
  }
  return false;
}

Json RepairEvent::ToJson() const {
  Json obj = Json::MakeObject();
  obj.Set("time_ms", time_ms);
  obj.Set("kind", RepairEventKindName(kind));
  obj.Set("action", ActionTypeName(action));
  obj.Set("sql_id", HashToHex(sql_id));
  obj.Set("ticket", static_cast<int64_t>(ticket));
  obj.Set("attempt", attempt);
  obj.Set("detail", detail);
  return obj;
}

StatusOr<RepairEvent> RepairEvent::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("repair event: not a JSON object");
  }
  RepairEvent event;
  event.time_ms = json.GetNumberOr("time_ms", 0.0);
  const std::string kind_name = json.GetStringOr("kind", "");
  if (!RepairEventKindFromName(kind_name, &event.kind)) {
    return Status::InvalidArgument("repair event: unknown kind '" +
                                   kind_name + "'");
  }
  const std::string action_name = json.GetStringOr("action", "");
  if (!ActionTypeFromName(action_name, &event.action)) {
    return Status::InvalidArgument("repair event: unknown action '" +
                                   action_name + "'");
  }
  if (!HexToHash(json.GetStringOr("sql_id", ""), &event.sql_id)) {
    return Status::InvalidArgument("repair event: bad sql_id");
  }
  event.ticket =
      static_cast<uint64_t>(json.GetNumberOr("ticket", 0.0));
  event.attempt = static_cast<int>(json.GetNumberOr("attempt", 0.0));
  event.detail = json.GetStringOr("detail", "");
  return event;
}

std::string RepairEvent::ToString() const {
  std::string out = StrFormat("t=%.0fms #%llu %s %s sql=%s", time_ms,
                              static_cast<unsigned long long>(ticket),
                              RepairEventKindName(kind),
                              ActionTypeName(action),
                              HashToHex(sql_id).c_str());
  if (attempt > 0) out += StrFormat(" attempt=%d", attempt);
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

bool EventAccountingConsistent(const std::vector<RepairEvent>& events) {
  std::set<uint64_t> attempted;
  std::set<uint64_t> applied;
  std::map<uint64_t, int> terminal;  // applied or failed, per ticket
  std::set<uint64_t> verified;
  std::set<uint64_t> rolled_back;
  for (const RepairEvent& e : events) {
    switch (e.kind) {
      case RepairEventKind::kAttempt:
        attempted.insert(e.ticket);
        break;
      case RepairEventKind::kApplied:
        applied.insert(e.ticket);
        ++terminal[e.ticket];
        break;
      case RepairEventKind::kFailed:
        ++terminal[e.ticket];
        break;
      case RepairEventKind::kVerified:
        verified.insert(e.ticket);
        break;
      case RepairEventKind::kRolledBack:
        rolled_back.insert(e.ticket);
        break;
      default:
        break;
    }
  }
  for (uint64_t ticket : attempted) {
    auto it = terminal.find(ticket);
    if (it == terminal.end() || it->second != 1) return false;
  }
  for (const auto& [ticket, count] : terminal) {
    if (count != 1 || attempted.count(ticket) == 0) return false;
  }
  for (uint64_t ticket : verified) {
    if (applied.count(ticket) == 0) return false;
    if (rolled_back.count(ticket) != 0) return false;
  }
  for (uint64_t ticket : rolled_back) {
    if (applied.count(ticket) == 0) return false;
  }
  return true;
}

}  // namespace pinsql::repair
