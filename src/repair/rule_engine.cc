#include "repair/rule_engine.h"

#include <algorithm>

#include "ts/tukey.h"
#include "util/strings.h"

namespace pinsql::repair {

namespace {

/// Evaluates a "<metric>.sudden_increase" template feature with Tukey's
/// rule: does the metric have an upward outlier inside the anomaly period?
bool TemplateFeatureHolds(const std::string& feature,
                          const TemplateSeries& tpl, int64_t anomaly_start,
                          int64_t anomaly_end) {
  if (feature.empty() || feature == "*") return true;
  const TimeSeries* series = nullptr;
  if (StartsWith(feature, "examined_rows.")) {
    series = &tpl.examined_rows;
  } else if (StartsWith(feature, "execution_count.")) {
    series = &tpl.execution_count;
  } else if (StartsWith(feature, "total_response_ms.")) {
    series = &tpl.total_response_ms;
  } else {
    return false;  // unknown feature never matches
  }
  if (!EndsWith(feature, ".sudden_increase")) return false;
  const TimeSeries coarse = series->Resample(10, TimeSeries::Agg::kSum);
  const int64_t step = coarse.interval_sec();
  const size_t rel_begin = static_cast<size_t>(
      std::max<int64_t>(0, (anomaly_start - coarse.start_time()) / step));
  const size_t rel_end = static_cast<size_t>(std::max<int64_t>(
      0, (anomaly_end - coarse.start_time() + step - 1) / step));
  return UpwardAnomalyInPeriod(coarse.values(), rel_begin, rel_end, 3.0);
}

StatusOr<RepairRule> RuleFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("rule must be an object");
  }
  RepairRule rule;
  rule.anomaly = json.GetStringOr("anomaly", "*");
  rule.template_feature = json.GetStringOr("template_feature", "");
  rule.auto_execute = json.GetBoolOr("auto_execute", false);
  if (const Json* notify = json.Find("notify");
      notify != nullptr && notify->is_array()) {
    for (const Json& channel : notify->AsArray()) {
      if (channel.is_string()) rule.notify.push_back(channel.AsString());
    }
  }

  const std::string action = json.GetStringOr("action", "");
  const Json* params = json.Find("params");
  const Json empty = Json::MakeObject();
  if (params == nullptr || !params->is_object()) params = &empty;
  if (action == "throttle") {
    rule.action.type = ActionType::kThrottle;
    rule.action.throttle_max_qps =
        params->GetNumberOr("max_qps", rule.action.throttle_max_qps);
    rule.action.throttle_duration_sec = static_cast<int64_t>(
        params->GetNumberOr("duration_sec",
                            static_cast<double>(
                                rule.action.throttle_duration_sec)));
  } else if (action == "optimize") {
    rule.action.type = ActionType::kOptimize;
    rule.action.optimize_cpu_factor =
        params->GetNumberOr("cpu_factor", rule.action.optimize_cpu_factor);
    rule.action.optimize_rows_factor =
        params->GetNumberOr("rows_factor", rule.action.optimize_rows_factor);
  } else if (action == "autoscale") {
    rule.action.type = ActionType::kAutoScale;
    rule.action.autoscale_add_cores =
        params->GetNumberOr("add_cores", rule.action.autoscale_add_cores);
    rule.action.autoscale_io_factor =
        params->GetNumberOr("io_factor", rule.action.autoscale_io_factor);
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown action '%s'", action.c_str()));
  }
  return rule;
}

}  // namespace

RepairRuleEngine RepairRuleEngine::Default() {
  std::vector<RepairRule> rules;
  {
    RepairRule throttle;
    throttle.anomaly = "active_session.spike";
    throttle.template_feature = "execution_count.sudden_increase";
    throttle.action.type = ActionType::kThrottle;
    rules.push_back(std::move(throttle));
  }
  for (const char* metric : {"cpu_usage.spike", "cpu_usage.level_shift",
                             "iops_usage.spike"}) {
    RepairRule optimize;
    optimize.anomaly = metric;
    optimize.template_feature = "examined_rows.sudden_increase";
    optimize.action.type = ActionType::kOptimize;
    rules.push_back(std::move(optimize));
  }
  return RepairRuleEngine(std::move(rules));
}

StatusOr<RepairRuleEngine> RepairRuleEngine::FromJson(const Json& json) {
  const Json* rules_json = json.Find("rules");
  if (rules_json == nullptr || !rules_json->is_array()) {
    return Status::InvalidArgument("config needs a top-level rules array");
  }
  std::vector<RepairRule> rules;
  for (const Json& rule_json : rules_json->AsArray()) {
    StatusOr<RepairRule> rule = RuleFromJson(rule_json);
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(rule).value());
  }
  return RepairRuleEngine(std::move(rules));
}

StatusOr<RepairRuleEngine> RepairRuleEngine::FromJsonText(
    std::string_view text) {
  StatusOr<Json> json = Json::Parse(text);
  if (!json.ok()) return json.status();
  return FromJson(*json);
}

std::vector<Suggestion> RepairRuleEngine::Suggest(
    const std::vector<anomaly::Phenomenon>& phenomena,
    const std::vector<uint64_t>& rsql_ranking,
    const TemplateMetricsStore& metrics, int64_t anomaly_start,
    int64_t anomaly_end, size_t max_rsqls) const {
  std::vector<Suggestion> out;
  const size_t n_rsqls = std::min(max_rsqls, rsql_ranking.size());
  for (const RepairRule& rule : rules_) {
    bool anomaly_matched = false;
    for (const anomaly::Phenomenon& p : phenomena) {
      if (rule.anomaly == "*" || rule.anomaly == p.rule) {
        anomaly_matched = true;
        break;
      }
    }
    if (!anomaly_matched) continue;

    if (rule.action.type == ActionType::kAutoScale) {
      Suggestion s;
      s.action = rule.action;
      s.matched_rule = rule.anomaly;
      s.auto_execute = rule.auto_execute;
      s.notify = rule.notify;
      out.push_back(std::move(s));
      continue;
    }

    for (size_t i = 0; i < n_rsqls; ++i) {
      const uint64_t sql_id = rsql_ranking[i];
      const TemplateSeries* tpl = metrics.Find(sql_id);
      if (tpl == nullptr) continue;
      if (!TemplateFeatureHolds(rule.template_feature, *tpl, anomaly_start,
                                anomaly_end)) {
        continue;
      }
      Suggestion s;
      s.action = rule.action;
      s.action.sql_id = sql_id;
      s.sql_id = sql_id;
      s.matched_rule = rule.anomaly +
                       (rule.template_feature.empty()
                            ? ""
                            : " & " + rule.template_feature);
      s.auto_execute = rule.auto_execute;
      s.notify = rule.notify;
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace pinsql::repair
