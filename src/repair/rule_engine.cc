#include "repair/rule_engine.h"

#include <algorithm>

#include "ts/tukey.h"
#include "util/strings.h"

namespace pinsql::repair {

namespace {

/// Evaluates a "<metric>.sudden_increase" template feature with Tukey's
/// rule: does the metric have an upward outlier inside the anomaly period?
bool TemplateFeatureHolds(const std::string& feature,
                          const TemplateSeries& tpl, int64_t anomaly_start,
                          int64_t anomaly_end) {
  if (feature.empty() || feature == "*") return true;
  const TimeSeries* series = nullptr;
  if (StartsWith(feature, "examined_rows.")) {
    series = &tpl.examined_rows;
  } else if (StartsWith(feature, "execution_count.")) {
    series = &tpl.execution_count;
  } else if (StartsWith(feature, "total_response_ms.")) {
    series = &tpl.total_response_ms;
  } else {
    return false;  // unknown feature never matches
  }
  if (!EndsWith(feature, ".sudden_increase")) return false;
  const TimeSeries coarse = series->Resample(10, TimeSeries::Agg::kSum);
  const int64_t step = coarse.interval_sec();
  const size_t rel_begin = static_cast<size_t>(
      std::max<int64_t>(0, (anomaly_start - coarse.start_time()) / step));
  const size_t rel_end = static_cast<size_t>(std::max<int64_t>(
      0, (anomaly_end - coarse.start_time() + step - 1) / step));
  return UpwardAnomalyInPeriod(coarse.values(), rel_begin, rel_end, 3.0);
}

StatusOr<RepairRule> RuleFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("rule must be an object");
  }
  RepairRule rule;
  rule.anomaly = json.GetStringOr("anomaly", "*");
  rule.template_feature = json.GetStringOr("template_feature", "");
  rule.auto_execute = json.GetBoolOr("auto_execute", false);
  if (const Json* notify = json.Find("notify");
      notify != nullptr && notify->is_array()) {
    for (const Json& channel : notify->AsArray()) {
      if (channel.is_string()) rule.notify.push_back(channel.AsString());
    }
  }

  const std::string action = json.GetStringOr("action", "");
  const Json* params = json.Find("params");
  const Json empty = Json::MakeObject();
  if (params == nullptr || !params->is_object()) params = &empty;
  if (action == "throttle") {
    rule.action.type = ActionType::kThrottle;
    rule.action.throttle_max_qps =
        params->GetNumberOr("max_qps", rule.action.throttle_max_qps);
    rule.action.throttle_duration_sec = static_cast<int64_t>(
        params->GetNumberOr("duration_sec",
                            static_cast<double>(
                                rule.action.throttle_duration_sec)));
    if (rule.action.throttle_max_qps < 0.0) {
      return Status::OutOfRange(StrFormat(
          "throttle max_qps must be >= 0, got %.3f",
          rule.action.throttle_max_qps));
    }
    if (rule.action.throttle_duration_sec <= 0) {
      return Status::OutOfRange(StrFormat(
          "throttle duration_sec must be positive, got %lld",
          static_cast<long long>(rule.action.throttle_duration_sec)));
    }
  } else if (action == "optimize") {
    rule.action.type = ActionType::kOptimize;
    rule.action.optimize_cpu_factor =
        params->GetNumberOr("cpu_factor", rule.action.optimize_cpu_factor);
    // The IO fraction follows the CPU fraction unless given explicitly. An
    // explicit value is validated as given: a negative io_factor must not
    // silently alias into the follow-CPU sentinel.
    rule.action.optimize_io_factor =
        params->GetNumberOr("io_factor", kFollowCpuFactor);
    if (params->Find("io_factor") != nullptr &&
        (rule.action.optimize_io_factor <= 0.0 ||
         rule.action.optimize_io_factor > 1.0)) {
      return Status::OutOfRange(StrFormat(
          "optimize io_factor must be in (0, 1], got %.3f",
          rule.action.optimize_io_factor));
    }
    rule.action.optimize_rows_factor =
        params->GetNumberOr("rows_factor", rule.action.optimize_rows_factor);
    for (const double factor : {rule.action.optimize_cpu_factor,
                                rule.action.effective_io_factor(),
                                rule.action.optimize_rows_factor}) {
      if (factor <= 0.0 || factor > 1.0) {
        return Status::OutOfRange(StrFormat(
            "optimize cost fractions must be in (0, 1], got %.3f", factor));
      }
    }
  } else if (action == "autoscale") {
    rule.action.type = ActionType::kAutoScale;
    rule.action.autoscale_add_cores =
        params->GetNumberOr("add_cores", rule.action.autoscale_add_cores);
    rule.action.autoscale_io_factor =
        params->GetNumberOr("io_factor", rule.action.autoscale_io_factor);
    if (rule.action.autoscale_add_cores <= 0.0) {
      return Status::OutOfRange(StrFormat(
          "autoscale add_cores must be positive, got %.3f",
          rule.action.autoscale_add_cores));
    }
    if (rule.action.autoscale_io_factor <= 0.0) {
      return Status::OutOfRange(StrFormat(
          "autoscale io_factor must be positive, got %.3f",
          rule.action.autoscale_io_factor));
    }
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown action '%s'", action.c_str()));
  }
  return rule;
}

Json RuleToJson(const RepairRule& rule) {
  Json obj = Json::MakeObject();
  obj.Set("anomaly", rule.anomaly);
  if (!rule.template_feature.empty()) {
    obj.Set("template_feature", rule.template_feature);
  }
  obj.Set("action", ActionTypeName(rule.action.type));
  Json params = Json::MakeObject();
  switch (rule.action.type) {
    case ActionType::kThrottle:
      params.Set("max_qps", rule.action.throttle_max_qps);
      params.Set("duration_sec",
                 static_cast<int64_t>(rule.action.throttle_duration_sec));
      break;
    case ActionType::kOptimize:
      params.Set("cpu_factor", rule.action.optimize_cpu_factor);
      params.Set("io_factor", rule.action.effective_io_factor());
      params.Set("rows_factor", rule.action.optimize_rows_factor);
      break;
    case ActionType::kAutoScale:
      params.Set("add_cores", rule.action.autoscale_add_cores);
      params.Set("io_factor", rule.action.autoscale_io_factor);
      break;
  }
  obj.Set("params", std::move(params));
  obj.Set("auto_execute", rule.auto_execute);
  if (!rule.notify.empty()) {
    Json notify = Json::MakeArray();
    for (const std::string& channel : rule.notify) notify.Append(channel);
    obj.Set("notify", std::move(notify));
  }
  return obj;
}

}  // namespace

RepairRuleEngine RepairRuleEngine::Default() {
  std::vector<RepairRule> rules;
  {
    RepairRule throttle;
    throttle.anomaly = "active_session.spike";
    throttle.template_feature = "execution_count.sudden_increase";
    throttle.action.type = ActionType::kThrottle;
    rules.push_back(std::move(throttle));
  }
  for (const char* metric : {"cpu_usage.spike", "cpu_usage.level_shift",
                             "iops_usage.spike"}) {
    RepairRule optimize;
    optimize.anomaly = metric;
    optimize.template_feature = "examined_rows.sudden_increase";
    optimize.action.type = ActionType::kOptimize;
    rules.push_back(std::move(optimize));
  }
  return RepairRuleEngine(std::move(rules));
}

StatusOr<RepairRuleEngine> RepairRuleEngine::FromJson(const Json& json) {
  const Json* rules_json = json.Find("rules");
  if (rules_json == nullptr || !rules_json->is_array()) {
    return Status::InvalidArgument("config needs a top-level rules array");
  }
  std::vector<RepairRule> rules;
  for (const Json& rule_json : rules_json->AsArray()) {
    StatusOr<RepairRule> rule = RuleFromJson(rule_json);
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(rule).value());
  }
  return RepairRuleEngine(std::move(rules));
}

StatusOr<RepairRuleEngine> RepairRuleEngine::FromJsonText(
    std::string_view text) {
  StatusOr<Json> json = Json::Parse(text);
  if (!json.ok()) return json.status();
  return FromJson(*json);
}

Json RepairRuleEngine::ToJson() const {
  Json rules = Json::MakeArray();
  for (const RepairRule& rule : rules_) rules.Append(RuleToJson(rule));
  Json obj = Json::MakeObject();
  obj.Set("rules", std::move(rules));
  return obj;
}

std::vector<Suggestion> RepairRuleEngine::Suggest(
    const std::vector<anomaly::Phenomenon>& phenomena,
    const std::vector<uint64_t>& rsql_ranking,
    const TemplateMetricsStore& metrics, int64_t anomaly_start,
    int64_t anomaly_end, size_t max_rsqls) const {
  std::vector<Suggestion> out;
  const size_t n_rsqls = std::min(max_rsqls, rsql_ranking.size());
  for (const RepairRule& rule : rules_) {
    bool anomaly_matched = false;
    for (const anomaly::Phenomenon& p : phenomena) {
      if (rule.anomaly == "*" || rule.anomaly == p.rule) {
        anomaly_matched = true;
        break;
      }
    }
    if (!anomaly_matched) continue;

    if (rule.action.type == ActionType::kAutoScale) {
      Suggestion s;
      s.action = rule.action;
      s.matched_rule = rule.anomaly;
      s.auto_execute = rule.auto_execute;
      s.notify = rule.notify;
      out.push_back(std::move(s));
      continue;
    }

    for (size_t i = 0; i < n_rsqls; ++i) {
      const uint64_t sql_id = rsql_ranking[i];
      const TemplateSeries* tpl = metrics.Find(sql_id);
      if (tpl == nullptr) continue;
      if (!TemplateFeatureHolds(rule.template_feature, *tpl, anomaly_start,
                                anomaly_end)) {
        continue;
      }
      Suggestion s;
      s.action = rule.action;
      s.action.sql_id = sql_id;
      s.sql_id = sql_id;
      s.matched_rule = rule.anomaly +
                       (rule.template_feature.empty()
                            ? ""
                            : " & " + rule.template_feature);
      s.auto_execute = rule.auto_execute;
      s.notify = rule.notify;
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace pinsql::repair
