#ifndef PINSQL_REPAIR_EVENTS_H_
#define PINSQL_REPAIR_EVENTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "repair/actions.h"
#include "util/json.h"

namespace pinsql::repair {

/// Every state transition of one supervised repair action. A ticket groups
/// the events of one Apply() lifecycle: preflight -> attempts -> applied ->
/// verified | rolled back | expired, or a terminal rejection/failure.
enum class RepairEventKind {
  kRejected,        // guardrail preflight refused the action
  kBreakerRejected, // circuit breaker open: not attempted
  kDuplicate,       // idempotency key already active: suppressed
  kAttempt,         // one execution attempt started
  kAttemptFailed,   // the attempt failed (transient fault or timeout)
  kRetryScheduled,  // backoff booked before the next attempt
  kApplied,         // the action landed (possibly partial / delayed)
  kFailed,          // every attempt exhausted: action abandoned
  kVerified,        // verification window passed
  kRolledBack,      // verification failed: action reverted
  kExpired,         // throttle duration elapsed (normal expiry)
  kBreakerOpened,   // too many consecutive failures for this action type
  kBreakerHalfOpen, // cooldown elapsed: one trial admitted
  kBreakerClosed,   // half-open trial succeeded
};

const char* RepairEventKindName(RepairEventKind kind);

/// Inverse of RepairEventKindName / ActionTypeName; returns false on an
/// unknown name. Used when re-hydrating reports from their JSON form.
bool RepairEventKindFromName(std::string_view name, RepairEventKind* out);
bool ActionTypeFromName(std::string_view name, ActionType* out);

/// One typed audit record. Replaces the free-text audit strings: machine
/// readable (JSON report), still renderable as one line for terminals.
struct RepairEvent {
  double time_ms = 0.0;
  RepairEventKind kind = RepairEventKind::kAttempt;
  ActionType action = ActionType::kThrottle;
  uint64_t sql_id = 0;
  /// Groups the events of one Apply() lifecycle; 0 for events outside any
  /// lifecycle (e.g. breaker half-open transitions on Tick).
  uint64_t ticket = 0;
  /// 1-based attempt number within the lifecycle; 0 when not attempt-scoped.
  int attempt = 0;
  /// Reason / parameters, human-readable ("transient failure", "partial
  /// application 0.60", "improvement 2% < margin 5%").
  std::string detail;

  Json ToJson() const;
  /// Parses the ToJson form back; InvalidArgument on missing fields or
  /// unknown kind/action names.
  static StatusOr<RepairEvent> FromJson(const Json& json);
  std::string ToString() const;
};

/// Cross-checks an event stream: every attempted ticket must reach exactly
/// one terminal outcome (applied/failed), every rollback / verification /
/// expiry must refer to an applied ticket, and an applied ticket must not
/// be both verified and rolled back. Returns true when the accounting is
/// consistent; the closed-loop bench uses this as a shape check.
bool EventAccountingConsistent(const std::vector<RepairEvent>& events);

}  // namespace pinsql::repair

#endif  // PINSQL_REPAIR_EVENTS_H_
