#ifndef PINSQL_EVAL_RUNNER_H_
#define PINSQL_EVAL_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/top_sql.h"
#include "core/diagnoser.h"
#include "eval/case_generator.h"
#include "eval/metrics.h"

namespace pinsql::eval {

/// Evaluation batch configuration: `num_cases` cases, anomaly types cycled
/// round-robin, each case seeded from `seed` + index.
struct EvalOptions {
  int num_cases = 40;
  uint64_t seed = 42;
  CaseGenOptions case_options;
  /// Fleet mode: cases are independent instances, so `num_threads > 1`
  /// generates and diagnoses them concurrently (each worker holds at most
  /// one case in memory). Per-case results are folded in case order, so
  /// every score is identical to the serial run.
  int num_threads = 1;
  /// Case-type cycle. Lock anomalies appear twice: they dominate the
  /// hard production cases the paper motivates (R-SQL != top consumer).
  std::vector<workload::AnomalyType> types = {
      workload::AnomalyType::kBusinessSpike,
      workload::AnomalyType::kPoorSql,
      workload::AnomalyType::kMdlLock,
      workload::AnomalyType::kRowLock,
      workload::AnomalyType::kMdlLock,
      workload::AnomalyType::kRowLock,
  };
};

/// Generates each case in turn and hands it to `fn`; cases are discarded
/// afterwards so memory stays bounded. Use this to evaluate many method
/// variants against identical cases.
void ForEachCase(const EvalOptions& options,
                 const std::function<void(size_t, const AnomalyCaseData&)>& fn);

/// Builds the diagnosis input for a generated case (wires logs, metrics,
/// helper-metric nodes, the detected anomaly period and history).
core::DiagnosisInput MakeDiagnosisInput(const AnomalyCaseData& data);

/// Cross-case aggregation of per-stage pipeline traces: how the fleet's
/// diagnosis time splits across stages (paper Sec. VIII-B reports the
/// per-stage breakdown). Stages keep first-seen order, which for PinSQL
/// traces is the pipeline order.
struct StageTimingAggregate {
  struct Stage {
    std::string name;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
    size_t cases = 0;
  };
  std::vector<Stage> stages;
  size_t cases = 0;
  double total_seconds = 0.0;

  /// Folds one diagnosis trace into the aggregate.
  void AddTrace(const obs::PipelineTrace& trace);
  /// Terminal table: per-stage total / mean / max seconds and share of the
  /// summed stage time.
  std::string ToTable() const;
};

/// Scores of one method on one batch.
struct MethodScores {
  std::string name;
  RankMetrics rsql;
  RankMetrics hsql;
  double mean_time_sec = 0.0;
};

/// Accumulates per-case ranks + timings for one method.
class MethodAccumulator {
 public:
  explicit MethodAccumulator(std::string name) : name_(std::move(name)) {}
  void AddCase(const std::vector<uint64_t>& rsql_ranking,
               const std::vector<uint64_t>& hsql_ranking,
               const AnomalyCaseData& data, double seconds);
  /// For Top-All: add the best (min positive) rank across variants.
  void AddRanks(int rsql_rank, int hsql_rank, double seconds);
  MethodScores Summary() const;

 private:
  std::string name_;
  RankAccumulator rsql_;
  RankAccumulator hsql_;
  double time_sum_ = 0.0;
  size_t time_count_ = 0;
};

/// First-hit ranks of one ranking against a case's R/H ground truth.
int RsqlRank(const std::vector<uint64_t>& ranking,
             const AnomalyCaseData& data);
int HsqlRank(const std::vector<uint64_t>& ranking,
             const AnomalyCaseData& data);

/// Full Table-I style evaluation: PinSQL (with `diagnoser` options) vs
/// Top-EN / Top-RT / Top-ER / Top-All on one batch. A non-null
/// `stage_timings` additionally aggregates every case's per-stage pipeline
/// trace (folded in case order, so the aggregate is deterministic at any
/// num_threads).
std::vector<MethodScores> RunOverallEvaluation(
    const EvalOptions& options, const core::DiagnoserOptions& diagnoser,
    StageTimingAggregate* stage_timings = nullptr);

}  // namespace pinsql::eval

#endif  // PINSQL_EVAL_RUNNER_H_
