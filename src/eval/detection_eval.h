#ifndef PINSQL_EVAL_DETECTION_EVAL_H_
#define PINSQL_EVAL_DETECTION_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/case_generator.h"
#include "online/online_detector.h"
#include "workload/scenario.h"

namespace pinsql::eval {

/// One detector stack under evaluation: a display name plus the full
/// online-detector configuration (screen thresholds + forecaster members).
struct DetectorFamilyConfig {
  std::string name;
  online::OnlineDetectorOptions detector;
};

/// The stock ablation ladder: the legacy robust-z + Pettitt screen alone,
/// each forecasting family alone (screen disabled), and the production
/// first-to-confirm ensemble (screen + drift-tuned EWMA + Holt).
std::vector<DetectorFamilyConfig> StandardDetectorFamilies();

/// Per-category detection evaluation over SynADAC cases: every detector
/// family sees the exact same simulated active-session streams (cases are
/// generated once per (category, index) and replayed into each family), so
/// ablation deltas measure the detector, not generator variance. Unlike
/// the online E2E harness this cannot admit cases by whether the batch
/// screen places the anomaly — the extended categories (slow drift above
/// all) are exactly the cases the batch screen is supposed to miss.
/// Instead a draw is admitted only when its *pre-anomaly* baseline is
/// sane: a random workload that already saturates the instance melts down
/// on its own, and scoring detectors against a meltdown measures the
/// generator, not the detector.
struct DetectionEvalOptions {
  int cases_per_category = 4;
  uint64_t seed = 71;
  /// Base case shape; per-category window overrides are applied on top
  /// (slow drift stretches to drift_* so hours-scale creep has room).
  CaseGenOptions case_options;
  std::vector<workload::AnomalyType> categories =
      workload::AllAnomalyTypes();
  /// Drift cases ramp over the whole anomaly window; they need a long
  /// window and a long clean baseline.
  int64_t drift_pre_anomaly_sec = 900;
  int64_t drift_anomaly_duration_sec = 1800;
  int64_t drift_post_anomaly_sec = 120;
  /// A trigger whose onset lands within this tolerance of the injected
  /// period counts as a true detection.
  int64_t onset_tolerance_sec = 90;
  /// Baseline-sanity admission: mean active sessions over the pre-anomaly
  /// window must stay below this (healthy draws sit in the single digits;
  /// a saturated one climbs into the thousands).
  double max_baseline_mean_sessions = 64.0;
  /// Baseline-quiet admission: a draw whose *pre-anomaly* window makes the
  /// stock robust-z screen fire carries an uninjected transient anomaly,
  /// and triggers on it would be scored false no matter how real the
  /// excursion. Re-drawn like saturated baselines. Only the pre-anomaly
  /// slice is screened, so the gate cannot bias the drift categories the
  /// screen is meant to miss.
  bool require_quiet_baseline = true;
  /// Degenerate draws are re-drawn with a perturbed seed at most this many
  /// times (then used as-is, like the online E2E harness).
  size_t max_case_regens = 4;
  /// Case generation fans out across a pool; results fold in case order,
  /// so every score is identical at any thread count.
  int num_threads = 1;
};

struct CategoryDetection {
  workload::AnomalyType type = workload::AnomalyType::kBusinessSpike;
  size_t cases = 0;
  size_t detected = 0;
  /// Triggers (across the category's cases) outside the injected period.
  size_t false_triggers = 0;
  double recall = 0.0;
  /// Median trigger_sec - injected_as over detected cases; -1 if none.
  double median_latency_sec = -1.0;
};

struct DetectionEvalResult {
  std::string family;
  std::vector<CategoryDetection> categories;  // in options.categories order
  /// Convenience aggregates the bench gates on.
  size_t legacy_cases = 0;
  size_t legacy_detected = 0;
  size_t legacy_false_triggers = 0;
  size_t extended_cases = 0;
  size_t extended_detected = 0;
  size_t extended_false_triggers = 0;

  const CategoryDetection* Find(workload::AnomalyType type) const;
  double LegacyRecall() const;
  double ExtendedRecall() const;
};

/// Runs every family over the shared case set. Result order matches
/// `families`.
std::vector<DetectionEvalResult> RunDetectionAblation(
    const DetectionEvalOptions& options,
    const std::vector<DetectorFamilyConfig>& families);

/// Single-family convenience wrapper.
DetectionEvalResult RunDetectionEval(const DetectionEvalOptions& options,
                                     const DetectorFamilyConfig& family);

}  // namespace pinsql::eval

#endif  // PINSQL_EVAL_DETECTION_EVAL_H_
