#include "eval/closed_loop_chaos.h"

#include <algorithm>
#include <memory>

#include "anomaly/phenomenon.h"
#include "core/diagnoser.h"
#include "dbsim/engine.h"
#include "dbsim/monitor.h"
#include "util/thread_pool.h"
#include "workload/arrivals.h"
#include "workload/scenario.h"

namespace pinsql::eval {

namespace {

void MergeStats(repair::SupervisorStats* into,
                const repair::SupervisorStats& from) {
  into->applied += from.applied;
  into->partial_applications += from.partial_applications;
  into->duplicates_suppressed += from.duplicates_suppressed;
  into->rejected += from.rejected;
  into->breaker_rejected += from.breaker_rejected;
  into->failed += from.failed;
  into->attempts += from.attempts;
  into->retries += from.retries;
  into->rollbacks += from.rollbacks;
  into->verified += from.verified;
  into->breaker_opens += from.breaker_opens;
}

void MergeFaultStats(faults::ActionFaultStats* into,
                     const faults::ActionFaultStats& from) {
  into->attempts_seen += from.attempts_seen;
  into->attempts_failed += from.attempts_failed;
  into->applications_delayed += from.applications_delayed;
  into->applications_partial += from.applications_partial;
}

}  // namespace

ClosedLoopCaseOutcome RunClosedLoopCase(const ClosedLoopOptions& options,
                                        double severity, size_t index) {
  ClosedLoopCaseOutcome out;
  const uint64_t case_seed = options.seed + index * 1000003ULL;
  Rng rng(case_seed);

  // --- Scenario: an expensive root-cause SQL deploys and keeps running ----
  workload::ScenarioParams params;
  workload::Workload workload = workload::MakeStandardWorkload(params, &rng);
  const workload::AnomalyType type = (index % 2 == 0)
                                         ? workload::AnomalyType::kPoorSql
                                         : workload::AnomalyType::kRowLock;
  workload::Injection injection = workload::MakeInjection(
      type, &workload, options.anomaly_start_sec, options.day_end_sec, &rng);
  // Pin the case severity (random draws can be too mild to need repair).
  if (type == workload::AnomalyType::kPoorSql) {
    workload.templates.back().cpu_ms_mean = 320.0;
    injection.overrides[0].add_qps = 15.0;
  } else {
    workload.templates.back().cpu_ms_mean = 400.0;
    workload.templates.back().row_groups_touched = 3;
    workload.templates.back().hot_group_limit = 4;
    injection.overrides[0].add_qps = 2.5;
    for (auto& table : workload.tables) {
      if (table.id == workload.templates.back().table_id) {
        table.hot_row_groups = 4;
      }
    }
  }
  const uint64_t rsql_truth = injection.root_cause_ids[0];

  LogStore logs;
  workload.RegisterTemplates(&logs);
  dbsim::SimConfig sim;
  sim.cpu_cores = 8.0;
  dbsim::Engine engine(sim);
  engine.AttachLogStore(&logs);
  engine.AddArrivals(workload::GenerateArrivals(
      workload, injection.overrides, 0, options.day_end_sec,
      case_seed ^ 0x5DEECE66DULL));

  // --- Supervised repair under an injected-fault control plane -----------
  faults::ActionFaultPlan plan = options.plan.WithSeverity(severity);
  plan.seed = options.plan.seed + index * 7919ULL;
  faults::ActionFaultInjector hook(plan);
  repair::SupervisorOptions sup = options.supervisor;
  sup.seed = options.seed + index * 31ULL;
  repair::RepairSupervisor supervisor(&engine, sup, &hook);

  const auto metrics_until = [&](int64_t t_sec) {
    Rng monitor_rng(7);  // fixed: offsets identical at every recompute
    return dbsim::ComputeInstanceMetrics(
        engine.completed(), 0, t_sec, engine.EffectiveCores(),
        sim.io_capacity_ms_per_sec, &monitor_rng);
  };
  const auto session_mean = [&](const dbsim::InstanceMetrics& m, int64_t t0,
                                int64_t t1) {
    return m.active_session.Slice(t0, t1).Mean();
  };

  // --- Phase 1: anomaly runs untreated; diagnose at repair_at ------------
  engine.RunUntil(static_cast<double>(options.repair_at_sec) * 1000.0);
  const dbsim::InstanceMetrics so_far = metrics_until(options.repair_at_sec);
  out.baseline_session = session_mean(so_far, 60, options.anomaly_start_sec);
  out.anomaly_session = session_mean(so_far, options.anomaly_start_sec + 50,
                                     options.repair_at_sec);

  core::DiagnosisInput input;
  core::MapHistoryProvider empty_history;
  input.history = &empty_history;
  input.logs = &logs;
  input.active_session = so_far.active_session;
  input.helper_metrics["cpu_usage"] = so_far.cpu_usage;
  input.helper_metrics["iops_usage"] = so_far.iops_usage;
  input.helper_metrics["row_lock_waits"] = so_far.row_lock_waits;
  input.helper_metrics["mdl_waits"] = so_far.mdl_waits;
  const std::map<std::string, const TimeSeries*> monitored = {
      {"active_session", &so_far.active_session},
      {"cpu_usage", &so_far.cpu_usage},
      {"iops_usage", &so_far.iops_usage},
  };
  const auto phenomena = anomaly::DetectPhenomena(
      monitored, anomaly::PhenomenonConfig::Default());
  int64_t as = options.anomaly_start_sec;
  int64_t ae = options.repair_at_sec;
  anomaly::ExtractAnomalyPeriod(phenomena, &as, &ae);
  input.anomaly_start_sec = std::max<int64_t>(as, 60);
  input.anomaly_end_sec = std::min<int64_t>(ae, options.repair_at_sec);

  uint64_t target = 0;
  StatusOr<core::DiagnosisResult> diagnosis =
      core::Diagnose(input, core::DiagnoserOptions{});
  if (diagnosis.ok() && !diagnosis->rsql.ranking.empty()) {
    target = diagnosis->rsql.ranking[0];
  }
  out.diagnosed_correctly = target == rsql_truth;

  // --- Phase 2: closed loop — apply, watch, roll back, re-apply ----------
  repair::RepairAction optimize;
  optimize.type = repair::ActionType::kOptimize;
  optimize.sql_id = target;
  optimize.optimize_cpu_factor = 0.08;
  optimize.optimize_rows_factor = 0.08;

  const double recovery_threshold = 3.0 * out.baseline_session + 2.0;
  double last_metric = session_mean(
      so_far, options.repair_at_sec - options.tick_interval_sec,
      options.repair_at_sec);
  double first_applied_ms = -1.0;
  int rounds = 0;
  int64_t t = options.repair_at_sec;
  while (t < options.day_end_sec) {
    if (target != 0 && supervisor.active_actions() == 0 &&
        rounds < options.max_repair_rounds) {
      // Breaker-open rejections don't consume a round: the loop simply
      // waits for the cooldown like a real remediation daemon would.
      const size_t breaker_rejected_before =
          supervisor.stats().breaker_rejected;
      const StatusOr<repair::ApplyOutcome> applied = supervisor.Apply(
          optimize, static_cast<double>(t) * 1000.0, last_metric);
      if (supervisor.stats().breaker_rejected == breaker_rejected_before) {
        ++rounds;
      }
      if (applied.ok() && first_applied_ms < 0.0) {
        first_applied_ms = applied->applied_ms;
      }
    }
    t = std::min<int64_t>(t + options.tick_interval_sec,
                          options.day_end_sec);
    engine.RunUntil(static_cast<double>(t) * 1000.0);
    const dbsim::InstanceMetrics now_metrics = metrics_until(t);
    last_metric =
        session_mean(now_metrics, t - options.tick_interval_sec, t);
    supervisor.Tick(static_cast<double>(t) * 1000.0, last_metric);
    if (first_applied_ms >= 0.0 && out.time_to_recover_sec < 0.0 &&
        last_metric <= recovery_threshold) {
      out.time_to_recover_sec =
          static_cast<double>(t) - first_applied_ms / 1000.0;
    }
  }
  engine.RunToCompletion();

  // --- Recovery check ----------------------------------------------------
  const dbsim::InstanceMetrics day = metrics_until(options.day_end_sec);
  out.final_session =
      session_mean(day, options.day_end_sec - 150, options.day_end_sec);
  out.recovered = out.final_session < 0.25 * out.anomaly_session &&
                  out.final_session < recovery_threshold;
  out.any_rollback = supervisor.stats().rollbacks > 0;
  out.events_consistent = repair::EventAccountingConsistent(
      supervisor.events());
  out.stats = supervisor.stats();
  out.injected = hook.stats();
  return out;
}

std::vector<ClosedLoopPoint> RunClosedLoopChaos(
    const ClosedLoopOptions& options) {
  std::vector<ClosedLoopPoint> curve;
  const size_t num_cases = static_cast<size_t>(options.num_cases);
  std::unique_ptr<util::ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.num_threads);
  }

  for (double severity : options.severities) {
    std::vector<ClosedLoopCaseOutcome> outcomes(num_cases);
    util::ParallelFor(pool.get(), num_cases, [&](size_t index) {
      outcomes[index] = RunClosedLoopCase(options, severity, index);
    });

    ClosedLoopPoint point;
    point.severity = severity;
    point.cases = num_cases;
    double recover_time_sum = 0.0;
    size_t recover_time_count = 0;
    for (const ClosedLoopCaseOutcome& out : outcomes) {
      if (out.recovered) ++point.recovered;
      if (out.diagnosed_correctly) ++point.diagnosed_correctly;
      if (out.any_rollback) ++point.cases_with_rollback;
      if (out.events_consistent) ++point.events_consistent;
      if (out.recovered && out.time_to_recover_sec >= 0.0) {
        recover_time_sum += out.time_to_recover_sec;
        ++recover_time_count;
      }
      MergeStats(&point.stats, out.stats);
      MergeFaultStats(&point.injected, out.injected);
    }
    if (recover_time_count > 0) {
      point.mean_time_to_recover_sec =
          recover_time_sum / static_cast<double>(recover_time_count);
    }
    curve.push_back(point);
  }
  return curve;
}

}  // namespace pinsql::eval
