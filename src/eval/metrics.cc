#include "eval/metrics.h"

namespace pinsql::eval {

int FirstHitRank(const std::vector<uint64_t>& ranking,
                 const std::unordered_set<uint64_t>& truth) {
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (truth.count(ranking[i]) > 0) return static_cast<int>(i) + 1;
  }
  return 0;
}

void RankAccumulator::Add(int rank) {
  ++cases_;
  if (rank >= 1) {
    reciprocal_sum_ += 1.0 / static_cast<double>(rank);
    if (rank <= 1) ++hits1_;
    if (rank <= 5) ++hits5_;
  }
}

RankMetrics RankAccumulator::Summary() const {
  RankMetrics m;
  m.cases = cases_;
  if (cases_ == 0) return m;
  m.hits_at_1 = 100.0 * static_cast<double>(hits1_) /
                static_cast<double>(cases_);
  m.hits_at_5 = 100.0 * static_cast<double>(hits5_) /
                static_cast<double>(cases_);
  m.mrr = reciprocal_sum_ / static_cast<double>(cases_);
  return m;
}

}  // namespace pinsql::eval
