#ifndef PINSQL_EVAL_CHAOS_H_
#define PINSQL_EVAL_CHAOS_H_

#include <vector>

#include "core/diagnoser.h"
#include "eval/case_generator.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "faults/fault_injector.h"

namespace pinsql::eval {

/// ChaosADAC: the ADAC-style evaluation batch re-run under telemetry fault
/// injection. Each severity in `severities` replays the *same* generated
/// cases (same seeds as RunOverallEvaluation) with faults of that severity
/// applied to metrics, query logs and history before diagnosis. Severity
/// 0 must reproduce the unfaulted scores exactly.
struct ChaosOptions {
  EvalOptions eval;
  /// Fault classes + injection seed; `plan.severity` is ignored (the sweep
  /// overrides it per point).
  faults::FaultPlan plan;
  std::vector<double> severities = {0.0, 0.1, 0.3, 0.5};
};

/// Scores of one severity sweep point.
struct ChaosPoint {
  double severity = 0.0;
  RankMetrics rsql;
  RankMetrics hsql;
  size_t cases = 0;
  /// Diagnoses that returned a clean error Status (counted as misses).
  size_t failed = 0;
  /// Diagnoses whose DataQuality carried degradation notes.
  size_t degraded = 0;
  double mean_confidence = 0.0;
  /// What the injectors actually perturbed, summed over the batch.
  faults::InjectionStats injected;
};

/// Applies one fault plan to a generated case in place (metrics, logs and
/// history); returns what was perturbed. Distinct salts keep the five
/// metric series from failing in lockstep.
faults::InjectionStats ApplyCaseFaults(const faults::FaultPlan& plan,
                                       AnomalyCaseData* data);

/// Runs the severity sweep. Honors `options.eval.num_threads` (fleet
/// mode); per-case outcomes are folded in case order, so results are
/// independent of thread count. Never throws or aborts on injected
/// faults: a diagnosis either succeeds (possibly degraded) or yields a
/// clean error Status counted in `failed`.
std::vector<ChaosPoint> RunChaosEvaluation(
    const ChaosOptions& options, const core::DiagnoserOptions& diagnoser);

}  // namespace pinsql::eval

#endif  // PINSQL_EVAL_CHAOS_H_
