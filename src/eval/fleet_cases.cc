#include "eval/fleet_cases.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "util/rng.h"

namespace pinsql::eval {

namespace {

constexpr uint64_t kSqlIdBase = 1001;

struct Episode {
  FleetInstanceTruth::Kind kind = FleetInstanceTruth::Kind::kClean;
  int64_t onset_sec = -1;
  int64_t end_sec = -1;
};

/// One instance's stream: baseline noise plus (optionally) one anomaly
/// episode where the active session steps up and the culprit template
/// surges. Deterministic in (options, instance_id) alone.
online::ReplayLog GenerateInstanceLog(const FleetCaseOptions& options,
                                      uint32_t instance_id,
                                      const Episode& episode,
                                      uint64_t culprit_sql_id) {
  Rng rng = Rng(options.seed).Fork(instance_id);
  online::ReplayLog log;
  const int64_t end_sec = options.start_sec + options.duration_sec;
  log.samples.reserve(static_cast<size_t>(options.duration_sec));

  const double per_template_qps =
      options.baseline_qps / static_cast<double>(options.num_templates);

  for (int64_t sec = options.start_sec; sec < end_sec; ++sec) {
    const bool anomalous =
        episode.kind != FleetInstanceTruth::Kind::kClean &&
        sec >= episode.onset_sec && sec < episode.end_sec;

    online::PerfSample sample;
    sample.sec = sec;
    double active = options.baseline_active_session +
                    rng.Normal(0.0, options.noise_stddev);
    if (anomalous) active += options.anomaly_active_session_boost;
    sample.active_session = std::max(active, 0.0);
    sample.cpu_usage =
        std::max(15.0 + 1.5 * sample.active_session + rng.Normal(0.0, 1.0),
                 0.0);
    sample.iops_usage =
        std::max(10.0 + sample.active_session + rng.Normal(0.0, 1.0), 0.0);
    sample.row_lock_waits = std::max(rng.Normal(0.2, 0.1), 0.0);
    sample.mdl_waits = 0.0;
    log.samples.push_back(sample);

    for (size_t t = 0; t < options.num_templates; ++t) {
      const uint64_t sql_id = kSqlIdBase + t;
      int64_t count = rng.Poisson(per_template_qps);
      if (anomalous && sql_id == culprit_sql_id) {
        count += rng.Poisson(options.anomaly_qps_boost);
      }
      for (int64_t k = 0; k < count; ++k) {
        QueryLogRecord record;
        record.arrival_ms = sec * 1000 + rng.UniformInt(0, 999);
        record.sql_id = sql_id;
        const bool hot = anomalous && sql_id == culprit_sql_id;
        record.response_ms = hot ? rng.LogNormalWithMean(120.0, 0.3)
                                 : rng.LogNormalWithMean(5.0, 0.5);
        record.examined_rows =
            hot ? rng.UniformInt(20000, 50000) : rng.UniformInt(10, 200);
        log.records.push_back(record);
      }
    }
  }
  return log;
}

}  // namespace

FleetCase GenerateFleetCase(const FleetCaseOptions& options) {
  FleetCase fleet_case;
  const size_t per_host = std::max<size_t>(options.instances_per_host, 1);
  const int64_t end_sec = options.start_sec + options.duration_sec;

  for (size_t t = 0; t < options.num_templates; ++t) {
    TemplateCatalogEntry entry;
    std::string table = "t";
    table += std::to_string(t);
    entry.template_text = "SELECT c FROM " + table + " WHERE k = ?";
    entry.kind = sqltpl::StatementKind::kSelect;
    entry.tables = {table};
    fleet_case.catalog.RegisterTemplate(kSqlIdBase + t, entry);
  }

  fleet_case.noisy_host_id = 0;
  fleet_case.noisy_dominant_instance = 0;
  if (options.inject_storm) {
    fleet_case.storm_onset_sec =
        options.start_sec + options.storm_onset_offset_sec;
    fleet_case.storm_end_sec =
        std::min(fleet_case.storm_onset_sec + options.storm_duration_sec,
                 end_sec - 10);
  }

  for (size_t i = 0; i < options.num_instances; ++i) {
    const auto instance_id = static_cast<uint32_t>(i);
    const auto host_id = static_cast<uint32_t>(i / per_host);
    fleet_case.specs.push_back({instance_id, host_id});

    // Placement draws come from a decorrelated stream so adding draw kinds
    // never shifts the workload stream of an unchanged instance.
    Rng placement = Rng(options.seed ^ 0x51EEDULL).Fork(instance_id);
    Episode episode;
    if (options.inject_noisy_host && host_id == fleet_case.noisy_host_id) {
      // The dominant tenant (lowest instance id on the host) degrades
      // first; its co-tenants follow staggered.
      episode.kind = FleetInstanceTruth::Kind::kNeighbor;
      episode.onset_sec = options.start_sec +
                          options.neighbor_onset_offset_sec +
                          static_cast<int64_t>(i % per_host) *
                              options.neighbor_stagger_sec;
      episode.end_sec =
          std::min(episode.onset_sec + options.anomaly_duration_sec,
                   end_sec - 10);
    } else if (options.inject_storm &&
               placement.Bernoulli(options.storm_fraction)) {
      episode.kind = FleetInstanceTruth::Kind::kStorm;
      episode.onset_sec =
          fleet_case.storm_onset_sec + placement.UniformInt(0, 3);
      episode.end_sec = fleet_case.storm_end_sec;
    } else if (placement.Bernoulli(options.anomaly_fraction)) {
      episode.kind = FleetInstanceTruth::Kind::kIndependent;
      episode.onset_sec =
          options.start_sec +
          placement.UniformInt(options.duration_sec / 4,
                               options.duration_sec / 2);
      episode.end_sec =
          std::min(episode.onset_sec + options.anomaly_duration_sec,
                   end_sec - 10);
    }

    const uint64_t culprit_sql_id =
        kSqlIdBase + static_cast<uint64_t>(placement.UniformInt(
                         0, static_cast<int64_t>(options.num_templates) - 1));

    FleetInstanceTruth truth;
    truth.instance_id = instance_id;
    truth.host_id = host_id;
    truth.kind = episode.kind;
    truth.onset_sec = episode.onset_sec;
    truth.end_sec = episode.end_sec;
    truth.culprit_sql_id =
        episode.kind == FleetInstanceTruth::Kind::kClean ? 0 : culprit_sql_id;
    fleet_case.truth.push_back(truth);

    fleet_case.logs.push_back(
        GenerateInstanceLog(options, instance_id, episode, culprit_sql_id));
  }
  return fleet_case;
}

faults::InjectionStats ApplyInstanceFaults(const faults::FaultPlan& plan,
                                           online::ReplayLog* log) {
  faults::InjectionStats stats;
  if (!log->samples.empty()) {
    const int64_t start_sec = log->samples.front().sec;
    const size_t n = log->samples.size();
    // Channel accessors; the salt decorrelates the channels so they do not
    // black out in lockstep.
    const std::pair<uint64_t, double online::PerfSample::*> channels[] = {
        {1, &online::PerfSample::active_session},
        {2, &online::PerfSample::cpu_usage},
        {3, &online::PerfSample::iops_usage},
        {4, &online::PerfSample::row_lock_waits},
        {5, &online::PerfSample::mdl_waits},
    };
    for (const auto& [salt, member] : channels) {
      std::vector<double> values(n);
      for (size_t i = 0; i < n; ++i) values[i] = log->samples[i].*member;
      TimeSeries series(start_sec, 1, std::move(values));
      faults::InjectMetricFaults(plan, salt, &series, &stats);
      for (size_t i = 0; i < n; ++i) log->samples[i].*member = series[i];
    }
  }
  log->records = faults::InjectLogFaults(plan, std::move(log->records), &stats);
  return stats;
}

}  // namespace pinsql::eval
