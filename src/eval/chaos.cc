#include "eval/chaos.h"

#include <memory>
#include <utility>

#include "util/thread_pool.h"

namespace pinsql::eval {

faults::InjectionStats ApplyCaseFaults(const faults::FaultPlan& plan,
                                       AnomalyCaseData* data) {
  faults::InjectionStats stats;
  if (data == nullptr || plan.severity <= 0.0) return stats;

  // Distinct salts per series: a real collector loses SHOW STATUS samples
  // and OS metrics independently.
  faults::InjectMetricFaults(plan, 1, &data->metrics.active_session, &stats);
  faults::InjectMetricFaults(plan, 2, &data->metrics.cpu_usage, &stats);
  faults::InjectMetricFaults(plan, 3, &data->metrics.iops_usage, &stats);
  faults::InjectMetricFaults(plan, 4, &data->metrics.row_lock_waits, &stats);
  faults::InjectMetricFaults(plan, 5, &data->metrics.mdl_waits, &stats);

  std::vector<QueryLogRecord> records = data->logs.SortedRecords();
  records = faults::InjectLogFaults(plan, std::move(records), &stats);
  data->logs.ReplaceRecords(std::move(records));

  faults::InjectHistoryFaults(plan, &data->history, &stats);
  return stats;
}

namespace {

struct ChaosCaseOutcome {
  int rsql_rank = 0;
  int hsql_rank = 0;
  bool failed = false;
  bool degraded = false;
  double confidence = 1.0;
  faults::InjectionStats injected;
};

ChaosCaseOutcome RunOneChaosCase(const ChaosOptions& options,
                                 const core::DiagnoserOptions& diagnoser,
                                 double severity, size_t index) {
  CaseGenOptions cg = options.eval.case_options;
  cg.seed = options.eval.seed + static_cast<uint64_t>(index) * 1000003ULL;
  cg.type = options.eval.types[index % options.eval.types.size()];
  AnomalyCaseData data = GenerateCase(cg);

  // Per-case injection seed: same case index -> same perturbation at a
  // given severity, regardless of thread interleaving.
  faults::FaultPlan plan = options.plan.WithSeverity(severity);
  plan.seed = options.plan.seed + static_cast<uint64_t>(index) * 7919ULL;

  ChaosCaseOutcome out;
  out.injected = ApplyCaseFaults(plan, &data);

  const core::DiagnosisInput input = MakeDiagnosisInput(data);
  StatusOr<core::DiagnosisResult> result = core::Diagnose(input, diagnoser);
  if (!result.ok()) {
    // Unusable telemetry: a clean refusal is the graceful outcome; score
    // it as a miss so the accuracy curve absorbs the failure.
    out.failed = true;
    out.confidence = 0.0;
    return out;
  }
  out.rsql_rank = RsqlRank(result->rsql.ranking, data);
  out.hsql_rank = HsqlRank(result->TopHsql(result->hsql_ranking.size()), data);
  out.degraded = result->data_quality.degraded();
  out.confidence = result->data_quality.confidence;
  return out;
}

}  // namespace

std::vector<ChaosPoint> RunChaosEvaluation(
    const ChaosOptions& options, const core::DiagnoserOptions& diagnoser) {
  std::vector<ChaosPoint> curve;
  const size_t num_cases = static_cast<size_t>(options.eval.num_cases);
  std::unique_ptr<util::ThreadPool> pool;
  if (options.eval.num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.eval.num_threads);
  }

  for (double severity : options.severities) {
    std::vector<ChaosCaseOutcome> outcomes(num_cases);
    util::ParallelFor(pool.get(), num_cases, [&](size_t index) {
      outcomes[index] = RunOneChaosCase(options, diagnoser, severity, index);
    });

    ChaosPoint point;
    point.severity = severity;
    RankAccumulator rsql;
    RankAccumulator hsql;
    double confidence_sum = 0.0;
    for (const ChaosCaseOutcome& out : outcomes) {
      rsql.Add(out.rsql_rank);
      hsql.Add(out.hsql_rank);
      if (out.failed) ++point.failed;
      if (out.degraded) ++point.degraded;
      confidence_sum += out.confidence;
      point.injected.MergeFrom(out.injected);
    }
    point.rsql = rsql.Summary();
    point.hsql = hsql.Summary();
    point.cases = num_cases;
    point.mean_confidence =
        num_cases == 0 ? 1.0 : confidence_sum / static_cast<double>(num_cases);
    curve.push_back(point);
  }
  return curve;
}

}  // namespace pinsql::eval
