#include "eval/online_e2e.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "dbsim/engine.h"
#include "faults/action_faults.h"
#include "repair/supervisor.h"
#include "workload/scenario.h"

namespace pinsql::eval {

namespace {

double SeriesValue(const TimeSeries& series, int64_t sec) {
  if (!series.Covers(sec)) return std::numeric_limits<double>::quiet_NaN();
  return series.AtTime(sec);
}

double MedianOf(std::vector<double> v) {
  if (v.empty()) return -1.0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Pins the injected anomaly's severity so every case carries a signal the
/// detectors are supposed to see (same rationale and constants as the
/// closed-loop chaos eval: random draws can be too mild to matter).
void PinInjectionSeverity(workload::AnomalyType type,
                          workload::Workload* workload,
                          workload::Injection* injection) {
  if (type == workload::AnomalyType::kPoorSql) {
    workload->templates.back().cpu_ms_mean = 320.0;
    injection->overrides[0].add_qps = 15.0;
  } else if (type == workload::AnomalyType::kRowLock) {
    workload->templates.back().cpu_ms_mean = 400.0;
    workload->templates.back().row_groups_touched = 3;
    workload->templates.back().hot_group_limit = 4;
    injection->overrides[0].add_qps = 2.5;
    for (auto& table : workload->tables) {
      if (table.id == workload->templates.back().table_id) {
        table.hot_row_groups = 4;
      }
    }
  }
}

/// Generates the case for (options, index), regenerating degenerate draws:
/// when even the offline batch detector cannot place the anomaly near the
/// injection, the case carries no usable signal (typically the random
/// baseline already saturates the instance) and scoring an online detector
/// against it measures the generator, not the detector.
AnomalyCaseData GenerateAdmittedCase(const OnlineE2EOptions& options,
                                     size_t index, size_t* regens_out) {
  CaseGenOptions case_gen = options.case_gen;
  static const workload::AnomalyType kTypes[] = {
      workload::AnomalyType::kBusinessSpike, workload::AnomalyType::kPoorSql,
      workload::AnomalyType::kRowLock};
  const workload::AnomalyType type = kTypes[index % 3];
  case_gen.type = type;
  case_gen.shape_injection = [type](workload::Workload* workload,
                                    workload::Injection* injection) {
    PinInjectionSeverity(type, workload, injection);
  };
  for (size_t regen = 0;; ++regen) {
    case_gen.seed =
        options.seed + index * 1000003ULL + regen * 0x9E3779B9ULL;
    AnomalyCaseData data = GenerateCase(case_gen);
    const bool admitted =
        data.detected &&
        data.detected_as >= data.injected_as - options.onset_tolerance_sec &&
        data.detected_as <= data.injected_ae;
    if (admitted || regen >= options.max_case_regens) {
      *regens_out = regen;
      return data;
    }
  }
}

}  // namespace

online::ReplayLog RecordCaseReplay(const AnomalyCaseData& data) {
  online::ReplayLog log;
  log.records = data.logs.SortedRecords();
  log.samples.reserve(
      static_cast<size_t>(data.window_end_sec - data.window_start_sec));
  for (int64_t sec = data.window_start_sec; sec < data.window_end_sec;
       ++sec) {
    online::PerfSample sample;
    sample.sec = sec;
    sample.active_session = SeriesValue(data.metrics.active_session, sec);
    sample.cpu_usage = SeriesValue(data.metrics.cpu_usage, sec);
    sample.iops_usage = SeriesValue(data.metrics.iops_usage, sec);
    sample.row_lock_waits = SeriesValue(data.metrics.row_lock_waits, sec);
    sample.mdl_waits = SeriesValue(data.metrics.mdl_waits, sec);
    log.samples.push_back(sample);
  }
  return log;
}

OnlineCaseOutcome RunOnlineCase(const OnlineE2EOptions& options,
                                size_t index) {
  OnlineCaseOutcome out;

  const AnomalyCaseData data =
      GenerateAdmittedCase(options, index, &out.case_regens);

  const online::ReplayLog log = RecordCaseReplay(data);

  // Shadow engine + supervisor: actions land somewhere real, so
  // time-to-repair reflects the full supervised lifecycle (guardrails,
  // retries, injected control-plane faults).
  std::unique_ptr<dbsim::Engine> engine;
  std::unique_ptr<faults::ActionFaultInjector> hook;
  std::unique_ptr<repair::RepairSupervisor> supervisor;
  if (options.with_repair) {
    engine = std::make_unique<dbsim::Engine>(options.case_gen.sim);
    if (options.use_fault_hook) {
      faults::ActionFaultPlan plan;
      plan.severity = options.action_fault_severity;
      plan.seed = options.seed + index * 7919ULL;
      hook = std::make_unique<faults::ActionFaultInjector>(plan);
    }
    repair::SupervisorOptions sup_options;
    sup_options.seed = options.seed + index * 31ULL;
    // The replay ends with the anomaly; there is no post-repair telemetry
    // to verify against, so verification windows would dangle.
    sup_options.verify.enabled = false;
    supervisor = std::make_unique<repair::RepairSupervisor>(
        engine.get(), sup_options, hook ? hook.get() : nullptr);
  }

  const online::ReplayResult replay =
      online::RunReplay(log, data.logs, options.replay, supervisor.get(),
                        &data.history);

  out.fingerprint = replay.Fingerprint();
  out.stats = replay.stats;

  const int64_t lo = data.injected_as - options.onset_tolerance_sec;
  const int64_t hi = data.injected_ae + options.onset_tolerance_sec;
  for (const online::DiagnosisOutcome& outcome : replay.outcomes) {
    const int64_t onset = outcome.trigger.onset_sec;
    const bool in_anomaly = onset >= lo && onset <= hi;
    if (in_anomaly) {
      ++out.true_triggers;
      if (!out.detected) {
        out.detected = true;
        out.detection_latency_sec =
            std::max<int64_t>(0, outcome.trigger.trigger_sec -
                                     data.injected_as);
      }
    } else {
      ++out.false_triggers;
    }
    if (outcome.ok) {
      out.diagnosed = true;
      if (!outcome.confirmed_rsqls.empty() && !data.rsql_truth.empty() &&
          std::find(data.rsql_truth.begin(), data.rsql_truth.end(),
                    outcome.confirmed_rsqls.front()) !=
              data.rsql_truth.end()) {
        out.rsql_correct = true;
      }
      if (outcome.ttr_sec >= 0.0 && out.ttr_sec < 0.0) {
        out.ttr_sec = outcome.ttr_sec;
      }
    }
  }
  return out;
}

OnlineE2ESummary RunOnlineE2E(const OnlineE2EOptions& options) {
  OnlineE2ESummary summary;
  summary.cases = static_cast<size_t>(options.num_cases);
  std::vector<double> latencies;
  double ttr_sum = 0.0;
  size_t ttr_count = 0;
  size_t true_triggers = 0, all_triggers = 0;
  for (size_t index = 0; index < summary.cases; ++index) {
    OnlineCaseOutcome out = RunOnlineCase(options, index);
    if (out.detected) {
      ++summary.detected;
      latencies.push_back(static_cast<double>(out.detection_latency_sec));
      summary.duplicate_triggers += out.true_triggers - 1;
    }
    true_triggers += out.true_triggers;
    all_triggers += out.true_triggers + out.false_triggers;
    if (out.diagnosed) ++summary.diagnosed;
    if (out.rsql_correct) ++summary.rsql_correct;
    if (out.ttr_sec >= 0.0) {
      ttr_sum += out.ttr_sec;
      ++ttr_count;
    }
    summary.outcomes.push_back(std::move(out));
  }
  summary.recall = summary.cases > 0
                       ? static_cast<double>(summary.detected) /
                             static_cast<double>(summary.cases)
                       : 0.0;
  summary.precision =
      all_triggers > 0
          ? static_cast<double>(true_triggers) /
                static_cast<double>(all_triggers)
          : 1.0;
  summary.median_detection_latency_sec = MedianOf(std::move(latencies));
  if (ttr_count > 0) {
    summary.mean_ttr_sec = ttr_sum / static_cast<double>(ttr_count);
  }
  return summary;
}

ThroughputPoint RunIngestThroughput(int threads, size_t records_per_thread) {
  ThroughputPoint point;
  point.threads = std::max(threads, 0);
  point.records = records_per_thread *
                  static_cast<size_t>(std::max(point.threads, 1));

  online::IngestorOptions ingest_options;
  ingest_options.num_shards = 16;
  ingest_options.window_sec = 600;
  online::StreamIngestor ingestor(ingest_options);

  if (point.threads == 0) {
    // Cooperative single-core: stage a batch, fold it, repeat — the same
    // records and the same full path (stage + pump + fold), but one thread
    // doing both halves so the measurement is per-core work, not
    // scheduling.
    constexpr size_t kPumpEvery = 4096;
    QueryLogRecord record;
    size_t since_pump = 0;
    const auto feed = [&](size_t i) {
      record.sql_id = i % 512;
      record.arrival_ms = static_cast<int64_t>(i % 600'000);
      record.response_ms = 1.0 + static_cast<double>(i % 17);
      record.examined_rows = static_cast<int64_t>(i % 100);
      while (!ingestor.IngestRecord(record)) ingestor.Pump();
      if (++since_pump >= kPumpEvery) {
        ingestor.Pump();
        since_pump = 0;
      }
    };
    // One full pass over the arrival ring untimed: ring-bucket columns,
    // lookup tables and pool slabs reach steady state before the clock
    // starts, so short sweeps report the sustained rate rather than
    // first-touch growth.
    constexpr size_t kWarmup = 600'000;
    for (size_t i = 0; i < kWarmup; ++i) feed(i);
    ingestor.Pump();
    since_pump = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = kWarmup; i < kWarmup + records_per_thread; ++i) feed(i);
    ingestor.Pump();
    const auto t1 = std::chrono::steady_clock::now();
    point.seconds = std::chrono::duration<double>(t1 - t0).count();
    point.records_per_sec =
        point.seconds > 0.0
            ? static_cast<double>(point.records) / point.seconds
            : 0.0;
    point.dropped = ingestor.stats().records_dropped_backpressure;
    return point;
  }

  std::atomic<bool> done{false};
  const auto t0 = std::chrono::steady_clock::now();
  std::thread pumper([&]() {
    while (!done.load(std::memory_order_relaxed)) {
      if (ingestor.Pump() == 0) std::this_thread::yield();
    }
    ingestor.Pump();
  });
  std::vector<std::thread> producers;
  producers.reserve(static_cast<size_t>(point.threads));
  for (int tid = 0; tid < point.threads; ++tid) {
    producers.emplace_back([&, tid]() {
      QueryLogRecord record;
      for (size_t i = 0; i < records_per_thread; ++i) {
        record.sql_id = static_cast<uint64_t>(tid) * 131071ULL + i % 512;
        record.arrival_ms = static_cast<int64_t>(i % 600'000);
        record.response_ms = 1.0 + static_cast<double>(i % 17);
        record.examined_rows = static_cast<int64_t>(i % 100);
        while (!ingestor.IngestRecord(record)) {
          // Full shard queue: yield to the pumper (drops are already
          // counted; for throughput we want the sustained rate, not the
          // drop rate).
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  done.store(true, std::memory_order_relaxed);
  pumper.join();
  const auto t1 = std::chrono::steady_clock::now();
  point.seconds = std::chrono::duration<double>(t1 - t0).count();
  point.records_per_sec =
      point.seconds > 0.0 ? static_cast<double>(point.records) / point.seconds
                          : 0.0;
  point.dropped = ingestor.stats().records_dropped_backpressure;
  return point;
}

}  // namespace pinsql::eval
