#ifndef PINSQL_EVAL_ONLINE_E2E_H_
#define PINSQL_EVAL_ONLINE_E2E_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/case_generator.h"
#include "online/replay.h"

namespace pinsql::eval {

/// Converts a generated anomaly case into the online service's input: the
/// case's query-log records plus one PerfSample per monitored second.
online::ReplayLog RecordCaseReplay(const AnomalyCaseData& data);

struct OnlineE2EOptions {
  int num_cases = 6;
  uint64_t seed = 7;
  /// Case shape (per-case seed and anomaly type are derived from `seed`
  /// and the case index).
  CaseGenOptions case_gen;
  /// Service/detector/scheduler tuning and ingest-thread count.
  online::ReplayOptions replay;
  /// Close the loop: run a shadow engine + RepairSupervisor per case so
  /// confirmed R-SQLs are actually repaired and time-to-repair is real.
  bool with_repair = true;
  /// Action-layer fault severity on the repair control plane (0 = perfect;
  /// the online path must behave identically to no injector at 0).
  double action_fault_severity = 0.0;
  /// Attach an ActionFaultInjector at all. With false, the supervisor runs
  /// hook-free — the reference a severity-0 injector must be
  /// indistinguishable from.
  bool use_fault_hook = true;
  /// A trigger is a true detection when its onset falls within this many
  /// seconds of the injected anomaly period.
  int64_t onset_tolerance_sec = 30;
  /// Case admission: a generated case whose anomaly even the *offline*
  /// batch detector cannot place (e.g. the random baseline saturates the
  /// instance before the injection) is a generator artifact, not a
  /// detection miss — it is regenerated with a deterministically derived
  /// seed, at most this many times. Regenerations are reported per case,
  /// never silent.
  size_t max_case_regens = 4;
};

struct OnlineCaseOutcome {
  bool detected = false;       // some accepted trigger hit the anomaly
  size_t true_triggers = 0;    // accepted triggers inside the anomaly
  size_t false_triggers = 0;   // accepted triggers outside it
  /// trigger_sec - injected_as of the first true trigger; negative when
  /// the case was missed.
  int64_t detection_latency_sec = -1;
  bool diagnosed = false;      // a diagnosis completed OK
  bool rsql_correct = false;   // top R-SQL == injected root cause
  double ttr_sec = -1.0;       // onset -> first supervised apply
  /// Times the case was regenerated before admission (see max_case_regens).
  size_t case_regens = 0;
  std::string fingerprint;     // replay determinism digest
  online::ServiceStats stats;
};

struct OnlineE2ESummary {
  size_t cases = 0;
  size_t detected = 0;
  double recall = 0.0;
  double precision = 0.0;  // true triggers / all accepted triggers
  /// Accepted triggers beyond the first per anomaly — the dedup guarantee
  /// says this stays 0.
  size_t duplicate_triggers = 0;
  double median_detection_latency_sec = -1.0;
  size_t diagnosed = 0;
  size_t rsql_correct = 0;
  /// Mean over cases with a successful repair; negative when none.
  double mean_ttr_sec = -1.0;
  std::vector<OnlineCaseOutcome> outcomes;
};

/// Replays one generated case through the online service (deterministic in
/// (options, index)).
OnlineCaseOutcome RunOnlineCase(const OnlineE2EOptions& options, size_t index);

/// Runs every case and aggregates.
OnlineE2ESummary RunOnlineE2E(const OnlineE2EOptions& options);

/// Ingest-throughput measurement: `threads` producers push
/// `records_per_thread` synthetic records each into a StreamIngestor while
/// the main thread pumps. Wall-clock timed (not part of any deterministic
/// guarantee).
///
/// `threads == 0` is the cooperative single-core case: ONE thread
/// alternates staging batches with Pump(), so the number is the stage +
/// fold capability of one core with no scheduler interference. On hosts
/// with fewer cores than threads the threaded cases time the kernel
/// scheduler as much as the ingest path; the cooperative case is the
/// records/sec/core figure.
struct ThroughputPoint {
  int threads = 1;
  size_t records = 0;
  double seconds = 0.0;
  double records_per_sec = 0.0;
  size_t dropped = 0;
};
ThroughputPoint RunIngestThroughput(int threads, size_t records_per_thread);

}  // namespace pinsql::eval

#endif  // PINSQL_EVAL_ONLINE_E2E_H_
