#ifndef PINSQL_EVAL_METRICS_H_
#define PINSQL_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace pinsql::eval {

/// Rank (1-based) of the first ranked item present in `truth`; 0 when no
/// truth item appears in the ranking. Mirrors the paper's "the correctly
/// found template is the first in the rank list that appears in the
/// annotated set".
int FirstHitRank(const std::vector<uint64_t>& ranking,
                 const std::unordered_set<uint64_t>& truth);

/// Aggregated ranking metrics over a set of cases.
struct RankMetrics {
  double hits_at_1 = 0.0;  // percentage
  double hits_at_5 = 0.0;  // percentage
  double mrr = 0.0;
  size_t cases = 0;
};

/// Accumulates first-hit ranks across cases into Hits@1/Hits@5/MRR.
class RankAccumulator {
 public:
  /// `rank` is 1-based; 0 = miss.
  void Add(int rank);
  RankMetrics Summary() const;

 private:
  size_t cases_ = 0;
  size_t hits1_ = 0;
  size_t hits5_ = 0;
  double reciprocal_sum_ = 0.0;
};

}  // namespace pinsql::eval

#endif  // PINSQL_EVAL_METRICS_H_
