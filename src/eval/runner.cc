#include "eval/runner.h"

#include <algorithm>

#include "baselines/causal_corr.h"
#include <chrono>
#include <memory>
#include <unordered_set>

#include "util/strings.h"
#include "util/thread_pool.h"

namespace pinsql::eval {

void ForEachCase(
    const EvalOptions& options,
    const std::function<void(size_t, const AnomalyCaseData&)>& fn) {
  for (int i = 0; i < options.num_cases; ++i) {
    CaseGenOptions cg = options.case_options;
    cg.seed = options.seed + static_cast<uint64_t>(i) * 1000003ULL;
    cg.type = options.types[static_cast<size_t>(i) % options.types.size()];
    const AnomalyCaseData data = GenerateCase(cg);
    fn(static_cast<size_t>(i), data);
  }
}

core::DiagnosisInput MakeDiagnosisInput(const AnomalyCaseData& data) {
  core::DiagnosisInput input;
  input.logs = &data.logs;
  input.active_session = data.metrics.active_session;
  input.helper_metrics["cpu_usage"] = data.metrics.cpu_usage;
  input.helper_metrics["iops_usage"] = data.metrics.iops_usage;
  input.helper_metrics["row_lock_waits"] = data.metrics.row_lock_waits;
  input.helper_metrics["mdl_waits"] = data.metrics.mdl_waits;
  input.anomaly_start_sec = data.anomaly_start();
  input.anomaly_end_sec = data.anomaly_end();
  input.history = &data.history;
  return input;
}

int RsqlRank(const std::vector<uint64_t>& ranking,
             const AnomalyCaseData& data) {
  return FirstHitRank(ranking, std::unordered_set<uint64_t>(
                                   data.rsql_truth.begin(),
                                   data.rsql_truth.end()));
}

int HsqlRank(const std::vector<uint64_t>& ranking,
             const AnomalyCaseData& data) {
  return FirstHitRank(ranking, std::unordered_set<uint64_t>(
                                   data.hsql_truth.begin(),
                                   data.hsql_truth.end()));
}

void MethodAccumulator::AddCase(const std::vector<uint64_t>& rsql_ranking,
                                const std::vector<uint64_t>& hsql_ranking,
                                const AnomalyCaseData& data, double seconds) {
  AddRanks(RsqlRank(rsql_ranking, data), HsqlRank(hsql_ranking, data),
           seconds);
}

void MethodAccumulator::AddRanks(int rsql_rank, int hsql_rank,
                                 double seconds) {
  rsql_.Add(rsql_rank);
  hsql_.Add(hsql_rank);
  time_sum_ += seconds;
  ++time_count_;
}

void StageTimingAggregate::AddTrace(const obs::PipelineTrace& trace) {
  ++cases;
  total_seconds += trace.total_seconds;
  for (const obs::StageTrace& s : trace.stages) {
    Stage* slot = nullptr;
    for (Stage& existing : stages) {
      if (existing.name == s.name) {
        slot = &existing;
        break;
      }
    }
    if (slot == nullptr) {
      stages.push_back(Stage{s.name, 0.0, 0.0, 0});
      slot = &stages.back();
    }
    slot->total_seconds += s.seconds;
    slot->max_seconds = std::max(slot->max_seconds, s.seconds);
    ++slot->cases;
  }
}

std::string StageTimingAggregate::ToTable() const {
  double stage_sum = 0.0;
  for (const Stage& s : stages) stage_sum += s.total_seconds;
  std::string out = StrFormat("stage timings across %zu cases:\n", cases);
  out += StrFormat("  %-20s %10s %10s %10s %7s\n", "stage", "total(s)",
                   "mean(s)", "max(s)", "share");
  for (const Stage& s : stages) {
    const double mean =
        s.cases == 0 ? 0.0 : s.total_seconds / static_cast<double>(s.cases);
    const double share =
        stage_sum > 0.0 ? 100.0 * s.total_seconds / stage_sum : 0.0;
    out += StrFormat("  %-20s %10.4f %10.4f %10.4f %6.1f%%\n",
                     s.name.c_str(), s.total_seconds, mean, s.max_seconds,
                     share);
  }
  out += StrFormat("  %-20s %10.4f\n", "pipeline total", total_seconds);
  return out;
}

MethodScores MethodAccumulator::Summary() const {
  MethodScores s;
  s.name = name_;
  s.rsql = rsql_.Summary();
  s.hsql = hsql_.Summary();
  s.mean_time_sec =
      time_count_ == 0 ? 0.0 : time_sum_ / static_cast<double>(time_count_);
  return s;
}

namespace {

/// Per-case measurements, accumulated after the (possibly concurrent)
/// case runs so the fold order is always the case order.
struct CaseOutcome {
  int pin_rsql = 0;
  int pin_hsql = 0;
  double pin_seconds = 0.0;
  int en_r = 0, en_h = 0, rt_r = 0, rt_h = 0, er_r = 0, er_h = 0;
  double top_seconds = 0.0;
  int corr_r = 0, corr_h = 0;
  double corr_seconds = 0.0;
  obs::PipelineTrace trace;
};

CaseOutcome RunOneCase(const EvalOptions& options,
                       const core::DiagnoserOptions& diagnoser,
                       size_t index) {
  CaseGenOptions cg = options.case_options;
  cg.seed = options.seed + static_cast<uint64_t>(index) * 1000003ULL;
  cg.type = options.types[index % options.types.size()];
  const AnomalyCaseData data = GenerateCase(cg);

  CaseOutcome out;
  const core::DiagnosisInput input = MakeDiagnosisInput(data);
  // Generated cases are well-formed, so a non-ok Status here means the
  // harness produced unusable telemetry; score the case as a full miss.
  const StatusOr<core::DiagnosisResult> status_or =
      core::Diagnose(input, diagnoser);
  if (!status_or.ok()) return out;
  const core::DiagnosisResult& result = *status_or;
  out.pin_rsql = RsqlRank(result.rsql.ranking, data);
  out.pin_hsql = HsqlRank(result.TopHsql(result.hsql_ranking.size()), data);
  out.pin_seconds = result.total_seconds;
  out.trace = result.trace;

  const auto t0 = std::chrono::steady_clock::now();
  const baselines::TopSqlRankings tops = baselines::RankAllTopSql(
      result.metrics, input.anomaly_start_sec, input.anomaly_end_sec);
  out.top_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() /
      3.0;

  out.en_r = RsqlRank(tops.by_execution, data);
  out.en_h = HsqlRank(tops.by_execution, data);
  out.rt_r = RsqlRank(tops.by_response_time, data);
  out.rt_h = HsqlRank(tops.by_response_time, data);
  out.er_r = RsqlRank(tops.by_examined_rows, data);
  out.er_h = HsqlRank(tops.by_examined_rows, data);

  // The causality heuristic sees the same aggregated metrics plus the
  // instance symptom — nothing PinSQL does not also consume.
  const auto t1 = std::chrono::steady_clock::now();
  const std::vector<uint64_t> corr = baselines::RankCausalCorr(
      result.metrics, data.metrics.active_session);
  out.corr_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  out.corr_r = RsqlRank(corr, data);
  out.corr_h = HsqlRank(corr, data);
  return out;
}

}  // namespace

std::vector<MethodScores> RunOverallEvaluation(
    const EvalOptions& options, const core::DiagnoserOptions& diagnoser,
    StageTimingAggregate* stage_timings) {
  MethodAccumulator pinsql("PinSQL");
  MethodAccumulator top_en("Top-EN");
  MethodAccumulator top_rt("Top-RT");
  MethodAccumulator top_er("Top-ER");
  MethodAccumulator top_all("Top-All");
  MethodAccumulator corr_lag("Corr-Lag");

  // Fleet mode: each case is an independent instance (own generator seed,
  // own logs/metrics), so cases fan out across the pool; outcomes land in
  // index-addressed slots and are folded serially below.
  const size_t num_cases = static_cast<size_t>(options.num_cases);
  std::vector<CaseOutcome> outcomes(num_cases);
  std::unique_ptr<util::ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.num_threads);
  }
  util::ParallelFor(pool.get(), num_cases, [&](size_t index) {
    outcomes[index] = RunOneCase(options, diagnoser, index);
  });

  for (const CaseOutcome& out : outcomes) {
    if (stage_timings != nullptr) stage_timings->AddTrace(out.trace);
    pinsql.AddRanks(out.pin_rsql, out.pin_hsql, out.pin_seconds);
    top_en.AddRanks(out.en_r, out.en_h, out.top_seconds);
    top_rt.AddRanks(out.rt_r, out.rt_h, out.top_seconds);
    top_er.AddRanks(out.er_r, out.er_h, out.top_seconds);

    // Top-All: the best variant per case (paper Sec. VIII-A), 0 = miss.
    auto best = [](int a, int b) {
      if (a == 0) return b;
      if (b == 0) return a;
      return std::min(a, b);
    };
    top_all.AddRanks(best(best(out.en_r, out.rt_r), out.er_r),
                     best(best(out.en_h, out.rt_h), out.er_h),
                     out.top_seconds * 3.0);
    corr_lag.AddRanks(out.corr_r, out.corr_h, out.corr_seconds);
  }

  // Corr-Lag rides last so existing positional consumers of the first
  // five rows keep working; new consumers should look methods up by name.
  return {pinsql.Summary(),  top_rt.Summary(),   top_er.Summary(),
          top_en.Summary(),  top_all.Summary(),  corr_lag.Summary()};
}

}  // namespace pinsql::eval
