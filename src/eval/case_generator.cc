#include "eval/case_generator.h"

#include <algorithm>
#include <map>

#include "dbsim/engine.h"
#include "workload/arrivals.h"

namespace pinsql::eval {

AnomalyCaseData GenerateCase(const CaseGenOptions& options) {
  AnomalyCaseData data;
  data.type = options.type;
  Rng rng(options.seed);

  // Workload + injected anomaly.
  data.workload = workload::MakeStandardWorkload(options.scenario, &rng);
  data.window_start_sec = options.window_start_sec;
  data.injected_as = options.window_start_sec + options.pre_anomaly_sec;
  data.injected_ae = data.injected_as + options.anomaly_duration_sec;
  data.window_end_sec = data.injected_ae + options.post_anomaly_sec;
  workload::Injection injection = workload::MakeInjection(
      options.type, &data.workload, data.injected_as, data.injected_ae, &rng);
  if (options.shape_injection) {
    options.shape_injection(&data.workload, &injection);
  }
  data.rsql_truth = injection.root_cause_ids;
  data.workload.RegisterTemplates(&data.logs);
  data.overrides = injection.overrides;
  data.arrival_seed = options.seed * 2654435761ULL + 13;

  // Simulate the anomaly window.
  const std::vector<dbsim::QueryArrival> arrivals =
      workload::GenerateArrivals(data.workload, data.overrides,
                                 data.window_start_sec, data.window_end_sec,
                                 data.arrival_seed);
  dbsim::Engine engine(options.sim);
  engine.AttachLogStore(&data.logs);
  engine.AddArrivals(arrivals);
  engine.RunToCompletion();
  const std::vector<dbsim::CompletedQuery> completed = engine.TakeCompleted();

  // Monitor view.
  Rng monitor_rng = rng.Fork(0xB0B);
  data.metrics = dbsim::ComputeInstanceMetrics(
      completed, data.window_start_sec, data.window_end_sec,
      engine.EffectiveCores(), options.sim.io_capacity_ms_per_sec,
      &monitor_rng);

  // Ground-truth H-SQLs: templates whose true individual session inflates
  // the most during the injected anomaly vs the clean baseline.
  const auto true_sessions = dbsim::ComputeTrueTemplateSessions(
      completed, data.window_start_sec, data.window_end_sec);
  double max_inflation = 0.0;
  std::map<uint64_t, double> inflation;
  for (const auto& [sql_id, series] : true_sessions) {
    const TimeSeries base =
        series.Slice(data.window_start_sec, data.injected_as);
    const TimeSeries anom = series.Slice(data.injected_as, data.injected_ae);
    // An H-SQL must be *affected*: materially above its own baseline, not
    // merely large. A big stable template that drifts up a little is load,
    // not a direct cause.
    const bool relatively_affected =
        anom.Mean() >= 2.0 * base.Mean() || base.Mean() < 0.05;
    const double delta =
        relatively_affected ? anom.Mean() - base.Mean() : 0.0;
    inflation[sql_id] = delta;
    max_inflation = std::max(max_inflation, delta);
  }
  for (const auto& [sql_id, delta] : inflation) {
    if (delta >= options.hsql_truth_min_abs &&
        delta >= options.hsql_truth_fraction * max_inflation) {
      data.hsql_truth.push_back(sql_id);
    }
  }
  if (data.hsql_truth.empty() && max_inflation > 0.0) {
    // Weak anomaly: no template cleared the absolute bar. The strongest
    // inflator is still the direct cause by definition.
    for (const auto& [sql_id, delta] : inflation) {
      if (delta == max_inflation) {
        data.hsql_truth.push_back(sql_id);
        break;
      }
    }
  }

  // Anomaly detection over the monitor metrics.
  const std::map<std::string, const TimeSeries*> monitored = {
      {"active_session", &data.metrics.active_session},
      {"cpu_usage", &data.metrics.cpu_usage},
      {"iops_usage", &data.metrics.iops_usage},
  };
  anomaly::PhenomenonConfig det_config = anomaly::PhenomenonConfig::Default();
  data.phenomena = anomaly::DetectPhenomena(monitored, det_config);
  int64_t as = 0;
  int64_t ae = 0;
  if (anomaly::ExtractAnomalyPeriod(data.phenomena, &as, &ae)) {
    data.detected = true;
    data.detected_as = std::max(as, data.window_start_sec + 1);
    data.detected_ae = std::min(ae, data.window_end_sec);
    if (data.detected_ae - data.detected_as < 10) data.detected = false;
  }

  // History windows: the same window length 1/3/7 days earlier, baseline
  // traffic only (the anomaly is new). Templates injected by the anomaly
  // (weight 0) have no history, which the verifier treats as "new".
  workload::Workload history_workload = data.workload;
  history_workload.templates.erase(
      std::remove_if(history_workload.templates.begin(),
                     history_workload.templates.end(),
                     [](const workload::TemplateDef& tpl) {
                       return tpl.weight <= 0.0;
                     }),
      history_workload.templates.end());
  for (int days : {1, 3, 7}) {
    const auto counts = workload::GenerateExecutionCounts(
        history_workload, {}, data.window_start_sec, data.window_end_sec,
        options.seed * 97 + static_cast<uint64_t>(days) * 131071);
    for (const auto& [sql_id, series] : counts) {
      data.history.Put(sql_id, days, series);
    }
  }
  return data;
}

}  // namespace pinsql::eval
