#ifndef PINSQL_EVAL_FLEET_CASES_H_
#define PINSQL_EVAL_FLEET_CASES_H_

#include <cstdint>
#include <vector>

#include "faults/fault_injector.h"
#include "fleet/fleet_replay.h"
#include "logstore/log_store.h"
#include "online/replay.h"

namespace pinsql::eval {

struct FleetCaseOptions {
  size_t num_instances = 50;
  /// Co-tenant placement: instance i lands on host i / instances_per_host.
  size_t instances_per_host = 4;
  uint64_t seed = 7;
  int64_t start_sec = 1000;
  int64_t duration_sec = 420;

  /// Baseline per-instance workload (deliberately synthetic and cheap —
  /// the fleet suite scales to a thousand instances, where the full dbsim
  /// case generator would dominate every run).
  size_t num_templates = 6;
  double baseline_qps = 4.0;
  double baseline_active_session = 8.0;
  double noise_stddev = 0.5;

  /// Independent incidents: this fraction of unplaced instances gets its
  /// own anomaly (active-session step + one culprit template's surge).
  double anomaly_fraction = 0.15;
  int64_t anomaly_duration_sec = 90;
  double anomaly_active_session_boost = 30.0;
  double anomaly_qps_boost = 25.0;

  /// Noisy-neighbor episode: every tenant of host 0 degrades, the lowest
  /// instance id first (the generator's dominant — what the correlator
  /// must attribute).
  bool inject_noisy_host = true;
  int64_t neighbor_onset_offset_sec = 120;
  /// Seconds between the dominant tenant's onset and each victim's.
  int64_t neighbor_stagger_sec = 4;

  /// Storm: this fraction of the remaining instances degrades at once
  /// (same onset ± jitter), which must collapse into one triage batch.
  bool inject_storm = false;
  double storm_fraction = 0.5;
  int64_t storm_onset_offset_sec = 240;
  int64_t storm_duration_sec = 60;
};

/// Per-instance ground truth of a generated fleet case.
struct FleetInstanceTruth {
  enum class Kind { kClean, kIndependent, kNeighbor, kStorm };
  uint32_t instance_id = 0;
  uint32_t host_id = 0;
  Kind kind = Kind::kClean;
  int64_t onset_sec = -1;
  int64_t end_sec = -1;
  /// Template whose surge carries the anomaly (the expected R-SQL).
  uint64_t culprit_sql_id = 0;
};

struct FleetCase {
  std::vector<fleet::FleetInstanceSpec> specs;
  /// Parallel to specs.
  std::vector<online::ReplayLog> logs;
  /// Shared fleet-wide template catalog.
  LogStore catalog;
  std::vector<FleetInstanceTruth> truth;
  /// The injected noisy host and its dominant tenant (valid when
  /// inject_noisy_host).
  uint32_t noisy_host_id = 0;
  uint32_t noisy_dominant_instance = 0;
  /// Injected storm period (valid when inject_storm).
  int64_t storm_onset_sec = -1;
  int64_t storm_end_sec = -1;
};

/// Generates a synthetic fleet case, deterministic in `options`: every
/// instance's stream comes from Rng(seed).Fork(instance_id), so one
/// instance's log is identical whether it is generated alone or inside a
/// thousand-instance fleet — the property the chaos suite's
/// fleet-vs-solo bit-equality checks rely on.
FleetCase GenerateFleetCase(const FleetCaseOptions& options);

/// Applies per-instance fault injection to one instance's recorded stream:
/// metric faults on every sample channel (salted per channel) and log
/// faults on the records. A severity-0 plan is a guaranteed no-op — the
/// stream stays bit-identical. Returns what was perturbed.
faults::InjectionStats ApplyInstanceFaults(const faults::FaultPlan& plan,
                                           online::ReplayLog* log);

}  // namespace pinsql::eval

#endif  // PINSQL_EVAL_FLEET_CASES_H_
