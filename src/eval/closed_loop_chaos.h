#ifndef PINSQL_EVAL_CLOSED_LOOP_CHAOS_H_
#define PINSQL_EVAL_CLOSED_LOOP_CHAOS_H_

#include <cstdint>
#include <vector>

#include "faults/action_faults.h"
#include "repair/supervisor.h"

namespace pinsql::eval {

/// ClosedLoopChaos: the full autonomy loop — dbsim scenario -> anomaly
/// detection -> Diagnose() -> supervised repair -> recovery check — re-run
/// under action-layer fault injection. Each severity replays the *same*
/// seeded cases with the repair control plane failing at that severity;
/// severity 0 is the perfect-control-plane reference.
struct ClosedLoopOptions {
  int num_cases = 6;
  uint64_t seed = 42;
  /// Fleet mode: cases are independent; results are folded in case order,
  /// so scores are identical to the serial run.
  int num_threads = 1;

  /// Action-fault plan; `plan.severity` is overridden per sweep point.
  faults::ActionFaultPlan plan;
  std::vector<double> severities = {0.0, 0.25, 0.5, 0.75, 1.0};

  /// Supervisor policies; `supervisor.seed` is re-derived per case.
  repair::SupervisorOptions supervisor;

  /// The harness re-applies the repair after a failed or rolled-back
  /// action (the "closed loop"), up to this many attempted lifecycles.
  int max_repair_rounds = 4;

  // Compressed-day timeline (seconds).
  int64_t anomaly_start_sec = 300;
  int64_t repair_at_sec = 600;   // diagnosis runs on metrics up to here
  int64_t day_end_sec = 1100;
  int64_t tick_interval_sec = 30;
};

/// One case under one severity.
struct ClosedLoopCaseOutcome {
  bool diagnosed_correctly = false;
  bool recovered = false;
  /// Seconds from the first successful application to the first tick back
  /// under the recovery threshold; < 0 when the case never recovered.
  double time_to_recover_sec = -1.0;
  bool any_rollback = false;
  bool events_consistent = true;
  repair::SupervisorStats stats;
  faults::ActionFaultStats injected;
  double baseline_session = 0.0;
  double anomaly_session = 0.0;
  double final_session = 0.0;
};

/// Aggregates of one severity sweep point.
struct ClosedLoopPoint {
  double severity = 0.0;
  size_t cases = 0;
  size_t recovered = 0;
  size_t diagnosed_correctly = 0;
  size_t cases_with_rollback = 0;
  size_t events_consistent = 0;
  /// Mean over recovered cases; < 0 when none recovered.
  double mean_time_to_recover_sec = -1.0;
  repair::SupervisorStats stats;     // summed over cases
  faults::ActionFaultStats injected; // summed over cases
};

/// Runs one case (deterministic in (options, severity, index)).
ClosedLoopCaseOutcome RunClosedLoopCase(const ClosedLoopOptions& options,
                                        double severity, size_t index);

/// Runs the severity sweep. Never throws or aborts on injected action
/// faults: every action lifecycle terminates in a typed RepairEvent
/// outcome, and the per-case accounting is cross-checked.
std::vector<ClosedLoopPoint> RunClosedLoopChaos(
    const ClosedLoopOptions& options);

}  // namespace pinsql::eval

#endif  // PINSQL_EVAL_CLOSED_LOOP_CHAOS_H_
