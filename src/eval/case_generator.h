#ifndef PINSQL_EVAL_CASE_GENERATOR_H_
#define PINSQL_EVAL_CASE_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "anomaly/phenomenon.h"
#include "core/rsql.h"
#include "dbsim/monitor.h"
#include "dbsim/types.h"
#include "logstore/log_store.h"
#include "workload/scenario.h"

namespace pinsql::eval {

/// Parameters of one synthetic ADAC-style anomaly case. The paper's cases
/// span ~10 min anomalies inside ~40 min windows; these defaults compress
/// that to keep a full evaluation tractable on one machine while keeping
/// the causal structure identical.
struct CaseGenOptions {
  uint64_t seed = 1;
  workload::AnomalyType type = workload::AnomalyType::kBusinessSpike;
  workload::ScenarioParams scenario;

  int64_t window_start_sec = 100000;  // arbitrary epoch-like origin
  int64_t pre_anomaly_sec = 600;      // clean baseline before a_s (delta_s)
  int64_t anomaly_duration_sec = 240;
  int64_t post_anomaly_sec = 60;

  dbsim::SimConfig sim = {
      .cpu_cores = 8.0,
      .io_capacity_ms_per_sec = 8000.0,
      .monitoring = dbsim::MonitoringConfig::kNormal,
      .lock_wait_timeout_ms = 50'000.0,
  };

  /// A template is ground-truth H-SQL when its true-session inflation is
  /// at least this fraction of the strongest inflation (and non-trivial in
  /// absolute terms).
  double hsql_truth_fraction = 0.25;
  double hsql_truth_min_abs = 0.5;

  /// Optional: invoked after the anomaly injection is materialized and
  /// before arrivals are generated, so a study can pin the injected
  /// anomaly's severity (random draws can be too mild, or drown in an
  /// already-loaded baseline). The injected template is
  /// `workload->templates.back()`.
  std::function<void(workload::Workload*, workload::Injection*)>
      shape_injection;
};

/// One generated anomaly case: everything PinSQL and the baselines consume
/// plus the ground truth labels.
struct AnomalyCaseData {
  workload::AnomalyType type = workload::AnomalyType::kBusinessSpike;
  workload::Workload workload;  // includes injected templates
  LogStore logs;
  dbsim::InstanceMetrics metrics;  // over [window_start, window_end)
  int64_t window_start_sec = 0;
  int64_t window_end_sec = 0;
  int64_t injected_as = 0;
  int64_t injected_ae = 0;

  /// Anomaly detection output; when detection misses, detected=false and
  /// the injected period is used as fallback.
  bool detected = false;
  int64_t detected_as = 0;
  int64_t detected_ae = 0;
  std::vector<anomaly::Phenomenon> phenomena;

  /// Ground truth.
  std::vector<uint64_t> rsql_truth;
  std::vector<uint64_t> hsql_truth;

  /// The injected traffic overrides and the arrival-stream seed: together
  /// with `workload` they reproduce the case's exact arrivals (used by
  /// what-if re-simulation, e.g. the optimization-gain study).
  std::vector<workload::RateOverride> overrides;
  uint64_t arrival_seed = 0;

  /// #execution history 1/3/7 "days" ago for pre-existing templates.
  core::MapHistoryProvider history;

  /// The anomaly period the diagnosis should use.
  int64_t anomaly_start() const { return detected ? detected_as : injected_as; }
  int64_t anomaly_end() const { return detected ? detected_ae : injected_ae; }
};

/// Simulates one case end-to-end: random workload -> anomaly injection ->
/// event simulation -> monitor metrics + query logs -> anomaly detection
/// -> ground-truth labeling -> history windows.
AnomalyCaseData GenerateCase(const CaseGenOptions& options);

}  // namespace pinsql::eval

#endif  // PINSQL_EVAL_CASE_GENERATOR_H_
