#include "eval/detection_eval.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "detect/forecast.h"
#include "util/thread_pool.h"

namespace pinsql::eval {
namespace {

double SeriesValue(const TimeSeries& series, int64_t sec) {
  if (!series.Covers(sec)) return std::numeric_limits<double>::quiet_NaN();
  return series.AtTime(sec);
}

double MedianOf(std::vector<double> v) {
  if (v.empty()) return -1.0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Pins injected severities where the random draw can be too mild to move
/// the session (same constants as the online E2E harness for the legacy
/// categories). Extended categories already target a concurrency band in
/// their builders, so they run as drawn.
void PinDetectionSeverity(workload::AnomalyType type,
                          workload::Workload* workload,
                          workload::Injection* injection) {
  switch (type) {
    case workload::AnomalyType::kPoorSql:
      workload->templates.back().cpu_ms_mean = 320.0;
      injection->overrides[0].add_qps = 15.0;
      break;
    case workload::AnomalyType::kRowLock:
      workload->templates.back().cpu_ms_mean = 400.0;
      workload->templates.back().row_groups_touched = 3;
      workload->templates.back().hot_group_limit = 4;
      injection->overrides[0].add_qps = 2.5;
      for (auto& table : workload->tables) {
        if (table.id == workload->templates.back().table_id) {
          table.hot_row_groups = 4;
        }
      }
      break;
    case workload::AnomalyType::kBusinessSpike:
    case workload::AnomalyType::kMdlLock:
    case workload::AnomalyType::kFlashSaleFlood:
    case workload::AnomalyType::kSlowDrift:
    case workload::AnomalyType::kCacheStampede:
    case workload::AnomalyType::kReplicationLag:
    case workload::AnomalyType::kMigrationStorm:
    case workload::AnomalyType::kCompound:
      break;
  }
}

/// True when the reference screen (the legacy robust-z + Pettitt pipeline
/// at stock options) fires inside the pre-anomaly window. The draw's
/// "clean" baseline then contains an uninjected anomaly — a transient
/// burst real enough to confirm — and every trigger on it would be scored
/// a false positive no matter how correct the detection. Such draws
/// measure the generator, not the detector, so admission re-draws them.
/// Only the pre-anomaly slice is screened: gating on whether the screen
/// *places the injected anomaly* would bias against exactly the creep
/// categories the screen is supposed to miss.
bool BaselineHasUninjectedAnomaly(const AnomalyCaseData& data) {
  online::OnlineAnomalyDetector screen{online::OnlineDetectorOptions{}};
  for (int64_t sec = data.window_start_sec; sec < data.injected_as; ++sec) {
    const auto trigger =
        screen.Observe(sec, SeriesValue(data.metrics.active_session, sec));
    if (trigger.has_value()) return true;
  }
  return false;
}

/// Mean active sessions over [window_start, injected_as): the baseline
/// health probe the admission filter gates on.
double PreAnomalyMeanSessions(const AnomalyCaseData& data) {
  double sum = 0.0;
  size_t n = 0;
  for (int64_t sec = data.window_start_sec; sec < data.injected_as; ++sec) {
    const double v = SeriesValue(data.metrics.active_session, sec);
    if (std::isfinite(v)) {
      sum += v;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

/// Detection outcome of one (case, family) pair.
struct CaseDetection {
  bool detected = false;
  double latency_sec = -1.0;
  size_t false_triggers = 0;
};

CaseDetection ReplayCaseIntoDetector(const AnomalyCaseData& data,
                                     const DetectionEvalOptions& options,
                                     const DetectorFamilyConfig& family) {
  CaseDetection out;
  online::OnlineAnomalyDetector detector(family.detector);
  const int64_t lo = data.injected_as - options.onset_tolerance_sec;
  const int64_t hi = data.injected_ae + options.onset_tolerance_sec;
  for (int64_t sec = data.window_start_sec; sec < data.window_end_sec;
       ++sec) {
    const auto trigger =
        detector.Observe(sec, SeriesValue(data.metrics.active_session, sec));
    if (!trigger.has_value()) continue;
    const bool in_anomaly =
        trigger->onset_sec >= lo && trigger->onset_sec <= hi;
    if (in_anomaly) {
      if (!out.detected) {
        out.detected = true;
        out.latency_sec = static_cast<double>(std::max<int64_t>(
            0, trigger->trigger_sec - data.injected_as));
      }
    } else {
      ++out.false_triggers;
    }
  }
  return out;
}

}  // namespace

std::vector<DetectorFamilyConfig> StandardDetectorFamilies() {
  std::vector<DetectorFamilyConfig> families;

  DetectorFamilyConfig screen;
  screen.name = "screen";
  families.push_back(screen);

  const std::vector<detect::ForecastOptions> stock =
      detect::DefaultEnsembleForecasters();

  DetectorFamilyConfig ewma;
  ewma.name = "ewma";
  ewma.detector.use_screen = false;
  ewma.detector.forecasters = {stock[0]};
  families.push_back(ewma);

  DetectorFamilyConfig holt;
  holt.name = "holt";
  holt.detector.use_screen = false;
  holt.detector.forecasters = {stock[1]};
  families.push_back(holt);

  DetectorFamilyConfig hw;
  hw.name = "holt_winters";
  hw.detector.use_screen = false;
  detect::ForecastOptions hw_options;
  hw_options.method = detect::ForecastMethod::kHoltWinters;
  hw_options.alpha = 0.1;
  hw_options.beta = 0.02;
  hw_options.gamma = 0.05;
  // The synthetic workloads oscillate at 240-900 s; one mid-band season.
  hw_options.seasonal_period = 300;
  hw_options.threshold = 8.0;
  hw_options.cusum_k = 0.8;
  hw_options.cusum_h = 30.0;
  hw.detector.forecasters = {hw_options};
  families.push_back(hw);

  DetectorFamilyConfig ensemble;
  ensemble.name = "ensemble";
  ensemble.detector.forecasters = stock;
  families.push_back(ensemble);

  return families;
}

const CategoryDetection* DetectionEvalResult::Find(
    workload::AnomalyType type) const {
  for (const CategoryDetection& c : categories) {
    if (c.type == type) return &c;
  }
  return nullptr;
}

double DetectionEvalResult::LegacyRecall() const {
  return legacy_cases > 0 ? static_cast<double>(legacy_detected) /
                                static_cast<double>(legacy_cases)
                          : 0.0;
}

double DetectionEvalResult::ExtendedRecall() const {
  return extended_cases > 0 ? static_cast<double>(extended_detected) /
                                  static_cast<double>(extended_cases)
                            : 0.0;
}

std::vector<DetectionEvalResult> RunDetectionAblation(
    const DetectionEvalOptions& options,
    const std::vector<DetectorFamilyConfig>& families) {
  const size_t num_categories = options.categories.size();
  const size_t cases_per = static_cast<size_t>(
      std::max(options.cases_per_category, 0));
  const size_t total_cases = num_categories * cases_per;

  // One generated case per (category, index); each family replays the
  // identical stream. outcomes[case][family].
  std::vector<std::vector<CaseDetection>> outcomes(
      total_cases, std::vector<CaseDetection>(families.size()));

  std::unique_ptr<util::ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.num_threads);
  }
  util::ParallelFor(pool.get(), total_cases, [&](size_t slot) {
    const size_t cat_idx = slot / cases_per;
    const size_t case_idx = slot % cases_per;
    const workload::AnomalyType type = options.categories[cat_idx];

    CaseGenOptions cg = options.case_options;
    cg.type = type;
    cg.shape_injection = [type](workload::Workload* workload,
                                workload::Injection* injection) {
      PinDetectionSeverity(type, workload, injection);
    };
    if (type == workload::AnomalyType::kSlowDrift) {
      cg.pre_anomaly_sec = options.drift_pre_anomaly_sec;
      cg.anomaly_duration_sec = options.drift_anomaly_duration_sec;
      cg.post_anomaly_sec = options.drift_post_anomaly_sec;
    }
    const uint64_t base_seed =
        options.seed + cat_idx * 7'000'003ULL + case_idx * 1000003ULL;
    AnomalyCaseData data;
    for (size_t regen = 0;; ++regen) {
      cg.seed = base_seed + regen * 0x9E3779B9ULL;
      data = GenerateCase(cg);
      if (regen >= options.max_case_regens) break;
      const bool sane =
          PreAnomalyMeanSessions(data) <= options.max_baseline_mean_sessions &&
          !(options.require_quiet_baseline &&
            BaselineHasUninjectedAnomaly(data));
      if (sane) break;
    }
    for (size_t f = 0; f < families.size(); ++f) {
      outcomes[slot][f] = ReplayCaseIntoDetector(data, options, families[f]);
    }
  });

  // Serial fold in (family, category, case) order: deterministic at any
  // thread count.
  std::vector<DetectionEvalResult> results(families.size());
  for (size_t f = 0; f < families.size(); ++f) {
    DetectionEvalResult& result = results[f];
    result.family = families[f].name;
    for (size_t cat_idx = 0; cat_idx < num_categories; ++cat_idx) {
      CategoryDetection cat;
      cat.type = options.categories[cat_idx];
      std::vector<double> latencies;
      for (size_t case_idx = 0; case_idx < cases_per; ++case_idx) {
        const CaseDetection& out =
            outcomes[cat_idx * cases_per + case_idx][f];
        ++cat.cases;
        if (out.detected) {
          ++cat.detected;
          latencies.push_back(out.latency_sec);
        }
        cat.false_triggers += out.false_triggers;
      }
      cat.recall = cat.cases > 0 ? static_cast<double>(cat.detected) /
                                       static_cast<double>(cat.cases)
                                 : 0.0;
      cat.median_latency_sec = MedianOf(std::move(latencies));
      if (workload::IsLegacyAnomalyType(cat.type)) {
        result.legacy_cases += cat.cases;
        result.legacy_detected += cat.detected;
        result.legacy_false_triggers += cat.false_triggers;
      } else {
        result.extended_cases += cat.cases;
        result.extended_detected += cat.detected;
        result.extended_false_triggers += cat.false_triggers;
      }
      result.categories.push_back(std::move(cat));
    }
  }
  return results;
}

DetectionEvalResult RunDetectionEval(const DetectionEvalOptions& options,
                                     const DetectorFamilyConfig& family) {
  return RunDetectionAblation(options, {family}).front();
}

}  // namespace pinsql::eval
