#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "util/strings.h"

namespace pinsql::obs {

namespace {

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceRecorder::TraceRecorder()
    : id_(NextRecorderId()), epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::ElapsedUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // Keyed by the recorder's unique id (never reused), so a stale entry for
  // a destroyed recorder can never be looked up again — no ABA hazard.
  thread_local std::unordered_map<uint64_t, ThreadBuffer*> cache;
  const auto it = cache.find(id_);
  if (it != cache.end()) return it->second;
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->tid = static_cast<int>(buffers_.size()) - 1;
  cache[id_] = buffer;
  return buffer;
}

void TraceRecorder::Record(TraceEvent event) {
#ifndef PINSQL_DISABLE_OBS
  ThreadBuffer* buffer = BufferForThisThread();
  event.tid = buffer->tid;
  buffer->events.push_back(std::move(event));
#else
  (void)event;
#endif
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.tid < b.tid;
            });
  return out;
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

Json TraceRecorder::ToChromeJson() const {
  Json events = Json::MakeArray();
  for (const TraceEvent& e : Snapshot()) {
    Json obj = Json::MakeObject();
    obj.Set("name", e.name);
    obj.Set("cat", "pinsql");
    obj.Set("ph", "X");
    obj.Set("ts", e.start_us);
    obj.Set("dur", e.dur_us);
    obj.Set("pid", 1);
    obj.Set("tid", e.tid);
    if (!e.attrs.empty()) {
      Json args = Json::MakeObject();
      for (const auto& [key, value] : e.attrs) args.Set(key, value);
      obj.Set("args", std::move(args));
    }
    events.Append(std::move(obj));
  }
  Json doc = Json::MakeObject();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

std::string TraceRecorder::SummaryTable() const {
  struct Agg {
    size_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : Snapshot()) {
    Agg& agg = by_name[e.name];
    ++agg.count;
    agg.total_us += e.dur_us;
    agg.max_us = std::max(agg.max_us, e.dur_us);
  }
  std::string out = StrFormat("%-32s %8s %12s %12s %12s\n", "span", "count",
                              "total(ms)", "mean(ms)", "max(ms)");
  for (const auto& [name, agg] : by_name) {
    out += StrFormat(
        "%-32s %8zu %12.3f %12.3f %12.3f\n", name.c_str(), agg.count,
        agg.total_us / 1000.0,
        agg.total_us / 1000.0 / static_cast<double>(agg.count),
        agg.max_us / 1000.0);
  }
  return out;
}

Span::Span(TraceRecorder* recorder, std::string_view name)
#ifndef PINSQL_DISABLE_OBS
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  event_.name = std::string(name);
  event_.start_us = recorder_->ElapsedUs();
}
#else
    : recorder_(nullptr) {
  (void)recorder;
  (void)name;
}
#endif

Span::~Span() {
  if (recorder_ == nullptr) return;
  event_.dur_us = recorder_->ElapsedUs() - event_.start_us;
  recorder_->Record(std::move(event_));
}

void Span::AddAttr(std::string_view key, std::string value) {
  if (recorder_ == nullptr) return;
  event_.attrs.emplace_back(std::string(key), std::move(value));
}

const StageTrace* PipelineTrace::Find(std::string_view name) const {
  for (const StageTrace& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

Json PipelineTrace::ToJson() const {
  Json arr = Json::MakeArray();
  for (const StageTrace& stage : stages) {
    Json obj = Json::MakeObject();
    obj.Set("name", stage.name);
    obj.Set("seconds", stage.seconds);
    Json counters = Json::MakeObject();
    for (const auto& [key, value] : stage.counters) {
      counters.Set(key, value);
    }
    obj.Set("counters", std::move(counters));
    arr.Append(std::move(obj));
  }
  Json doc = Json::MakeObject();
  doc.Set("total_seconds", total_seconds);
  doc.Set("stages", std::move(arr));
  return doc;
}

StatusOr<PipelineTrace> PipelineTrace::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("trace: expected an object");
  }
  PipelineTrace trace;
  trace.total_seconds = json.GetNumberOr("total_seconds", 0.0);
  const Json* stages = json.Find("stages");
  if (stages == nullptr || !stages->is_array()) {
    return Status::InvalidArgument("trace: missing 'stages' array");
  }
  for (const Json& entry : stages->AsArray()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("trace: stage entry is not an object");
    }
    StageTrace stage;
    stage.name = entry.GetStringOr("name", "");
    if (stage.name.empty()) {
      return Status::InvalidArgument("trace: stage entry without a name");
    }
    stage.seconds = entry.GetNumberOr("seconds", 0.0);
    if (const Json* counters = entry.Find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [key, value] : counters->AsObject()) {
        if (!value.is_number()) {
          return Status::InvalidArgument(
              StrFormat("trace: counter '%s' is not a number", key.c_str()));
        }
        stage.counters[key] = static_cast<int64_t>(value.AsNumber());
      }
    }
    trace.stages.push_back(std::move(stage));
  }
  return trace;
}

std::string PipelineTrace::ToTable() const {
  std::string out =
      StrFormat("%-24s %10s %7s  %s\n", "stage", "time(s)", "share", "counters");
  for (const StageTrace& stage : stages) {
    std::string counters;
    for (const auto& [key, value] : stage.counters) {
      if (!counters.empty()) counters += " ";
      counters += StrFormat("%s=%lld", key.c_str(),
                            static_cast<long long>(value));
    }
    const double share =
        total_seconds > 0.0 ? 100.0 * stage.seconds / total_seconds : 0.0;
    out += StrFormat("%-24s %10.4f %6.1f%%  %s\n", stage.name.c_str(),
                     stage.seconds, share, counters.c_str());
  }
  out += StrFormat("%-24s %10.4f\n", "total", total_seconds);
  return out;
}

}  // namespace pinsql::obs
