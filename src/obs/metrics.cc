#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "util/strings.h"

namespace pinsql::obs {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // Bucket i >= 1 holds [2^(i-1), 2^i): i = floor(log2(value)) + 1. The
  // last bucket absorbs the top of the uint64 range.
  return std::min<size_t>(static_cast<size_t>(std::bit_width(value)),
                          kNumBuckets - 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> out{};
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%-44s %12llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, g] : gauges) {
    out += StrFormat("%-44s %12lld (max %lld)\n", name.c_str(),
                     static_cast<long long>(g.value),
                     static_cast<long long>(g.max));
  }
  for (const auto& [name, h] : histograms) {
    const double mean =
        h.count == 0 ? 0.0
                     : static_cast<double>(h.sum) / static_cast<double>(h.count);
    out += StrFormat("%-44s n=%llu mean=%.1f\n", name.c_str(),
                     static_cast<unsigned long long>(h.count), mean);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = GaugeSnapshot{gauge->value(), gauge->max()};
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    const auto buckets = histogram->BucketCounts();
    size_t last = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] != 0) last = i + 1;
    }
    h.buckets.assign(buckets.begin(), buckets.begin() + last);
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace pinsql::obs
