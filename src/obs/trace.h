#ifndef PINSQL_OBS_TRACE_H_
#define PINSQL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace pinsql::obs {

/// One finished span: a named interval on one thread, with optional k/v
/// attributes. Times are steady-clock microseconds relative to the owning
/// recorder's epoch.
struct TraceEvent {
  std::string name;
  /// Dense per-recorder thread index (0 = first thread that recorded).
  int tid = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Collects spans from any number of threads. Each thread appends finished
/// spans to its own buffer (registered under the recorder mutex on first
/// touch, lock-free afterwards), so recording on the thread-pool hot path
/// never contends. Snapshot/export must only run after the parallel work
/// producing spans has joined — the pool's ParallelFor barrier provides the
/// needed happens-before edge.
///
/// Under PINSQL_DISABLE_OBS every method is a no-op and the recorder holds
/// no events, but the type stays usable so call sites compile unchanged.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Appends one finished span to the calling thread's buffer.
  void Record(TraceEvent event);

  /// Microseconds since the recorder epoch (span start times).
  double ElapsedUs() const;

  /// Merges every per-thread buffer, sorted by (start_us, tid).
  std::vector<TraceEvent> Snapshot() const;
  size_t event_count() const;

  /// Chrome about:tracing / Perfetto-compatible document: paste the dump
  /// into chrome://tracing. Complete-phase ("ph":"X") events only.
  Json ToChromeJson() const;

  /// Aggregated per-span-name table: count, total / mean / max duration.
  std::string SummaryTable() const;

 private:
  struct ThreadBuffer {
    int tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer* BufferForThisThread();

  const uint64_t id_;  // unique across all recorders ever constructed
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: opens at construction, records into the recorder at
/// destruction. A null recorder (or a PINSQL_DISABLE_OBS build) makes the
/// span a no-op, which is how tracing stays opt-in per Diagnose call.
class Span {
 public:
  Span(TraceRecorder* recorder, std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void AddAttr(std::string_view key, std::string value);

 private:
  TraceRecorder* recorder_;
  TraceEvent event_;
};

/// Deterministic per-stage accounting of one Diagnose() run: wall time plus
/// the stage's key counters (candidates in/out, windows consulted, ...).
/// Unlike TraceRecorder spans this is always populated — it is part of
/// DiagnosisResult and survives PINSQL_DISABLE_OBS builds, so the report's
/// `trace` block never disappears.
struct StageTrace {
  std::string name;
  double seconds = 0.0;
  std::map<std::string, int64_t> counters;

  bool operator==(const StageTrace&) const = default;
};

struct PipelineTrace {
  std::vector<StageTrace> stages;
  double total_seconds = 0.0;

  /// nullptr when no stage has that name.
  const StageTrace* Find(std::string_view name) const;

  Json ToJson() const;
  static StatusOr<PipelineTrace> FromJson(const Json& json);

  /// Human-readable per-stage table (the bench --trace output).
  std::string ToTable() const;

  bool operator==(const PipelineTrace&) const = default;
};

}  // namespace pinsql::obs

#endif  // PINSQL_OBS_TRACE_H_
