#ifndef PINSQL_OBS_METRICS_H_
#define PINSQL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pinsql::obs {

/// True when the observability layer is compiled in. Building with
/// -DPINSQL_DISABLE_OBS=ON turns every instrument into a no-op (tests gate
/// their counter assertions on this).
#ifdef PINSQL_DISABLE_OBS
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonic counter. Relaxed atomics: increments come from thread-pool
/// workers and only the totals matter, so no ordering is required (and the
/// suite stays TSan-clean).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins level instrument (queue depths, pool occupancy, ratios
/// scaled to integer permille). Unlike Counter it can move both ways;
/// `max` tracks the high-water mark since the last Reset, which is what a
/// bounded pool's "never exceeded its budget" assertions read.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Log2-bucketed latency histogram: bucket 0 counts the value 0, bucket i
/// (i >= 1) counts values in [2^(i-1), 2^i). 64 buckets cover the full
/// uint64 range, so Record never clips.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(uint64_t value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::array<uint64_t, kNumBuckets> BucketCounts() const;
  void Reset();

  /// Index of the bucket `value` lands in (exposed for tests).
  static size_t BucketIndex(uint64_t value);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Bucket counts with trailing empty buckets trimmed.
  std::vector<uint64_t> buckets;
};

struct GaugeSnapshot {
  int64_t value = 0;
  int64_t max = 0;
};

/// Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Human-readable table (sorted by name), one instrument per line.
  std::string ToString() const;
};

/// Named-instrument registry. Lookup takes a mutex, so call sites on hot
/// paths should count locally and flush one Add per batch (the LogStore
/// scan counters do this); the instruments themselves are lock-free.
/// Instrument references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  /// Process-wide registry used by the library-level instrumentation
  /// (LogStore, fault injectors, repair supervisor).
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);
  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered instrument (references stay valid). Test
  /// isolation only.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pinsql::obs

/// Call-site macros: compile to nothing under PINSQL_DISABLE_OBS, so a
/// disabled build carries zero observability overhead (no string
/// construction, no registry lookup, no atomic traffic).
#ifndef PINSQL_DISABLE_OBS
#define PINSQL_OBS_COUNT(name, n) \
  ::pinsql::obs::MetricsRegistry::Global().GetCounter(name).Add(n)
#define PINSQL_OBS_GAUGE_SET(name, v) \
  ::pinsql::obs::MetricsRegistry::Global().GetGauge(name).Set(v)
#define PINSQL_OBS_OBSERVE(name, value) \
  ::pinsql::obs::MetricsRegistry::Global().GetHistogram(name).Record(value)
#else
// The disabled form still (void)-evaluates the operands: any side-effect-free
// argument folds to nothing, and locals computed only for instrumentation do
// not trip -Wunused-but-set-variable.
#define PINSQL_OBS_COUNT(name, n) ((void)(name), (void)(n))
#define PINSQL_OBS_GAUGE_SET(name, v) ((void)(name), (void)(v))
#define PINSQL_OBS_OBSERVE(name, value) ((void)(name), (void)(value))
#endif

#endif  // PINSQL_OBS_METRICS_H_
