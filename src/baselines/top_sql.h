#ifndef PINSQL_BASELINES_TOP_SQL_H_
#define PINSQL_BASELINES_TOP_SQL_H_

#include <cstdint>
#include <vector>

#include "pipeline/template_metrics.h"

namespace pinsql::baselines {

/// The Top-SQL family of baselines (paper Sec. VIII-A): rank templates by
/// one aggregated metric over the anomaly period. These model what cloud
/// vendors' "Performance Insights"-style pages show DBAs.
enum class TopSqlMetric {
  kExecutionCount,  // Top-EN
  kResponseTime,    // Top-RT (equivalent to average active session)
  kExaminedRows,    // Top-ER
};

const char* TopSqlMetricName(TopSqlMetric metric);

/// Ranks all templates by the chosen metric summed over [anomaly_start,
/// anomaly_end), descending.
std::vector<uint64_t> RankTopSql(const TemplateMetricsStore& metrics,
                                 TopSqlMetric metric, int64_t anomaly_start,
                                 int64_t anomaly_end);

/// All three rankings at once (Top-All takes the best of these per case,
/// which the evaluation harness computes against ground truth).
struct TopSqlRankings {
  std::vector<uint64_t> by_execution;
  std::vector<uint64_t> by_response_time;
  std::vector<uint64_t> by_examined_rows;
};

TopSqlRankings RankAllTopSql(const TemplateMetricsStore& metrics,
                             int64_t anomaly_start, int64_t anomaly_end);

}  // namespace pinsql::baselines

#endif  // PINSQL_BASELINES_TOP_SQL_H_
