#ifndef PINSQL_BASELINES_CAUSAL_CORR_H_
#define PINSQL_BASELINES_CAUSAL_CORR_H_

#include <cstdint>
#include <vector>

#include "pipeline/template_metrics.h"
#include "ts/time_series.h"

namespace pinsql::baselines {

/// The PerfCE-spirit causality baseline ("Corr-Lag"): instead of ranking
/// templates by their own resource totals (Top-SQL family), rank them by
/// how much their per-template response-time series *explains* the
/// instance-level symptom (the active session). Two complementary signals
/// per template:
///
///  1. Max lagged Pearson correlation between the template series shifted
///     by L in [0, max_lag] buckets and the symptom — the classic
///     cross-correlation picture of "the template moved first".
///  2. A Granger-style variance-reduction gain: fit the symptom with an
///     AR(p) model on its own lags (restricted), then add the template's
///     best lag as a regressor (unrestricted); the relative RSS drop is
///     the template's added predictive value.
///
/// score = gain + max(0, best_corr). Like the Top-SQL baselines this is a
/// pure post-hoc ranking over aggregated metrics — no session estimation,
/// no lock analysis — which is exactly what makes it a fair "causality
/// heuristic" comparison point for PinSQL's structured diagnosis.
struct CausalCorrOptions {
  /// Bucket width the series are resampled to before regression; coarse
  /// enough to tame per-second noise, fine enough to resolve lead/lag.
  int64_t interval_sec = 15;
  /// Max lead (in buckets) a template is allowed over the symptom.
  int max_lag = 6;
  /// Own-lag AR order of the restricted symptom model.
  int ar_order = 2;
  /// Ridge term added to the normal equations (conditioning only).
  double ridge = 1e-6;
};

struct CausalCorrScore {
  uint64_t sql_id = 0;
  double score = 0.0;
  double granger_gain = 0.0;  // in [0, 1]
  double best_corr = 0.0;
  int best_lag = 0;  // buckets, of the max correlation
};

/// Scores every template in the store against the symptom series,
/// descending by score (ties broken by sql_id for determinism). The
/// symptom is sliced to the store's window; both are resampled to
/// options.interval_sec.
std::vector<CausalCorrScore> ScoreCausalCorr(
    const TemplateMetricsStore& metrics, const TimeSeries& symptom,
    const CausalCorrOptions& options = {});

/// Ranking-only view of ScoreCausalCorr.
std::vector<uint64_t> RankCausalCorr(const TemplateMetricsStore& metrics,
                                     const TimeSeries& symptom,
                                     const CausalCorrOptions& options = {});

}  // namespace pinsql::baselines

#endif  // PINSQL_BASELINES_CAUSAL_CORR_H_
