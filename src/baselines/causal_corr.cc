#include "baselines/causal_corr.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "ts/stats.h"

namespace pinsql::baselines {
namespace {

/// Solves the symmetric positive-definite system (A + ridge*I) x = b by
/// Gaussian elimination with partial pivoting. Small systems only
/// (ar_order + 2 unknowns); returns false on a (post-ridge) singular
/// matrix.
bool SolveLinear(std::vector<std::vector<double>> a, std::vector<double> b,
                 double ridge, std::vector<double>* x) {
  const size_t n = b.size();
  for (size_t i = 0; i < n; ++i) a[i][i] += ridge;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      const double f = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) a[row][k] -= f * a[col][k];
      b[row] -= f * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (size_t k = i + 1; k < n; ++k) acc -= a[i][k] * (*x)[k];
    (*x)[i] = acc / a[i][i];
  }
  return true;
}

/// Residual sum of squares of least-squares-fitting `y` on the column set
/// `cols` (plus an intercept). Negative when the fit is degenerate.
double FitRss(const std::vector<const std::vector<double>*>& cols,
              const std::vector<double>& y, double ridge) {
  const size_t n = y.size();
  const size_t p = cols.size() + 1;  // + intercept
  // Normal equations X^T X w = X^T y; X column 0 is all-ones.
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  auto col_at = [&](size_t j, size_t t) {
    return j == 0 ? 1.0 : (*cols[j - 1])[t];
  };
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = i; j < p; ++j) {
      double acc = 0.0;
      for (size_t t = 0; t < n; ++t) acc += col_at(i, t) * col_at(j, t);
      xtx[i][j] = xtx[j][i] = acc;
    }
    double acc = 0.0;
    for (size_t t = 0; t < n; ++t) acc += col_at(i, t) * y[t];
    xty[i] = acc;
  }
  std::vector<double> w;
  if (!SolveLinear(std::move(xtx), std::move(xty), ridge, &w)) return -1.0;
  double rss = 0.0;
  for (size_t t = 0; t < n; ++t) {
    double pred = w[0];
    for (size_t j = 0; j < cols.size(); ++j) pred += w[j + 1] * (*cols[j])[t];
    const double r = y[t] - pred;
    rss += r * r;
  }
  return rss;
}

/// Standardizes in place; returns false for (near-)constant series, which
/// carry no correlation signal.
bool Standardize(std::vector<double>* v) {
  const double mean = Mean(*v);
  const double sd = Stddev(*v);
  if (!(sd > 1e-9)) return false;
  for (double& x : *v) x = (x - mean) / sd;
  return true;
}

}  // namespace

std::vector<CausalCorrScore> ScoreCausalCorr(
    const TemplateMetricsStore& metrics, const TimeSeries& symptom,
    const CausalCorrOptions& options) {
  // Shared preprocessing: the symptom over the store's window, bucketed.
  const std::vector<double> y_raw =
      symptom.Slice(metrics.start_sec(), metrics.end_sec())
          .Resample(options.interval_sec, TimeSeries::Agg::kMean)
          .values();
  const int max_lag = std::max(0, options.max_lag);
  const int ar_order = std::max(1, options.ar_order);
  const int skip = std::max(max_lag, ar_order);

  std::vector<CausalCorrScore> scored;
  scored.reserve(metrics.num_templates());

  std::vector<double> y_std = y_raw;
  const bool symptom_usable =
      static_cast<int>(y_raw.size()) > skip + 2 * (ar_order + 2) &&
      Standardize(&y_std);

  // Rows t in [skip, n): the regression target and its own-lag columns,
  // shared across every template.
  const size_t n = y_std.size();
  std::vector<double> target;
  std::vector<std::vector<double>> own_lags(
      static_cast<size_t>(ar_order));
  double restricted_rss = -1.0;
  if (symptom_usable) {
    for (size_t t = static_cast<size_t>(skip); t < n; ++t) {
      target.push_back(y_std[t]);
      for (int l = 1; l <= ar_order; ++l) {
        own_lags[static_cast<size_t>(l - 1)].push_back(
            y_std[t - static_cast<size_t>(l)]);
      }
    }
    std::vector<const std::vector<double>*> cols;
    for (const auto& c : own_lags) cols.push_back(&c);
    restricted_rss = FitRss(cols, target, options.ridge);
  }

  for (const TemplateSeries* tpl : metrics.AllSorted()) {
    CausalCorrScore s;
    s.sql_id = tpl->sql_id;
    std::vector<double> x_std =
        tpl->total_response_ms
            .Resample(options.interval_sec, TimeSeries::Agg::kSum)
            .values();
    if (!symptom_usable || x_std.size() != n || !Standardize(&x_std)) {
      scored.push_back(s);
      continue;
    }

    // Signal 1: max lagged correlation, template leading by L buckets.
    for (int lag = 0; lag <= max_lag; ++lag) {
      std::vector<double> lead;
      std::vector<double> sym;
      for (size_t t = static_cast<size_t>(lag); t < n; ++t) {
        lead.push_back(x_std[t - static_cast<size_t>(lag)]);
        sym.push_back(y_std[t]);
      }
      const double corr = PearsonCorrelation(lead, sym);
      if (lag == 0 || corr > s.best_corr) {
        s.best_corr = corr;
        s.best_lag = lag;
      }
    }

    // Signal 2: Granger-style gain of the template's best lag over the
    // pure AR model of the symptom.
    if (restricted_rss > 1e-12) {
      std::vector<double> x_col;
      for (size_t t = static_cast<size_t>(skip); t < n; ++t) {
        x_col.push_back(x_std[t - static_cast<size_t>(s.best_lag)]);
      }
      std::vector<const std::vector<double>*> cols;
      for (const auto& c : own_lags) cols.push_back(&c);
      cols.push_back(&x_col);
      const double unrestricted_rss = FitRss(cols, target, options.ridge);
      if (unrestricted_rss >= 0.0) {
        s.granger_gain = std::clamp(
            (restricted_rss - unrestricted_rss) / restricted_rss, 0.0, 1.0);
      }
    }

    s.score = s.granger_gain + std::max(0.0, s.best_corr);
    scored.push_back(s);
  }

  std::sort(scored.begin(), scored.end(),
            [](const CausalCorrScore& a, const CausalCorrScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.sql_id < b.sql_id;
            });
  return scored;
}

std::vector<uint64_t> RankCausalCorr(const TemplateMetricsStore& metrics,
                                     const TimeSeries& symptom,
                                     const CausalCorrOptions& options) {
  std::vector<uint64_t> out;
  const auto scored = ScoreCausalCorr(metrics, symptom, options);
  out.reserve(scored.size());
  for (const CausalCorrScore& s : scored) out.push_back(s.sql_id);
  return out;
}

}  // namespace pinsql::baselines
