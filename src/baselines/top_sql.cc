#include "baselines/top_sql.h"

#include <algorithm>

namespace pinsql::baselines {

const char* TopSqlMetricName(TopSqlMetric metric) {
  switch (metric) {
    case TopSqlMetric::kExecutionCount:
      return "Top-EN";
    case TopSqlMetric::kResponseTime:
      return "Top-RT";
    case TopSqlMetric::kExaminedRows:
      return "Top-ER";
  }
  return "Top-?";
}

std::vector<uint64_t> RankTopSql(const TemplateMetricsStore& metrics,
                                 TopSqlMetric metric, int64_t anomaly_start,
                                 int64_t anomaly_end) {
  std::vector<std::pair<double, uint64_t>> scored;
  for (const TemplateSeries* tpl : metrics.AllSorted()) {
    const TimeSeries* series = nullptr;
    switch (metric) {
      case TopSqlMetric::kExecutionCount:
        series = &tpl->execution_count;
        break;
      case TopSqlMetric::kResponseTime:
        series = &tpl->total_response_ms;
        break;
      case TopSqlMetric::kExaminedRows:
        series = &tpl->examined_rows;
        break;
    }
    scored.emplace_back(series->Slice(anomaly_start, anomaly_end).Sum(),
                        tpl->sql_id);
  }
  std::sort(scored.begin(), scored.end(),
            [](const std::pair<double, uint64_t>& a,
               const std::pair<double, uint64_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<uint64_t> out;
  out.reserve(scored.size());
  for (const auto& [score, id] : scored) out.push_back(id);
  return out;
}

TopSqlRankings RankAllTopSql(const TemplateMetricsStore& metrics,
                             int64_t anomaly_start, int64_t anomaly_end) {
  TopSqlRankings out;
  out.by_execution = RankTopSql(metrics, TopSqlMetric::kExecutionCount,
                                anomaly_start, anomaly_end);
  out.by_response_time = RankTopSql(metrics, TopSqlMetric::kResponseTime,
                                    anomaly_start, anomaly_end);
  out.by_examined_rows = RankTopSql(metrics, TopSqlMetric::kExaminedRows,
                                    anomaly_start, anomaly_end);
  return out;
}

}  // namespace pinsql::baselines
