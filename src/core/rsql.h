#ifndef PINSQL_CORE_RSQL_H_
#define PINSQL_CORE_RSQL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hsql.h"
#include "obs/trace.h"
#include "pipeline/template_metrics.h"
#include "ts/time_series.h"
#include "util/thread_pool.h"

namespace pinsql::core {

/// Supplies the #execution series of the same window N days ago (paper:
/// N in {1, 3, 7}), for history-trend verification. Returning nullptr
/// means no history exists (a new template), which vacuously passes the
/// "no anomaly N days ago" rule.
class HistoryProvider {
 public:
  virtual ~HistoryProvider() = default;
  virtual const TimeSeries* ExecutionHistory(uint64_t sql_id,
                                             int days_ago) const = 0;
};

/// Simple map-backed HistoryProvider used by tests and the evaluation
/// harness. The mutation surface (ForEach/Erase) also serves the fault
/// injectors, which perturb stored windows to model lossy history
/// retrieval.
class MapHistoryProvider : public HistoryProvider {
 public:
  void Put(uint64_t sql_id, int days_ago, TimeSeries series);
  const TimeSeries* ExecutionHistory(uint64_t sql_id,
                                     int days_ago) const override;

  size_t size() const { return data_.size(); }
  /// Visits every stored window in sorted (sql_id, days_ago) order.
  void ForEach(const std::function<void(uint64_t sql_id, int days_ago,
                                        const TimeSeries& series)>& fn) const;
  /// Removes one window; returns false when absent.
  bool Erase(uint64_t sql_id, int days_ago);

 private:
  std::map<std::pair<uint64_t, int>, TimeSeries> data_;
};

/// Tuning and ablation flags for the Root Cause SQL Identification Module
/// (paper Sec. VI and Fig. 6a).
struct RsqlOptions {
  /// tau: Pearson threshold for the template-correlation graph edges.
  double cluster_tau = 0.8;
  /// Granularity at which #execution trends are compared for clustering
  /// (1 s Poisson noise would swamp the correlation).
  int64_t cluster_interval_sec = 30;
  /// K_c: maximum clusters kept by the cumulative threshold.
  int max_clusters_kc = 5;
  /// tau_c: cumulative session-correlation threshold.
  double cumulative_tau_c = 0.95;
  /// IQR multiplier for Tukey's rule on the current window (rule i).
  double tukey_k = 3.0;
  /// Materiality guard for rule (i): the surge must also exceed this
  /// multiple of the baseline Q3 (ordinary traffic waves peak well below
  /// it; QPS spikes / new templates clear it easily).
  double verify_min_ratio = 1.6;
  /// IQR multiplier for the history windows (rule ii); larger so ordinary
  /// traffic waves in clean history don't cause false rejections.
  double history_tukey_k = 5.0;
  /// Granularity for history verification counts.
  int64_t verify_interval_sec = 10;
  /// Granularity for the final corr(#execution, session) ranking; coarser
  /// than 1 s so low-QPS root causes (DDL chunks, batch updates) are not
  /// drowned in per-second Poisson noise.
  int64_t rank_interval_sec = 10;
  /// History lookbacks in days.
  std::vector<int> history_days = {1, 3, 7};

  /// When the best verified candidate's corr(#execution, session) falls
  /// below this, the verification search widens to all templates (the
  /// root cause probably sits in an unselected cluster).
  double widen_corr_threshold = 0.65;

  // Ablation toggles.
  bool use_cumulative_threshold = true;   // false -> fixed top-1 cluster
  bool use_history_verification = true;   // false -> skip verification
  bool use_metric_helper_nodes = true;    // false -> template-only graph
  /// false -> rank clusters by total response time (Top-RT) instead of the
  /// H-SQL impact scores (ablation "w/o Direct Cause SQL Ranking").
  bool use_hsql_cluster_ranking = true;
};

/// Diagnostics-rich result of the R-SQL stage.
struct RsqlResult {
  /// Final ranking, most-likely root cause first.
  std::vector<uint64_t> ranking;
  /// Template clusters (connected components, metric nodes removed).
  std::vector<std::vector<uint64_t>> clusters;
  /// Indices into `clusters` chosen by the cumulative threshold, in
  /// impact order.
  std::vector<size_t> selected_clusters;
  /// Candidates that passed history verification.
  std::vector<uint64_t> verified;
  /// True when verification rejected every candidate and the unverified
  /// candidate list was used as a fallback.
  bool verification_fallback = false;
  /// History verification accounting: (candidate, lookback-day) pairs
  /// consulted, windows with no stored series, and windows too short to
  /// cover the relative anomaly period. The paper checks 3 windows per
  /// candidate; under lossy history the check gracefully falls back to
  /// whichever windows survive, and these counters record how many did
  /// not.
  size_t history_windows_checked = 0;
  size_t history_windows_missing = 0;
  size_t history_windows_truncated = 0;
  /// Wall-clock split of the stage (paper Sec. VIII-B reports per-stage
  /// timings): clustering covers graph build + cumulative filtering,
  /// verification covers history checks + the final ranking.
  double cluster_seconds = 0.0;
  double verify_seconds = 0.0;
};

/// Pinpoints R-SQLs (paper Sec. VI): clusters templates by #execution
/// trend (with performance-metric helper nodes densifying the graph),
/// ranks clusters by the max H-SQL impact of their members, keeps clusters
/// by the cumulative session-correlation threshold, verifies candidates
/// against 1/3/7-day-old history with Tukey's rule, and finally ranks the
/// survivors by corr(#execution, active session).
///
/// A non-null `pool` parallelizes the embarrassingly-parallel pieces —
/// node resampling, the O(nodes²) correlation-edge computation, the
/// per-candidate history verification and the final rank scores. Edges
/// are unioned and results folded in a fixed serial order, so the output
/// is identical to the single-threaded run.
RsqlResult IdentifyRootCauseSqls(
    const TemplateMetricsStore& metrics,
    const std::unordered_map<uint64_t, TimeSeries>& template_sessions,
    const TimeSeries& instance_session,
    const std::map<std::string, const TimeSeries*>& helper_metrics,
    const std::vector<HsqlScore>& hsql_scores,
    const HistoryProvider* history, int64_t anomaly_start,
    int64_t anomaly_end, const RsqlOptions& options,
    util::ThreadPool* pool = nullptr, obs::TraceRecorder* trace = nullptr);

}  // namespace pinsql::core

#endif  // PINSQL_CORE_RSQL_H_
