#ifndef PINSQL_CORE_SESSION_ESTIMATOR_H_
#define PINSQL_CORE_SESSION_ESTIMATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logstore/log_store.h"
#include "pipeline/template_metrics.h"
#include "ts/time_series.h"
#include "util/thread_pool.h"

namespace pinsql::core {

/// Which estimator to run (Table III compares all three).
enum class SessionEstimatorMode {
  /// The paper's method with K-bucket SHOW STATUS offset localization.
  kBucketed,
  /// Expectation over the whole second (no offset localization).
  kNoBuckets,
  /// Total response time per second as a proxy ("Estimate by RT").
  kResponseTime,
};

struct SessionEstimatorOptions {
  SessionEstimatorMode mode = SessionEstimatorMode::kBucketed;
  /// K: buckets per second (paper uses 10).
  int num_buckets = 10;
};

/// Output: estimated instance-level active session plus the individual
/// active session of every template, aligned on [ts, te) at 1 s.
struct SessionEstimate {
  TimeSeries total;
  std::unordered_map<uint64_t, TimeSeries> per_template;
};

/// Estimates individual active sessions from query logs (paper Sec. IV-C).
///
/// Each query q is active during [t(q), t(q) + tres(q)); the probability
/// that the hidden SHOW STATUS instant inside period p observes q is
///   P(observed(p, q)) = |p ∩ [t(q), t(q)+tres(q))| / |p|.
/// In bucketed mode each second is split into K buckets; the bucket whose
/// expected total session is closest to the monitor's observed value is
/// taken as the sampling instant's bucket (sel_t), and the per-template
/// session is the sum of P(observed(sel_t, q)) over the template's
/// queries. `observed_session` must cover [ts_sec, te_sec).
///
/// A non-null `pool` parallelizes the expectation pass (sharded by second)
/// and the per-template pass (sharded by template); both shards preserve
/// the serial accumulation order per output cell, so the estimate is
/// bit-identical to the single-threaded run.
SessionEstimate EstimateSessions(const std::vector<QueryLogRecord>& logs,
                                 const TimeSeries& observed_session,
                                 int64_t ts_sec, int64_t te_sec,
                                 const SessionEstimatorOptions& options,
                                 util::ThreadPool* pool = nullptr);

/// Convenience overload scanning a LogStore for the window's records.
SessionEstimate EstimateSessions(const LogStore& store,
                                 const TimeSeries& observed_session,
                                 int64_t ts_sec, int64_t te_sec,
                                 const SessionEstimatorOptions& options,
                                 util::ThreadPool* pool = nullptr);

}  // namespace pinsql::core

#endif  // PINSQL_CORE_SESSION_ESTIMATOR_H_
