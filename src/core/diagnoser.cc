#include "core/diagnoser.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>

#include "pipeline/stream_aggregator.h"
#include "util/thread_pool.h"

namespace pinsql::core {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::vector<uint64_t> DiagnosisResult::TopHsql(size_t k) const {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < std::min(k, hsql_ranking.size()); ++i) {
    out.push_back(hsql_ranking[i].sql_id);
  }
  return out;
}

std::vector<uint64_t> DiagnosisResult::TopRsql(size_t k) const {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < std::min(k, rsql.ranking.size()); ++i) {
    out.push_back(rsql.ranking[i]);
  }
  return out;
}

DiagnosisResult Diagnose(const DiagnosisInput& input,
                         const DiagnoserOptions& options) {
  assert(input.logs != nullptr);
  assert(input.anomaly_end_sec > input.anomaly_start_sec);

  DiagnosisResult result;
  result.ts_sec = std::max(input.active_session.start_time(),
                           input.anomaly_start_sec - options.delta_s_sec);
  result.te_sec =
      std::min(input.active_session.end_time(), input.anomaly_end_sec);
  assert(result.te_sec > result.ts_sec);

  const TimeSeries session =
      input.active_session.Slice(result.ts_sec, result.te_sec);

  // One pool shared by every stage; null means every stage runs its
  // bit-identical serial path.
  std::unique_ptr<util::ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.num_threads);
  }

  const auto t_total = std::chrono::steady_clock::now();

  // Stage 1: individual active-session estimation.
  auto t0 = std::chrono::steady_clock::now();
  result.estimate =
      EstimateSessions(*input.logs, session, result.ts_sec, result.te_sec,
                       options.estimator, pool.get());
  result.estimate_seconds = SecondsSince(t0);

  // Stage 2: H-SQL identification.
  t0 = std::chrono::steady_clock::now();
  result.hsql_ranking = RankHighImpactSqls(
      result.estimate.per_template, session, input.anomaly_start_sec,
      input.anomaly_end_sec, options.hsql, pool.get());
  result.hsql_seconds = SecondsSince(t0);

  // Stage 3+4: R-SQL identification (clustering/filtering + history
  // verification + final ranking). Timed together around the call; the
  // clustering share is attributed via a second aggregate-only timing.
  t0 = std::chrono::steady_clock::now();
  result.metrics = AggregateWindow(*input.logs, result.ts_sec,
                                   result.te_sec, /*interval_sec=*/1,
                                   pool.get());
  std::map<std::string, const TimeSeries*> helpers;
  std::map<std::string, TimeSeries> sliced_helpers;
  for (const auto& [name, series] : input.helper_metrics) {
    sliced_helpers[name] = series.Slice(result.ts_sec, result.te_sec);
  }
  for (const auto& [name, series] : sliced_helpers) {
    helpers[name] = &series;
  }
  result.cluster_seconds = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  result.rsql = IdentifyRootCauseSqls(
      result.metrics, result.estimate.per_template, session, helpers,
      result.hsql_ranking, input.history, input.anomaly_start_sec,
      input.anomaly_end_sec, options.rsql, pool.get());
  result.verify_seconds = SecondsSince(t0);

  result.total_seconds = SecondsSince(t_total);
  return result;
}

}  // namespace pinsql::core
