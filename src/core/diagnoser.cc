#include "core/diagnoser.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "obs/trace.h"
#include "pipeline/stream_aggregator.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace pinsql::core {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Checks the shape of the inputs that would otherwise be undefined
/// behaviour downstream (null derefs, empty-window slices, div-by-zero
/// index math). Damaged-but-usable inputs pass and are degraded later.
Status ValidateInput(const DiagnosisInput& input,
                     const DiagnoserOptions& options) {
  if (input.logs == nullptr) {
    return Status::InvalidArgument("DiagnosisInput.logs must not be null");
  }
  if (input.history == nullptr) {
    return Status::InvalidArgument(
        "DiagnosisInput.history must not be null (pass an empty "
        "MapHistoryProvider when no history exists)");
  }
  if (input.anomaly_end_sec <= input.anomaly_start_sec) {
    return Status::InvalidArgument(StrFormat(
        "anomaly period [%lld, %lld) is inverted or empty",
        static_cast<long long>(input.anomaly_start_sec),
        static_cast<long long>(input.anomaly_end_sec)));
  }
  const TimeSeries& session = input.active_session;
  if (session.empty()) {
    return Status::InvalidArgument(
        "active_session metric series is empty: nothing to diagnose "
        "against");
  }
  if (session.interval_sec() != 1) {
    return Status::InvalidArgument(StrFormat(
        "active_session must be sampled at 1 s (got %lld s): the session "
        "estimator localizes SHOW STATUS offsets inside each second",
        static_cast<long long>(session.interval_sec())));
  }
  // The series must overlap the anomaly period itself; a diagnosis window
  // with zero anomaly seconds has no signal to correlate against. The
  // lookback portion may be truncated (degraded, not fatal).
  if (session.end_time() <= input.anomaly_start_sec ||
      session.start_time() >= input.anomaly_end_sec) {
    return Status::InvalidArgument(StrFormat(
        "active_session covers [%lld, %lld) which does not intersect the "
        "anomaly period [%lld, %lld); the series must cover (part of) "
        "[a_s - delta_s, a_e) = [%lld, %lld)",
        static_cast<long long>(session.start_time()),
        static_cast<long long>(session.end_time()),
        static_cast<long long>(input.anomaly_start_sec),
        static_cast<long long>(input.anomaly_end_sec),
        static_cast<long long>(input.anomaly_start_sec -
                               options.delta_s_sec),
        static_cast<long long>(input.anomaly_end_sec)));
  }
  return Status::OK();
}

/// Turns physically impossible metric values into gaps (NaN): the monitored
/// quantities are all non-negative, and a finite corruption artefact (counter
/// wrap, float overflow) left in place would dominate every correlation the
/// diagnosis rests on. The upper bound is deliberately loose — four orders
/// of magnitude above the series median — so genuine anomaly spikes pass
/// untouched. Returns the number of points sanitized (0 on clean input, so
/// clean runs stay bit-identical).
size_t SanitizeSeries(TimeSeries* series) {
  std::vector<double> finite;
  finite.reserve(series->size());
  for (double v : series->values()) {
    if (std::isfinite(v)) finite.push_back(v);
  }
  if (finite.empty()) return 0;
  const auto mid = finite.begin() + static_cast<long>(finite.size() / 2);
  std::nth_element(finite.begin(), mid, finite.end());
  const double cap = std::max(1e6, 1e4 * (*mid + 1.0));
  size_t sanitized = 0;
  for (double& v : series->values()) {
    if (std::isfinite(v) && (v < 0.0 || v > cap)) {
      v = std::numeric_limits<double>::quiet_NaN();
      ++sanitized;
    }
  }
  return sanitized;
}

}  // namespace

std::vector<uint64_t> DiagnosisResult::TopHsql(size_t k) const {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < std::min(k, hsql_ranking.size()); ++i) {
    out.push_back(hsql_ranking[i].sql_id);
  }
  return out;
}

std::vector<uint64_t> DiagnosisResult::TopRsql(size_t k) const {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < std::min(k, rsql.ranking.size()); ++i) {
    out.push_back(rsql.ranking[i]);
  }
  return out;
}

StatusOr<DiagnosisResult> Diagnose(const DiagnosisInput& input,
                                   const DiagnoserOptions& options) {
  const Status valid = ValidateInput(input, options);
  if (!valid.ok()) return valid;

  DiagnosisResult result;
  DataQuality& dq = result.data_quality;
  const int64_t want_ts = input.anomaly_start_sec - options.delta_s_sec;
  result.ts_sec = std::max(input.active_session.start_time(), want_ts);
  result.te_sec =
      std::min(input.active_session.end_time(), input.anomaly_end_sec);

  if (result.ts_sec > want_ts) {
    dq.lookback_truncated = true;
    dq.notes.push_back(StrFormat(
        "lookback truncated: wanted metrics from %lld, they begin at %lld",
        static_cast<long long>(want_ts),
        static_cast<long long>(result.ts_sec)));
  }
  if (result.te_sec < input.anomaly_end_sec) {
    dq.anomaly_tail_truncated = true;
    dq.notes.push_back(StrFormat(
        "anomaly tail truncated: metrics end at %lld, anomaly ends at %lld",
        static_cast<long long>(result.te_sec),
        static_cast<long long>(input.anomaly_end_sec)));
  }

  TimeSeries session =
      input.active_session.Slice(result.ts_sec, result.te_sec);
  // Gap counters hold only genuinely-missing points (non-finite as
  // collected); sanitized garbage is counted separately so the two classes
  // stay disjoint and confidence charges each bad point exactly once.
  const size_t session_missing = session.CountNonFinite();
  const size_t session_sanitized = SanitizeSeries(&session);
  dq.metric_points_sanitized += session_sanitized;
  dq.session_points = session.size();
  dq.session_gap_points = session_missing;
  if (dq.session_gap_points > 0) {
    dq.notes.push_back(StrFormat(
        "monitoring gaps: %zu of %zu active_session points are missing "
        "(gap-aware correlation skips them)",
        dq.session_gap_points, dq.session_points));
  }

  // Helper metrics: series the clustering stage cannot consume (interval
  // that does not divide the clustering granularity, or no overlap with
  // the window) are dropped up front — a degraded graph beats an aborted
  // diagnosis. Usable ones are sliced and their gaps accounted.
  std::map<std::string, TimeSeries> sliced_helpers;
  size_t helper_sanitized = 0;
  for (const auto& [name, series] : input.helper_metrics) {
    const bool interval_ok =
        series.interval_sec() > 0 &&
        series.interval_sec() <= options.rsql.cluster_interval_sec &&
        options.rsql.cluster_interval_sec % series.interval_sec() == 0;
    if (!interval_ok) {
      ++dq.helpers_dropped;
      dq.notes.push_back(StrFormat(
          "helper metric '%s' dropped: interval %lld s does not divide the "
          "clustering granularity %lld s",
          name.c_str(), static_cast<long long>(series.interval_sec()),
          static_cast<long long>(options.rsql.cluster_interval_sec)));
      continue;
    }
    TimeSeries sliced = series.Slice(result.ts_sec, result.te_sec);
    if (sliced.empty()) {
      ++dq.helpers_dropped;
      dq.notes.push_back(StrFormat(
          "helper metric '%s' dropped: no overlap with the diagnosis "
          "window",
          name.c_str()));
      continue;
    }
    const size_t missing = sliced.CountNonFinite();
    const size_t sanitized = SanitizeSeries(&sliced);
    dq.metric_points_sanitized += sanitized;
    helper_sanitized += sanitized;
    dq.helper_points += sliced.size();
    dq.helper_gap_points += missing;
    sliced_helpers[name] = std::move(sliced);
  }
  if (dq.metric_points_sanitized > 0) {
    dq.notes.push_back(StrFormat(
        "garbage metric values: %zu points were negative or absurdly large "
        "and were treated as gaps",
        dq.metric_points_sanitized));
  }
  if (dq.helper_gap_points > 0) {
    dq.notes.push_back(StrFormat(
        "monitoring gaps: %zu of %zu helper-metric points are missing",
        dq.helper_gap_points, dq.helper_points));
  }

  // One pool shared by every stage; null means every stage runs its
  // bit-identical serial path.
  std::unique_ptr<util::ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.num_threads);
  }

  const auto t_total = std::chrono::steady_clock::now();

  // Stage 1: individual active-session estimation.
  auto t0 = std::chrono::steady_clock::now();
  {
    obs::Span span(options.trace, "diagnose.session_estimation");
    result.estimate =
        EstimateSessions(*input.logs, session, result.ts_sec, result.te_sec,
                         options.estimator, pool.get());
  }
  result.estimate_seconds = SecondsSince(t0);

  // Stage 2: H-SQL identification.
  t0 = std::chrono::steady_clock::now();
  {
    obs::Span span(options.trace, "diagnose.hsql_scoring");
    result.hsql_ranking = RankHighImpactSqls(
        result.estimate.per_template, session, input.anomaly_start_sec,
        input.anomaly_end_sec, options.hsql, pool.get());
  }
  result.hsql_seconds = SecondsSince(t0);

  // Stage 3+4: R-SQL identification (clustering/filtering + history
  // verification + final ranking). Timed together around the call; the
  // clustering share is attributed via a second aggregate-only timing.
  t0 = std::chrono::steady_clock::now();
  {
    obs::Span span(options.trace, "diagnose.window_aggregation");
    result.metrics = AggregateWindow(*input.logs, result.ts_sec,
                                     result.te_sec, /*interval_sec=*/1,
                                     pool.get());
  }
  std::map<std::string, const TimeSeries*> helpers;
  for (const auto& [name, series] : sliced_helpers) {
    helpers[name] = &series;
  }
  result.cluster_seconds = SecondsSince(t0);

  // Window record count = total #execution over all templates: detects a
  // collection outage (log pipeline down while metrics kept flowing).
  double window_records = 0.0;
  for (const TemplateSeries* tpl : result.metrics.AllSorted()) {
    window_records += tpl->execution_count.Sum();
  }
  dq.log_records = static_cast<size_t>(window_records);
  if (dq.log_records == 0) {
    dq.notes.push_back(
        "no query-log records in the diagnosis window: rankings are "
        "unavailable (log collection outage?)");
  }

  t0 = std::chrono::steady_clock::now();
  {
    obs::Span span(options.trace, "diagnose.rsql");
    result.rsql = IdentifyRootCauseSqls(
        result.metrics, result.estimate.per_template, session, helpers,
        result.hsql_ranking, input.history, input.anomaly_start_sec,
        input.anomaly_end_sec, options.rsql, pool.get(), options.trace);
  }
  result.verify_seconds = SecondsSince(t0);

  dq.history_windows_checked = result.rsql.history_windows_checked;
  dq.history_windows_missing = result.rsql.history_windows_missing;
  dq.history_windows_truncated = result.rsql.history_windows_truncated;
  if (dq.history_windows_truncated > 0) {
    dq.notes.push_back(StrFormat(
        "history verification degraded: %zu of %zu lookback windows were "
        "truncated; verdicts rest on the surviving windows",
        dq.history_windows_truncated, dq.history_windows_checked));
  }

  // Confidence: multiplicative caveat per degradation class. Any monotone
  // formula works; this one is deliberately simple so the curve in
  // bench_chaos_robustness is interpretable. A bad metric point — missing
  // or sanitized garbage — is penalized exactly once: the counters are
  // disjoint and summed here.
  double confidence = 1.0;
  if (dq.session_points > 0) {
    confidence *=
        1.0 - 0.5 *
                  static_cast<double>(dq.session_gap_points +
                                      session_sanitized) /
                  static_cast<double>(dq.session_points);
  }
  if (dq.helper_points > 0) {
    confidence *=
        1.0 - 0.25 *
                  static_cast<double>(dq.helper_gap_points +
                                      helper_sanitized) /
                  static_cast<double>(dq.helper_points);
  }
  if (dq.lookback_truncated || dq.anomaly_tail_truncated) {
    const double wanted =
        static_cast<double>(input.anomaly_end_sec - want_ts);
    const double got = static_cast<double>(result.te_sec - result.ts_sec);
    confidence *= std::max(0.5, got / wanted);
  }
  if (dq.log_records == 0) confidence *= 0.25;
  if (dq.history_windows_checked > 0 && dq.history_windows_truncated > 0) {
    confidence *=
        1.0 - 0.4 * static_cast<double>(dq.history_windows_truncated) /
                  static_cast<double>(dq.history_windows_checked);
  }
  dq.confidence = confidence;

  result.total_seconds = SecondsSince(t_total);

  // Per-stage trace block: deterministic counters + the wall times above.
  // Built unconditionally (it is cheap and survives PINSQL_DISABLE_OBS) so
  // the report's `trace` block always exists.
  auto stage = [&result](std::string name, double seconds) -> obs::StageTrace& {
    obs::StageTrace s;
    s.name = std::move(name);
    s.seconds = seconds;
    result.trace.stages.push_back(std::move(s));
    return result.trace.stages.back();
  };
  {
    obs::StageTrace& s = stage("session_estimation", result.estimate_seconds);
    s.counters["session_points"] = static_cast<int64_t>(dq.session_points);
    s.counters["session_gap_points"] =
        static_cast<int64_t>(dq.session_gap_points);
    s.counters["templates"] =
        static_cast<int64_t>(result.estimate.per_template.size());
  }
  {
    obs::StageTrace& s = stage("window_aggregation", result.cluster_seconds);
    s.counters["log_records"] = static_cast<int64_t>(dq.log_records);
    s.counters["templates"] =
        static_cast<int64_t>(result.metrics.num_templates());
  }
  {
    obs::StageTrace& s = stage("hsql_scoring", result.hsql_seconds);
    s.counters["candidates"] =
        static_cast<int64_t>(result.hsql_ranking.size());
  }
  {
    obs::StageTrace& s = stage("rsql_clustering", result.rsql.cluster_seconds);
    s.counters["clusters"] = static_cast<int64_t>(result.rsql.clusters.size());
    s.counters["helper_nodes"] = static_cast<int64_t>(helpers.size());
    s.counters["selected_clusters"] =
        static_cast<int64_t>(result.rsql.selected_clusters.size());
  }
  {
    obs::StageTrace& s =
        stage("rsql_verification", result.rsql.verify_seconds);
    s.counters["verified"] = static_cast<int64_t>(result.rsql.verified.size());
    s.counters["ranked"] = static_cast<int64_t>(result.rsql.ranking.size());
    s.counters["windows_checked"] =
        static_cast<int64_t>(dq.history_windows_checked);
    s.counters["windows_missing"] =
        static_cast<int64_t>(dq.history_windows_missing);
    s.counters["windows_truncated"] =
        static_cast<int64_t>(dq.history_windows_truncated);
    s.counters["fallback"] = result.rsql.verification_fallback ? 1 : 0;
  }
  result.trace.total_seconds = result.total_seconds;
  return result;
}

}  // namespace pinsql::core
