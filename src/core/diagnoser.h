#ifndef PINSQL_CORE_DIAGNOSER_H_
#define PINSQL_CORE_DIAGNOSER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/hsql.h"
#include "core/rsql.h"
#include "core/session_estimator.h"
#include "logstore/log_store.h"
#include "obs/trace.h"
#include "pipeline/template_metrics.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace pinsql::core {

/// End-to-end PinSQL configuration: one flag per ablatable component.
struct DiagnoserOptions {
  /// delta_s: lookback before the detected anomaly start (paper: 30 min;
  /// scaled workloads use shorter windows).
  int64_t delta_s_sec = 600;
  SessionEstimatorOptions estimator;
  HsqlOptions hsql;
  RsqlOptions rsql;
  /// Worker threads for the parallel stages (session estimation, window
  /// aggregation, H-SQL scoring, clustering, verification). 1 = fully
  /// serial; any value produces bit-identical results — see DESIGN.md
  /// "Threading model" for why.
  int num_threads = 1;
  /// Optional span recorder (DESIGN.md §7). When non-null, Diagnose opens
  /// per-stage spans and the R-SQL stage records per-candidate
  /// verification spans from the pool workers. Tracing never changes the
  /// diagnosis output: results are bit-identical with or without it, at
  /// any num_threads.
  obs::TraceRecorder* trace = nullptr;
};

/// Everything PinSQL consumes for one anomaly case. The metric series
/// should cover [anomaly_start - delta_s, anomaly_end); partial coverage
/// degrades the diagnosis (recorded in DataQuality) and zero overlap with
/// the anomaly period is rejected. `logs` and `history` must be non-null
/// (pass an empty MapHistoryProvider when no history exists).
struct DiagnosisInput {
  const LogStore* logs = nullptr;
  TimeSeries active_session;
  /// Additional metrics used as clustering helper nodes (cpu_usage,
  /// iops_usage, row-lock and MDL wait counters, ...).
  std::map<std::string, TimeSeries> helper_metrics;
  int64_t anomaly_start_sec = 0;  // a_s
  int64_t anomaly_end_sec = 0;    // a_e
  const HistoryProvider* history = nullptr;
};

/// Data-quality accounting for one diagnosis run: which telemetry faults
/// the inputs carried and which stages ran degraded (DESIGN.md §5). A
/// pristine run has confidence 1.0 and no notes.
struct DataQuality {
  /// Active-session points inside the diagnosis window, and how many of
  /// them were telemetry gaps (non-finite).
  size_t session_points = 0;
  size_t session_gap_points = 0;
  /// Same accounting summed over the accepted helper-metric series.
  size_t helper_points = 0;
  size_t helper_gap_points = 0;
  /// Helper series dropped because their shape was unusable (wrong
  /// interval, no overlap with the window).
  size_t helpers_dropped = 0;
  /// Finite-but-impossible metric values (negative counts, overflow
  /// artefacts) converted to gaps before analysis. Disjoint from the gap
  /// counters above, which count only genuinely-missing (non-finite as
  /// collected) points — so every bad point appears in exactly one
  /// counter, and the confidence penalty charges it exactly once.
  size_t metric_points_sanitized = 0;
  /// Query-log records that aggregated into the diagnosis window.
  size_t log_records = 0;
  /// The lookback [a_s - delta_s, ...) was not fully covered by metrics.
  bool lookback_truncated = false;
  /// The metrics end before the anomaly does.
  bool anomaly_tail_truncated = false;
  /// History verification accounting: (candidate, lookback-day) pairs
  /// consulted, windows the provider had no series for, and windows too
  /// short to cover the relative anomaly period. Verification proceeds on
  /// whichever windows survive.
  size_t history_windows_checked = 0;
  size_t history_windows_missing = 0;
  size_t history_windows_truncated = 0;
  /// Human-readable degradation notes, one per absorbed fault class.
  std::vector<std::string> notes;
  /// 1.0 for pristine inputs; multiplied down per degradation class. A
  /// consumer should treat a low-confidence ranking as a hint, not a
  /// verdict.
  double confidence = 1.0;

  bool degraded() const { return !notes.empty(); }
};

/// Full diagnosis output, including per-stage wall-clock timings (the
/// paper reports them in Sec. VIII-B).
struct DiagnosisResult {
  int64_t ts_sec = 0;  // diagnosis window start (a_s - delta_s)
  int64_t te_sec = 0;  // diagnosis window end (a_e)
  std::vector<HsqlScore> hsql_ranking;
  RsqlResult rsql;
  SessionEstimate estimate;
  TemplateMetricsStore metrics;
  DataQuality data_quality;

  double estimate_seconds = 0.0;
  double hsql_seconds = 0.0;
  double cluster_seconds = 0.0;
  double verify_seconds = 0.0;
  double total_seconds = 0.0;

  /// Per-stage wall times and counters, always populated (even under
  /// PINSQL_DISABLE_OBS): the stage names are session_estimation,
  /// window_aggregation, hsql_scoring, rsql_clustering and
  /// rsql_verification. Rendered as the `trace` block of the report JSON.
  obs::PipelineTrace trace;

  /// Top-k sql_ids of each ranking (convenience).
  std::vector<uint64_t> TopHsql(size_t k) const;
  std::vector<uint64_t> TopRsql(size_t k) const;
};

/// Runs the full PinSQL root-cause analysis for one anomaly case: estimate
/// individual active sessions -> rank H-SQLs -> cluster/filter/verify ->
/// rank R-SQLs.
///
/// Malformed inputs (null logs/history, inverted or empty anomaly bounds,
/// metrics that miss the anomaly period entirely) return InvalidArgument
/// instead of undefined behaviour. Damaged-but-usable inputs (metric gaps,
/// truncated windows, missing history) are absorbed and accounted for in
/// DiagnosisResult::data_quality.
StatusOr<DiagnosisResult> Diagnose(const DiagnosisInput& input,
                                   const DiagnoserOptions& options);

}  // namespace pinsql::core

#endif  // PINSQL_CORE_DIAGNOSER_H_
