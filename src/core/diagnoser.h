#ifndef PINSQL_CORE_DIAGNOSER_H_
#define PINSQL_CORE_DIAGNOSER_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/hsql.h"
#include "core/rsql.h"
#include "core/session_estimator.h"
#include "logstore/log_store.h"
#include "pipeline/template_metrics.h"
#include "ts/time_series.h"

namespace pinsql::core {

/// End-to-end PinSQL configuration: one flag per ablatable component.
struct DiagnoserOptions {
  /// delta_s: lookback before the detected anomaly start (paper: 30 min;
  /// scaled workloads use shorter windows).
  int64_t delta_s_sec = 600;
  SessionEstimatorOptions estimator;
  HsqlOptions hsql;
  RsqlOptions rsql;
  /// Worker threads for the parallel stages (session estimation, window
  /// aggregation, H-SQL scoring, clustering, verification). 1 = fully
  /// serial; any value produces bit-identical results — see DESIGN.md
  /// "Threading model" for why.
  int num_threads = 1;
};

/// Everything PinSQL consumes for one anomaly case. The metric series must
/// cover at least [anomaly_start - delta_s, anomaly_end).
struct DiagnosisInput {
  const LogStore* logs = nullptr;
  TimeSeries active_session;
  /// Additional metrics used as clustering helper nodes (cpu_usage,
  /// iops_usage, row-lock and MDL wait counters, ...).
  std::map<std::string, TimeSeries> helper_metrics;
  int64_t anomaly_start_sec = 0;  // a_s
  int64_t anomaly_end_sec = 0;    // a_e
  const HistoryProvider* history = nullptr;
};

/// Full diagnosis output, including per-stage wall-clock timings (the
/// paper reports them in Sec. VIII-B).
struct DiagnosisResult {
  int64_t ts_sec = 0;  // diagnosis window start (a_s - delta_s)
  int64_t te_sec = 0;  // diagnosis window end (a_e)
  std::vector<HsqlScore> hsql_ranking;
  RsqlResult rsql;
  SessionEstimate estimate;
  TemplateMetricsStore metrics;

  double estimate_seconds = 0.0;
  double hsql_seconds = 0.0;
  double cluster_seconds = 0.0;
  double verify_seconds = 0.0;
  double total_seconds = 0.0;

  /// Top-k sql_ids of each ranking (convenience).
  std::vector<uint64_t> TopHsql(size_t k) const;
  std::vector<uint64_t> TopRsql(size_t k) const;
};

/// Runs the full PinSQL root-cause analysis for one anomaly case: estimate
/// individual active sessions -> rank H-SQLs -> cluster/filter/verify ->
/// rank R-SQLs.
DiagnosisResult Diagnose(const DiagnosisInput& input,
                         const DiagnoserOptions& options);

}  // namespace pinsql::core

#endif  // PINSQL_CORE_DIAGNOSER_H_
