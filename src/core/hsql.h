#ifndef PINSQL_CORE_HSQL_H_
#define PINSQL_CORE_HSQL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ts/time_series.h"
#include "util/thread_pool.h"

namespace pinsql::core {

/// Tuning and ablation flags for the High-impact SQL Identification Module
/// (paper Sec. V and Fig. 6b).
struct HsqlOptions {
  /// k_s: sigmoid smooth factor highlighting the anomaly period.
  double smooth_factor_ks = 30.0;
  /// Component toggles (ablations "w/o <X>-level Score").
  bool use_trend = true;
  bool use_scale = true;
  bool use_scale_trend = true;
  /// Data-dependent fusion weights alpha/beta (false = constant 1,
  /// ablation "w/o Weighted Final Score").
  bool use_weighted_final = true;
  /// Sigmoid anomaly-window weighting of the trend score (false = plain
  /// Pearson over the whole window).
  bool use_sigmoid_weights = true;
};

/// Impact of one template on the instance active session.
struct HsqlScore {
  uint64_t sql_id = 0;
  double impact = 0.0;
  double trend = 0.0;
  double scale = 0.0;
  double scale_trend = 0.0;
};

/// Fuses the trend-level, scale-level and scale-trend-level scores into
/// impact(Q) = beta * trend(Q) + scale_trend(Q) + alpha * scale(Q),
/// with alpha = corr(session_{Qmax}, session), Qmax the largest template by
/// scale, and beta = -alpha (paper Sec. V). Returns templates sorted by
/// impact, descending: the H-SQL ranking.
///
/// `template_sessions` are the estimated individual active sessions over
/// [ts, te); `instance_session` is the monitor's active_session over the
/// same window; [anomaly_start, anomaly_end) is the detected period.
///
/// A non-null `pool` computes the per-template scores concurrently (each
/// template's scores are independent); the fusion and sort stay serial,
/// so the ranking is bit-identical to the single-threaded run.
std::vector<HsqlScore> RankHighImpactSqls(
    const std::unordered_map<uint64_t, TimeSeries>& template_sessions,
    const TimeSeries& instance_session, int64_t anomaly_start,
    int64_t anomaly_end, const HsqlOptions& options,
    util::ThreadPool* pool = nullptr);

}  // namespace pinsql::core

#endif  // PINSQL_CORE_HSQL_H_
