#include "core/rsql.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <numeric>
#include <unordered_set>

#include "ts/stats.h"
#include "ts/tukey.h"
#include "util/strings.h"

namespace pinsql::core {

void MapHistoryProvider::Put(uint64_t sql_id, int days_ago,
                             TimeSeries series) {
  data_[{sql_id, days_ago}] = std::move(series);
}

const TimeSeries* MapHistoryProvider::ExecutionHistory(uint64_t sql_id,
                                                       int days_ago) const {
  auto it = data_.find({sql_id, days_ago});
  return it == data_.end() ? nullptr : &it->second;
}

void MapHistoryProvider::ForEach(
    const std::function<void(uint64_t, int, const TimeSeries&)>& fn) const {
  for (const auto& [key, series] : data_) {
    fn(key.first, key.second, series);
  }
}

bool MapHistoryProvider::Erase(uint64_t sql_id, int days_ago) {
  return data_.erase({sql_id, days_ago}) > 0;
}

namespace {

/// Union-find over node indices.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// Rule (i): an upward outlier of the current window's #execution falls
/// inside the anomaly period, with a materiality guard so ordinary traffic
/// waves of stable templates do not pass.
bool AnomalyInCurrentWindow(const TimeSeries& exec, int64_t anomaly_start,
                            int64_t anomaly_end, double tukey_k,
                            double min_ratio) {
  const int64_t step = exec.interval_sec();
  const size_t rel_begin = static_cast<size_t>(
      std::max<int64_t>(0, (anomaly_start - exec.start_time()) / step));
  const size_t rel_end = static_cast<size_t>(std::max<int64_t>(
      0, (anomaly_end - exec.start_time() + step - 1) / step));
  return UpwardAnomalyInPeriod(exec.values(), rel_begin, rel_end, tukey_k,
                               min_ratio);
}

}  // namespace

RsqlResult IdentifyRootCauseSqls(
    const TemplateMetricsStore& metrics,
    const std::unordered_map<uint64_t, TimeSeries>& template_sessions,
    const TimeSeries& instance_session,
    const std::map<std::string, const TimeSeries*>& helper_metrics,
    const std::vector<HsqlScore>& hsql_scores,
    const HistoryProvider* history, int64_t anomaly_start,
    int64_t anomaly_end, const RsqlOptions& options,
    util::ThreadPool* pool, obs::TraceRecorder* trace) {
  RsqlResult result;
  const std::vector<const TemplateSeries*> templates = metrics.AllSorted();
  if (templates.empty()) return result;
  const auto t_cluster = std::chrono::steady_clock::now();
  const double cluster_span_start_us =
      trace != nullptr ? trace->ElapsedUs() : 0.0;

  // ---- SQL template clustering on #execution trends --------------------
  // Node layout: [0, T) templates, [T, T + M) metric helper nodes.
  const size_t num_templates = templates.size();
  std::vector<const TimeSeries*> node_sources;
  node_sources.reserve(num_templates + helper_metrics.size());
  for (const TemplateSeries* tpl : templates) {
    node_sources.push_back(&tpl->execution_count);
  }
  if (options.use_metric_helper_nodes) {
    for (const auto& [name, series] : helper_metrics) {
      if (series == nullptr) continue;
      node_sources.push_back(series);
    }
  }
  const size_t num_nodes = node_sources.size();
  std::vector<std::vector<double>> node_series(num_nodes);
  util::ParallelFor(pool, num_nodes, [&](size_t i) {
    // Template nodes resample by sum (#execution), helpers by mean.
    node_series[i] =
        node_sources[i]
            ->Resample(options.cluster_interval_sec,
                       i < num_templates ? TimeSeries::Agg::kSum
                                         : TimeSeries::Agg::kMean)
            .values();
  });

  // Minimum-overlap guard for gap-aware correlations: at least half the
  // window must survive as valid pairs, else the score is the neutral 0.
  // Gap-free inputs always satisfy it, so clean runs are unaffected.
  const size_t min_cluster_pairs =
      std::max<size_t>(2, node_series.empty() ? 0 : node_series[0].size() / 2);

  // The O(nodes²) correlation pass is the diagnosis's dominant cost on
  // template-heavy instances. Edges are *found* in parallel (row i owns
  // pairs (i, j>i)) and *applied* serially in (i, j) order — connected
  // components, and therefore clusters, match the serial run exactly.
  DisjointSets sets(num_nodes);
  std::vector<std::vector<uint32_t>> edges(num_nodes);
  util::ParallelFor(pool, num_nodes, [&](size_t i) {
    for (size_t j = i + 1; j < num_nodes; ++j) {
      if (PearsonCorrelation(node_series[i], node_series[j],
                             min_cluster_pairs) > options.cluster_tau) {
        edges[i].push_back(static_cast<uint32_t>(j));
      }
    }
  });
  for (size_t i = 0; i < num_nodes; ++i) {
    for (const uint32_t j : edges[i]) sets.Union(i, j);
  }

  // Components -> clusters, keeping template members only (helper nodes
  // are temporary, paper Sec. VI).
  std::unordered_map<size_t, std::vector<uint64_t>> components;
  for (size_t i = 0; i < num_templates; ++i) {
    components[sets.Find(i)].push_back(templates[i]->sql_id);
  }
  for (auto& [root, members] : components) {
    result.clusters.push_back(std::move(members));
  }
  // Deterministic order: by smallest member id.
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
              return a.front() < b.front();
            });

  // ---- Rank clusters for filtering --------------------------------------
  // impact(c) = max_{Q in c} impact(Q); the ablated variant ranks by total
  // response time over the anomaly period instead (Top-RT).
  std::unordered_map<uint64_t, double> impact_by_id;
  if (options.use_hsql_cluster_ranking) {
    for (const HsqlScore& s : hsql_scores) impact_by_id[s.sql_id] = s.impact;
  } else {
    for (const TemplateSeries* tpl : templates) {
      const TimeSeries rt =
          tpl->total_response_ms.Slice(anomaly_start, anomaly_end);
      impact_by_id[tpl->sql_id] = rt.Sum();
    }
  }
  std::vector<double> cluster_impact(result.clusters.size(), 0.0);
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    double best = -1e300;
    for (uint64_t id : result.clusters[c]) {
      auto it = impact_by_id.find(id);
      if (it != impact_by_id.end()) best = std::max(best, it->second);
    }
    cluster_impact[c] = best;
  }
  std::vector<size_t> order(result.clusters.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return cluster_impact[a] > cluster_impact[b];
  });

  // ---- Cumulative threshold ---------------------------------------------
  if (options.use_cumulative_threshold) {
    TimeSeries cumulative(instance_session.start_time(),
                          instance_session.interval_sec(),
                          instance_session.size());
    const int kc = std::max(1, options.max_clusters_kc);
    for (size_t i = 0;
         i < order.size() && static_cast<int>(i) < kc; ++i) {
      result.selected_clusters.push_back(order[i]);
      for (uint64_t id : result.clusters[order[i]]) {
        auto it = template_sessions.find(id);
        if (it != template_sessions.end()) {
          cumulative.AddInPlace(it->second);
        }
      }
      if (PearsonCorrelation(cumulative, instance_session) >=
          options.cumulative_tau_c) {
        break;
      }
    }
  } else if (!order.empty()) {
    result.selected_clusters.push_back(order[0]);
  }

  // Candidate pool: every template of every selected cluster.
  std::vector<uint64_t> candidates;
  for (size_t c : result.selected_clusters) {
    for (uint64_t id : result.clusters[c]) candidates.push_back(id);
  }
  result.cluster_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_cluster)
          .count();
  if (trace != nullptr) {
    obs::TraceEvent e;
    e.name = "rsql.clustering";
    e.start_us = cluster_span_start_us;
    e.dur_us = trace->ElapsedUs() - cluster_span_start_us;
    e.attrs.emplace_back("clusters",
                         StrFormat("%zu", result.clusters.size()));
    trace->Record(std::move(e));
  }
  const auto t_verify = std::chrono::steady_clock::now();

  // ---- History trend verification ----------------------------------------
  // Lossy-history accounting. The paper assumes all three lookback windows
  // (1/3/7 days) exist and are complete; production history retrieval is
  // best-effort, so verification falls back to whichever windows survive
  // and records how many did not. Counters are relaxed atomics: verify_one
  // runs under ParallelFor and only the totals matter (sums are
  // order-independent, so the result stays deterministic).
  std::atomic<size_t> hist_checked{0};
  std::atomic<size_t> hist_missing{0};
  std::atomic<size_t> hist_truncated{0};
  auto verify_one = [&](uint64_t id) -> bool {
    const TemplateSeries* tpl = metrics.Find(id);
    if (tpl == nullptr) return false;
    const TimeSeries exec = tpl->execution_count.Resample(
        options.verify_interval_sec, TimeSeries::Agg::kSum);
    // Rule (i): the execution trend is anomalous *now*, inside the anomaly
    // period.
    if (!AnomalyInCurrentWindow(exec, anomaly_start, anomaly_end,
                                options.tukey_k,
                                options.verify_min_ratio)) {
      return false;
    }
    // Rule (ii): it was not anomalous in any history window's relative
    // anomaly period.
    const size_t rel_begin = static_cast<size_t>(
        std::max<int64_t>(0, (anomaly_start - exec.start_time()) /
                                 options.verify_interval_sec));
    const size_t rel_end = static_cast<size_t>(std::max<int64_t>(
        0, (anomaly_end - exec.start_time() + options.verify_interval_sec -
            1) /
               options.verify_interval_sec));
    if (history != nullptr) {
      for (int days : options.history_days) {
        hist_checked.fetch_add(1, std::memory_order_relaxed);
        const TimeSeries* h = history->ExecutionHistory(id, days);
        if (h == nullptr) {
          // New template or dropped window: vacuously clean.
          hist_missing.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Rule (ii) is deliberately more conservative (larger k) than rule
        // (i): ordinary traffic waves in an anomaly-free history window
        // must not masquerade as "this template was already anomalous".
        const TimeSeries h_resampled =
            h->Resample(options.verify_interval_sec, TimeSeries::Agg::kSum);
        if (h_resampled.size() <= rel_begin) {
          // Truncated window: it ends before the relative anomaly period
          // even starts, so it carries no evidence either way. Skip it
          // instead of treating absence of data as absence of anomaly.
          hist_truncated.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (UpwardAnomalyInPeriod(h_resampled.values(), rel_begin, rel_end,
                                  options.history_tukey_k)) {
          return false;
        }
      }
    }
    return true;
  };

  // Final-ranking score (paper Sec. VI): corr(#execution, session),
  // compared at a coarser granularity to suppress per-second Poisson noise.
  const TimeSeries session_coarse = instance_session.Resample(
      options.rank_interval_sec, TimeSeries::Agg::kMean);
  const size_t min_rank_pairs =
      std::max<size_t>(2, session_coarse.size() / 2);
  auto rank_score = [&](uint64_t id) {
    const TemplateSeries* tpl = metrics.Find(id);
    if (tpl == nullptr) return -2.0;
    return PearsonCorrelation(
        tpl->execution_count
            .Resample(options.rank_interval_sec, TimeSeries::Agg::kSum)
            .values(),
        session_coarse.values(), min_rank_pairs);
  };

  // Verifies `ids` concurrently (each verification touches only its own
  // template's series) and appends the survivors to `out` in input order.
  auto verify_many = [&](const std::vector<uint64_t>& ids,
                         std::vector<uint64_t>* out) {
    std::vector<char> passed(ids.size(), 0);
    util::ParallelFor(pool, ids.size(), [&](size_t i) {
      // Per-candidate span from whichever pool worker runs the iteration:
      // lands in that thread's buffer (TraceRecorder is lock-free here).
      obs::Span span(trace, "rsql.verify_candidate");
      span.AddAttr("sql_id", HashToHex(ids[i]));
      passed[i] = verify_one(ids[i]) ? 1 : 0;
    });
    for (size_t i = 0; i < ids.size(); ++i) {
      if (passed[i] != 0) out->push_back(ids[i]);
    }
  };
  auto rank_scores = [&](const std::vector<uint64_t>& ids) {
    std::vector<double> scores(ids.size(), -2.0);
    util::ParallelFor(pool, ids.size(), [&](size_t i) {
      scores[i] = rank_score(ids[i]);
    });
    return scores;
  };

  std::vector<uint64_t> verified;
  if (options.use_history_verification) {
    verify_many(candidates, &verified);
    double best_corr = -2.0;
    for (const double corr : rank_scores(verified)) {
      best_corr = std::max(best_corr, corr);
    }
    if (verified.empty() || best_corr < options.widen_corr_threshold) {
      // Either every candidate in the selected clusters has a stable
      // execution trend (they are affected SQLs, not root causes), or the
      // survivors barely track the session. Widen the search to all
      // templates — the root cause may sit in an unselected cluster (e.g.
      // a single DDL whose tiny session kept its cluster's impact low).
      // This extension beyond the paper's description is documented in
      // DESIGN.md.
      result.verification_fallback = true;
      std::unordered_set<uint64_t> seen(verified.begin(), verified.end());
      std::vector<uint64_t> widened;
      widened.reserve(templates.size());
      for (const TemplateSeries* tpl : templates) {
        if (seen.count(tpl->sql_id) == 0) widened.push_back(tpl->sql_id);
      }
      verify_many(widened, &verified);
    }
    result.verified = verified;
    if (verified.empty()) {
      // Nothing anywhere passes verification: fall back to the unverified
      // candidate pool so a ranking always exists.
      verified = candidates;
    }
  } else {
    verified = candidates;
    result.verified = verified;
  }
  result.history_windows_checked = hist_checked.load();
  result.history_windows_missing = hist_missing.load();
  result.history_windows_truncated = hist_truncated.load();

  // ---- Final ranking: corr(#execution, active session) -------------------
  const std::vector<double> final_scores = rank_scores(verified);
  std::vector<std::pair<double, uint64_t>> ranked;
  ranked.reserve(verified.size());
  for (size_t i = 0; i < verified.size(); ++i) {
    ranked.emplace_back(final_scores[i], verified[i]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<double, uint64_t>& a,
               const std::pair<double, uint64_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  result.ranking.reserve(ranked.size());
  for (const auto& [corr, id] : ranked) result.ranking.push_back(id);
  result.verify_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_verify)
          .count();
  return result;
}

}  // namespace pinsql::core
