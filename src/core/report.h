#ifndef PINSQL_CORE_REPORT_H_
#define PINSQL_CORE_REPORT_H_

#include <string>
#include <vector>

#include "anomaly/phenomenon.h"
#include "core/diagnoser.h"
#include "logstore/log_store.h"
#include "repair/events.h"
#include "repair/rule_engine.h"
#include "util/json.h"

namespace pinsql::core {

/// Assembled diagnosis report: what a DAS-style console (or a paging
/// notification) renders for one anomaly case. Carries the rankings with
/// resolved template texts, the triggering phenomena and any repair
/// suggestions.
struct DiagnosisReport {
  struct RankedTemplate {
    uint64_t sql_id = 0;
    std::string sql_id_hex;
    std::string template_text;
    double score = 0.0;
  };

  int64_t anomaly_start_sec = 0;
  int64_t anomaly_end_sec = 0;
  std::vector<std::string> phenomena;  // "rule [start, end) severity"
  std::vector<RankedTemplate> hsqls;
  std::vector<RankedTemplate> rsqls;
  std::vector<std::string> suggestions;
  double diagnosis_seconds = 0.0;
  bool verification_fallback = false;
  /// Telemetry health of the inputs this diagnosis consumed: faults seen,
  /// stages degraded, and the resulting confidence caveat.
  DataQuality data_quality;
  /// Supervised-repair audit trail for this case (attempts, outcomes,
  /// retries, rollbacks, breaker transitions). Populated by the caller
  /// from RepairSupervisor::events() when actions were executed.
  std::vector<repair::RepairEvent> repair_events;
  /// Per-stage wall times and counters of the diagnosis that produced this
  /// report (DESIGN.md §7). Always present, even under PINSQL_DISABLE_OBS.
  obs::PipelineTrace trace;

  /// Machine-readable rendering (stable key order).
  Json ToJson() const;
  /// Parses the ToJson form back into a report. Strings (template texts,
  /// phenomena, notes, event details) round-trip byte-exactly, including
  /// quotes, backslashes and control characters. InvalidArgument on
  /// malformed input.
  static StatusOr<DiagnosisReport> FromJson(const Json& json);
  /// Terminal-friendly multi-line rendering.
  std::string ToText() const;
};

/// Builds the report from a finished diagnosis. `catalog` resolves SQL ids
/// to template texts (unknown ids render as "<unknown>"); `top_k` bounds
/// both rankings.
DiagnosisReport BuildReport(
    const DiagnosisResult& result, const LogStore& catalog,
    const std::vector<anomaly::Phenomenon>& phenomena,
    int64_t anomaly_start_sec, int64_t anomaly_end_sec,
    const std::vector<repair::Suggestion>& suggestions, size_t top_k = 5);

}  // namespace pinsql::core

#endif  // PINSQL_CORE_REPORT_H_
