#include "core/report.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "ts/stats.h"
#include "util/strings.h"

namespace pinsql::core {

namespace {

DiagnosisReport::RankedTemplate Resolve(const LogStore& catalog,
                                        uint64_t sql_id, double score) {
  DiagnosisReport::RankedTemplate out;
  out.sql_id = sql_id;
  out.sql_id_hex = HashToHex(sql_id);
  const TemplateCatalogEntry* entry = catalog.FindTemplate(sql_id);
  out.template_text = entry != nullptr ? entry->template_text : "<unknown>";
  out.score = score;
  return out;
}

Json RankedToJson(const DiagnosisReport::RankedTemplate& t) {
  Json obj = Json::MakeObject();
  obj.Set("sql_id", t.sql_id_hex);
  obj.Set("template", t.template_text);
  obj.Set("score", t.score);
  return obj;
}

}  // namespace

DiagnosisReport BuildReport(
    const DiagnosisResult& result, const LogStore& catalog,
    const std::vector<anomaly::Phenomenon>& phenomena,
    int64_t anomaly_start_sec, int64_t anomaly_end_sec,
    const std::vector<repair::Suggestion>& suggestions, size_t top_k) {
  DiagnosisReport report;
  report.anomaly_start_sec = anomaly_start_sec;
  report.anomaly_end_sec = anomaly_end_sec;
  report.diagnosis_seconds = result.total_seconds;
  report.verification_fallback = result.rsql.verification_fallback;
  report.data_quality = result.data_quality;
  report.trace = result.trace;

  for (const anomaly::Phenomenon& p : phenomena) {
    report.phenomena.push_back(
        StrFormat("%s [%lld, %lld) severity %.1f", p.rule.c_str(),
                  static_cast<long long>(p.start_sec),
                  static_cast<long long>(p.end_sec), p.severity));
  }
  for (size_t i = 0; i < std::min(top_k, result.hsql_ranking.size()); ++i) {
    report.hsqls.push_back(Resolve(catalog, result.hsql_ranking[i].sql_id,
                                   result.hsql_ranking[i].impact));
  }
  for (size_t i = 0; i < std::min(top_k, result.rsql.ranking.size()); ++i) {
    report.rsqls.push_back(
        Resolve(catalog, result.rsql.ranking[i],
                static_cast<double>(result.rsql.ranking.size() - i)));
  }
  for (const repair::Suggestion& s : suggestions) {
    report.suggestions.push_back(
        StrFormat("[%s] %s", s.matched_rule.c_str(),
                  s.action.ToString().c_str()));
  }
  return report;
}

Json DiagnosisReport::ToJson() const {
  Json obj = Json::MakeObject();
  obj.Set("anomaly_start", anomaly_start_sec);
  obj.Set("anomaly_end", anomaly_end_sec);
  obj.Set("diagnosis_seconds", diagnosis_seconds);
  obj.Set("verification_fallback", verification_fallback);
  Json phen = Json::MakeArray();
  for (const std::string& p : phenomena) phen.Append(p);
  obj.Set("phenomena", std::move(phen));
  Json h = Json::MakeArray();
  for (const RankedTemplate& t : hsqls) h.Append(RankedToJson(t));
  obj.Set("hsqls", std::move(h));
  Json r = Json::MakeArray();
  for (const RankedTemplate& t : rsqls) r.Append(RankedToJson(t));
  obj.Set("rsqls", std::move(r));
  Json s = Json::MakeArray();
  for (const std::string& line : suggestions) s.Append(line);
  obj.Set("suggestions", std::move(s));
  Json quality = Json::MakeObject();
  quality.Set("confidence", data_quality.confidence);
  quality.Set("degraded", data_quality.degraded());
  quality.Set("session_points",
              static_cast<int64_t>(data_quality.session_points));
  quality.Set("session_gap_points",
              static_cast<int64_t>(data_quality.session_gap_points));
  quality.Set("helper_gap_points",
              static_cast<int64_t>(data_quality.helper_gap_points));
  quality.Set("helpers_dropped",
              static_cast<int64_t>(data_quality.helpers_dropped));
  quality.Set("metric_points_sanitized",
              static_cast<int64_t>(data_quality.metric_points_sanitized));
  quality.Set("log_records",
              static_cast<int64_t>(data_quality.log_records));
  quality.Set("lookback_truncated", data_quality.lookback_truncated);
  quality.Set("anomaly_tail_truncated",
              data_quality.anomaly_tail_truncated);
  quality.Set("history_windows_checked",
              static_cast<int64_t>(data_quality.history_windows_checked));
  quality.Set("history_windows_missing",
              static_cast<int64_t>(data_quality.history_windows_missing));
  quality.Set("history_windows_truncated",
              static_cast<int64_t>(data_quality.history_windows_truncated));
  Json notes = Json::MakeArray();
  for (const std::string& note : data_quality.notes) notes.Append(note);
  quality.Set("notes", std::move(notes));
  obj.Set("data_quality", std::move(quality));
  Json events = Json::MakeArray();
  for (const repair::RepairEvent& e : repair_events) {
    events.Append(e.ToJson());
  }
  obj.Set("repair_events", std::move(events));
  obj.Set("trace", trace.ToJson());
  return obj;
}

StatusOr<DiagnosisReport> DiagnosisReport::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("report: not a JSON object");
  }
  DiagnosisReport report;
  report.anomaly_start_sec =
      static_cast<int64_t>(json.GetNumberOr("anomaly_start", 0.0));
  report.anomaly_end_sec =
      static_cast<int64_t>(json.GetNumberOr("anomaly_end", 0.0));
  report.diagnosis_seconds = json.GetNumberOr("diagnosis_seconds", 0.0);
  report.verification_fallback =
      json.GetBoolOr("verification_fallback", false);

  auto parse_strings = [&json](std::string_view key,
                               std::vector<std::string>* out) -> Status {
    const Json* arr = json.Find(key);
    if (arr == nullptr) return Status::OK();
    if (!arr->is_array()) {
      return Status::InvalidArgument("report: '" + std::string(key) +
                                     "' is not an array");
    }
    for (const Json& item : arr->AsArray()) {
      if (!item.is_string()) {
        return Status::InvalidArgument("report: '" + std::string(key) +
                                       "' entry is not a string");
      }
      out->push_back(item.AsString());
    }
    return Status::OK();
  };
  auto parse_ranked = [&json](std::string_view key,
                              std::vector<RankedTemplate>* out) -> Status {
    const Json* arr = json.Find(key);
    if (arr == nullptr) return Status::OK();
    if (!arr->is_array()) {
      return Status::InvalidArgument("report: '" + std::string(key) +
                                     "' is not an array");
    }
    for (const Json& item : arr->AsArray()) {
      if (!item.is_object()) {
        return Status::InvalidArgument("report: '" + std::string(key) +
                                       "' entry is not an object");
      }
      RankedTemplate t;
      t.sql_id_hex = item.GetStringOr("sql_id", "");
      if (!HexToHash(t.sql_id_hex, &t.sql_id)) {
        return Status::InvalidArgument("report: '" + std::string(key) +
                                       "' entry has a bad sql_id");
      }
      t.template_text = item.GetStringOr("template", "");
      t.score = item.GetNumberOr("score", 0.0);
      out->push_back(std::move(t));
    }
    return Status::OK();
  };

  Status status = parse_strings("phenomena", &report.phenomena);
  if (!status.ok()) return status;
  status = parse_ranked("hsqls", &report.hsqls);
  if (!status.ok()) return status;
  status = parse_ranked("rsqls", &report.rsqls);
  if (!status.ok()) return status;
  status = parse_strings("suggestions", &report.suggestions);
  if (!status.ok()) return status;

  if (const Json* quality = json.Find("data_quality");
      quality != nullptr) {
    if (!quality->is_object()) {
      return Status::InvalidArgument("report: 'data_quality' is not an "
                                     "object");
    }
    DataQuality& dq = report.data_quality;
    dq.confidence = quality->GetNumberOr("confidence", 1.0);
    auto count = [quality](std::string_view key) {
      return static_cast<size_t>(quality->GetNumberOr(key, 0.0));
    };
    dq.session_points = count("session_points");
    dq.session_gap_points = count("session_gap_points");
    dq.helper_gap_points = count("helper_gap_points");
    dq.helpers_dropped = count("helpers_dropped");
    dq.metric_points_sanitized = count("metric_points_sanitized");
    dq.log_records = count("log_records");
    dq.lookback_truncated = quality->GetBoolOr("lookback_truncated", false);
    dq.anomaly_tail_truncated =
        quality->GetBoolOr("anomaly_tail_truncated", false);
    dq.history_windows_checked = count("history_windows_checked");
    dq.history_windows_missing = count("history_windows_missing");
    dq.history_windows_truncated = count("history_windows_truncated");
    if (const Json* notes = quality->Find("notes"); notes != nullptr) {
      if (!notes->is_array()) {
        return Status::InvalidArgument("report: 'data_quality.notes' is "
                                       "not an array");
      }
      for (const Json& note : notes->AsArray()) {
        if (!note.is_string()) {
          return Status::InvalidArgument("report: data-quality note is "
                                         "not a string");
        }
        dq.notes.push_back(note.AsString());
      }
    }
  }

  if (const Json* events = json.Find("repair_events"); events != nullptr) {
    if (!events->is_array()) {
      return Status::InvalidArgument("report: 'repair_events' is not an "
                                     "array");
    }
    for (const Json& event : events->AsArray()) {
      StatusOr<repair::RepairEvent> parsed =
          repair::RepairEvent::FromJson(event);
      if (!parsed.ok()) return parsed.status();
      report.repair_events.push_back(std::move(parsed).value());
    }
  }

  if (const Json* trace = json.Find("trace"); trace != nullptr) {
    StatusOr<obs::PipelineTrace> parsed = obs::PipelineTrace::FromJson(*trace);
    if (!parsed.ok()) return parsed.status();
    report.trace = std::move(parsed).value();
  }
  return report;
}

std::string DiagnosisReport::ToText() const {
  std::string out = StrFormat(
      "PinSQL diagnosis for anomaly [%lld, %lld) (%.2fs)\n",
      static_cast<long long>(anomaly_start_sec),
      static_cast<long long>(anomaly_end_sec), diagnosis_seconds);
  out += "phenomena:\n";
  for (const std::string& p : phenomena) out += "  - " + p + "\n";
  out += "high-impact SQLs:\n";
  for (size_t i = 0; i < hsqls.size(); ++i) {
    out += StrFormat("  %zu. [%s] impact=%+.2f %s\n", i + 1,
                     hsqls[i].sql_id_hex.c_str(), hsqls[i].score,
                     hsqls[i].template_text.c_str());
  }
  out += "root-cause SQLs:\n";
  for (size_t i = 0; i < rsqls.size(); ++i) {
    out += StrFormat("  %zu. [%s] %s\n", i + 1,
                     rsqls[i].sql_id_hex.c_str(),
                     rsqls[i].template_text.c_str());
  }
  if (verification_fallback) {
    out += "  (note: history verification widened beyond the selected "
           "clusters)\n";
  }
  out += "suggested actions:\n";
  if (suggestions.empty()) out += "  (none)\n";
  for (const std::string& s : suggestions) out += "  - " + s + "\n";
  if (!repair_events.empty()) {
    out += "repair audit trail:\n";
    for (const repair::RepairEvent& e : repair_events) {
      out += "  * " + e.ToString() + "\n";
    }
  }
  if (!trace.stages.empty()) {
    out += "stage timings:\n";
    for (const obs::StageTrace& s : trace.stages) {
      out += StrFormat("  %-20s %9.4fs\n", s.name.c_str(), s.seconds);
    }
  }
  if (data_quality.degraded()) {
    out += StrFormat("data quality: DEGRADED (confidence %.2f)\n",
                     data_quality.confidence);
    for (const std::string& note : data_quality.notes) {
      out += "  ! " + note + "\n";
    }
  } else {
    out += "data quality: clean\n";
  }
  return out;
}

}  // namespace pinsql::core
