#include "core/session_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace pinsql::core {

namespace {

/// Overlap of [lo1, hi1) and [lo2, hi2) in ms.
double Overlap(double lo1, double hi1, double lo2, double hi2) {
  const double lo = std::max(lo1, lo2);
  const double hi = std::min(hi1, hi2);
  return std::max(0.0, hi - lo);
}

/// The seconds [first_sec, last_sec] a query overlaps inside the window;
/// last_sec < first_sec when the query never intersects it.
struct RecordSpan {
  int64_t first_sec = 0;
  int64_t last_sec = -1;
};

RecordSpan SpanOf(const QueryLogRecord& q, int64_t ts_sec, int64_t te_sec) {
  const double q_lo = static_cast<double>(q.arrival_ms);
  const double q_hi = q_lo + std::max(q.response_ms, 0.0);
  RecordSpan span;
  span.first_sec = std::max(ts_sec, q.arrival_ms / 1000);
  span.last_sec = std::min(
      te_sec - 1, static_cast<int64_t>(std::floor((q_hi - 1e-9) / 1000.0)));
  return span;
}

}  // namespace

SessionEstimate EstimateSessions(const std::vector<QueryLogRecord>& logs,
                                 const TimeSeries& observed_session,
                                 int64_t ts_sec, int64_t te_sec,
                                 const SessionEstimatorOptions& options,
                                 util::ThreadPool* pool) {
  assert(te_sec > ts_sec);
  const size_t n = static_cast<size_t>(te_sec - ts_sec);
  SessionEstimate out;
  out.total = TimeSeries(ts_sec, 1, n);

  if (options.mode == SessionEstimatorMode::kResponseTime) {
    // Proxy: individual session ~ total response time per second / 1000.
    // Cheap single pass; not worth sharding.
    for (const QueryLogRecord& q : logs) {
      const int64_t sec = q.arrival_ms / 1000;
      if (sec < ts_sec || sec >= te_sec) continue;
      auto [it, inserted] = out.per_template.try_emplace(q.sql_id);
      if (inserted) it->second = TimeSeries(ts_sec, 1, n);
      it->second.AtTime(sec) += q.response_ms / 1000.0;
      out.total.AtTime(sec) += q.response_ms / 1000.0;
    }
    return out;
  }

  const int k = options.mode == SessionEstimatorMode::kBucketed
                    ? std::max(1, options.num_buckets)
                    : 1;
  const double bucket_ms = 1000.0 / static_cast<double>(k);

  // Index: for every second of the window, which records (by log index,
  // ascending = arrival order) overlap it. Built serially so each
  // second's contribution order matches the serial record-order loop;
  // the expensive Overlap×K math below then shards per second.
  std::vector<RecordSpan> spans(logs.size());
  // Structure-of-arrays mirror of the two fields the Overlap kernels read:
  // the per-second scans below visit records by index out of arrival
  // order, and two contiguous double columns keep those gathers off the
  // full 32-byte record.
  std::vector<double> rec_lo(logs.size());
  std::vector<double> rec_hi(logs.size());
  std::vector<std::vector<uint32_t>> records_by_sec(n);
  for (size_t r = 0; r < logs.size(); ++r) {
    spans[r] = SpanOf(logs[r], ts_sec, te_sec);
    rec_lo[r] = static_cast<double>(logs[r].arrival_ms);
    rec_hi[r] = rec_lo[r] + std::max(logs[r].response_ms, 0.0);
    for (int64_t sec = spans[r].first_sec; sec <= spans[r].last_sec; ++sec) {
      records_by_sec[static_cast<size_t>(sec - ts_sec)].push_back(
          static_cast<uint32_t>(r));
    }
  }

  // Pass 1: expected active session per (second, bucket). Each task owns
  // one second's row of `expect`, so rows never race and every cell sums
  // its records in arrival order — bit-identical to the serial fold.
  std::vector<double> expect(n * static_cast<size_t>(k), 0.0);
  util::ParallelFor(pool, n, [&](size_t i) {
    const int64_t sec = ts_sec + static_cast<int64_t>(i);
    const double sec_ms = static_cast<double>(sec) * 1000.0;
    const size_t row = i * static_cast<size_t>(k);
    for (const uint32_t r : records_by_sec[i]) {
      const double q_lo = rec_lo[r];
      const double q_hi = rec_hi[r];
      for (int b = 0; b < k; ++b) {
        const double b_lo = sec_ms + bucket_ms * b;
        const double p =
            Overlap(q_lo, q_hi, b_lo, b_lo + bucket_ms) / bucket_ms;
        if (p > 0.0) expect[row + static_cast<size_t>(b)] += p;
      }
    }
  });

  // Bucket selection: sel_t = argmin_b |observed_t - E[session_b]|.
  std::vector<int> sel(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const int64_t sec = ts_sec + static_cast<int64_t>(i);
    double observed =
        observed_session.Covers(sec) ? observed_session.AtTime(sec) : 0.0;
    if (!std::isfinite(observed)) {
      // Monitoring gap: no SHOW STATUS sample to localize the offset
      // against this second. Fall back to the expectation over the whole
      // second (the no-bucket estimator's behaviour), which selects the
      // bucket closest to the second's mean expectation.
      const size_t row_for_mean = i * static_cast<size_t>(k);
      double mean = 0.0;
      for (int b = 0; b < k; ++b) {
        mean += expect[row_for_mean + static_cast<size_t>(b)];
      }
      observed = mean / static_cast<double>(k);
    }
    const size_t row = i * static_cast<size_t>(k);
    int best = 0;
    double best_err = std::fabs(observed - expect[row]);
    for (int b = 1; b < k; ++b) {
      const double err =
          std::fabs(observed - expect[row + static_cast<size_t>(b)]);
      if (err < best_err) {
        best_err = err;
        best = b;
      }
    }
    sel[i] = best;
    out.total[i] = expect[row + static_cast<size_t>(best)];
  }

  // Group records by template, first-appearance order. The per_template
  // map entries are created in exactly the order the serial loop would
  // try_emplace them, so the map layout (and thus every downstream
  // iteration order) matches the single-threaded run.
  std::vector<std::pair<uint64_t, std::vector<uint32_t>>> tpl_records;
  std::unordered_map<uint64_t, size_t> tpl_index;
  for (size_t r = 0; r < logs.size(); ++r) {
    if (spans[r].last_sec < spans[r].first_sec) continue;
    auto [it, inserted] = tpl_index.try_emplace(logs[r].sql_id,
                                                tpl_records.size());
    if (inserted) tpl_records.emplace_back(logs[r].sql_id,
                                           std::vector<uint32_t>{});
    tpl_records[it->second].second.push_back(static_cast<uint32_t>(r));
  }
  std::vector<TimeSeries*> tpl_series(tpl_records.size());
  for (size_t t = 0; t < tpl_records.size(); ++t) {
    auto [it, inserted] = out.per_template.try_emplace(
        tpl_records[t].first, TimeSeries(ts_sec, 1, n));
    tpl_series[t] = &it->second;
  }

  // Pass 2: per-template sessions using the selected buckets. Each task
  // owns one template's series; records are visited in arrival order.
  util::ParallelFor(pool, tpl_records.size(), [&](size_t t) {
    TimeSeries& series = *tpl_series[t];
    for (const uint32_t r : tpl_records[t].second) {
      const double q_lo = rec_lo[r];
      const double q_hi = rec_hi[r];
      for (int64_t sec = spans[r].first_sec; sec <= spans[r].last_sec;
           ++sec) {
        const size_t i = static_cast<size_t>(sec - ts_sec);
        const double b_lo =
            static_cast<double>(sec) * 1000.0 + bucket_ms * sel[i];
        const double p =
            Overlap(q_lo, q_hi, b_lo, b_lo + bucket_ms) / bucket_ms;
        if (p > 0.0) series[i] += p;
      }
    }
  });
  return out;
}

SessionEstimate EstimateSessions(const LogStore& store,
                                 const TimeSeries& observed_session,
                                 int64_t ts_sec, int64_t te_sec,
                                 const SessionEstimatorOptions& options,
                                 util::ThreadPool* pool) {
  // Include queries that *arrived* before the window but were still
  // running inside it: scan from well before ts (10 min suffices for the
  // workloads simulated here; queries rarely run longer).
  const std::vector<QueryLogRecord> logs =
      store.Range((ts_sec - 600) * 1000, te_sec * 1000);
  return EstimateSessions(logs, observed_session, ts_sec, te_sec, options,
                          pool);
}

}  // namespace pinsql::core
