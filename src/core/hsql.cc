#include "core/hsql.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "ts/stats.h"

namespace pinsql::core {

std::vector<HsqlScore> RankHighImpactSqls(
    const std::unordered_map<uint64_t, TimeSeries>& template_sessions,
    const TimeSeries& instance_session, int64_t anomaly_start,
    int64_t anomaly_end, const HsqlOptions& options,
    util::ThreadPool* pool) {
  std::vector<HsqlScore> scores;
  if (template_sessions.empty()) return scores;

  const int64_t ts = instance_session.start_time();
  const int64_t te = instance_session.end_time();
  const std::vector<double>& session = instance_session.values();

  // Trend weights W_t (Eq. before (1)); all-ones when sigmoid weighting is
  // ablated.
  std::vector<double> weights;
  if (options.use_sigmoid_weights) {
    weights = SigmoidAnomalyWeights(ts, te, instance_session.interval_sec(),
                                    anomaly_start, anomaly_end,
                                    options.smooth_factor_ks);
  } else {
    weights.assign(session.size(), 1.0);
  }

  // Raw per-template scores. Each template's scores are independent, so
  // they shard across the pool; the slots are index-addressed in the
  // map's iteration order, keeping the output identical to the serial
  // loop regardless of thread interleaving.
  std::vector<std::pair<uint64_t, const TimeSeries*>> items;
  items.reserve(template_sessions.size());
  for (const auto& [sql_id, series] : template_sessions) {
    items.emplace_back(sql_id, &series);
  }
  scores.resize(items.size());
  std::vector<double> raw_scale(items.size(), 0.0);
  util::ParallelFor(pool, items.size(), [&](size_t i) {
    const TimeSeries& series = *items[i].second;
    assert(series.size() == instance_session.size());
    HsqlScore s;
    s.sql_id = items[i].first;
    s.trend =
        WeightedPearsonCorrelation(series.values(), session, weights);
    s.scale_trend =
        PearsonCorrelation(series.DivideBy(instance_session).values(),
                           session);
    // Total individual session over the anomaly period.
    double total = 0.0;
    for (int64_t t = std::max(anomaly_start, ts);
         t < std::min(anomaly_end, te); ++t) {
      total += series.AtTime(t);
    }
    raw_scale[i] = total;
    scores[i] = s;
  });

  // Scale-level: min-max normalize the anomaly-period totals to [-1, 1].
  const std::vector<double> norm = MinMaxNormalize(raw_scale);
  size_t qmax_index = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i].scale = 2.0 * norm[i] - 1.0;
    if (raw_scale[i] > raw_scale[qmax_index]) qmax_index = i;
  }

  // Fusion weights: alpha = corr(session of the largest template, instance
  // session); beta = -alpha (paper Sec. V). Constant 1 when ablated.
  double alpha = 1.0;
  double beta = 1.0;
  if (options.use_weighted_final) {
    const TimeSeries& qmax_series =
        template_sessions.at(scores[qmax_index].sql_id);
    alpha = PearsonCorrelation(qmax_series.values(), session);
    beta = -alpha;
  }

  for (HsqlScore& s : scores) {
    s.impact = (options.use_trend ? beta * s.trend : 0.0) +
               (options.use_scale_trend ? s.scale_trend : 0.0) +
               (options.use_scale ? alpha * s.scale : 0.0);
  }

  std::sort(scores.begin(), scores.end(),
            [](const HsqlScore& a, const HsqlScore& b) {
              if (a.impact != b.impact) return a.impact > b.impact;
              return a.sql_id < b.sql_id;
            });
  return scores;
}

}  // namespace pinsql::core
