/// Google-benchmark micro-benchmarks for the hot kernels of PinSQL: SQL
/// fingerprinting, Pearson correlation, session estimation, the lock
/// manager, the simulation engine, JSON parsing, and the arena-backed
/// ingest path (staging, pump/fold, arena and log-store primitives). These
/// back the efficiency discussion of Sec. VIII-B (stage times of the
/// 14.94 s average diagnosis) and the DESIGN.md §13 memory-layout numbers.
///
/// `--smoke` shortens every benchmark for CI (mapped to a small
/// --benchmark_min_time); combine with --benchmark_filter=Ingest and
/// --benchmark_out=BENCH_ingest.json --benchmark_out_format=json for the
/// machine-readable ingest sweep.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/session_estimator.h"
#include "dbsim/engine.h"
#include "dbsim/lock_manager.h"
#include "logstore/log_store.h"
#include "online/stream_ingestor.h"
#include "sqltpl/fingerprint.h"
#include "ts/stats.h"
#include "util/arena.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

void BM_Fingerprint(benchmark::State& state) {
  const char* sql =
      "SELECT a.c0, b.c1 FROM orders a JOIN customers b ON a.cid = b.id "
      "WHERE a.status = 'open' AND a.total > 100.5 AND a.region IN "
      "(1,2,3,4) ORDER BY a.created LIMIT 50";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinsql::sqltpl::Fingerprint(sql));
  }
}
BENCHMARK(BM_Fingerprint);

void BM_PearsonCorrelation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  pinsql::Rng rng(1);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform01();
    y[i] = x[i] + rng.Normal(0, 0.1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinsql::PearsonCorrelation(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PearsonCorrelation)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SessionEstimation(benchmark::State& state) {
  const int64_t n_sec = state.range(0);
  pinsql::Rng rng(2);
  std::vector<pinsql::QueryLogRecord> logs;
  for (int64_t sec = 0; sec < n_sec; ++sec) {
    for (int q = 0; q < 200; ++q) {
      pinsql::QueryLogRecord rec;
      rec.arrival_ms = sec * 1000 + rng.UniformInt(0, 999);
      rec.response_ms = rng.Uniform(1.0, 300.0);
      rec.sql_id = static_cast<uint64_t>(rng.UniformInt(1, 100));
      logs.push_back(rec);
    }
  }
  pinsql::TimeSeries observed(0, 1, static_cast<size_t>(n_sec));
  for (size_t i = 0; i < observed.size(); ++i) {
    observed[i] = rng.Uniform(0.0, 20.0);
  }
  pinsql::core::SessionEstimatorOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinsql::core::EstimateSessions(
        logs, observed, 0, n_sec, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(logs.size()));
}
BENCHMARK(BM_SessionEstimation)->Arg(60)->Arg(300);

void BM_LockManagerGrantRelease(benchmark::State& state) {
  pinsql::dbsim::LockManager lm;
  std::vector<uint64_t> granted;
  uint64_t query = 1;
  for (auto _ : state) {
    const uint64_t key = pinsql::dbsim::MakeRowKey(1, query % 64);
    lm.Request(query, key, pinsql::dbsim::LockMode::kExclusive);
    granted.clear();
    lm.Release(query, key, &granted);
    ++query;
  }
}
BENCHMARK(BM_LockManagerGrantRelease);

void BM_EngineThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    pinsql::dbsim::SimConfig config;
    pinsql::dbsim::Engine engine(config);
    pinsql::Rng rng(3);
    std::vector<pinsql::dbsim::QueryArrival> arrivals;
    for (int i = 0; i < 20'000; ++i) {
      pinsql::dbsim::QueryArrival a;
      a.arrival_ms = rng.UniformInt(0, 9'999);
      a.spec.sql_id = 1;
      a.spec.cpu_ms = rng.Uniform(0.5, 3.0);
      a.spec.locks.push_back({pinsql::dbsim::MakeMdlKey(0),
                              pinsql::dbsim::LockMode::kShared});
      arrivals.push_back(std::move(a));
    }
    state.ResumeTiming();
    engine.AddArrivals(arrivals);
    engine.RunToCompletion();
    benchmark::DoNotOptimize(engine.completed().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20'000);
}
BENCHMARK(BM_EngineThroughput);

void BM_JsonParse(benchmark::State& state) {
  const std::string doc = R"({
    "rules": [
      {"anomaly": "cpu_usage.spike",
       "template_feature": "examined_rows.sudden_increase",
       "action": "optimize", "params": {"cpu_factor": 0.25},
       "notify": ["dingtalk", "sms"]},
      {"anomaly": "active_session.spike", "action": "throttle",
       "params": {"max_qps": 5, "duration_sec": 120}}
    ]})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinsql::Json::Parse(doc));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_JsonParse);

// --- Ingest hot path ------------------------------------------------------

pinsql::QueryLogRecord IngestRecordAt(size_t i, uint64_t tid = 0) {
  pinsql::QueryLogRecord record;
  record.sql_id = tid * 131071ULL + i % 512;
  record.arrival_ms = static_cast<int64_t>(i % 600'000);
  record.response_ms = 1.0 + static_cast<double>(i % 17);
  record.examined_rows = static_cast<int64_t>(i % 100);
  return record;
}

/// Producer-side staging only: the per-record cost a collector thread pays
/// (shard lock + chunk append), pump kept out of the timed loop.
void BM_IngestStage(benchmark::State& state) {
  pinsql::online::IngestorOptions options;
  options.num_shards = 16;
  options.window_sec = 600;
  options.shard_queue_capacity = 1 << 20;
  pinsql::online::StreamIngestor ingestor(options);
  size_t i = 0;
  size_t staged = 0;
  for (auto _ : state) {
    ingestor.IngestRecord(IngestRecordAt(i++));
    if (++staged >= (1 << 19)) {  // drain outside the timed region
      state.PauseTiming();
      ingestor.Pump();
      staged = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IngestStage);

/// Full single-core path: stage a batch, pump it (fold into SoA ring
/// cells), alternating — the sustained records/sec/core number.
void BM_IngestStagePump(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  pinsql::online::IngestorOptions options;
  options.num_shards = 16;
  options.window_sec = 600;
  options.shard_queue_capacity = 1 << 20;
  pinsql::online::StreamIngestor ingestor(options);
  size_t i = 0;
  for (auto _ : state) {
    for (size_t k = 0; k < batch; ++k) {
      ingestor.IngestRecord(IngestRecordAt(i++));
    }
    benchmark::DoNotOptimize(ingestor.Pump());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_IngestStagePump)->Arg(256)->Arg(4096)->Arg(65536);

/// Stage+pump with the archive attached: adds the arena-backed LogStore
/// append (spans into slabs) to every pumped record.
void BM_IngestStagePumpArchived(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  pinsql::online::IngestorOptions options;
  options.num_shards = 16;
  options.window_sec = 600;
  options.shard_queue_capacity = 1 << 20;
  pinsql::online::StreamIngestor ingestor(options);
  pinsql::LogStore archive;
  ingestor.AttachArchive(&archive);
  size_t i = 0;
  for (auto _ : state) {
    for (size_t k = 0; k < batch; ++k) {
      ingestor.IngestRecord(IngestRecordAt(i++));
    }
    benchmark::DoNotOptimize(ingestor.Pump());
    if (archive.size() > (1 << 22)) {
      state.PauseTiming();
      archive.TrimBefore(700'000'000);  // reset retention outside the timer
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_IngestStagePumpArchived)->Arg(4096)->Arg(65536);

/// Window assembly out of the rings: the snapshot the detector and the
/// scheduler consume each second.
void BM_IngestSnapshotTemplates(benchmark::State& state) {
  pinsql::online::IngestorOptions options;
  options.num_shards = 16;
  options.window_sec = 600;
  options.shard_queue_capacity = 1 << 20;
  pinsql::online::StreamIngestor ingestor(options);
  for (size_t i = 0; i < (1 << 19); ++i) {
    ingestor.IngestRecord(IngestRecordAt(i));
    if (i % (1 << 16) == 0) ingestor.Pump();
  }
  ingestor.Pump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ingestor.SnapshotTemplates(0, 600));
  }
}
BENCHMARK(BM_IngestSnapshotTemplates);

void BM_ArenaCreateRelease(benchmark::State& state) {
  pinsql::util::Arena arena;
  std::vector<pinsql::util::Arena::Handle> handles;
  handles.reserve(1 << 16);
  for (auto _ : state) {
    for (int i = 0; i < (1 << 16); ++i) {
      handles.push_back(arena.Create<pinsql::QueryLogRecord>({}));
    }
    for (const auto h : handles) {
      arena.Release(h, sizeof(pinsql::QueryLogRecord));
    }
    handles.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_ArenaCreateRelease);

void BM_LogStoreAppendScan(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    pinsql::LogStore store;
    state.ResumeTiming();
    for (size_t i = 0; i < (1 << 16); ++i) {
      store.Append(IngestRecordAt((i * 7919) % (1 << 16)));
    }
    double sum = 0;
    store.ScanRange(0, 700'000,
                    [&sum](const pinsql::QueryLogRecord& r) {
                      sum += r.response_ms;
                    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_LogStoreAppendScan);

}  // namespace

/// Custom main instead of BENCHMARK_MAIN(): recognizes `--smoke` (CI's
/// short mode) and translates it into a small --benchmark_min_time before
/// handing the rest to google-benchmark.
int main(int argc, char** argv) {
  std::vector<char*> args;
  static std::string min_time = "--benchmark_min_time=0.05s";
  bool smoke = false;
  args.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (smoke) args.push_back(min_time.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
