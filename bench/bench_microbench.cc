/// Google-benchmark micro-benchmarks for the hot kernels of PinSQL: SQL
/// fingerprinting, Pearson correlation, session estimation, the lock
/// manager, the simulation engine, and JSON parsing. These back the
/// efficiency discussion of Sec. VIII-B (stage times of the 14.94 s
/// average diagnosis).

#include <benchmark/benchmark.h>

#include "core/session_estimator.h"
#include "dbsim/engine.h"
#include "dbsim/lock_manager.h"
#include "sqltpl/fingerprint.h"
#include "ts/stats.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

void BM_Fingerprint(benchmark::State& state) {
  const char* sql =
      "SELECT a.c0, b.c1 FROM orders a JOIN customers b ON a.cid = b.id "
      "WHERE a.status = 'open' AND a.total > 100.5 AND a.region IN "
      "(1,2,3,4) ORDER BY a.created LIMIT 50";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinsql::sqltpl::Fingerprint(sql));
  }
}
BENCHMARK(BM_Fingerprint);

void BM_PearsonCorrelation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  pinsql::Rng rng(1);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform01();
    y[i] = x[i] + rng.Normal(0, 0.1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinsql::PearsonCorrelation(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PearsonCorrelation)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SessionEstimation(benchmark::State& state) {
  const int64_t n_sec = state.range(0);
  pinsql::Rng rng(2);
  std::vector<pinsql::QueryLogRecord> logs;
  for (int64_t sec = 0; sec < n_sec; ++sec) {
    for (int q = 0; q < 200; ++q) {
      pinsql::QueryLogRecord rec;
      rec.arrival_ms = sec * 1000 + rng.UniformInt(0, 999);
      rec.response_ms = rng.Uniform(1.0, 300.0);
      rec.sql_id = static_cast<uint64_t>(rng.UniformInt(1, 100));
      logs.push_back(rec);
    }
  }
  pinsql::TimeSeries observed(0, 1, static_cast<size_t>(n_sec));
  for (size_t i = 0; i < observed.size(); ++i) {
    observed[i] = rng.Uniform(0.0, 20.0);
  }
  pinsql::core::SessionEstimatorOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinsql::core::EstimateSessions(
        logs, observed, 0, n_sec, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(logs.size()));
}
BENCHMARK(BM_SessionEstimation)->Arg(60)->Arg(300);

void BM_LockManagerGrantRelease(benchmark::State& state) {
  pinsql::dbsim::LockManager lm;
  std::vector<uint64_t> granted;
  uint64_t query = 1;
  for (auto _ : state) {
    const uint64_t key = pinsql::dbsim::MakeRowKey(1, query % 64);
    lm.Request(query, key, pinsql::dbsim::LockMode::kExclusive);
    granted.clear();
    lm.Release(query, key, &granted);
    ++query;
  }
}
BENCHMARK(BM_LockManagerGrantRelease);

void BM_EngineThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    pinsql::dbsim::SimConfig config;
    pinsql::dbsim::Engine engine(config);
    pinsql::Rng rng(3);
    std::vector<pinsql::dbsim::QueryArrival> arrivals;
    for (int i = 0; i < 20'000; ++i) {
      pinsql::dbsim::QueryArrival a;
      a.arrival_ms = rng.UniformInt(0, 9'999);
      a.spec.sql_id = 1;
      a.spec.cpu_ms = rng.Uniform(0.5, 3.0);
      a.spec.locks.push_back({pinsql::dbsim::MakeMdlKey(0),
                              pinsql::dbsim::LockMode::kShared});
      arrivals.push_back(std::move(a));
    }
    state.ResumeTiming();
    engine.AddArrivals(arrivals);
    engine.RunToCompletion();
    benchmark::DoNotOptimize(engine.completed().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20'000);
}
BENCHMARK(BM_EngineThroughput);

void BM_JsonParse(benchmark::State& state) {
  const std::string doc = R"({
    "rules": [
      {"anomaly": "cpu_usage.spike",
       "template_feature": "examined_rows.sudden_increase",
       "action": "optimize", "params": {"cpu_factor": 0.25},
       "notify": ["dingtalk", "sms"]},
      {"anomaly": "active_session.spike", "action": "throttle",
       "params": {"max_qps": 5, "duration_sec": 120}}
    ]})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinsql::Json::Parse(doc));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_JsonParse);

}  // namespace

BENCHMARK_MAIN();
